"""Derived Table J: fast vector-fitting engine speedup.

Times the VF hot path under both kernels ("reference" = the original
per-column Python loops, "batched" = stacked LAPACK QR relocation with
the symmetric upper-triangle reduction and grouped multi-RHS residue
solves) on the small/medium/large PDN variants, and tracks the wall-time
trajectory against the PR-2 recorded baseline for the large case
(2.16 s: per-column QR compression and per-column residue solves in
Python loops).

Equivalence is asserted, not assumed: the batched fit must converge to
the same pole count with an RMS within 1e-10 relative of the reference
path -- both kernels run the same math, so the gap is pure roundoff.

Also recorded: the fit_many amortization of the flow's standard+weighted
fit pair, and the warm-started order sweep (wall time and relocation
iterations vs cold sweeps; on non-converging PDN fits the iteration cap
bounds the win, which the table reports honestly).
"""

import os
import time

import numpy as np

from benchmarks.conftest import emit, save_series
from repro.pdn.testcase import make_paper_testcase
from repro.vectfit.core import fit_many, vector_fit
from repro.vectfit.options import VFOptions
from repro.vectfit.order_selection import select_model_order

# Large-case (P = 20, K = 122, n = 16) vector-fit wall time recorded by
# the PR-2 code on this case (per-column loops; see ISSUE 3 motivation).
PR2_LARGE_VF_SECONDS = 2.16

# Per-case RMS agreement bound between the kernels.  The pooled sigma
# system of the 202-point small case is ill-conditioned (~1e9), so any
# roundoff-level reordering moves its solution at cond * eps ~ 1e-7 --
# the reference path is exactly as sensitive; both fits agree to seven
# digits of an equally good RMS.  The large case -- the ISSUE acceptance
# case -- must agree to 1e-10.
CASES = (
    ("small", 201, 12, 1e-6),
    ("medium", 161, 14, 1e-8),
    ("large", 121, 16, 1e-10),
)


def _timed_fit(data, n_poles, kernel, repeats=1):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = vector_fit(
            data.omega, data.samples,
            options=VFOptions(n_poles=n_poles, kernel=kernel),
        )
        best = min(best, time.perf_counter() - start)
    return result, best


def test_tabJ_fast_vectfit(artifacts_dir):
    lines = [
        "Table J -- fast vector-fitting engine: wall time by kernel",
        "  (reference = per-column Python loops; batched = stacked LAPACK "
        "QR + symmetric",
        "   reduction + grouped multi-RHS residue solves)",
        "  case    ports  poles   reference [s]  batched [s]  speedup  "
        "rms rel diff",
    ]
    rows = []
    large_batched_seconds = None
    for size, n_frequencies, n_poles, rms_bound in CASES:
        case = make_paper_testcase(size=size, n_frequencies=n_frequencies)
        reference, t_ref = _timed_fit(case.data, n_poles, "reference")
        batched, t_bat = _timed_fit(case.data, n_poles, "batched", repeats=3)

        # Equivalence: identical converged pole count, RMS to roundoff.
        assert batched.model.n_poles == reference.model.n_poles
        assert batched.iterations == reference.iterations
        rms_rel = abs(batched.rms_error - reference.rms_error) / max(
            reference.rms_error, 1e-300
        )
        assert rms_rel < rms_bound

        rows.append((size, case.data.n_ports, n_poles, t_ref, t_bat, rms_rel))
        lines.append(
            f"  {size:<7s} {case.data.n_ports:>5d}  {n_poles:>5d}   "
            f"{t_ref:>13.3f}  {t_bat:>11.3f}  {t_ref / t_bat:>6.1f}x  "
            f"{rms_rel:.2e}"
        )
        if size == "large":
            large_batched_seconds = t_bat
            large_reference_seconds = t_ref

    speedup_vs_pr2 = PR2_LARGE_VF_SECONDS / large_batched_seconds
    lines += [
        "",
        f"  PR-2 recorded large-case vector fit : "
        f"{PR2_LARGE_VF_SECONDS:.2f} s (per-column loops)",
        f"  this run, reference kernel          : "
        f"{large_reference_seconds:.2f} s",
        f"  this run, batched kernel            : "
        f"{large_batched_seconds:.2f} s ({speedup_vs_pr2:.1f}x vs PR-2)",
    ]

    # fit_many amortization, campaign pattern: a scenario sweep requests
    # the same standard fit once per termination variant; fit_many
    # collapses identical sets to one fit (the executor additionally
    # shares that one fit across worker processes).
    case = make_paper_testcase(size="small")
    options = VFOptions(n_poles=12)
    n_variants = 4
    start = time.perf_counter()
    for _ in range(n_variants):
        vector_fit(case.data.omega, case.data.samples, None, options)
    t_sequential = time.perf_counter() - start
    start = time.perf_counter()
    batch = fit_many(
        case.data.omega, [case.data.samples] * n_variants, options=options
    )
    t_batch = time.perf_counter() - start
    assert len(batch) == n_variants
    lines += [
        "",
        f"  fit_many ({n_variants} identical standard fits, the sweep "
        "pattern, small case):",
        f"    sequential vector_fit x{n_variants} : {t_sequential:.3f} s",
        f"    one fit_many call        : {t_batch:.3f} s "
        f"({t_sequential / t_batch:.1f}x)",
    ]
    fit_many_speedup = t_sequential / t_batch

    # Warm-started order sweep vs cold sweep.
    orders = [6, 8, 10, 12, 14, 16]
    start = time.perf_counter()
    cold = select_model_order(
        case.data.omega, case.data.samples, orders=orders,
        target_rms=1e-12, stagnation_ratio=0.0, warm_start=False,
    )
    t_cold = time.perf_counter() - start
    start = time.perf_counter()
    warm = select_model_order(
        case.data.omega, case.data.samples, orders=orders,
        target_rms=1e-12, stagnation_ratio=0.0, warm_start=True,
    )
    t_warm = time.perf_counter() - start
    cold_iters = sum(c.iterations for c in cold.candidates)
    warm_iters = sum(c.iterations for c in warm.candidates)
    lines += [
        "",
        f"  order sweep {orders} (small case):",
        f"    cold starts : {t_cold:.3f} s, {cold_iters} relocation "
        "iterations",
        f"    warm starts : {t_warm:.3f} s, {warm_iters} relocation "
        "iterations",
        "    (PDN fits hit the iteration cap regardless of the start, so "
        "the warm-start",
        "     win here is bounded; converging fits stop early instead)",
    ]

    save_series(
        artifacts_dir / "tabJ_fast_vectfit.csv",
        ["ports", "n_poles", "reference_s", "batched_s", "rms_rel_diff"],
        [
            np.array([row[1] for row in rows], dtype=float),
            np.array([row[2] for row in rows], dtype=float),
            np.array([row[3] for row in rows]),
            np.array([row[4] for row in rows]),
            np.array([row[5] for row in rows]),
        ],
    )
    emit(artifacts_dir / "tabJ_fast_vectfit.txt", "\n".join(lines))

    assert warm_iters <= cold_iters
    if not os.environ.get("REPRO_SKIP_PERF_ASSERTS"):
        assert fit_many_speedup > 2.0  # N identical sets ~ one fit

    # Acceptance criterion: >= 4x on the large case vs the PR-2 recorded
    # baseline, with bit-comparable results (asserted above).  Skippable
    # on shared/loaded runners; CI relies on the perf-smoke budget.
    if not os.environ.get("REPRO_SKIP_PERF_ASSERTS"):
        assert large_batched_seconds * 4.0 <= PR2_LARGE_VF_SECONDS


def test_tabJ_perf_smoke(artifacts_dir):
    """CI perf smoke: the small-case vector fit must stay fast.

    The batched kernel fits the small case (P = 9, K = 202, n = 12) in
    ~0.1 s on commodity hardware; the 10 s budget only trips on gross
    regressions (e.g. reintroducing per-column Python loops or per-call
    LAPACK dispatch in the hot path).
    """
    case = make_paper_testcase(size="small")
    start = time.perf_counter()
    result = vector_fit(
        case.data.omega, case.data.samples, options=VFOptions(n_poles=12)
    )
    elapsed = time.perf_counter() - start
    assert result.model.n_poles == 12
    assert result.rms_error < 5e-3
    assert elapsed < 10.0
    emit(
        artifacts_dir / "tabJ_perf_smoke.txt",
        f"perf smoke: small-case batched vector fit {elapsed:.3f} s "
        f"(budget 10 s), rms {result.rms_error:.3e}",
    )
