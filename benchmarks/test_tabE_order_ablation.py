"""Derived Table E: model-order ablation.

DESIGN.md design-choice check: the paper's n = 12 common poles is a good
operating point for this data -- lower orders underfit the resonances,
higher orders stop paying.  Uses the automatic order-selection extension.
"""

from benchmarks.conftest import emit, save_series
from repro.vectfit.order_selection import select_model_order


def test_tabE_order_ablation(benchmark, testcase, artifacts_dir):
    data = testcase.data

    def sweep():
        return select_model_order(
            data.omega,
            data.samples,
            orders=[6, 8, 10, 12, 14, 16],
            target_rms=1e-12,  # explore everything until stagnation
            stagnation_ratio=0.0,
            warm_start=False,  # independent fits: this is an ablation
        )

    result = sweep()
    assert result.skipped_orders == []  # no duplicate candidates here
    lines = ["Table E -- model order ablation (paper uses n = 12, "
             "independent cold fits)",
             f"  {'order':>5s} {'rms error':>12s} {'converged':>9s} "
             f"{'iters':>5s}"]
    for cand in result.candidates:
        lines.append(
            f"  {cand.n_poles:5d} {cand.rms_error:12.3e} "
            f"{str(cand.converged):>9s} {cand.iterations:>5d}"
        )
    save_series(
        artifacts_dir / "tabE_order_ablation.csv",
        ["order", "rms_error"],
        [
            [c.n_poles for c in result.candidates],
            [c.rms_error for c in result.candidates],
        ],
    )
    by_order = {c.n_poles: c.rms_error for c in result.candidates}
    improvement_to_12 = by_order[6] / by_order[12]
    improvement_past_12 = by_order[12] / by_order[16]
    lines += [
        f"  error ratio 6 -> 12 poles : {improvement_to_12:.1f}x",
        f"  error ratio 12 -> 16 poles: {improvement_past_12:.1f}x",
        "  claim: the chosen order sits past the steep part of the curve",
        f"  claim holds: {improvement_to_12 > improvement_past_12}",
    ]
    emit(artifacts_dir / "tabE_order_ablation.txt", "\n".join(lines))

    assert by_order[12] < by_order[6]
    assert improvement_to_12 > improvement_past_12

    benchmark.pedantic(
        lambda: select_model_order(
            data.omega, data.samples, orders=[8, 12], target_rms=1e-12,
            stagnation_ratio=0.0,
        ),
        rounds=1,
        iterations=1,
    )
