"""Derived Table I: fast passivity engine speedup.

Times the enforcement loop under both checker strategies ("exact" =
Hamiltonian eigenvalue test every iteration, "fast" = warm-started
sampling for intermediate iterations with exact certification) on the
small/medium/large PDN variants, and tracks the wall-time trajectory
against the recorded PR-1 baseline for the Table G case (98.91 s: exact
check every iteration, per-element Python QP assembly, dense dual Gram).

Both strategies now share the vectorized kernels (structured working-set
QP, cached Hamiltonian invariants, batched constraint assembly), so the
exact-vs-fast gap isolates the checker strategy itself while the
comparison against the recorded baseline captures the full engine
speedup -- the ISSUE 2 acceptance criterion (>= 5x on the P = 20 case
with a certified passive result).
"""

import os
import time

from benchmarks.conftest import emit
from repro.passivity.cost import l2_gramian_cost
from repro.passivity.enforce import EnforcementOptions, enforce_passivity
from repro.vectfit.core import vector_fit
from repro.vectfit.options import VFOptions
from repro.pdn.testcase import make_paper_testcase

# Table G enforcement wall time recorded by the PR-1 code on this case
# (see benchmarks/artifacts/tabG_scaling.txt in the PR-1 tree).
PR1_LARGE_ENFORCEMENT_SECONDS = 98.91

# Large-case exact-strategy enforcement wall time recorded by the PR-7
# code (full-size 2N x 2N Hamiltonian eigensolve every iteration; see
# benchmarks/artifacts/tabI_fast_passivity.txt in the PR-7 tree).  The
# half-size structured eigensolve must beat this strictly.
PR7_LARGE_EXACT_ENFORCEMENT_SECONDS = 5.06

CASES = (
    ("small", 201, 12),
    ("medium", 161, 14),
    ("large", 121, 16),
)


def _fit_case(size, n_frequencies, n_poles):
    case = make_paper_testcase(size=size, n_frequencies=n_frequencies)
    fit = vector_fit(
        case.data.omega, case.data.samples,
        options=VFOptions(n_poles=n_poles),
    )
    return case, fit


def _enforce_timed(model, strategy):
    cost = l2_gramian_cost(model)
    start = time.perf_counter()
    result = enforce_passivity(
        model, cost, EnforcementOptions(checker_strategy=strategy)
    )
    return result, time.perf_counter() - start


def test_tabI_fast_passivity(artifacts_dir):
    lines = [
        "Table I -- fast passivity engine: enforcement wall time by "
        "checker strategy",
        "  (exact = Hamiltonian test every iteration; fast = sampling-"
        "first with exact certificate)",
        "  case    ports  poles   exact [s]  fast [s]  iters(e/f)  "
        "worst sigma (fast)",
    ]
    large_fast_seconds = None
    for size, n_frequencies, n_poles in CASES:
        case, fit = _fit_case(size, n_frequencies, n_poles)
        exact, t_exact = _enforce_timed(fit.model, "exact")
        fast, t_fast = _enforce_timed(fit.model, "fast")

        # Identical convergence behavior: both certified by the exact
        # Hamiltonian test, agreeing on the verdict and worst sigma.
        assert exact.converged and fast.converged
        assert fast.report_after.worst_sigma <= 1.0
        assert exact.report_after.worst_sigma <= 1.0
        assert abs(
            fast.report_after.worst_sigma - exact.report_after.worst_sigma
        ) < 5e-3

        lines.append(
            f"  {size:<7s} {case.data.n_ports:>5d}  {n_poles:>5d}   "
            f"{t_exact:>9.2f}  {t_fast:>8.2f}  "
            f"{exact.iterations:>4d}/{fast.iterations:<4d}  "
            f"{fast.report_after.worst_sigma:.8f}"
        )
        if size == "large":
            large_fast_seconds = t_fast
            large_exact_seconds = t_exact

    speedup_vs_pr1 = PR1_LARGE_ENFORCEMENT_SECONDS / large_fast_seconds
    lines += [
        "",
        f"  PR-1 recorded large-case enforcement : "
        f"{PR1_LARGE_ENFORCEMENT_SECONDS:.2f} s (exact checks, dense "
        "dual Gram, per-element Python assembly)",
        f"  this run, exact strategy             : "
        f"{large_exact_seconds:.2f} s "
        f"({PR1_LARGE_ENFORCEMENT_SECONDS / large_exact_seconds:.1f}x)",
        f"  this run, fast strategy              : "
        f"{large_fast_seconds:.2f} s ({speedup_vs_pr1:.1f}x)",
        f"  PR-7 recorded exact-strategy run     : "
        f"{PR7_LARGE_EXACT_ENFORCEMENT_SECONDS:.2f} s (full-size "
        "Hamiltonian eigensolve)",
    ]
    emit(artifacts_dir / "tabI_fast_passivity.txt", "\n".join(lines))

    # Acceptance criterion: >= 5x on the Table G case with a certified
    # passive result.  Skippable on shared/loaded runners (CI sets
    # REPRO_SKIP_PERF_ASSERTS and relies on the perf-smoke threshold
    # instead) since the baseline is a wall-clock figure from a
    # dedicated machine.
    if not os.environ.get("REPRO_SKIP_PERF_ASSERTS"):
        assert large_fast_seconds * 5.0 <= PR1_LARGE_ENFORCEMENT_SECONDS
        # Half-size Hamiltonian acceptance: the exact strategy (one
        # structured eigensolve per iteration) must beat the PR-7
        # full-size-eigensolve recording outright.
        assert large_exact_seconds < PR7_LARGE_EXACT_ENFORCEMENT_SECONDS


def test_tabI_perf_smoke(artifacts_dir):
    """CI perf smoke: the small case must enforce quickly.

    Generous threshold -- the fast engine finishes in well under a
    second on commodity hardware; 30 s only trips on gross regressions
    (e.g. reintroducing a dense dual Gram or per-iteration Hamiltonian
    rebuilds).
    """
    _case, fit = _fit_case("small", 201, 12)
    fast, t_fast = _enforce_timed(fit.model, "fast")
    assert fast.converged
    assert fast.report_after.worst_sigma <= 1.0
    assert t_fast < 30.0
    emit(
        artifacts_dir / "tabI_perf_smoke.txt",
        f"perf smoke: small-case fast enforcement {t_fast:.2f} s "
        f"(threshold 30 s), converged={fast.converged}",
    )


def test_tabI_half_size_hamiltonian_engaged(artifacts_dir):
    """CI perf smoke: the exact checker must run the half-size eigensolve.

    Machine-independent structural assertion backing the wall-clock
    acceptance check above: PDN scattering data is reciprocal, so the
    exact passivity test on a fitted PDN model must take the structured
    half-size path (n x n product eigensolve instead of the 2n x 2n
    Hamiltonian), and it must agree with the full-size oracle check.
    """
    import numpy as np

    from repro.passivity.check import check_passivity
    from repro.passivity.engine import CheckerOptions, PassivityChecker

    _case, fit = _fit_case("small", 201, 12)
    checker = PassivityChecker(
        fit.model, options=CheckerOptions(strategy="exact")
    )
    start = time.perf_counter()
    report = checker.check(fit.model)
    t_half = time.perf_counter() - start
    assert checker.n_half_size_checks == 1

    oracle = check_passivity(fit.model)
    assert report.is_passive == oracle.is_passive
    assert np.isclose(
        report.worst_sigma, oracle.worst_sigma,
        rtol=1e-6, atol=1e-9,
    )
    emit(
        artifacts_dir / "tabI_half_size_smoke.txt",
        f"half-size exact check: {t_half:.3f} s, "
        f"n_half_size_checks={checker.n_half_size_checks}, "
        f"worst sigma {report.worst_sigma:.8f} "
        f"(oracle {oracle.worst_sigma:.8f})",
    )
