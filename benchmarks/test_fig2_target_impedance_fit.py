"""Paper Fig. 2: target impedance after fitting -- nominal vs standard VF
vs sensitivity-weighted VF.

Shape claims: the standard model's loaded impedance deviates visibly at
low frequency; the weighted model's tracks the nominal curve.
The timed kernel is the weighted fit (including refinement rounds).
"""

import numpy as np

from benchmarks.conftest import emit, save_series
from repro.sensitivity.zpdn import target_impedance_of_model


def test_fig2_target_impedance_fit(benchmark, testcase, flow, flow_result, artifacts_dir):
    data = testcase.data
    omega, f = data.omega, data.frequencies
    zref = flow_result.reference_impedance
    z_std = target_impedance_of_model(
        flow_result.standard_fit.model, omega, testcase.termination,
        testcase.observe_port,
    )
    z_wtd = target_impedance_of_model(
        flow_result.weighted_fit.model, omega, testcase.termination,
        testcase.observe_port,
    )
    save_series(
        artifacts_dir / "fig2_target_impedance_fit.csv",
        ["frequency_hz", "z_nominal_ohm", "z_standard_ohm", "z_weighted_ohm"],
        [f, np.abs(zref), np.abs(z_std), np.abs(z_wtd)],
    )

    low = f < 1e6
    rel_std = np.abs(z_std - zref) / np.abs(zref)
    rel_wtd = np.abs(z_wtd - zref) / np.abs(zref)
    lines = [
        "Fig. 2 -- target impedance after fitting",
        f"  low-band (<1 MHz) max rel error: standard {rel_std[low].max():.3f}"
        f" | weighted {rel_wtd[low].max():.4f}",
        f"  full-band max rel error        : standard {rel_std.max():.3f}"
        f" | weighted {rel_wtd.max():.4f}",
        "  paper shape claim: standard deviates at low f, weighted overlaps",
        f"  claim holds      : {rel_std[low].max() > 5 * rel_wtd[low].max()}",
    ]
    emit(artifacts_dir / "fig2_summary.txt", "\n".join(lines))

    assert rel_std[low].max() > 5 * rel_wtd[low].max()

    def weighted_fit_kernel():
        base = flow.base_weights(data, flow_result.xi, zref)
        return flow.fit_weighted(
            data, testcase.termination, testcase.observe_port, base, zref
        )

    benchmark.pedantic(weighted_fit_kernel, rounds=1, iterations=1)
