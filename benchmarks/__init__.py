"""Benchmark harness: one module per paper figure / derived table."""
