"""Derived Table A: enforcement convergence diagnostics.

The paper reports convergence in 9 iterations for the weighted scheme.
This bench tabulates per-iteration worst singular value, constraint count
and perturbation cost for both enforcement costs, plus the sampled-norm
ablation (the paper's Sec. III option 1, dismissed for cost reasons --
here we show it agrees with the Gramian route on the same model).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.passivity.cost import sampled_norm_cost
from repro.passivity.enforce import enforce_passivity
from repro.sensitivity.zpdn import target_impedance_of_model


def iteration_table(label, result):
    lines = [f"  {label}: {result.iterations} iterations, "
             f"converged={result.converged}"]
    lines.append(
        f"    {'iter':>4s} {'worst sigma':>12s} {'bands':>5s} "
        f"{'constraints':>11s} {'cost':>12s}"
    )
    for rec in result.history:
        lines.append(
            f"    {rec.iteration:4d} {rec.worst_sigma:12.8f} {rec.n_bands:5d} "
            f"{rec.n_constraints:11d} {rec.perturbation_cost:12.4e}"
        )
    return lines


def test_tabA_convergence(benchmark, testcase, flow_result, artifacts_dir):
    lines = ["Table A -- enforcement convergence (paper: 9 iterations)"]
    lines += iteration_table("standard L2 cost", flow_result.standard_enforced)
    lines += iteration_table("sensitivity-weighted cost", flow_result.weighted_enforced)

    # Ablation: sampled discrete norm (eq. 13) with the same weights.
    model = flow_result.weighted_fit.model
    data = testcase.data
    sampled = sampled_norm_cost(model, data.omega, flow_result.base_weights)
    result_sampled = enforce_passivity(model, sampled)
    lines += iteration_table("sampled-norm cost (eq. 13 ablation)", result_sampled)

    zref = flow_result.reference_impedance
    z_sampled = target_impedance_of_model(
        result_sampled.model, data.omega, testcase.termination, testcase.observe_port
    )
    low = data.frequencies < 1e6
    rel_low = (np.abs(z_sampled - zref) / np.abs(zref))[low].max()
    lines.append(
        f"  sampled-norm low-band relZ: {rel_low:.4f} "
        "(agrees with the Gramian-weighted route within the same order)"
    )
    emit(artifacts_dir / "tabA_convergence.txt", "\n".join(lines))

    assert flow_result.weighted_enforced.iterations <= 15
    assert result_sampled.converged

    benchmark.pedantic(
        lambda: enforce_passivity(model, sampled), rounds=1, iterations=1
    )
