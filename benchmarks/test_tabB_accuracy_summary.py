"""Derived Table B: accuracy summary for every model variant of Fig. 5.

One row per model: scattering errors, loaded-impedance errors, passivity
verdict.  This is the compact quantitative form of the paper's Figs. 1-6
narrative.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.flow.metrics import (
    ModelAccuracyRow,
    impedance_error_report,
    max_relative_impedance_error,
    max_scattering_error,
    rms_scattering_error,
)
from repro.passivity.check import check_passivity

LOW_BAND = (0.0, 2 * np.pi * 1e6)


def test_tabB_accuracy_summary(benchmark, testcase, flow_result, artifacts_dir):
    data = testcase.data
    omega = data.omega
    zref = flow_result.reference_impedance

    variants = [
        ("standard VF", flow_result.standard_fit.model),
        ("weighted VF (non-passive)", flow_result.weighted_fit.model),
        ("passive, standard cost", flow_result.standard_enforced.model),
        ("passive, weighted cost", flow_result.weighted_enforced.model),
    ]

    def build_rows():
        rows = []
        for label, model in variants:
            rows.append(
                ModelAccuracyRow(
                    label=label,
                    rms_scattering=rms_scattering_error(model, omega, data.samples),
                    max_scattering=max_scattering_error(model, omega, data.samples),
                    max_rel_impedance=max_relative_impedance_error(
                        model, omega, zref, testcase.termination,
                        testcase.observe_port,
                    ),
                    low_band_rel_impedance=max_relative_impedance_error(
                        model, omega, zref, testcase.termination,
                        testcase.observe_port, band=LOW_BAND,
                    ),
                    is_passive=check_passivity(model).is_passive,
                )
            )
        return rows

    rows = build_rows()
    text = "Table B -- accuracy summary per model variant\n"
    text += impedance_error_report(rows)
    emit(artifacts_dir / "tabB_accuracy_summary.txt", text)

    by_label = {row.label: row for row in rows}
    assert not by_label["weighted VF (non-passive)"].is_passive
    assert by_label["passive, weighted cost"].is_passive
    assert by_label["passive, standard cost"].is_passive
    assert (
        by_label["passive, standard cost"].low_band_rel_impedance
        > 5 * by_label["passive, weighted cost"].low_band_rel_impedance
    )

    benchmark.pedantic(build_rows, rounds=1, iterations=1)
