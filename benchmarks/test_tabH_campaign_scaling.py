"""Table H: campaign engine scaling -- serial vs parallel, cache, resume.

Runs a 24-scenario sweep (2 weight modes x 3 decap scalings x 2 VRM
resistances x 2 switching currents) end-to-end through the ``repro
campaign`` CLI, then re-runs it to measure what the batch engine buys:

* ``cold``      -- first `repro campaign --jobs N` invocation;
* ``resume``    -- identical invocation with ``--resume`` (registry skip);
* ``cache``     -- fresh registry, warm content-addressed cache;
* ``serial-8`` / ``parallel-8`` -- an 8-scenario subset executed cold with
  1 and 2 workers to measure raw pool speedup.

Acceptance: the resumed and cache-served invocations must be >= 5x faster
than the cold campaign, and -- on machines with at least two cores -- the
2-worker pool must beat serial execution by > 1.3x.  The pool assert
became meaningful once workers started capping their BLAS thread pools
(``cpu_count // jobs`` each): before the cap, every worker's BLAS spawned
one thread per core and the oversubscription ate the entire pool win
(0.98x measured for 8 scenarios / 2 workers on the PR-2 engine).  The
records double-check that the cap was applied and recorded.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.campaign import (
    CampaignRegistry,
    CampaignSpec,
    FlowCache,
    ScenarioSpec,
    run_campaign,
    save_campaign,
)
from repro.cli import main

from benchmarks.conftest import emit, save_series

_SPEEDUP_FLOOR = 5.0
_POOL_SPEEDUP_FLOOR = 1.3
_JOBS = 2

_BASE = ScenarioSpec(
    name="tabH",
    size="small",
    n_frequencies=41,
    include_dc=False,
    n_poles=6,
    refinement_rounds=1,
    weight_model_order=4,
    enforcement_max_iterations=15,
)

_AXES = {
    "weight_mode": ["relative", "absolute"],
    "decap_c_scale": [0.5, 1.0, 2.0],
    "vrm_resistance": [1e-4, 1e-3],
    "total_die_current": [1.0, 2.0],
}


def _manifest_counts(registry_dir) -> dict:
    manifest = json.loads(
        (registry_dir / "manifest.json").read_text(encoding="utf-8")
    )
    runs = manifest["runs"]
    return {
        "n_runs": len(runs),
        "ok": sum(1 for r in runs if r["status"] == "ok"),
        "failed": sum(1 for r in runs if r["status"] == "failed"),
        "cache_hits": sum(1 for r in runs if r.get("cache_hit")),
        "resumed": sum(1 for r in runs if r.get("resumed")),
    }


def _timed_cli(argv) -> float:
    started = time.perf_counter()
    assert main(argv) == 0
    return time.perf_counter() - started


def test_tabH_campaign_scaling(artifacts_dir, tmp_path):
    spec = CampaignSpec.from_axes("tabH", _BASE, _AXES)
    n_scenarios = len(spec.expand())
    assert n_scenarios == 24  # the 20+-scenario acceptance bar

    spec_path = tmp_path / "tabH.json"
    save_campaign(spec, spec_path)
    out_dir = tmp_path / "campaigns"
    cache_dir = tmp_path / "cache"
    argv = [
        "campaign", str(spec_path),
        "--jobs", str(_JOBS),
        "--output-dir", str(out_dir),
        "--cache-dir", str(cache_dir),
    ]

    phases: list[tuple[str, float, dict]] = []

    # Cold end-to-end run through the CLI.
    t_cold = _timed_cli(argv)
    counts = _manifest_counts(out_dir / "tabH")
    assert counts["ok"] == n_scenarios and counts["failed"] == 0
    phases.append(("cold", t_cold, counts))

    # Second invocation with --resume: registry-level skip.
    t_resume = _timed_cli(argv + ["--resume"])
    counts = _manifest_counts(out_dir / "tabH")
    assert counts["resumed"] == n_scenarios
    phases.append(("resume", t_resume, counts))

    # Fresh registry, warm cache: every flow served content-addressed.
    t_cache = _timed_cli(
        [
            "campaign", str(spec_path),
            "--jobs", "1",
            "--output-dir", str(tmp_path / "campaigns2"),
            "--cache-dir", str(cache_dir),
        ]
    )
    counts = _manifest_counts(tmp_path / "campaigns2" / "tabH")
    assert counts["cache_hits"] == n_scenarios
    phases.append(("cache", t_cache, counts))

    # Serial vs parallel on a cold 8-scenario subset (separate caches).
    sub = CampaignSpec.from_axes(
        "tabH-sub", _BASE,
        {"weight_mode": ["relative", "absolute"],
         "decap_c_scale": [0.5, 1.0],
         "vrm_resistance": [1e-4, 1e-3]},
    )
    started = time.perf_counter()
    serial = run_campaign(
        sub, registry=CampaignRegistry(tmp_path / "serial8"),
        cache=FlowCache(tmp_path / "cacheS"), jobs=1,
    )
    t_serial8 = time.perf_counter() - started
    assert serial.n_ok == 8
    phases.append(
        ("serial-8", t_serial8,
         {"n_runs": 8, "ok": 8, "failed": 0, "cache_hits": 0, "resumed": 0})
    )
    started = time.perf_counter()
    parallel = run_campaign(
        sub, registry=CampaignRegistry(tmp_path / "parallel8"),
        cache=FlowCache(tmp_path / "cacheP"), jobs=_JOBS,
    )
    t_parallel8 = time.perf_counter() - started
    assert parallel.n_ok == 8
    phases.append(
        ("parallel-8", t_parallel8,
         {"n_runs": 8, "ok": 8, "failed": 0, "cache_hits": 0, "resumed": 0})
    )

    # Thread budgeting is recorded per run: serial workers are uncapped,
    # pooled workers run under an explicit BLAS thread budget.
    serial_env = serial.records[0]["environment"]
    parallel_env = parallel.records[0]["environment"]
    assert serial_env["blas_thread_limit"] is None
    assert parallel_env["blas_thread_limit"] >= 1
    assert parallel_env["blas_limit_method"] in (
        "threadpoolctl", "ctypes-openblas", "env-only"
    )

    resume_speedup = t_cold / max(t_resume, 1e-9)
    cache_speedup = t_cold / max(t_cache, 1e-9)
    pool_speedup = t_serial8 / max(t_parallel8, 1e-9)

    save_series(
        artifacts_dir / "tabH_campaign_scaling.csv",
        ["phase_index", "n_runs", "wall_s", "ok", "failed",
         "cache_hits", "resumed"],
        [
            np.arange(len(phases), dtype=float),
            np.array([c["n_runs"] for _, _, c in phases], dtype=float),
            np.array([t for _, t, _ in phases]),
            np.array([c["ok"] for _, _, c in phases], dtype=float),
            np.array([c["failed"] for _, _, c in phases], dtype=float),
            np.array([c["cache_hits"] for _, _, c in phases], dtype=float),
            np.array([c["resumed"] for _, _, c in phases], dtype=float),
        ],
    )

    lines = [
        "Table H: campaign scaling "
        f"({n_scenarios} scenarios, {_JOBS} workers)",
        f"{'phase':<12s} {'runs':>5s} {'wall[s]':>9s} {'ok':>4s} "
        f"{'hits':>5s} {'resumed':>8s}",
    ]
    lines.append("-" * len(lines[-1]))
    for label, wall, counts in phases:
        lines.append(
            f"{label:<12s} {counts['n_runs']:>5d} {wall:>9.2f} "
            f"{counts['ok']:>4d} {counts['cache_hits']:>5d} "
            f"{counts['resumed']:>8d}"
        )
    cores = os.cpu_count() or 1
    pool_asserted = cores >= 2 and not os.environ.get(
        "REPRO_SKIP_PERF_ASSERTS"
    )
    lines += [
        "",
        f"resume speedup : {resume_speedup:8.1f}x  (floor {_SPEEDUP_FLOOR}x)",
        f"cache speedup  : {cache_speedup:8.1f}x  (floor {_SPEEDUP_FLOOR}x)",
        f"pool speedup   : {pool_speedup:8.2f}x  "
        f"(8 scenarios, {_JOBS} workers, "
        f"blas budget {parallel_env['blas_thread_limit']} "
        f"via {parallel_env['blas_limit_method']}, {cores} core(s), "
        + (f"floor {_POOL_SPEEDUP_FLOOR}x)" if pool_asserted
           else "informational on this machine)"),
    ]
    emit(artifacts_dir / "tabH_summary.txt", "\n".join(lines))

    assert resume_speedup >= _SPEEDUP_FLOOR
    assert cache_speedup >= _SPEEDUP_FLOOR
    if pool_asserted:
        assert pool_speedup > _POOL_SPEEDUP_FLOOR
