"""Derived Table F: enforcement-cost ablation across all implemented norms.

Compares the loaded-impedance accuracy of the passive models produced by
every cost variant on the same non-passive weighted macromodel:

  * standard L2 Gramian (paper eq. 10) -- the baseline that fails;
  * relative-error cost (paper ref. [18]) -- per-entry static weights;
  * sampled weighted norm (paper eq. 13, option 1);
  * sensitivity-weighted Gramian (paper eqs. 18-21, option 2 = the paper);
  * per-element sensitivity cascade (extension beyond the paper).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.passivity.cost import l2_gramian_cost, relative_error_cost, sampled_norm_cost
from repro.passivity.enforce import enforce_passivity
from repro.sensitivity.firstorder import sensitivity_matrix
from repro.sensitivity.weighted_norm import (
    per_element_sensitivity_cost,
    sensitivity_weighted_cost,
)
from repro.sensitivity.zpdn import target_impedance_of_model


def test_tabF_weighting_variants(benchmark, testcase, flow_result, artifacts_dir):
    data = testcase.data
    model = flow_result.weighted_fit.model
    zref = flow_result.reference_impedance
    low = data.frequencies < 1e6

    grads = sensitivity_matrix(
        data.samples, data.omega, testcase.termination, testcase.observe_port
    )
    costs = {
        "standard L2 (eq. 10)": l2_gramian_cost(model),
        "relative error (ref. 18)": relative_error_cost(model, data.samples),
        "sampled weighted (eq. 13)": sampled_norm_cost(
            model, data.omega, flow_result.base_weights
        ),
        "sensitivity Gramian (eqs. 18-21)": sensitivity_weighted_cost(
            model, flow_result.weight_model.model
        ),
        "per-element cascade (extension)": per_element_sensitivity_cost(
            model, data.omega, grads, order=3
        ),
    }

    rows = {}
    for label, cost in costs.items():
        result = enforce_passivity(model, cost)
        z = target_impedance_of_model(
            result.model, data.omega, testcase.termination, testcase.observe_port
        )
        rel = np.abs(z - zref) / np.abs(zref)
        rows[label] = (result.converged, result.iterations, rel.max(), rel[low].max())

    lines = ["Table F -- enforcement cost ablation (same non-passive input)",
             f"  {'cost':<34s} {'passive':>7s} {'iters':>5s} "
             f"{'max relZ':>9s} {'low-f relZ':>10s}"]
    for label, (conv, iters, full, lowband) in rows.items():
        lines.append(
            f"  {label:<34s} {str(conv):>7s} {iters:5d} {full:9.4f} {lowband:10.4f}"
        )
    l2_low = rows["standard L2 (eq. 10)"][3]
    best_weighted = min(
        rows["sensitivity Gramian (eqs. 18-21)"][3],
        rows["per-element cascade (extension)"][3],
        rows["sampled weighted (eq. 13)"][3],
    )
    lines += [
        f"  best weighted vs standard L2 (low band): {l2_low / best_weighted:.1f}x",
        "  claim: every sensitivity-aware cost beats the unweighted L2 norm",
    ]
    emit(artifacts_dir / "tabF_weighting_variants.txt", "\n".join(lines))

    assert all(conv for conv, *_ in rows.values())
    for label in (
        "sampled weighted (eq. 13)",
        "sensitivity Gramian (eqs. 18-21)",
        "per-element cascade (extension)",
    ):
        assert rows[label][3] < l2_low

    benchmark.pedantic(
        lambda: enforce_passivity(model, costs["sensitivity Gramian (eqs. 18-21)"]),
        rounds=1,
        iterations=1,
    )
