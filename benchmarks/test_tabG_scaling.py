"""Derived Table G: port-count scaling.

The paper's test case has P = 45 ports; ours defaults to P = 9 for speed.
This bench runs the identification + check + enforcement chain on the
P = 20 "large" variant and reports stage timings, demonstrating that the
flow scales to realistic port counts (cost grows with P^2 elements in the
fit and the QP variable count P^2 N).
"""

import time

import numpy as np

from benchmarks.conftest import emit
from repro.passivity.check import check_passivity
from repro.passivity.cost import l2_gramian_cost
from repro.passivity.enforce import enforce_passivity
from repro.pdn.testcase import make_paper_testcase
from repro.vectfit.core import vector_fit
from repro.vectfit.options import VFOptions


def test_tabG_scaling(benchmark, artifacts_dir):
    timings = {}

    def timed(label, fn):
        start = time.perf_counter()
        out = fn()
        timings[label] = time.perf_counter() - start
        return out

    large = timed(
        "data generation (MNA sweep)",
        lambda: make_paper_testcase(size="large", n_frequencies=121),
    )
    fit = timed(
        "vector fit (16 poles)",
        lambda: vector_fit(
            large.data.omega, large.data.samples, options=VFOptions(n_poles=16)
        ),
    )
    report = timed("passivity check", lambda: check_passivity(fit.model))
    enforcement = None
    if not report.is_passive:
        enforcement = timed(
            "passivity enforcement (L2)",
            lambda: enforce_passivity(fit.model, l2_gramian_cost(fit.model)),
        )

    lines = [
        "Table G -- scaling to the large test case "
        f"(P = {large.data.n_ports} ports, K = {large.data.n_frequencies})",
        f"  scattering data passive : "
        f"{bool(np.all(large.data.passivity_metric() <= 1.0 + 1e-9))}",
        f"  fit RMS error           : {fit.rms_error:.3e}",
        f"  model passive before    : {report.is_passive} "
        f"(worst sigma {report.worst_sigma:.6f})",
    ]
    if enforcement is not None:
        lines.append(
            f"  enforcement             : converged={enforcement.converged} "
            f"in {enforcement.iterations} iterations"
        )
    for label, seconds in timings.items():
        lines.append(f"  {label:<28s} {seconds:8.2f} s")
    emit(artifacts_dir / "tabG_scaling.txt", "\n".join(lines))

    assert fit.rms_error < 0.05
    if enforcement is not None:
        assert enforcement.converged

    benchmark.pedantic(
        lambda: check_passivity(fit.model), rounds=1, iterations=1
    )
