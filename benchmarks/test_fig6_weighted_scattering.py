"""Paper Fig. 6: scattering responses of the weighted passive macromodel
vs the raw data.

Shape claim: the sensitivity-weighted passive model remains accurate in
the native scattering representation -- "no difference ... can be noted in
the scattering representation by comparing Fig. 1 and Fig. 6".  The timed
kernel is a model frequency-response evaluation.
"""

import numpy as np

from benchmarks.conftest import emit, save_series


def test_fig6_weighted_scattering(benchmark, testcase, flow_result, artifacts_dir):
    data = testcase.data
    model = flow_result.weighted_enforced.model
    response = model.frequency_response(data.omega)

    header = ["frequency_hz"]
    columns = [data.frequencies]
    for (i, j) in [(0, 0), (0, 1)]:
        for source, tag in [(data.samples, "data"), (response, "model")]:
            trace = source[:, i, j]
            header += [f"S{i+1}{j+1}_{tag}_db", f"S{i+1}{j+1}_{tag}_deg"]
            columns += [
                20 * np.log10(np.maximum(np.abs(trace), 1e-300)),
                np.rad2deg(np.angle(trace)),
            ]
    save_series(artifacts_dir / "fig6_weighted_scattering.csv", header, columns)

    rms_weighted_passive = float(
        np.sqrt(np.mean(np.abs(response - data.samples) ** 2))
    )
    rms_standard = flow_result.standard_fit.rms_error
    lines = [
        "Fig. 6 -- scattering accuracy of the weighted passive model",
        f"  RMS error, standard fit (Fig. 1)      : {rms_standard:.3e}",
        f"  RMS error, weighted passive (Fig. 6)  : {rms_weighted_passive:.3e}",
        "  paper shape claim: both are accurate in the scattering view;",
        "  the weighting difference only appears under nominal loading",
        f"  claim holds      : {rms_weighted_passive < 0.05}",
    ]
    emit(artifacts_dir / "fig6_summary.txt", "\n".join(lines))

    assert rms_weighted_passive < 0.05

    benchmark.pedantic(
        lambda: model.frequency_response(data.omega), rounds=3, iterations=1
    )
