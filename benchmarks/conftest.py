"""Benchmark fixtures: the flow pipeline runs once per session; each bench
regenerates one paper figure/table from the shared results and saves its
series as CSV under benchmarks/artifacts/."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro import MacromodelingFlow, make_paper_testcase

ARTIFACTS = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifacts_dir():
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


@pytest.fixture(scope="session")
def testcase():
    return make_paper_testcase()


@pytest.fixture(scope="session")
def flow():
    return MacromodelingFlow()


@pytest.fixture(scope="session")
def flow_result(flow, testcase):
    return flow.run(testcase.data, testcase.termination, testcase.observe_port)


def save_series(path: Path, header: list[str], columns: list[np.ndarray]) -> None:
    """Write aligned columns as CSV (the figure's data series)."""
    table = np.column_stack([np.asarray(c) for c in columns])
    np.savetxt(path, table, delimiter=",", header=",".join(header), comments="")


def emit(path: Path, text: str) -> None:
    """Print a result table and persist it next to the CSV artifacts."""
    print(text)
    path.write_text(text + "\n", encoding="utf-8")
