"""Derived Table D: cost of the sensitivity-based weighting machinery.

The paper's Sec. V remark: "the computational cost for implementation of
the sensitivity-based weights is negligible with respect to all other
steps of model extraction".  This bench times each pipeline stage
separately and verifies that weight construction (sensitivity + MVF +
cascade Gramian) is a small fraction of fitting + enforcement.
"""

import time

from benchmarks.conftest import emit
from repro.passivity.cost import l2_gramian_cost
from repro.passivity.enforce import enforce_passivity
from repro.sensitivity.firstorder import sensitivity_analytic
from repro.sensitivity.weighted_norm import sensitivity_weighted_cost
from repro.sensitivity.weightmodel import build_weight_model
from repro.vectfit.core import vector_fit
from repro.vectfit.options import VFOptions


def test_tabD_overhead(benchmark, testcase, flow_result, artifacts_dir):
    data = testcase.data
    timings = {}

    def timed(label, fn):
        start = time.perf_counter()
        result = fn()
        timings[label] = time.perf_counter() - start
        return result

    timed(
        "standard VF fit",
        lambda: vector_fit(data.omega, data.samples, options=VFOptions(n_poles=12)),
    )
    xi = timed(
        "sensitivity samples (eq. 5)",
        lambda: sensitivity_analytic(
            data.samples, data.omega, testcase.termination, testcase.observe_port
        ),
    )
    weight = timed(
        "weight model MVF (eq. 17)",
        lambda: build_weight_model(data.omega, xi / xi.max(), order=8),
    )
    timed(
        "weighted cost Gramian (eqs. 18-21)",
        lambda: sensitivity_weighted_cost(
            flow_result.weighted_fit.model, weight.model
        ),
    )
    timed(
        "weighted VF fit (incl. refinement)",
        lambda: vector_fit(
            data.omega,
            data.samples,
            flow_result.final_weights,
            VFOptions(n_poles=12),
        ),
    )
    timed(
        "passivity enforcement (L2)",
        lambda: enforce_passivity(
            flow_result.weighted_fit.model,
            l2_gramian_cost(flow_result.weighted_fit.model),
        ),
    )

    weighting_cost = (
        timings["sensitivity samples (eq. 5)"]
        + timings["weight model MVF (eq. 17)"]
        + timings["weighted cost Gramian (eqs. 18-21)"]
    )
    baseline_cost = (
        timings["standard VF fit"] + timings["passivity enforcement (L2)"]
    )
    lines = ["Table D -- weighting overhead (paper: 'negligible')"]
    for label, seconds in timings.items():
        lines.append(f"  {label:<38s} {seconds * 1e3:10.1f} ms")
    lines += [
        f"  total weighting machinery              {weighting_cost * 1e3:10.1f} ms",
        f"  fit + enforcement baseline             {baseline_cost * 1e3:10.1f} ms",
        f"  overhead ratio: {weighting_cost / baseline_cost:.2f} "
        "(claim holds if < 1)",
    ]
    emit(artifacts_dir / "tabD_overhead.txt", "\n".join(lines))

    assert weighting_cost < baseline_cost

    benchmark.pedantic(
        lambda: sensitivity_weighted_cost(
            flow_result.weighted_fit.model, weight.model
        ),
        rounds=3,
        iterations=1,
    )
