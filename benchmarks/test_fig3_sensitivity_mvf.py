"""Paper Fig. 3: first-order sensitivity samples vs the rational
sensitivity macromodel obtained with Magnitude Vector Fitting (n_w = 8).

Shape claims: the sensitivity (relative form) spans orders of magnitude
from the low band to the high band, and the order-8 MVF model tracks the
samples within a few dB.  The timed kernel is sensitivity computation plus
the magnitude fit.
"""

import numpy as np

from benchmarks.conftest import emit, save_series
from repro.sensitivity.firstorder import sensitivity_analytic
from repro.sensitivity.weightmodel import build_weight_model


def test_fig3_sensitivity_mvf(benchmark, testcase, flow_result, artifacts_dir):
    data = testcase.data
    f = data.frequencies
    weight = flow_result.weight_model
    samples_db = 20 * np.log10(np.maximum(weight.xi, 1e-300))
    model_mag = weight.magnitude_response(data.omega)
    model_db = 20 * np.log10(np.maximum(model_mag, 1e-300))
    save_series(
        artifacts_dir / "fig3_sensitivity_mvf.csv",
        ["frequency_hz", "sensitivity_data_db", "sensitivity_model_db"],
        [f, samples_db, model_db],
    )

    positive = f > 0
    span_db = samples_db[positive].max() - samples_db[positive].min()
    lines = [
        "Fig. 3 -- sensitivity samples vs rational weight model (n_w = 8)",
        f"  sensitivity dynamic range : {span_db:.1f} dB (paper: ~80 dB)",
        f"  MVF fit RMS error         : {weight.fit.rms_db_error:.2f} dB",
        f"  MVF fit max error         : {weight.fit.max_db_error:.2f} dB",
        f"  weight model order        : {weight.model.n_states}",
        "  paper shape claim: good match between sensitivity data and model",
        f"  claim holds      : {weight.fit.rms_db_error < 5.0}",
    ]
    emit(artifacts_dir / "fig3_summary.txt", "\n".join(lines))

    assert span_db > 30.0
    assert weight.fit.rms_db_error < 5.0

    def kernel():
        xi = sensitivity_analytic(
            data.samples, data.omega, testcase.termination, testcase.observe_port
        )
        return build_weight_model(data.omega, xi / xi.max(), order=8)

    benchmark.pedantic(kernel, rounds=1, iterations=1)
