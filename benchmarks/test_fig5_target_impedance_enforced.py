"""Paper Fig. 5 -- the headline result: target impedance after passivity
enforcement for the four model variants (nominal, non-passive weighted
fit, passive standard-cost, passive weighted-cost).

Shape claims: standard (unweighted L2) enforcement deviates significantly
at low frequency, making the model "useless for practical design"; the
sensitivity-weighted enforcement stays accurate at all frequencies.  The
timed kernel is one weighted enforcement run.
"""

import numpy as np

from benchmarks.conftest import emit, save_series
from repro.passivity.enforce import enforce_passivity
from repro.sensitivity.weighted_norm import sensitivity_weighted_cost
from repro.sensitivity.zpdn import target_impedance_of_model


def test_fig5_target_impedance_enforced(
    benchmark, testcase, flow_result, artifacts_dir
):
    data = testcase.data
    omega, f = data.omega, data.frequencies
    zref = flow_result.reference_impedance

    def z_of(model):
        return target_impedance_of_model(
            model, omega, testcase.termination, testcase.observe_port
        )

    z_nonpassive = z_of(flow_result.weighted_fit.model)
    z_standard = z_of(flow_result.standard_enforced.model)
    z_weighted = z_of(flow_result.weighted_enforced.model)
    save_series(
        artifacts_dir / "fig5_target_impedance_enforced.csv",
        [
            "frequency_hz",
            "z_nominal_ohm",
            "z_nonpassive_ohm",
            "z_passive_standard_ohm",
            "z_passive_weighted_ohm",
        ],
        [f, np.abs(zref), np.abs(z_nonpassive), np.abs(z_standard), np.abs(z_weighted)],
    )

    low = f < 1e6
    rel = {
        "non-passive (weighted fit)": np.abs(z_nonpassive - zref) / np.abs(zref),
        "passive, standard cost": np.abs(z_standard - zref) / np.abs(zref),
        "passive, weighted cost": np.abs(z_weighted - zref) / np.abs(zref),
    }
    lines = ["Fig. 5 -- target impedance after passivity enforcement",
             f"  {'model':<28s} {'max relZ':>10s} {'low-f relZ':>11s}"]
    for label, r in rel.items():
        lines.append(f"  {label:<28s} {r.max():10.4f} {r[low].max():11.4f}")
    factor = rel["passive, standard cost"][low].max() / rel[
        "passive, weighted cost"
    ][low].max()
    lines += [
        f"  low-band improvement factor (standard/weighted): {factor:.1f}x",
        "  paper shape claim: standard enforcement destroys the low-f",
        "  impedance; weighted enforcement preserves accuracy everywhere",
        f"  claim holds      : {factor > 5.0}",
    ]
    emit(artifacts_dir / "fig5_summary.txt", "\n".join(lines))

    assert factor > 5.0
    assert rel["passive, weighted cost"][low].max() < 0.25

    def weighted_enforcement_kernel():
        cost = sensitivity_weighted_cost(
            flow_result.weighted_fit.model, flow_result.weight_model.model
        )
        return enforce_passivity(flow_result.weighted_fit.model, cost)

    benchmark.pedantic(weighted_enforcement_kernel, rounds=1, iterations=1)
