"""Derived Table K: telemetry overhead on the standard pipeline.

The telemetry hooks live inside the hot solver loops (vector-fitting pole
relocation, passivity-enforcement iterations, checker grids), so the
subsystem is only acceptable if it is near-free when disabled and cheap
when recording.  Two measurements:

* **disabled path** -- the per-call cost of the module-level
  ``emit``/``incr``/``span`` free functions with no active session (one
  attribute load + ``None`` check), projected onto the number of hook
  executions an instrumented medium-case pipeline run actually performs;
* **recording path** -- wall time of the same pipeline run inside a
  ``telemetry_session`` versus outside one, interleaved rounds to cancel
  machine drift.

Budgets (ISSUE 6 acceptance): disabled < 2 % of the run, recording < 5 %.
"""

import os
import tempfile
import time

from benchmarks.conftest import emit
from repro.api import Pipeline, ReproConfig, standard_stages
from repro.obs import telemetry as obs
from repro.obs import telemetry_session
from repro.pdn.testcase import make_paper_testcase

DISABLED_BUDGET = 0.02
RECORDING_BUDGET = 0.05
ROUNDS = 3


def _seed():
    case = make_paper_testcase(size="medium", n_frequencies=161)
    return {
        "network": case.data,
        "termination": case.termination,
        "observe_port": case.observe_port,
    }


def _timed_run(seed, telemetry_dir=None):
    pipeline = Pipeline(standard_stages())
    config = ReproConfig()
    if telemetry_dir is None:
        start = time.perf_counter()
        pipeline.run(config, dict(seed))
        return time.perf_counter() - start, None
    with telemetry_session(telemetry_dir, label="tabK") as telemetry:
        start = time.perf_counter()
        pipeline.run(config, dict(seed))
        seconds = time.perf_counter() - start
        snapshot = telemetry.snapshot()
    return seconds, snapshot


def _disabled_call_cost(calls: int = 200_000) -> float:
    """Seconds per disabled emit+incr+span triple (no active session)."""
    assert obs.active() is None
    start = time.perf_counter()
    for _ in range(calls):
        obs.incr("bench.counter")
        obs.emit("bench.event", value=1.0)
        with obs.span("bench.span"):
            pass
    return (time.perf_counter() - start) / calls


def _hook_executions(snapshot) -> int:
    """How many telemetry hooks fired during the recorded run.

    ``n_events`` covers every ``emit`` (span finishes included); counter
    values approximate the ``incr`` calls (the hot-loop counters all
    increment by 1); each recorded span adds one ``span`` entry call.
    """
    n_incr = sum(snapshot["counters"].values())
    n_spans = sum(t["count"] for t in snapshot["spans"].values())
    return int(snapshot["n_events"] + n_incr + n_spans)


def test_tabK_telemetry_overhead(artifacts_dir):
    seed = _seed()
    _timed_run(seed)  # warmup: JIT-free but primes caches/allocator

    off_times, on_times = [], []
    snapshot = None
    with tempfile.TemporaryDirectory() as tmp:
        for round_index in range(ROUNDS):
            off, _ = _timed_run(seed)
            on, snapshot = _timed_run(seed, f"{tmp}/round{round_index}")
            off_times.append(off)
            on_times.append(on)

    t_off = min(off_times)
    t_on = min(on_times)
    recording_overhead = (t_on - t_off) / t_off

    per_triple = _disabled_call_cost()
    hooks = _hook_executions(snapshot)
    # Each "triple" above times incr+emit+span together; a single hook is
    # one of the three, so per-hook cost is at most the triple cost / 1.
    projected_disabled = hooks * per_triple / 3.0
    disabled_overhead = projected_disabled / t_off

    lines = [
        "Table K -- telemetry overhead (medium case, standard 5-stage "
        "pipeline)",
        f"  pipeline run, telemetry off          {t_off * 1e3:10.1f} ms"
        f"  (min of {ROUNDS})",
        f"  pipeline run, telemetry on           {t_on * 1e3:10.1f} ms"
        f"  (min of {ROUNDS})",
        f"  recording overhead                   {recording_overhead:10.2%}"
        f"  (budget {RECORDING_BUDGET:.0%})",
        f"  disabled hook cost                   {per_triple / 3 * 1e9:10.1f}"
        " ns/hook",
        f"  hook executions in the run           {hooks:10d}",
        f"  projected disabled overhead          {disabled_overhead:10.4%}"
        f"  (budget {DISABLED_BUDGET:.0%})",
        f"  events recorded                      {snapshot['n_events']:10d}",
    ]
    emit(artifacts_dir / "tabK_telemetry_overhead.txt", "\n".join(lines))

    assert snapshot["n_events"] > 0
    assert snapshot["counters"].get("vf.iterations", 0) > 0
    assert snapshot["counters"].get("enforce.iterations", 0) > 0
    # Wall-clock budgets are skippable on shared/loaded runners; the
    # perf-smoke threshold below still guards gross regressions there.
    if not os.environ.get("REPRO_SKIP_PERF_ASSERTS"):
        assert disabled_overhead < DISABLED_BUDGET
        assert recording_overhead < RECORDING_BUDGET


def test_tabK_perf_smoke(artifacts_dir):
    """CI perf smoke: disabled telemetry hooks must stay near-free.

    5 us/hook is ~100x the measured cost of the disabled fast path (one
    module attribute load + None check); it only trips if someone puts
    real work ahead of the ``_ACTIVE is None`` guard.
    """
    per_hook = _disabled_call_cost(50_000) / 3.0
    assert per_hook < 5e-6
    emit(
        artifacts_dir / "tabK_perf_smoke.txt",
        f"perf smoke: disabled telemetry hook {per_hook * 1e9:.0f} ns "
        "(threshold 5000 ns)",
    )
