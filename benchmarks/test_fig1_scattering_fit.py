"""Paper Fig. 1: raw scattering data vs standard 12-pole macromodel.

Regenerates the S(1,1) and S(1,2) magnitude/phase series and checks the
paper's claim that the standard model "matches very closely the raw data"
in the native scattering representation.  The timed kernel is the standard
vector fit itself.
"""

import numpy as np

from benchmarks.conftest import emit, save_series
from repro.vectfit.core import vector_fit
from repro.vectfit.options import VFOptions


def test_fig1_scattering_fit(benchmark, testcase, flow_result, artifacts_dir):
    data = testcase.data
    model = flow_result.standard_fit.model
    response = model.frequency_response(data.omega)

    header = ["frequency_hz"]
    columns = [data.frequencies]
    for (i, j) in [(0, 0), (0, 1)]:
        for source, tag in [(data.samples, "data"), (response, "model")]:
            trace = source[:, i, j]
            header += [f"S{i+1}{j+1}_{tag}_db", f"S{i+1}{j+1}_{tag}_deg"]
            columns += [
                20 * np.log10(np.maximum(np.abs(trace), 1e-300)),
                np.rad2deg(np.angle(trace)),
            ]
    save_series(artifacts_dir / "fig1_scattering_fit.csv", header, columns)

    err = np.abs(response - data.samples)
    lines = [
        "Fig. 1 -- scattering fit, standard VF (n = 12 common poles)",
        f"  RMS error          : {flow_result.standard_fit.rms_error:.3e}",
        f"  worst entry error  : {err.max():.3e}",
        f"  VF iterations      : {flow_result.standard_fit.iterations}",
        "  paper shape claim  : model overlaps data in the scattering view",
        f"  claim holds        : {flow_result.standard_fit.rms_error < 5e-3}",
    ]
    emit(artifacts_dir / "fig1_summary.txt", "\n".join(lines))

    assert flow_result.standard_fit.rms_error < 5e-3

    benchmark.pedantic(
        lambda: vector_fit(data.omega, data.samples, options=VFOptions(n_poles=12)),
        rounds=1,
        iterations=1,
    )
