"""Derived Table C: Monte-Carlo validation of the first-order sensitivity
(paper eq. 5).

The paper defines Xi_k through a stochastic perturbation experiment; our
library computes it in closed form.  This bench tabulates the MC estimate
against the analytic value across the band and reports the ensemble
constant (sqrt(pi)/2 ~ 0.886 for circular complex Gaussian perturbations).
The timed kernel is the analytic computation over the full grid.
"""

import numpy as np

from benchmarks.conftest import emit, save_series
from repro.sensitivity.firstorder import (
    sensitivity_analytic,
    sensitivity_monte_carlo,
)


def test_tabC_sensitivity_estimator(benchmark, testcase, flow_result, artifacts_dir):
    data = testcase.data
    pick = np.arange(0, data.n_frequencies, 20)
    s = data.samples[pick]
    omega = data.omega[pick]
    xi = flow_result.xi[pick]
    mc = sensitivity_monte_carlo(
        s,
        omega,
        testcase.termination,
        testcase.observe_port,
        noise_std=1e-9,
        n_draws=256,
        rng=np.random.default_rng(2014),
    )
    ratio = mc / xi
    save_series(
        artifacts_dir / "tabC_sensitivity_estimator.csv",
        ["frequency_hz", "xi_analytic", "xi_monte_carlo", "ratio"],
        [data.frequencies[pick], xi, mc, ratio],
    )

    expected = np.sqrt(np.pi) / 2.0
    lines = [
        "Table C -- Monte-Carlo vs analytic first-order sensitivity (eq. 5)",
        f"  {'f [Hz]':>12s} {'Xi analytic':>12s} {'Xi MC':>12s} {'ratio':>7s}",
    ]
    for k in range(pick.size):
        lines.append(
            f"  {data.frequencies[pick][k]:12.4g} {xi[k]:12.4e} "
            f"{mc[k]:12.4e} {ratio[k]:7.3f}"
        )
    lines += [
        f"  mean ratio {ratio.mean():.3f} (circular-Gaussian constant "
        f"sqrt(pi)/2 = {expected:.3f})",
        f"  ratio spread (std/mean): {ratio.std() / ratio.mean():.3f}",
    ]
    emit(artifacts_dir / "tabC_sensitivity_estimator.txt", "\n".join(lines))

    assert abs(ratio.mean() - expected) < 0.1
    assert ratio.std() / ratio.mean() < 0.2

    benchmark.pedantic(
        lambda: sensitivity_analytic(
            data.samples, data.omega, testcase.termination, testcase.observe_port
        ),
        rounds=3,
        iterations=1,
    )
