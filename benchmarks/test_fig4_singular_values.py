"""Paper Fig. 4: singular values of the PDN model before and after
passivity enforcement.

Shape claims: before enforcement some singular values exceed 1 in finite
bands; after enforcement all singular values are <= 1 at all frequencies
(certified by the Hamiltonian test, spot-checked by a dense sweep).
The timed kernel is one full passivity check (Hamiltonian + band scan).
"""

import numpy as np

from benchmarks.conftest import emit, save_series
from repro.passivity.check import check_passivity


def sigma_sweep(model, omega):
    response = model.frequency_response(omega)
    return np.linalg.svd(response, compute_uv=False)


def test_fig4_singular_values(benchmark, testcase, flow_result, artifacts_dir):
    # Dense sweep grid (log, denser than the data grid to resolve bands).
    omega = 2 * np.pi * np.geomspace(1e3, 3e9, 801)
    before = sigma_sweep(flow_result.weighted_fit.model, omega)
    after = sigma_sweep(flow_result.weighted_enforced.model, omega)
    save_series(
        artifacts_dir / "fig4_singular_values.csv",
        ["frequency_hz", "sigma_max_before", "sigma_max_after"],
        [omega / (2 * np.pi), before[:, 0], after[:, 0]],
    )

    report_before = flow_result.pre_enforcement_report
    report_after = check_passivity(flow_result.weighted_enforced.model)
    lines = [
        "Fig. 4 -- singular values before/after passivity enforcement",
        f"  before: worst sigma {report_before.worst_sigma:.6f} in "
        f"{len(report_before.bands)} violation band(s)",
        f"  after : worst sigma {report_after.worst_sigma:.6f}, "
        f"passive={report_after.is_passive}",
        f"  dense-sweep max before/after: {before.max():.6f} / {after.max():.6f}",
        "  paper shape claim: all violations removed (sigma <= 1 everywhere)",
        f"  claim holds      : {report_after.is_passive and after.max() <= 1.0 + 1e-9}",
    ]
    emit(artifacts_dir / "fig4_summary.txt", "\n".join(lines))

    assert before.max() > 1.0
    assert after.max() <= 1.0 + 1e-9
    assert report_after.is_passive

    benchmark.pedantic(
        lambda: check_passivity(flow_result.weighted_fit.model),
        rounds=1,
        iterations=1,
    )
