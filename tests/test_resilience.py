"""Resilient execution layer: fault injection proves every ladder.

Each solver fallback ladder (VF kernel, QP, checker, enforcement
best-iterate) and every campaign retry channel (in-worker failure,
worker crash, wall-clock timeout) is driven end-to-end by the
deterministic fault-injection harness and must recover to the same
answer the clean path produces.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.registry import CampaignRegistry
from repro.campaign.report import failure_summary
from repro.obs.telemetry import Telemetry, session
from repro.obs.trace import render_trace
from repro.passivity.check import check_passivity
from repro.passivity.cost import l2_gramian_cost
from repro.passivity.enforce import EnforcementOptions, enforce_passivity
from repro.resilience import (
    FaultSpec,
    InjectedFault,
    ReproError,
    RetryPolicy,
    StageOutputError,
    ensure_finite_outputs,
    error_code_of,
    fault_plan,
    jitter_fraction,
    nonfinite_in,
    stage_of,
)
from repro.resilience.errors import (
    FitDivergedError,
    IngestError,
    QPInfeasibleError,
    WorkerCrashError,
)
from repro.resilience.faultinject import (
    ENV_PLAN,
    check as fi_check,
    corrupt as fi_corrupt,
    set_attempt,
    set_scenario,
)
from repro.statespace.poleresidue import PoleResidueModel
from repro.vectfit.core import vector_fit
from repro.vectfit.options import VFOptions
from tests.conftest import make_random_stable_model
from tests.test_campaign import fast_scenario


@pytest.fixture(autouse=True)
def clean_fault_state():
    """Faults never leak between tests (or in from the environment)."""
    set_attempt(0)
    set_scenario(None)
    yield
    set_attempt(0)
    set_scenario(None)
    assert ENV_PLAN not in os.environ


def violating_model(gain=1.3):
    poles = np.array([-0.5 + 5.0j, -0.5 - 5.0j, -2.0])
    residues = np.array(
        [[[gain * 0.5]], [[gain * 0.5]], [[0.2]]], dtype=complex
    )
    return PoleResidueModel(poles, residues, np.array([[0.1]]))


# ----------------------------------------------------------------------
# Harness semantics
# ----------------------------------------------------------------------
class TestFaultInject:
    def test_env_round_trip(self):
        spec = FaultSpec(site="x", action="scale", index=2, count=3,
                         factor=4.0)
        with fault_plan(spec):
            raw = os.environ[ENV_PLAN]
            decoded = [
                FaultSpec.from_dict(d) for d in json.loads(raw)
            ]
            assert decoded == [spec]
        assert ENV_PLAN not in os.environ

    def test_index_counting_and_raise(self):
        with fault_plan(FaultSpec(site="s", action="raise", index=1)):
            assert fi_check("s") is None  # call 0
            with pytest.raises(InjectedFault, match="call 1"):
                fi_check("s")  # call 1 fires
            assert fi_check("s") is None  # call 2 past the window

    def test_corrupt_nan_and_scale(self):
        value = np.arange(4.0)
        with fault_plan(FaultSpec(site="a", action="nan")):
            poisoned = fi_corrupt("a", value)
        assert np.isnan(poisoned).all()
        with fault_plan(FaultSpec(site="a", action="scale", factor=3.0)):
            scaled = fi_corrupt("a", value)
        np.testing.assert_allclose(scaled, 3.0 * value)
        # Disarmed: pass-through.
        assert fi_corrupt("a", value) is value

    def test_attempt_and_scenario_pinning(self):
        with fault_plan(
            FaultSpec(site="p", action="raise", attempt=0, count=10)
        ):
            set_attempt(1)
            assert fi_check("p") is None
            set_attempt(0)
            with pytest.raises(InjectedFault):
                fi_check("p")
        with fault_plan(
            FaultSpec(site="q", action="raise", scenario="victim", count=10)
        ):
            set_scenario("other-run")
            assert fi_check("q") is None
            set_scenario("victim-af319")
            with pytest.raises(InjectedFault):
                fi_check("q")

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="action"):
            FaultSpec(site="s", action="bogus")
        with pytest.raises(ValueError, match="count"):
            FaultSpec(site="s", count=0)


# ----------------------------------------------------------------------
# Error taxonomy / retry policy / guards
# ----------------------------------------------------------------------
class TestErrorsAndPolicy:
    def test_error_codes_and_stage(self):
        exc = QPInfeasibleError("no", stage="enforcement", scenario="r1")
        assert error_code_of(exc) == "qp_infeasible"
        assert stage_of(exc) == "enforcement"
        assert exc.to_dict()["scenario"] == "r1"
        assert error_code_of(MemoryError()) == "out_of_memory"
        assert error_code_of(ValueError("x")) == "value_error"
        assert issubclass(WorkerCrashError, ReproError)
        assert issubclass(IngestError, ReproError)
        tagged = RuntimeError("deep")
        tagged.repro_stage = "weighting"
        assert stage_of(tagged) == "weighting"

    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(max_retries=3, backoff_base_s=0.1,
                             backoff_factor=2.0, backoff_max_s=0.5)
        a = policy.backoff_s("run-1", 1)
        assert a == policy.backoff_s("run-1", 1)  # pure function
        assert policy.backoff_s("run-2", 1) != a  # jitter keyed by run id
        assert 0.1 <= a <= 0.1 * (1 + policy.jitter)
        assert policy.backoff_s("run-1", 9) == 0.5  # capped
        assert 0.0 <= jitter_fraction("run-1", 1) < 1.0
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_guards(self):
        clean = {"a": np.ones(3), "b": 7}
        ensure_finite_outputs("stage", clean)  # no raise
        assert nonfinite_in("a", np.array([1.0, np.inf])) is not None
        assert nonfinite_in("i", np.array([1, 2])) is None  # ints are safe
        model = violating_model()
        assert nonfinite_in("m", model) is None
        bad = PoleResidueModel(
            model.poles,
            np.full_like(model.residues, np.nan),
            model.const,
        )
        with pytest.raises(StageOutputError, match="residues"):
            ensure_finite_outputs("fit", {"model": bad})


# ----------------------------------------------------------------------
# Solver fallback ladders: equivalence with the clean/reference paths
# ----------------------------------------------------------------------
class TestVFKernelLadder:
    def _data(self):
        rng = np.random.default_rng(7)
        model = make_random_stable_model(rng, n_ports=2)
        omega = np.linspace(0.1, 30.0, 60)
        return omega, model.frequency_response(omega)

    def assert_fits_match(self, got, want):
        np.testing.assert_allclose(
            np.sort_complex(got.model.poles),
            np.sort_complex(want.model.poles),
            rtol=1e-8, atol=1e-12,
        )
        np.testing.assert_allclose(
            got.model.residues, want.model.residues, rtol=1e-6, atol=1e-8
        )

    def test_relocation_falls_back_to_reference(self):
        omega, samples = self._data()
        options = VFOptions(n_poles=6, kernel="batched")
        reference = vector_fit(
            omega, samples,
            options=dataclasses.replace(options, kernel="reference"),
        )
        tel = Telemetry(label="test")
        with session(tel), fault_plan(
            FaultSpec(site="vf.relocate_batched", action="nan", count=1000)
        ):
            recovered = vector_fit(omega, samples, options=options)
        assert tel.counters["fallback.vf_kernel"] >= 1
        self.assert_fits_match(recovered, reference)

    def test_residues_fall_back_to_reference(self):
        omega, samples = self._data()
        options = VFOptions(n_poles=6, kernel="batched")
        reference = vector_fit(
            omega, samples,
            options=dataclasses.replace(options, kernel="reference"),
        )
        tel = Telemetry(label="test")
        with session(tel), fault_plan(
            FaultSpec(site="vf.residues_batched", action="nan", count=1000)
        ):
            recovered = vector_fit(omega, samples, options=options)
        assert tel.counters["fallback.vf_kernel"] >= 1
        self.assert_fits_match(recovered, reference)

    def test_clean_batched_path_untouched(self):
        omega, samples = self._data()
        options = VFOptions(n_poles=6, kernel="batched")
        reference = vector_fit(
            omega, samples,
            options=dataclasses.replace(options, kernel="reference"),
        )
        tel = Telemetry(label="test")
        with session(tel):
            clean = vector_fit(omega, samples, options=options)
        assert "fallback.vf_kernel" not in tel.counters
        self.assert_fits_match(clean, reference)


class TestQPAndCheckerLadders:
    def test_qp_stall_falls_through_to_dense(self):
        model = violating_model()
        reference = enforce_passivity(model, l2_gramian_cost(model))
        assert reference.converged
        tel = Telemetry(label="test")
        with session(tel), fault_plan(
            FaultSpec(site="qp.structured", action="stall", count=10_000)
        ):
            faulted = enforce_passivity(model, l2_gramian_cost(model))
        assert faulted.converged
        assert check_passivity(faulted.model).is_passive
        assert tel.counters["fallback.qp_dense"] >= 1
        assert tel.counters["fallback.qp_regularized"] >= 2
        np.testing.assert_allclose(
            faulted.model.residues, reference.model.residues,
            rtol=1e-4, atol=1e-8,
        )

    def test_checker_sampling_escalates_to_exact(self):
        model = violating_model()
        options = EnforcementOptions(checker_strategy="fast")
        tel = Telemetry(label="test")
        with session(tel), fault_plan(
            FaultSpec(site="checker.sampling", action="nan", count=10_000)
        ):
            result = enforce_passivity(
                model, l2_gramian_cost(model), options
            )
        assert result.converged
        assert check_passivity(result.model).is_passive
        assert tel.counters["fallback.checker_exact"] >= 1


class TestBestIterateRecovery:
    def test_divergent_run_returns_best_iterate(self):
        model = violating_model()
        options = EnforcementOptions(
            max_iterations=8,
            checker_strategy="exact",
            divergence_patience=2,
        )
        before = check_passivity(model)
        tel = Telemetry(label="test")
        with session(tel), fault_plan(
            FaultSpec(site="enforce.step", action="scale", factor=40.0,
                      count=10_000)
        ):
            result = enforce_passivity(model, l2_gramian_cost(model), options)
        assert not result.converged
        assert result.recovery is not None
        assert result.recovery["mode"] == "best_iterate"
        assert result.recovery["reason"] == "divergence"
        assert result.iterations < options.max_iterations  # stopped early
        # The returned report is the best certified one, and strictly
        # better than the diverged tail.
        assert result.report_after.worst_sigma == pytest.approx(
            result.recovery["best_worst_sigma"]
        )
        assert (result.recovery["best_worst_sigma"]
                < result.recovery["final_worst_sigma"])
        # Best iterate here is the unperturbed model (every faulted step
        # overshoots), so the roll-back restores it exactly.
        assert result.recovery["best_iteration"] == 0
        np.testing.assert_allclose(result.model.residues, model.residues)
        np.testing.assert_allclose(result.total_delta_c, 0.0)
        assert result.report_after.worst_sigma == pytest.approx(
            before.worst_sigma
        )
        assert tel.counters["fallback.best_iterate"] == 1

    def test_clean_run_has_no_recovery(self):
        result = enforce_passivity(
            violating_model(), l2_gramian_cost(violating_model())
        )
        assert result.converged
        assert result.recovery is None


# ----------------------------------------------------------------------
# Pipeline stage boundaries
# ----------------------------------------------------------------------
class TestStageBoundaries:
    def test_nan_output_raises_typed_stage_error(self):
        from repro.api.artifacts import ArtifactSpec
        from repro.api.pipeline import Pipeline
        from repro.api.stages import PipelineStage

        class PoisonStage(PipelineStage):
            name = "poison"
            outputs = (ArtifactSpec("poisoned", np.ndarray),)
            cacheable = False

            def run(self, config, inputs):
                return {"poisoned": np.full(3, np.nan)}

        with pytest.raises(StageOutputError, match="poison") as excinfo:
            Pipeline([PoisonStage()]).run()
        assert excinfo.value.error_code == "stage_output"
        assert stage_of(excinfo.value) == "poison"

    def test_untyped_exception_tagged_with_stage(self):
        from repro.api.artifacts import ArtifactSpec
        from repro.api.pipeline import Pipeline
        from repro.api.stages import PipelineStage

        class BoomStage(PipelineStage):
            name = "boom"
            outputs = (ArtifactSpec("x", int),)
            cacheable = False

            def run(self, config, inputs):
                raise ValueError("deep solver failure")

        with pytest.raises(ValueError) as excinfo:
            Pipeline([BoomStage()]).run()
        assert stage_of(excinfo.value) == "boom"
        assert error_code_of(excinfo.value) == "value_error"


# ----------------------------------------------------------------------
# Campaign retries, timeouts, crash recovery
# ----------------------------------------------------------------------
class TestCampaignRetries:
    def test_serial_retry_recovers_on_second_attempt(self):
        scenario = fast_scenario("retry")
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.01)
        tel = Telemetry(label="test")
        with fault_plan(
            FaultSpec(site="scenario.run", action="raise", attempt=0)
        ), session(tel):
            result = run_campaign([scenario], jobs=1, retry=policy)
        record = result.records[0]
        assert record["status"] == "ok"
        assert record["attempts"] == 2
        assert len(record["retries"]) == 1
        assert record["retries"][0]["error_code"] == "injected_fault"
        # The recorded backoff is the policy's deterministic schedule,
        # a pure function of (run_id, attempt) -- no wall clock, no RNG.
        assert record["retries"][0]["backoff_s"] == pytest.approx(
            policy.backoff_s(scenario.run_id, 1)
        )
        assert tel.counters["retry.attempts"] == 1
        assert tel.counters["retry.recovered"] == 1

    def test_retry_budget_exhausted_fails_fast(self):
        scenario = fast_scenario("budget")
        policy = RetryPolicy(max_retries=3, retry_budget=0)
        with fault_plan(
            FaultSpec(site="scenario.run", action="raise", count=100)
        ):
            result = run_campaign([scenario], jobs=1, retry=policy)
        record = result.records[0]
        assert record["status"] == "failed"
        assert record["attempts"] == 1
        assert "retries" not in record

    def test_failure_record_carries_taxonomy_and_traceback(self, tmp_path):
        scenario = fast_scenario("doomed")
        registry = CampaignRegistry(tmp_path / "reg")
        with fault_plan(
            FaultSpec(site="scenario.run", action="raise", count=100)
        ):
            result = run_campaign([scenario], registry=registry)
        record = result.records[0]
        assert record["error_code"] == "injected_fault"
        assert record["failed_stage"] == "scenario.run"
        assert "InjectedFault" in record["traceback"]
        summary = failure_summary(result.records)
        assert "[injected_fault @ scenario.run]" in summary
        # The registry manifest indexes the taxonomy fields, and
        # `repro trace <registry>` surfaces the failed runs.
        manifest = registry.load_manifest()
        entry = manifest["runs"][0]
        assert entry["error_code"] == "injected_fault"
        assert entry["failed_stage"] == "scenario.run"
        trace = render_trace(registry.root)
        assert "failed runs" in trace
        assert "injected_fault" in trace

    def test_retry_failed_mode_reruns_only_failures(self, tmp_path):
        scenarios = [
            fast_scenario("bad"),
            fast_scenario("good", decap_c_scale=1.2),
        ]
        registry = CampaignRegistry(tmp_path / "reg")
        with fault_plan(
            FaultSpec(site="scenario.run", action="raise",
                      scenario="bad", count=100)
        ):
            first = run_campaign(scenarios, registry=registry)
        assert first.n_failed == 1
        # Plan disarmed: --retry-failed re-runs only the failed scenario.
        second = run_campaign(scenarios, registry=registry,
                              retry_failed=True)
        by_name = {r["name"]: r for r in second.records}
        assert by_name["bad"]["status"] == "ok"
        assert not by_name["bad"].get("resumed")
        assert by_name["good"]["status"] == "ok"
        assert by_name["good"]["resumed"] is True

    def test_retry_failed_requires_registry(self):
        with pytest.raises(ValueError, match="registry"):
            run_campaign([fast_scenario("x")], retry_failed=True)

    def test_telemetry_exports_retry_counters(self, tmp_path):
        scenario = fast_scenario("telem")
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.0)
        telemetry_dir = tmp_path / "telemetry"
        with fault_plan(
            FaultSpec(site="scenario.run", action="raise", attempt=0)
        ):
            result = run_campaign(
                [scenario], jobs=1, retry=policy,
                telemetry_dir=str(telemetry_dir),
            )
        assert result.n_failed == 0
        payload = json.loads(
            (telemetry_dir / "run_metrics.json").read_text(encoding="utf-8")
        )
        assert payload["counters"]["retry.attempts"] == 1
        assert payload["counters"]["retry.recovered"] == 1

    def test_telemetry_exports_error_counters_and_failures(self, tmp_path):
        scenario = fast_scenario("fatal")
        telemetry_dir = tmp_path / "telemetry"
        with fault_plan(
            FaultSpec(site="scenario.run", action="raise", count=100)
        ):
            result = run_campaign(
                [scenario], jobs=1, telemetry_dir=str(telemetry_dir)
            )
        assert result.n_failed == 1
        payload = json.loads(
            (telemetry_dir / "run_metrics.json").read_text(encoding="utf-8")
        )
        # The worker-session snapshot's error counter is merged into the
        # campaign-level counters, and the failure lands in the payload.
        assert payload["counters"]["campaign.errors.injected_fault"] == 1
        assert payload["failures"][0]["error_code"] == "injected_fault"
        assert payload["failures"][0]["failed_stage"] == "scenario.run"


class TestCampaignPool:
    def test_worker_crash_detected_and_requeued(self):
        scenarios = [
            fast_scenario("crash"),
            fast_scenario("bystander", decap_c_scale=1.1),
        ]
        tel = Telemetry(label="test")
        with fault_plan(
            FaultSpec(site="scenario.run", action="exit",
                      scenario="crash", attempt=0)
        ), session(tel):
            result = run_campaign(
                scenarios, jobs=2, retry=RetryPolicy(backoff_base_s=0.0)
            )
        assert result.n_failed == 0
        victim = [r for r in result.records if r["name"] == "crash"][0]
        assert victim["attempts"] == 2
        assert victim["retries"][0]["error_code"] == "worker_crash"
        assert tel.counters["campaign.worker_crashes"] >= 1
        assert tel.counters["retry.requeued_after_crash"] >= 1

    def test_timeout_kills_and_requeues_exactly_once(self):
        scenarios = [
            fast_scenario("hang"),
            fast_scenario("prompt", decap_c_scale=1.1),
        ]
        policy = RetryPolicy(
            max_retries=1, backoff_base_s=0.0, timeout_s=3.0
        )
        tel = Telemetry(label="test")
        with fault_plan(
            FaultSpec(site="scenario.run", action="hang", seconds=60.0,
                      scenario="hang", attempt=0)
        ), session(tel):
            result = run_campaign(scenarios, jobs=2, retry=policy)
        assert result.n_failed == 0
        victim = [r for r in result.records if r["name"] == "hang"][0]
        assert victim["attempts"] == 2
        assert len(victim["retries"]) == 1
        assert victim["retries"][0]["error_code"] == "stage_timeout"
        assert tel.counters["retry.timeouts"] >= 1
        assert tel.counters["retry.requeued_after_timeout"] == 1


# ----------------------------------------------------------------------
# VF divergence surfaces as a typed error when both kernels fail
# ----------------------------------------------------------------------
class TestTypedDivergence:
    def test_fit_diverged_error_code(self):
        exc = FitDivergedError("blew up", stage="standard_fit")
        assert error_code_of(exc) == "fit_diverged"
        assert stage_of(exc) == "standard_fit"
