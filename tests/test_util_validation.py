"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    ShapeError,
    check_finite,
    check_frequency_grid,
    check_square_stack,
)


class TestCheckFinite:
    def test_passes_finite(self):
        a = check_finite(np.array([1.0, 2.0]), "a")
        assert a.shape == (2,)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite(np.array([1.0, np.nan]), "a")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite(np.array([np.inf]), "a")


class TestCheckFrequencyGrid:
    def test_valid_grid(self):
        f = check_frequency_grid([0.0, 1.0, 2.0])
        assert f.dtype == float

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            check_frequency_grid(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            check_frequency_grid(np.zeros(0))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_frequency_grid([-1.0, 1.0])

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            check_frequency_grid([0.0, 1.0, 1.0])


class TestCheckSquareStack:
    def test_valid(self):
        s = check_square_stack(np.zeros((5, 3, 3)), "s")
        assert s.dtype == complex

    def test_rejects_2d(self):
        with pytest.raises(ShapeError, match="K, P, P"):
            check_square_stack(np.zeros((3, 3)), "s")

    def test_rejects_non_square(self):
        with pytest.raises(ShapeError, match="square"):
            check_square_stack(np.zeros((5, 2, 3)), "s")
