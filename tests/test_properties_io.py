"""Property-based round-trip tests for the persistence layers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sparams.network import NetworkData
from repro.sparams.touchstone import (
    read_touchstone_with_info,
    write_touchstone,
)
from repro.statespace.serialization import load_model, save_model
from tests.conftest import make_random_stable_model


@st.composite
def network_data(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    p = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    named = draw(st.booleans())
    rng = np.random.default_rng(seed)
    f = np.sort(rng.uniform(1e3, 1e9, size=k))
    while np.any(np.diff(f) <= 0):  # enforce strict monotonicity
        f = np.sort(rng.uniform(1e3, 1e9, size=k))
    s = 0.5 * (rng.normal(size=(k, p, p)) + 1j * rng.normal(size=(k, p, p)))
    names = tuple(f"port {i + 1}" for i in range(p)) if named else ()
    return NetworkData(frequencies=f, samples=s, port_names=names)


@given(
    network_data(),
    st.sampled_from(["ri", "ma", "db"]),
    st.sampled_from(["hz", "khz", "mhz", "ghz"]),
)
@settings(max_examples=60, deadline=None)
def test_touchstone_roundtrip_property(tmp_path_factory, data, fmt, unit):
    """Write/read round-trip over formats x units x P in 1..4.

    Covers the 2-port column-major quirk (P = 2 with asymmetric random
    samples), port-name comments, and the source-convention metadata.
    """
    path = tmp_path_factory.mktemp("ts") / f"x.s{data.n_ports}p"
    write_touchstone(data, path, fmt=fmt, unit=unit)
    back, info = read_touchstone_with_info(path)
    assert back.n_ports == data.n_ports
    assert np.allclose(back.frequencies, data.frequencies, rtol=1e-9)
    assert np.allclose(back.samples, data.samples, atol=1e-8)
    assert back.port_names == data.port_names
    assert (info.fmt, info.unit) == (fmt, unit)
    assert info.ports_source == "suffix"
    assert info.n_duplicates_dropped == 0


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_model_serialization_roundtrip_property(tmp_path_factory, seed):
    rng = np.random.default_rng(seed)
    model = make_random_stable_model(
        rng,
        n_real=int(rng.integers(0, 3)),
        n_pairs=int(rng.integers(0, 3)) or 1,
        n_ports=int(rng.integers(1, 4)),
    )
    path = tmp_path_factory.mktemp("model") / "m.json"
    save_model(model, path)
    back = load_model(path)
    assert np.allclose(back.poles, model.poles)
    assert np.allclose(back.residues, model.residues)
    assert np.allclose(back.const, model.const)
