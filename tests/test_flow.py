"""Flow driver and metrics."""

import numpy as np
import pytest

from repro.flow.macromodel import FlowOptions, MacromodelingFlow
from repro.flow.metrics import (
    ModelAccuracyRow,
    impedance_error_report,
    max_relative_impedance_error,
    max_scattering_error,
    relative_impedance_error,
    rms_scattering_error,
)


class TestFlowOptions:
    def test_defaults(self):
        opts = FlowOptions()
        assert opts.vf.n_poles == 12
        assert opts.weight_mode == "relative"

    def test_validation(self):
        with pytest.raises(ValueError, match="weight_mode"):
            FlowOptions(weight_mode="inverse")
        with pytest.raises(ValueError, match="weight_floor"):
            FlowOptions(weight_floor=0.0)
        with pytest.raises(ValueError, match="refinement"):
            FlowOptions(refinement_rounds=-1)
        with pytest.raises(ValueError, match="order"):
            FlowOptions(weight_model_order=0)


class TestFlowStages:
    def test_standard_fit_stage(self, testcase):
        flow = MacromodelingFlow()
        result = flow.fit_standard(testcase.data)
        assert result.model.n_poles == 12
        assert result.rms_error < 5e-3

    def test_sensitivity_stage(self, testcase):
        flow = MacromodelingFlow()
        xi = flow.compute_sensitivity(
            testcase.data, testcase.termination, testcase.observe_port
        )
        assert xi.shape == (testcase.data.n_frequencies,)
        assert np.all(xi > 0)

    def test_base_weights_floored_and_normalized(self, testcase, flow_result):
        flow = MacromodelingFlow()
        w = flow.base_weights(
            testcase.data, flow_result.xi, flow_result.reference_impedance
        )
        assert np.isclose(w.max(), 1.0)
        assert w.min() >= flow.options.weight_floor

    def test_absolute_weight_mode(self, testcase, flow_result):
        flow = MacromodelingFlow(FlowOptions(weight_mode="absolute"))
        w = flow.base_weights(
            testcase.data, flow_result.xi, flow_result.reference_impedance
        )
        expected = flow_result.xi / flow_result.xi.max()
        assert np.allclose(w, np.maximum(expected, 0.01))

    def test_non_scattering_data_rejected(self, testcase):
        flow = MacromodelingFlow()
        ydata = testcase.data.with_samples(testcase.data.samples, kind="y")
        with pytest.raises(ValueError, match="scattering"):
            flow.run(ydata, testcase.termination, testcase.observe_port)


class TestFlowResult:
    def test_all_models_present(self, flow_result):
        assert flow_result.standard_fit.model.n_poles == 12
        assert flow_result.weighted_fit.model.n_poles == 12
        assert flow_result.standard_enforced.model.n_poles == 12
        assert flow_result.weighted_enforced.model.n_poles == 12

    def test_weights_recorded(self, flow_result):
        assert flow_result.base_weights.shape == flow_result.final_weights.shape
        # Both weight vectors are normalized to [floor, 1].
        for w in (flow_result.base_weights, flow_result.final_weights):
            assert np.isclose(w.max(), 1.0)
            assert w.min() >= 0.01 - 1e-12


class TestMetrics:
    def test_rms_zero_for_exact(self, flow_result, testcase):
        model = flow_result.weighted_fit.model
        omega = testcase.data.omega
        samples = model.frequency_response(omega)
        assert rms_scattering_error(model, omega, samples) == 0.0

    def test_max_ge_rms(self, flow_result, testcase):
        model = flow_result.weighted_fit.model
        omega, samples = testcase.data.omega, testcase.data.samples
        assert max_scattering_error(model, omega, samples) >= rms_scattering_error(
            model, omega, samples
        )

    def test_band_limited_error(self, flow_result, testcase):
        model = flow_result.weighted_fit.model
        omega = testcase.data.omega
        full = max_relative_impedance_error(
            model,
            omega,
            flow_result.reference_impedance,
            testcase.termination,
            testcase.observe_port,
        )
        low = max_relative_impedance_error(
            model,
            omega,
            flow_result.reference_impedance,
            testcase.termination,
            testcase.observe_port,
            band=(0.0, 2 * np.pi * 1e6),
        )
        assert low <= full

    def test_empty_band_rejected(self, flow_result, testcase):
        with pytest.raises(ValueError, match="band"):
            max_relative_impedance_error(
                flow_result.weighted_fit.model,
                testcase.data.omega,
                flow_result.reference_impedance,
                testcase.termination,
                testcase.observe_port,
                band=(1e20, 1e21),
            )

    def test_report_rendering(self):
        rows = [
            ModelAccuracyRow("standard VF", 1e-3, 8e-3, 0.59, 0.38, False),
            ModelAccuracyRow("weighted VF", 1.5e-2, 2e-2, 0.05, 0.03, False),
        ]
        text = impedance_error_report(rows)
        assert "standard VF" in text
        assert "low-f relZ" in text
        assert len(text.splitlines()) == 4

    def test_relative_error_positive(self, flow_result, testcase):
        rel = relative_impedance_error(
            flow_result.weighted_fit.model,
            testcase.data.omega,
            flow_result.reference_impedance,
            testcase.termination,
            testcase.observe_port,
        )
        assert np.all(rel >= 0)
