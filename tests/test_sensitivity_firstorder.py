"""First-order sensitivity: analytic formula vs finite differences and
Monte Carlo (paper eq. 5)."""

import numpy as np
import pytest

from repro.pdn.termination import TerminationNetwork
from repro.circuits.components import ResistiveTermination
from repro.sensitivity.firstorder import (
    sensitivity_analytic,
    sensitivity_matrix,
    sensitivity_monte_carlo,
)
from repro.sensitivity.zpdn import target_impedance


class TestAgainstFiniteDifferences:
    def test_gradient_entries(self, testcase):
        """Central finite differences must match the analytic gradient
        magnitudes entry by entry (central kills the large curvature of the
        hypersensitive low band)."""
        k_probe = 40
        s = testcase.data.samples[k_probe : k_probe + 1]
        omega = testcase.data.omega[k_probe : k_probe + 1]
        term = testcase.termination
        port = testcase.observe_port
        grad = sensitivity_matrix(s, omega, term, port)[0]
        # eps large enough that delta-z clears the double-precision floor of
        # z itself even for gradient entries ~1e-7.
        eps = 1e-7
        for a, b in [(0, 0), (2, 5), (7, 3)]:
            plus = s.copy()
            plus[0, a, b] += eps
            minus = s.copy()
            minus[0, a, b] -= eps
            z_plus = target_impedance(plus, omega, term, port)[0]
            z_minus = target_impedance(minus, omega, term, port)[0]
            fd = abs(z_plus - z_minus) / (2 * eps)
            assert np.isclose(fd, grad[a, b], rtol=1e-2)

    def test_xi_is_rss_of_matrix(self, testcase):
        s = testcase.data.samples[:5]
        omega = testcase.data.omega[:5]
        xi = sensitivity_analytic(s, omega, testcase.termination, testcase.observe_port)
        grad = sensitivity_matrix(s, omega, testcase.termination, testcase.observe_port)
        assert np.allclose(xi, np.sqrt(np.sum(grad**2, axis=(1, 2))), rtol=1e-10)


class TestMonteCarlo:
    def test_proportional_to_analytic(self, testcase):
        """E|dZ|/sigma ~ c * Xi with a single ensemble constant c = O(1)."""
        pick = np.arange(0, testcase.data.n_frequencies, 25)
        s = testcase.data.samples[pick]
        omega = testcase.data.omega[pick]
        xi = sensitivity_analytic(
            s, omega, testcase.termination, testcase.observe_port
        )
        mc = sensitivity_monte_carlo(
            s,
            omega,
            testcase.termination,
            testcase.observe_port,
            noise_std=1e-9,
            n_draws=200,
            rng=np.random.default_rng(42),
        )
        ratio = mc / xi
        # Circular complex Gaussian: E|sum| = sqrt(pi)/2 * RSS ~ 0.886.
        assert np.all(ratio > 0.6)
        assert np.all(ratio < 1.2)
        assert ratio.std() / ratio.mean() < 0.2

    def test_linear_regime(self, testcase):
        """Halving the noise std must not change the normalized estimate."""
        s = testcase.data.samples[50:51]
        omega = testcase.data.omega[50:51]
        kwargs = dict(n_draws=400, rng=np.random.default_rng(0))
        mc1 = sensitivity_monte_carlo(
            s, omega, testcase.termination, testcase.observe_port,
            noise_std=1e-9, **kwargs
        )
        kwargs = dict(n_draws=400, rng=np.random.default_rng(0))
        mc2 = sensitivity_monte_carlo(
            s, omega, testcase.termination, testcase.observe_port,
            noise_std=5e-10, **kwargs
        )
        assert np.isclose(mc1[0], mc2[0], rtol=0.05)


class TestShape:
    def test_sensitivity_profile(self, testcase):
        """Relative sensitivity Xi/|Z| decays by orders of magnitude from
        the low band to the high band -- the paper's Fig. 3 shape."""
        xi = sensitivity_analytic(
            testcase.data.samples,
            testcase.data.omega,
            testcase.termination,
            testcase.observe_port,
        )
        z = np.abs(
            target_impedance(
                testcase.data.samples,
                testcase.data.omega,
                testcase.termination,
                testcase.observe_port,
            )
        )
        f = testcase.data.frequencies
        relative = xi / z
        low = relative[(f > 0) & (f < 1e5)].mean()
        high = relative[f > 5e8].mean()
        assert low / high > 100.0

    def test_no_excitation_rejected(self, testcase):
        net = TerminationNetwork(
            terminations=[ResistiveTermination(50.0)] * 9
        )
        with pytest.raises(ValueError, match="excitation"):
            sensitivity_analytic(
                testcase.data.samples[:2],
                testcase.data.omega[:2],
                net,
                0,
            )
