"""Constraint linearization: the first-order singular-value model must
predict the effect of small residue perturbations."""

import numpy as np

from repro.passivity.perturbation import (
    build_constraints,
    flatten_delta,
    unflatten_delta,
)
from tests.conftest import make_random_stable_model


class TestFlattening:
    def test_roundtrip(self, rng):
        delta = rng.normal(size=(3, 3, 4))
        flat = flatten_delta(delta)
        assert flat.shape == (36,)
        assert np.allclose(unflatten_delta(flat, 3, 4), delta)

    def test_layout_matches_block_order(self, rng):
        delta = np.zeros((2, 2, 3))
        delta[1, 0, 2] = 7.0
        flat = flatten_delta(delta)
        assert flat[((1 * 2) + 0) * 3 + 2] == 7.0


class TestConstraintRows:
    def test_first_order_prediction(self, rng):
        """F @ vec(delta) must match the actual change of sigma_i."""
        model = make_random_stable_model(rng, n_ports=2)
        omega_nu = 3.0
        constraints = build_constraints(
            model, np.array([omega_nu]), include_threshold=0.0
        )
        assert constraints.n_constraints == 2  # both singular values

        delta = 1e-7 * rng.normal(size=(2, 2, model.element_state_dimension()))
        predicted = constraints.dense_matrix() @ flatten_delta(delta)
        base_c = model.element_output_vectors()
        perturbed = model.with_element_output_vectors(base_c + delta)
        sigma_before = np.linalg.svd(
            model.frequency_response(np.array([omega_nu]))[0], compute_uv=False
        )
        sigma_after = np.linalg.svd(
            perturbed.frequency_response(np.array([omega_nu]))[0], compute_uv=False
        )
        actual = sigma_after - sigma_before
        assert np.allclose(predicted, actual, rtol=1e-4, atol=1e-13)

    def test_bounds_encode_margin(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        constraints = build_constraints(
            model, np.array([2.0]), margin=1e-3, include_threshold=0.0
        )
        sigma = np.linalg.svd(
            model.frequency_response(np.array([2.0]))[0], compute_uv=False
        )
        assert np.allclose(constraints.bounds, (1.0 - 1e-3) - sigma)

    def test_threshold_filters_small_sigmas(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        loose = build_constraints(model, np.array([2.0]), include_threshold=0.0)
        strict = build_constraints(model, np.array([2.0]), include_threshold=1e9)
        assert loose.n_constraints >= strict.n_constraints
        assert strict.n_constraints == 0

    def test_empty_constraint_set(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        empty = build_constraints(model, np.zeros(0), include_threshold=0.999)
        assert empty.n_constraints == 0
        assert empty.matrix.shape[1] == 4 * model.element_state_dimension()

    def test_residual_computation(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        constraints = build_constraints(model, np.array([2.0]), include_threshold=0.0)
        x = np.zeros(constraints.dense_matrix().shape[1])
        assert np.allclose(constraints.residual(x), constraints.bounds)
