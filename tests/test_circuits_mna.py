"""MNA AC analysis tests against hand-solvable circuits."""

import numpy as np
import pytest

from repro.circuits.elements import Capacitor, Resistor, SeriesRL
from repro.circuits.mna import ACAnalysis
from repro.circuits.netlist import GROUND, Circuit


def shunt_resistor_circuit(resistance):
    c = Circuit()
    c.add_port("p")
    c.add(Resistor("p", GROUND, resistance=resistance))
    return c


class TestOnePort:
    def test_shunt_resistor_scattering(self):
        c = shunt_resistor_circuit(50.0)
        data = ACAnalysis(c).scattering(np.array([1e3, 1e6]))
        assert np.allclose(data.samples, 0.0, atol=1e-12)

    @pytest.mark.parametrize("r", [10.0, 100.0])
    def test_shunt_resistor_value(self, r):
        c = shunt_resistor_circuit(r)
        s = ACAnalysis(c).scattering(np.array([1e6])).samples[0, 0, 0]
        assert np.isclose(s, (r - 50.0) / (r + 50.0))

    def test_rc_lowpass_input_impedance(self):
        # Port - R - internal - C - ground: Z_in = R + 1/(jwC)
        r_val, c_val = 100.0, 1e-9
        c = Circuit()
        c.add_port("in")
        c.add(Resistor("in", "mid", resistance=r_val))
        c.add(Capacitor("mid", GROUND, capacitance=c_val))
        f = np.array([1e5, 1e6, 1e7])
        z = ACAnalysis(c).input_impedance(f)
        expected = r_val + 1.0 / (1j * 2 * np.pi * f * c_val)
        assert np.allclose(z, expected, rtol=1e-10)

    def test_internal_node_reduction_matches_direct(self):
        # A chain of two resistors equals their sum at DC.
        c = Circuit()
        c.add_port("in")
        c.add(Resistor("in", "mid", resistance=30.0))
        c.add(Resistor("mid", GROUND, resistance=20.0))
        z = ACAnalysis(c).input_impedance(np.array([1e3]))
        assert np.isclose(z[0].real, 50.0)


class TestTwoPort:
    def test_series_resistor_two_port(self):
        # Two ports joined by a series resistor: known 2-port S-matrix.
        r = 50.0
        c = Circuit()
        c.add_port("p1")
        c.add_port("p2")
        c.add(Resistor("p1", "p2", resistance=r))
        s = ACAnalysis(c).scattering(np.array([1e6])).samples[0]
        # S11 = r/(r + 2 R0), S21 = 2 R0/(r + 2 R0)
        assert np.isclose(s[0, 0], r / (r + 100.0))
        assert np.isclose(s[1, 0], 100.0 / (r + 100.0))

    def test_reciprocity(self):
        c = Circuit()
        c.add_port("p1")
        c.add_port("p2")
        c.add(SeriesRL("p1", "mid", resistance=1.0, inductance=1e-9))
        c.add(Capacitor("mid", GROUND, capacitance=1e-12))
        c.add(Resistor("mid", "p2", resistance=5.0))
        data = ACAnalysis(c).scattering(np.geomspace(1e3, 1e9, 11))
        assert data.is_reciprocal(1e-9)

    def test_passivity_of_rlc_network(self):
        c = Circuit()
        c.add_port("p1")
        c.add_port("p2")
        c.add(SeriesRL("p1", "p2", resistance=0.01, inductance=1e-9))
        c.add(Capacitor("p1", GROUND, capacitance=1e-12, loss_tangent=0.02))
        c.add(Capacitor("p2", GROUND, capacitance=1e-12, loss_tangent=0.02))
        data = ACAnalysis(c).scattering(np.geomspace(1e3, 1e10, 31))
        assert np.all(data.passivity_metric() <= 1.0 + 1e-10)

    def test_port_admittance_symmetry(self):
        c = Circuit()
        c.add_port("p1")
        c.add_port("p2")
        c.add(Resistor("p1", "p2", resistance=10.0))
        c.add(Resistor("p1", GROUND, resistance=100.0))
        y = ACAnalysis(c).port_admittance(np.array([1e3]))[0]
        assert np.allclose(y, y.T)
        assert np.isclose(y[0, 0], 0.1 + 0.01)
        assert np.isclose(y[0, 1], -0.1)


class TestValidationAndNaming:
    def test_invalid_circuit_rejected_at_construction(self):
        c = Circuit()
        with pytest.raises(ValueError):
            ACAnalysis(c)

    def test_port_names_propagate(self):
        c = Circuit()
        c.add_port("n1", "alpha")
        c.add(Resistor("n1", GROUND, resistance=1.0))
        data = ACAnalysis(c).scattering(np.array([1e3]))
        assert data.port_names == ("alpha",)
