"""Model serialization, termination specs, and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.circuits.components import DecouplingCapacitor, DieBlock
from repro.pdn.spec import load_termination, save_termination
from repro.statespace.serialization import (
    load_model,
    load_model_with_metadata,
    save_model,
)
from tests.conftest import make_random_stable_model


class TestModelSerialization:
    def test_roundtrip(self, rng, tmp_path):
        model = make_random_stable_model(rng, n_ports=3)
        path = tmp_path / "model.json"
        save_model(model, path)
        back = load_model(path)
        assert np.allclose(back.poles, model.poles)
        assert np.allclose(back.residues, model.residues)
        assert np.allclose(back.const, model.const)

    def test_response_preserved(self, rng, tmp_path):
        model = make_random_stable_model(rng, n_ports=2)
        path = tmp_path / "model.json"
        save_model(model, path)
        back = load_model(path)
        omega = np.geomspace(0.1, 50.0, 20)
        assert np.allclose(
            back.frequency_response(omega), model.frequency_response(omega)
        )

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a"):
            load_model(path)

    def test_metadata_roundtrip(self, rng, tmp_path):
        model = make_random_stable_model(rng, n_ports=2)
        path = tmp_path / "model.json"
        metadata = {
            "enforcement": {"iterations": np.int64(7),
                            "converged": np.bool_(True)},
            "worst_sigma": np.float64(0.999),
            "weights": np.array([1.0, 0.5]),
        }
        save_model(model, path, metadata=metadata)
        back, meta = load_model_with_metadata(path)
        assert np.allclose(back.poles, model.poles)
        assert meta["enforcement"] == {"iterations": 7, "converged": True}
        assert meta["worst_sigma"] == pytest.approx(0.999)
        assert meta["weights"] == [1.0, 0.5]
        # Plain load_model ignores metadata entirely.
        assert np.allclose(load_model(path).poles, model.poles)

    def test_no_metadata_loads_empty(self, rng, tmp_path):
        model = make_random_stable_model(rng, n_ports=2)
        path = tmp_path / "model.json"
        save_model(model, path)
        _, meta = load_model_with_metadata(path)
        assert meta == {}

    def test_tampered_header_rejected(self, rng, tmp_path):
        model = make_random_stable_model(rng, n_ports=2)
        path = tmp_path / "model.json"
        save_model(model, path)
        payload = json.loads(path.read_text())
        payload["n_ports"] = 7
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="disagree"):
            load_model(path)


class TestTerminationSpec:
    def test_roundtrip(self, tmp_path, testcase):
        path = tmp_path / "term.json"
        save_termination(testcase.termination, path)
        back = load_termination(path)
        assert back.n_ports == testcase.termination.n_ports
        assert np.allclose(back.source_vector(), testcase.termination.source_vector())
        omega = np.geomspace(1e4, 1e10, 20)
        assert np.allclose(
            back.admittance_matrices(omega),
            testcase.termination.admittance_matrices(omega),
        )

    def test_all_component_types(self, tmp_path):
        spec = {
            "ports": [
                {"type": "open"},
                {"type": "resistor", "resistance": 50.0},
                {"type": "short", "resistance": 1e-4},
                {"type": "vrm", "resistance": 1e-3, "inductance": 1e-10},
                {"type": "decap", "capacitance": 1e-6, "esr": 5e-3, "esl": 1e-9},
                {"type": "die_rc", "resistance": 0.2, "capacitance": 2e-9,
                 "excitation": 1.0},
            ]
        }
        path = tmp_path / "term.json"
        path.write_text(json.dumps(spec))
        net = load_termination(path)
        assert net.n_ports == 6
        assert isinstance(net.terminations[4], DecouplingCapacitor)
        assert isinstance(net.terminations[5], DieBlock)
        assert net.source_vector()[5] == 1.0

    def test_unknown_type_rejected(self, tmp_path):
        path = tmp_path / "term.json"
        path.write_text(json.dumps({"ports": [{"type": "inductor"}]}))
        with pytest.raises(ValueError, match="unknown termination"):
            load_termination(path)

    def test_bad_parameters_rejected(self, tmp_path):
        path = tmp_path / "term.json"
        path.write_text(json.dumps({"ports": [{"type": "decap", "farads": 1}]}))
        with pytest.raises(ValueError, match="bad parameters"):
            load_termination(path)

    def test_empty_spec_rejected(self, tmp_path):
        path = tmp_path / "term.json"
        path.write_text(json.dumps({"ports": []}))
        with pytest.raises(ValueError, match="non-empty"):
            load_termination(path)


class TestCLI:
    def test_testcase_command(self, tmp_path):
        out = tmp_path / "case"
        code = main(["testcase", "--size", "small", "--output-dir", str(out)])
        assert code == 0
        assert (out / "pdn.s9p").exists()
        assert (out / "termination.json").exists()

    def test_fit_command(self, tmp_path, coarse_testcase):
        from repro.sparams.touchstone import write_touchstone

        data_path = tmp_path / "pdn.s9p"
        write_touchstone(coarse_testcase.data, data_path)
        out = tmp_path / "fit"
        code = main(
            ["fit", str(data_path), "--poles", "10", "--output-dir", str(out)]
        )
        assert code == 0
        assert (out / "model.json").exists()
        report = (out / "fit_report.txt").read_text()
        assert "rms error" in report
        model = load_model(out / "model.json")
        assert model.n_poles == 10

    def test_flow_command_port_mismatch(self, tmp_path, coarse_testcase):
        from repro.sparams.touchstone import write_touchstone

        data_path = tmp_path / "pdn.s9p"
        write_touchstone(coarse_testcase.data, data_path)
        term_path = tmp_path / "term.json"
        term_path.write_text(json.dumps({"ports": [{"type": "open"}]}))
        code = main(
            [
                "flow", str(data_path),
                "--termination", str(term_path),
                "--output-dir", str(tmp_path / "flow"),
            ]
        )
        assert code == 2

    def test_flow_command_end_to_end(self, tmp_path, testcase):
        """Full CLI pipeline on the canonical case (slowest CLI test)."""
        from repro.sparams.touchstone import write_touchstone

        data_path = tmp_path / "pdn.s9p"
        write_touchstone(testcase.data, data_path)
        term_path = tmp_path / "term.json"
        save_termination(testcase.termination, term_path)
        out = tmp_path / "flow"
        code = main(
            [
                "flow", str(data_path),
                "--termination", str(term_path),
                "--observe-port", str(testcase.observe_port),
                "--refinement-rounds", "1",
                "--output-dir", str(out),
            ]
        )
        assert code == 0
        assert (out / "passive_model.json").exists()
        assert (out / "flow_series.csv").exists()
        report = (out / "flow_report.txt").read_text()
        assert "passive, weighted cost" in report
        model = load_model(out / "passive_model.json")
        from repro.passivity.check import check_passivity

        assert check_passivity(model).is_passive
