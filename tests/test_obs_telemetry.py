"""Telemetry core: spans, counters, sinks, metrics, sidecar merge, trace."""

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs import (
    METRICS_FORMAT,
    Telemetry,
    build_campaign_metrics,
    build_run_metrics,
    prometheus_exposition,
    render_trace,
    telemetry_session,
)
from repro.obs import telemetry as obs
from repro.obs.metrics import cache_hit_rates, convergence_from_events
from repro.obs.trace import load_trace_payload


class TestDisabled:
    def test_accessors_are_noops_without_session(self):
        assert obs.active() is None
        obs.emit("anything", value=1)
        obs.incr("anything")
        obs.gauge("anything", 2.0)
        assert obs.next_seq("anything") is None

    def test_span_is_shared_noop(self):
        first = obs.span("kernel:x")
        second = obs.span("kernel:y", attr=1)
        assert first is second  # one reusable singleton, no allocation
        with first:
            pass


class TestSpans:
    def test_nesting_builds_slash_paths(self):
        tel = Telemetry()
        with obs.session(tel):
            with obs.span("stage:fit"):
                with obs.span("kernel:qr"):
                    pass
                with obs.span("kernel:qr"):
                    pass
            with obs.span("kernel:qr"):
                pass
        assert set(tel.span_totals) == {
            "stage:fit", "stage:fit/kernel:qr", "kernel:qr",
        }
        assert tel.span_totals["stage:fit/kernel:qr"]["count"] == 2
        assert tel.span_totals["stage:fit"]["count"] == 1
        assert all(
            total["seconds"] >= 0.0 for total in tel.span_totals.values()
        )

    def test_span_finish_events_carry_path_and_attrs(self):
        tel = Telemetry()
        with obs.session(tel):
            with obs.span("stage:fit", order=12):
                pass
        finishes = [e for e in tel.events if e["event"] == "span.finish"]
        assert len(finishes) == 1
        assert finishes[0]["span"] == "stage:fit"
        assert finishes[0]["order"] == 12

    def test_events_record_enclosing_span_path(self):
        tel = Telemetry()
        with obs.session(tel):
            with obs.span("stage:fit"):
                obs.emit("vf.iteration", iteration=1)
        event = next(e for e in tel.events if e["event"] == "vf.iteration")
        assert event["span"] == "stage:fit"


class TestCountersAndGauges:
    def test_incr_accumulates(self):
        tel = Telemetry()
        with obs.session(tel):
            obs.incr("hits")
            obs.incr("hits")
            obs.incr("hits", 3)
            obs.gauge("grid", 10)
            obs.gauge("grid", 20)
        assert tel.counters == {"hits": 5}
        assert tel.gauges == {"grid": 20.0}

    def test_next_seq_is_monotonic_per_name(self):
        tel = Telemetry()
        with obs.session(tel):
            assert obs.next_seq("vf.batch") == 0
            assert obs.next_seq("vf.batch") == 1
            assert obs.next_seq("other") == 0


class TestSession:
    def test_nested_sessions_restore_previous(self):
        outer, inner = Telemetry(), Telemetry()
        with obs.session(outer):
            assert obs.active() is outer
            with obs.session(inner):
                assert obs.active() is inner
                obs.incr("x")
            assert obs.active() is outer
            obs.incr("y")
        assert obs.active() is None
        assert inner.counters == {"x": 1}
        assert outer.counters == {"y": 1}

    def test_telemetry_session_writes_metrics_files(self, tmp_path):
        with telemetry_session(tmp_path, label="t") as tel:
            obs.incr("hits")
            with obs.span("stage:fit"):
                pass
        sink = tmp_path / f"events-t-{os.getpid()}.jsonl"
        assert sink.exists()
        lines = [json.loads(l) for l in sink.read_text().splitlines()]
        assert any(e["event"] == "span.finish" for e in lines)
        payload = json.loads((tmp_path / "run_metrics.json").read_text())
        assert payload["format"] == METRICS_FORMAT
        assert payload["counters"] == {"hits": 1}
        assert "stage:fit" in payload["spans"]
        assert (tmp_path / "metrics.prom").exists()
        assert tel.counters == {"hits": 1}


class TestMetrics:
    def test_convergence_extraction_groups_by_batch_and_cost(self):
        events = [
            {"event": "vf.iteration", "batch": 0, "set": 0, "iteration": 1,
             "pole_change": 0.5, "n_poles": 8, "converged": False},
            {"event": "vf.iteration", "batch": 0, "set": 0, "iteration": 2,
             "pole_change": 0.01, "n_poles": 8, "converged": True},
            {"event": "vf.iteration", "batch": 1, "set": 0, "iteration": 1,
             "pole_change": 0.2, "n_poles": 8, "converged": False},
            {"event": "enforce.iteration", "cost": "standard",
             "iteration": 1, "worst_sigma": 1.01, "n_bands": 2,
             "n_constraints": 30, "working_set": 5, "mode": "sampling"},
            {"event": "checker.sampling", "seed_grid": 100,
             "final_grid": 400, "stages": 3, "violations": 2},
        ]
        conv = convergence_from_events(events)
        assert set(conv["vf"]) == {"0:0", "1:0"}
        assert [row["iteration"] for row in conv["vf"]["0:0"]] == [1, 2]
        assert conv["enforcement"]["standard"][0]["working_set"] == 5
        assert conv["sampling"][0]["final_grid"] == 400

    def test_build_run_metrics_payload(self):
        tel = Telemetry(label="flow")
        with obs.session(tel):
            obs.incr("artifact_store.hits", 2)
            obs.incr("artifact_store.misses")
        payload = build_run_metrics(tel, kind="flow")
        assert payload["format"] == METRICS_FORMAT
        assert payload["kind"] == "flow"
        assert payload["counters"]["artifact_store.hits"] == 2

    def test_cache_hit_rates_handles_cold_and_warm(self):
        rates = cache_hit_rates({
            "flow_cache.misses": 3,
            "artifact_store.hits": 3,
            "unrelated": 7,
        })
        assert rates["flow_cache"]["hit_rate"] == 0.0
        assert rates["artifact_store"]["hit_rate"] == 1.0
        assert "unrelated" not in rates

    def test_prometheus_exposition_format(self):
        tel = Telemetry()
        with obs.session(tel):
            obs.incr("flow_cache.hits", 4)
            obs.gauge("grid_points", 128)
            with obs.span("stage:fit"):
                pass
        text = prometheus_exposition(build_run_metrics(tel))
        assert "# TYPE repro_flow_cache_hits_total counter" in text
        assert "repro_flow_cache_hits_total 4" in text
        assert "repro_grid_points 128" in text
        assert 'repro_span_calls_total{span="stage:fit"} 1' in text

    def test_campaign_merge_sums_counters_and_ranks_runs(self):
        dispatcher = Telemetry(label="campaign")
        with obs.session(dispatcher):
            obs.incr("campaign.prefit_fits")
        runs = [
            {"run_id": "a", "seconds": 2.0,
             "snapshot": {"counters": {"flow_cache.misses": 1},
                          "spans": {"stage:fit": {"count": 1,
                                                  "seconds": 1.5}}}},
            {"run_id": "b", "seconds": 5.0,
             "snapshot": {"counters": {"flow_cache.misses": 1,
                                       "flow_cache.hits": 1},
                          "spans": {"stage:fit": {"count": 2,
                                                  "seconds": 3.0}}}},
        ]
        payload = build_campaign_metrics(dispatcher, runs)
        assert payload["kind"] == "campaign"
        assert payload["counters"]["flow_cache.misses"] == 2
        assert payload["counters"]["campaign.prefit_fits"] == 1
        assert payload["spans"]["stage:fit"] == {"count": 3, "seconds": 4.5}
        assert payload["slowest_runs"][0]["run_id"] == "b"
        assert payload["cache_hit_rates"]["flow_cache"]["hits"] == 1


def _worker_session(args):
    """Module-level so it pickles into a spawned/forked worker."""
    directory, run_id = args
    with telemetry_session(
        directory, label="scenario", run_id=run_id, write_metrics=False
    ) as tel:
        obs.incr("flow_cache.misses")
        obs.emit("vf.iteration", batch=0, set=0, iteration=1,
                 pole_change=0.1, n_poles=4, converged=False)
    return tel.snapshot()


class TestMultiprocessSidecars:
    def test_worker_sidecars_merge_into_campaign_payload(self, tmp_path):
        with ProcessPoolExecutor(max_workers=2) as pool:
            snapshots = list(pool.map(
                _worker_session,
                [(str(tmp_path), "run-a"), (str(tmp_path), "run-b")],
            ))
        sidecars = sorted(tmp_path.glob("events-scenario-*.jsonl"))
        assert len(sidecars) == 2
        names = {p.name for p in sidecars}
        assert any("run-a" in n for n in names)
        assert any("run-b" in n for n in names)

        dispatcher = Telemetry(label="campaign")
        runs = [
            {"run_id": rid, "seconds": 1.0, "snapshot": snap}
            for rid, snap in zip(["run-a", "run-b"], snapshots)
        ]
        payload = build_campaign_metrics(dispatcher, runs)
        assert payload["counters"]["flow_cache.misses"] == 2
        # The sidecar JSONL streams are independently replayable.
        events = []
        for sidecar in sidecars:
            events += [json.loads(l) for l in
                       sidecar.read_text().splitlines()]
        conv = convergence_from_events(events)
        assert len(conv["vf"]["0:0"]) == 2


class TestTrace:
    def _record_run(self, directory):
        with telemetry_session(directory, label="flow"):
            obs.incr("artifact_store.hits")
            obs.incr("artifact_store.misses")
            with obs.span("stage:standard_fit"):
                with obs.span("kernel:vf.relocate"):
                    pass
                obs.emit("vf.iteration", batch=0, set=0, iteration=1,
                         pole_change=0.25, n_poles=8, converged=False)
            with obs.span("stage:enforce"):
                obs.emit("enforce.iteration", cost="standard", iteration=1,
                         worst_sigma=1.002, n_bands=3, n_constraints=40,
                         working_set=7, mode="sampling")

    def test_render_from_telemetry_dir(self, tmp_path):
        self._record_run(tmp_path)
        text = render_trace(tmp_path)
        assert "vector fitting: pole relocation" in text
        assert "2.500e-01" in text  # the pole_change sample
        assert "passivity enforcement: worst sigma" in text
        assert "1.002e+00" in text
        assert "per stage:" in text and "standard_fit" in text
        assert "per kernel:" in text and "vf.relocate" in text
        assert "artifact_store.hits" in text
        assert "rate=50.0%" in text

    def test_render_from_parent_of_telemetry_subdir(self, tmp_path):
        self._record_run(tmp_path / "telemetry")
        assert "vector fitting" in render_trace(tmp_path)

    def test_render_from_events_only(self, tmp_path):
        self._record_run(tmp_path)
        (tmp_path / "run_metrics.json").unlink()
        payload = load_trace_payload(tmp_path)
        assert payload["kind"] == "events"
        assert payload["spans"]["stage:standard_fit"]["count"] == 1
        assert "vector fitting" in render_trace(tmp_path)

    def test_missing_trace_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            render_trace(tmp_path)


class TestInstrumentationWiring:
    """The solver layers emit real events inside a session."""

    def test_fit_many_emits_iteration_events(self):
        import numpy as np

        from repro.vectfit.core import fit_many
        from repro.vectfit.options import VFOptions

        omega = np.linspace(1e3, 1e6, 40)
        rng = np.random.default_rng(0)
        poles = -np.abs(rng.normal(1e4, 1e3, 2))
        samples = np.zeros((40, 1, 1), dtype=complex)
        for p in poles:
            samples[:, 0, 0] += 1e3 / (1j * omega - p)
        tel = Telemetry()
        with obs.session(tel):
            fit_many(omega, [samples], options=VFOptions(n_poles=4))
        iters = [e for e in tel.events if e["event"] == "vf.iteration"]
        assert iters, "fit_many emitted no vf.iteration events"
        assert {"batch", "set", "iteration", "n_poles", "pole_change",
                "converged"} <= set(iters[0])
        assert tel.counters["vf.iterations"] == len(iters)
        assert any(
            path.endswith("kernel:vf.relocate") for path in tel.span_totals
        )

    def test_artifact_store_counters(self, tmp_path):
        from repro.api import ArtifactStore

        store = ArtifactStore(tmp_path)
        tel = Telemetry()
        with obs.session(tel):
            assert store.get("0" * 64) is None
            store.put("0" * 64, {"x": 1})
            assert store.get("0" * 64) == {"x": 1}
        assert tel.counters == {
            "artifact_store.misses": 1,
            "artifact_store.puts": 1,
            "artifact_store.hits": 1,
        }
