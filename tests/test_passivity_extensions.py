"""Extensions: relative-error cost, per-element sensitivity cost,
sampling-based passivity check."""

import numpy as np
import pytest

from repro.passivity.check import check_passivity, check_passivity_sampling
from repro.passivity.cost import relative_error_cost
from repro.passivity.enforce import enforce_passivity
from repro.sensitivity.firstorder import sensitivity_matrix
from repro.sensitivity.weighted_norm import per_element_sensitivity_cost
from repro.statespace.poleresidue import PoleResidueModel
from tests.conftest import make_random_stable_model


def violating_model(gain=1.3):
    poles = np.array([-0.5 + 5.0j, -0.5 - 5.0j, -2.0])
    residues = np.array([[[gain * 0.5]], [[gain * 0.5]], [[0.2]]], dtype=complex)
    return PoleResidueModel(poles, residues, np.array([[0.1]]))


class TestRelativeErrorCost:
    def test_blocks_scale_with_inverse_rms(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        omega = np.geomspace(0.1, 50.0, 60)
        samples = model.frequency_response(omega)
        samples[:, 0, 1] *= 0.1  # make one entry quiet
        samples[:, 1, 0] *= 0.1
        cost = relative_error_cost(model, samples, ridge=0.0)
        # Quiet entries get larger weight (bigger block).
        loud = np.trace(cost.block(0, 0))
        quiet = np.trace(cost.block(0, 1))
        assert quiet > loud

    def test_floor_bounds_weights(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        omega = np.geomspace(0.1, 50.0, 60)
        samples = model.frequency_response(omega)
        samples[:, 0, 1] *= 1e-9
        samples[:, 1, 0] *= 1e-9
        cost = relative_error_cost(model, samples, floor_ratio=0.1, ridge=0.0)
        ratio = np.trace(cost.block(0, 1)) / np.trace(cost.block(0, 0))
        assert ratio <= (1.0 / 0.1) ** 2 * 1.5

    def test_enforcement_with_relative_cost(self):
        model = violating_model()
        omega = np.geomspace(0.1, 100.0, 120)
        samples = model.frequency_response(omega)
        result = enforce_passivity(model, relative_error_cost(model, samples))
        assert result.converged

    def test_shape_checked(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        with pytest.raises(ValueError, match="shape"):
            relative_error_cost(model, np.zeros((5, 3, 3)))


class TestPerElementSensitivityCost:
    def test_build_and_enforce(self, testcase, flow_result):
        model = flow_result.weighted_fit.model
        data = testcase.data
        grads = sensitivity_matrix(
            data.samples, data.omega, testcase.termination, testcase.observe_port
        )
        cost = per_element_sensitivity_cost(
            model, data.omega, grads, order=3
        )
        assert cost.n_ports == 9
        # Blocks carry different frequency profiles across entries (that is
        # the point): compare trace-normalized blocks of the floored-flat
        # open-port entry (8,8) vs the strongly-shaped VRM entry (7,7).
        b77 = cost.block(7, 7) / np.trace(cost.block(7, 7))
        b88 = cost.block(8, 8) / np.trace(cost.block(8, 8))
        assert np.linalg.norm(b77 - b88) > 0.05 * np.linalg.norm(b88)
        result = enforce_passivity(model, cost)
        assert result.converged

    def test_shape_checked(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        with pytest.raises(ValueError, match="shape"):
            per_element_sensitivity_cost(
                model, np.geomspace(0.1, 10.0, 20), np.zeros((20, 3, 3))
            )

    def test_zero_gradients_rejected(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        omega = np.geomspace(0.1, 10.0, 20)
        with pytest.raises(ValueError, match="zero"):
            per_element_sensitivity_cost(model, omega, np.zeros((20, 2, 2)))


class TestSamplingCheck:
    def test_agrees_with_hamiltonian_on_verdict(self):
        model = violating_model()
        omega = np.geomspace(0.1, 100.0, 2000)
        sampled = check_passivity_sampling(model, omega)
        exact = check_passivity(model)
        assert sampled.is_passive == exact.is_passive
        assert np.isclose(sampled.worst_sigma, exact.worst_sigma, rtol=1e-3)

    def test_passive_model(self):
        model = violating_model(gain=0.5)
        omega = np.geomspace(0.1, 100.0, 500)
        report = check_passivity_sampling(model, omega)
        assert report.is_passive
        assert not report.bands

    def test_band_edges_reasonable(self):
        model = violating_model()
        omega = np.geomspace(0.1, 100.0, 4000)
        sampled = check_passivity_sampling(model, omega)
        exact = check_passivity(model)
        assert len(sampled.bands) == len(exact.bands)
        for sb, eb in zip(sampled.bands, exact.bands):
            assert np.isclose(sb.omega_peak, eb.omega_peak, rtol=0.05)

    def test_misses_narrow_violations_on_coarse_grids(self):
        """Documents the known limitation the Hamiltonian test fixes."""
        model = violating_model()
        coarse = np.array([0.1, 1.0, 100.0, 1000.0])  # skips the 5 rad/s bump
        report = check_passivity_sampling(model, coarse)
        assert report.is_passive  # wrong verdict -- by design of the test

    def test_grid_validation(self):
        model = violating_model()
        with pytest.raises(ValueError, match="grid"):
            check_passivity_sampling(model, np.array([1.0]))

    def test_on_pdn_model(self, flow_result):
        omega = 2 * np.pi * np.geomspace(1e3, 3e9, 3000)
        sampled = check_passivity_sampling(flow_result.weighted_fit.model, omega)
        assert not sampled.is_passive
        sampled_after = check_passivity_sampling(
            flow_result.weighted_enforced.model, omega
        )
        assert sampled_after.is_passive
