"""Unit tests for the netlist container and validation."""

import pytest

from repro.circuits.elements import Resistor
from repro.circuits.netlist import GROUND, Circuit, Port


class TestPort:
    def test_ground_port_rejected(self):
        with pytest.raises(ValueError, match="ground"):
            Port(node=GROUND)


class TestCircuit:
    def test_nodes_ports_first(self):
        c = Circuit()
        c.add(Resistor("n1", "n2", resistance=1.0))
        c.add(Resistor("n2", GROUND, resistance=1.0))
        c.add_port("n2", "p")
        assert c.nodes[0] == "n2"

    def test_duplicate_port_node_rejected(self):
        c = Circuit()
        c.add_port("n1", "a")
        with pytest.raises(ValueError, match="already carries"):
            c.add_port("n1", "b")

    def test_add_type_checked(self):
        c = Circuit()
        with pytest.raises(TypeError, match="Branch"):
            c.add("not a branch")

    def test_port_index_returned(self):
        c = Circuit()
        assert c.add_port("n1") == 0
        assert c.add_port("n2") == 1
        assert c.n_ports == 2

    def test_default_port_names(self):
        c = Circuit()
        c.add_port("n1")
        assert c.ports[0].name == "port1"


class TestValidation:
    def test_no_ports(self):
        c = Circuit()
        c.add(Resistor("a", "b", resistance=1.0))
        with pytest.raises(ValueError, match="no ports"):
            c.validate()

    def test_no_branches(self):
        c = Circuit()
        c.add_port("a")
        with pytest.raises(ValueError, match="no branches"):
            c.validate()

    def test_port_node_unconnected(self):
        c = Circuit()
        c.add_port("lonely")
        c.add(Resistor("a", "b", resistance=1.0))
        with pytest.raises(ValueError, match="appear in no branch"):
            c.validate()

    def test_floating_subcircuit(self):
        c = Circuit()
        c.add_port("a")
        c.add(Resistor("a", GROUND, resistance=1.0))
        c.add(Resistor("x", "y", resistance=1.0))  # floating island
        with pytest.raises(ValueError, match="floating"):
            c.validate()

    def test_valid_circuit_passes(self):
        c = Circuit()
        c.add_port("a")
        c.add(Resistor("a", "b", resistance=1.0))
        c.add(Resistor("b", GROUND, resistance=2.0))
        c.validate()

    def test_graph_includes_ground(self):
        c = Circuit()
        c.add_port("a")
        c.add(Resistor("a", GROUND, resistance=1.0))
        assert GROUND in c.graph().nodes
