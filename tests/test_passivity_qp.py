"""QP solver: optimality against a reference solver, KKT conditions."""

import numpy as np
import pytest
import scipy.optimize

from repro.passivity.cost import BlockDiagonalCost
from repro.passivity.perturbation import ConstraintSet
from repro.passivity.qp import solve_block_qp


def make_constraints(f, g):
    return ConstraintSet(
        matrix=np.asarray(f, dtype=float),
        bounds=np.asarray(g, dtype=float),
        frequencies=np.zeros(len(g)),
        sigmas=np.zeros(len(g)),
    )


def reference_qp(h, f, g):
    """Reference solution via scipy SLSQP (small problems only)."""
    n = h.shape[0]
    result = scipy.optimize.minimize(
        lambda x: 0.5 * x @ h @ x,
        np.zeros(n),
        jac=lambda x: h @ x,
        constraints=[
            {"type": "ineq", "fun": lambda x, i=i: g[i] - f[i] @ x}
            for i in range(len(g))
        ],
        method="SLSQP",
        options={"maxiter": 200, "ftol": 1e-14},
    )
    return result.x


class TestUnconstrained:
    def test_no_constraints_returns_zero(self, rng):
        cost = BlockDiagonalCost(np.eye(3), n_ports=2)
        empty = make_constraints(np.zeros((0, 2 * 2 * 3)), np.zeros(0))
        sol = solve_block_qp(cost, empty)
        assert np.allclose(sol.delta_c, 0.0)
        assert sol.cost == 0.0

    def test_inactive_constraints_return_zero(self, rng):
        cost = BlockDiagonalCost(np.eye(2), n_ports=1)
        f = rng.normal(size=(3, 2))
        g = np.ones(3)  # satisfied at x = 0
        sol = solve_block_qp(cost, make_constraints(f, g))
        assert np.allclose(sol.delta_c, 0.0, atol=1e-12)


class TestAgainstReference:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_slsqp(self, seed):
        rng = np.random.default_rng(seed)
        n_ports, n_states = 1, 3
        dim = n_ports * n_ports * n_states
        a = rng.normal(size=(n_states, n_states))
        h_block = a @ a.T + n_states * np.eye(n_states)
        cost = BlockDiagonalCost(h_block, n_ports=n_ports, ridge=0.0)
        f = rng.normal(size=(2, dim))
        g = -np.abs(rng.normal(size=2))  # violated at x = 0: active constraints
        sol = solve_block_qp(cost, make_constraints(f, g))
        x_ref = reference_qp(h_block, f, g)
        assert np.allclose(sol.delta_c.reshape(-1), x_ref, atol=1e-6)

    def test_multiport_block_structure(self, rng):
        n_ports, n_states = 2, 2
        dim = n_ports * n_ports * n_states
        h_block = np.array([[2.0, 0.3], [0.3, 1.0]])
        cost = BlockDiagonalCost(h_block, n_ports=n_ports, ridge=0.0)
        f = rng.normal(size=(3, dim))
        g = np.array([-0.5, -0.1, 0.4])
        sol = solve_block_qp(cost, make_constraints(f, g))
        h_full = np.kron(np.eye(n_ports * n_ports), h_block)
        x_ref = reference_qp(h_full, f, g)
        assert np.allclose(sol.delta_c.reshape(-1), x_ref, atol=1e-6)


class TestKKT:
    def test_constraints_satisfied(self, rng):
        cost = BlockDiagonalCost(np.eye(3), n_ports=1)
        f = rng.normal(size=(4, 3))
        g = np.array([-1.0, -0.2, 0.5, 2.0])
        constraints = make_constraints(f, g)
        sol = solve_block_qp(cost, constraints)
        assert sol.max_violation < 1e-8

    def test_dual_nonnegative(self, rng):
        cost = BlockDiagonalCost(np.eye(3), n_ports=1)
        f = rng.normal(size=(2, 3))
        g = np.array([-1.0, -0.5])
        sol = solve_block_qp(cost, make_constraints(f, g))
        assert np.all(sol.dual >= 0.0)

    def test_stationarity(self, rng):
        """H x + F^T lambda = 0 at the optimum."""
        h_block = np.diag([1.0, 2.0, 3.0])
        cost = BlockDiagonalCost(h_block, n_ports=1, ridge=0.0)
        f = rng.normal(size=(2, 3))
        g = np.array([-0.7, -0.3])
        sol = solve_block_qp(cost, make_constraints(f, g))
        x = sol.delta_c.reshape(-1)
        residual = h_block @ x + f.T @ sol.dual
        assert np.allclose(residual, 0.0, atol=1e-8)

    def test_cost_value_reported(self, rng):
        h_block = np.eye(2)
        cost = BlockDiagonalCost(h_block, n_ports=1, ridge=0.0)
        f = np.array([[1.0, 0.0]])
        g = np.array([-2.0])
        sol = solve_block_qp(cost, make_constraints(f, g))
        # Minimum-norm solution: x = (-2, 0), cost = 0.5 * 4 = 2.
        assert np.isclose(sol.cost, 2.0, rtol=1e-8)
        assert np.allclose(sol.delta_c.reshape(-1), [-2.0, 0.0], atol=1e-8)
