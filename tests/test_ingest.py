"""Tests for repro.ingest: conditioning pipeline, generic terminations,
external-data scenarios and the CLI external-data flow path."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.circuits.components import (
    OpenTermination,
    ResistiveTermination,
    SeriesRLC,
    ShortTermination,
)
from repro.flow.macromodel import FlowOptions, MacromodelingFlow
from repro.ingest import (
    ConditioningOptions,
    build_termination,
    condition_network,
    load_network,
    parse_termination_spec,
)
from repro.pdn.spec import termination_from_dict, termination_to_dict
from repro.sparams.conversions import s_to_z, y_to_s
from repro.sparams.network import NetworkData
from repro.sparams.touchstone import write_touchstone

FIXTURE = Path(__file__).resolve().parent.parent / "examples/data/coupled_rlc.s2p"


def _passive_two_port(k=40, f_min=1e4, f_max=1e9, seed=1, include_dc=False):
    """Analytic passive reciprocal 2-port (RLC Pi network)."""
    f = np.logspace(np.log10(f_min), np.log10(f_max), k)
    if include_dc:
        f = np.concatenate([[0.0], f])
    w = 2 * np.pi * f
    y12 = 1.0 / (0.5 + 1j * w * 5e-9)
    y2 = np.full_like(y12, 0.1)
    y1 = np.zeros_like(y12)
    nz = w != 0.0
    y1[nz] = 1.0 / (0.2 + 1.0 / (1j * w[nz] * 1e-9))
    y = np.empty((f.size, 2, 2), dtype=complex)
    y[:, 0, 0] = y1 + y12
    y[:, 1, 1] = y2 + y12
    y[:, 0, 1] = y[:, 1, 0] = -y12
    return NetworkData(frequencies=f, samples=y_to_s(y, 50.0))


# ----------------------------------------------------------------------
# Conditioning pipeline
# ----------------------------------------------------------------------
def test_band_selection_and_decimation():
    data = _passive_two_port(k=60)
    out, report = condition_network(
        data,
        ConditioningOptions(f_min=1e5, f_max=1e8, max_points=16),
    )
    assert out.frequencies[0] >= 1e5
    assert out.frequencies[-1] <= 1e8
    assert out.n_frequencies == 16
    # Endpoints of the selected band are kept by decimation.
    band = data.band(1e5, 1e8)
    assert out.frequencies[0] == band.frequencies[0]
    assert out.frequencies[-1] == band.frequencies[-1]
    assert any(a.step == "decimation" and a.changed for a in report.actions)


def test_dc_policy_drop_and_keep():
    data = _passive_two_port(include_dc=True)
    dropped, _ = condition_network(data, ConditioningOptions(dc_policy="drop"))
    assert dropped.frequencies[0] > 0.0
    kept, _ = condition_network(
        data, ConditioningOptions(dc_policy="keep", f_min=1e6)
    )
    # The kept DC point survives an f_min band edge.
    assert kept.frequencies[0] == 0.0
    assert kept.frequencies[1] >= 1e6


def test_symmetrize_auto_cleans_solver_noise():
    data = _passive_two_port()
    rng = np.random.default_rng(7)
    noisy = data.with_samples(
        data.samples + 1e-9 * rng.normal(size=data.samples.shape)
    )
    out, report = condition_network(noisy, ConditioningOptions())
    assert np.array_equal(out.samples, out.samples.transpose(0, 2, 1))
    assert report.reciprocal is True


def test_symmetrize_auto_leaves_nonreciprocal_data():
    data = _passive_two_port()
    skewed = data.samples.copy()
    skewed[:, 0, 1] *= 1.5  # genuinely non-reciprocal
    out, report = condition_network(
        data.with_samples(skewed), ConditioningOptions()
    )
    assert np.array_equal(out.samples, skewed)
    assert report.reciprocal is False
    forced, report2 = condition_network(
        data.with_samples(skewed), ConditioningOptions(symmetrize="always")
    )
    assert np.array_equal(forced.samples, forced.samples.transpose(0, 2, 1))


def test_renormalization_preserves_impedance():
    data = _passive_two_port()
    out, report = condition_network(
        data, ConditioningOptions(z0=75.0, symmetrize="never")
    )
    assert out.z0 == 75.0
    assert np.allclose(
        s_to_z(out.samples, 75.0), s_to_z(data.samples, 50.0), rtol=1e-9
    )


def test_passivity_precheck_flags_active_data():
    data = _passive_two_port()
    active = data.with_samples(1.3 * data.samples)
    _, report = condition_network(active, ConditioningOptions())
    assert report.data_is_passive is False
    assert report.worst_sigma > 1.0
    assert report.n_passivity_violations > 0


def test_report_is_json_serializable(tmp_path):
    data = _passive_two_port()
    _, report = condition_network(
        data, ConditioningOptions(max_points=10), source="unit-test"
    )
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["source"] == "unit-test"
    assert payload["n_points_out"] == 10
    report.save(tmp_path / "r.json")
    assert json.loads((tmp_path / "r.json").read_text())["n_ports"] == 2
    assert "unit-test" in report.summary()


def test_load_network_folds_reader_repairs(tmp_path):
    data = _passive_two_port(k=10)
    path = tmp_path / "x.s2p"
    write_touchstone(data, path)
    # Duplicate a row to simulate a stitched export.
    lines = path.read_text().splitlines()
    lines.insert(5, lines[4])
    path.write_text("\n".join(lines) + "\n")
    with pytest.warns(UserWarning, match="duplicate"):
        out, report = load_network(path)
    assert out.n_frequencies == 10
    assert any(a.step == "dedupe_grid" for a in report.actions)
    assert any(a.step == "port_count" for a in report.actions)


# ----------------------------------------------------------------------
# Generic terminations
# ----------------------------------------------------------------------
def test_parse_termination_spec_grammar():
    network = parse_termination_spec(
        "*=r(50);0=rlc(r=0.2,c=2e-9,j=1);2-3=open;4=short(1e-4)", 5
    )
    assert isinstance(network.terminations[0], SeriesRLC)
    assert isinstance(network.terminations[1], ResistiveTermination)
    assert isinstance(network.terminations[2], OpenTermination)
    assert isinstance(network.terminations[3], OpenTermination)
    assert isinstance(network.terminations[4], ShortTermination)
    assert network.excitations[0] == 1.0
    assert np.sum(network.excitations != 0.0) == 1


def test_parse_termination_positional_params():
    network = parse_termination_spec("0=short(1e-3);1=vrm(1e-3,1e-10)", 2)
    assert network.terminations[0].resistance == 1e-3
    assert network.terminations[1].inductance == 1e-10


@pytest.mark.parametrize(
    "bad",
    [
        "0=bogus(1)",
        "9=open",
        "0=r(a=1)",
        "0=r(1,2)",
        "0-x=open",
        "",
        "0=rlc(r=0.2,1e-9)",  # positional after keyword: ambiguous, rejected
    ],
)
def test_parse_termination_spec_errors(bad):
    with pytest.raises(ValueError):
        parse_termination_spec(bad, 2)


def test_later_entry_overrides_excitation_too():
    network = parse_termination_spec("0=r(1,j=2);0=r(5)", 2)
    assert network.terminations[0].resistance == 5.0
    assert not np.any(network.excitations)  # the stale 2 A source is gone


def test_build_termination_defaults_and_excitation():
    network = build_termination(None, 3, observe_port=2, default_z0=75.0)
    assert all(
        isinstance(t, ResistiveTermination) and t.resistance == 75.0
        for t in network.terminations
    )
    assert network.excitations[2] == 1.0


def test_build_termination_json_path(tmp_path):
    from repro.pdn.spec import save_termination

    network = parse_termination_spec("*=r(50);0=rlc(r=0.2,c=2e-9,j=0.5)", 2)
    path = tmp_path / "term.json"
    save_termination(network, path)
    back = build_termination(str(path), 2, observe_port=0)
    omega = np.array([0.0, 1e6, 1e9])
    assert np.allclose(
        back.admittance_matrices(omega), network.admittance_matrices(omega)
    )
    assert back.excitations[0] == 0.5  # spec excitation survives


def test_inline_spec_not_shadowed_by_same_named_file(tmp_path, monkeypatch):
    # A file literally named 'open' in the cwd must not turn the inline
    # spec 'open' into a JSON load.
    monkeypatch.chdir(tmp_path)
    (tmp_path / "open").write_text("not json")
    network = build_termination("open", 2, observe_port=0)
    assert all(isinstance(t, OpenTermination) for t in network.terminations)


def test_build_termination_port_count_mismatch():
    network = parse_termination_spec("*=r(50)", 2)
    with pytest.raises(ValueError, match="ports"):
        build_termination(network, 3)


def test_series_rlc_component():
    rlc = SeriesRLC(resistance=0.2, inductance=1e-9, capacitance=2e-9)
    w = np.array([0.0, 1e8])
    y = rlc.admittance(w)
    assert y[0] == 0.0  # series C blocks DC
    expected = 1.0 / (0.2 + 1j * 1e8 * 1e-9 + 1.0 / (1j * 1e8 * 2e-9))
    assert np.allclose(y[1], expected)
    # Codec round-trip through the JSON termination schema.
    from repro.pdn.termination import TerminationNetwork

    network = TerminationNetwork(terminations=[rlc])
    back = termination_from_dict(termination_to_dict(network))
    assert back.terminations[0] == rlc
    # Degenerate configurations are rejected.
    with pytest.raises(ValueError):
        SeriesRLC()  # DC short
    with pytest.raises(ValueError):
        SeriesRLC(resistance=0.0, capacitance=1e-9).state_space()


def test_series_rlc_state_space_matches_admittance():
    for rlc in (
        SeriesRLC(resistance=0.5, inductance=2e-9, capacitance=1e-9),
        SeriesRLC(resistance=0.5, inductance=2e-9),
        SeriesRLC(resistance=0.5, capacitance=1e-9),
        SeriesRLC(resistance=0.5),
    ):
        a, b, c, d = rlc.state_space()
        omega = np.array([1e7, 1e9])
        for w in omega:
            if a.size:
                h = c @ np.linalg.solve(
                    1j * w * np.eye(a.shape[0]) - a, b
                ) + d
                h = complex(h[0, 0])
            else:
                h = complex(d)
            assert np.isclose(h, rlc.admittance(np.array([w]))[0], rtol=1e-9)


# ----------------------------------------------------------------------
# base_weights guards
# ----------------------------------------------------------------------
def test_base_weights_clamps_zero_reference():
    flow = MacromodelingFlow(FlowOptions())
    data = _passive_two_port(k=8)
    xi = np.linspace(1.0, 2.0, 8)
    reference = np.linspace(1.0, 2.0, 8).astype(complex)
    reference[3] = 0.0  # a zero target-impedance sample
    weights = flow.base_weights(data, xi, reference)
    assert np.all(np.isfinite(weights))
    assert np.max(weights) == 1.0


def test_base_weights_uniform_fallback_for_flat_sensitivity():
    flow = MacromodelingFlow(FlowOptions())
    data = _passive_two_port(k=8)
    weights = flow.base_weights(
        data, np.zeros(8), np.ones(8, dtype=complex)
    )
    assert np.array_equal(weights, np.ones(8))


def test_base_weights_rejects_nonfinite_inputs():
    flow = MacromodelingFlow(FlowOptions())
    data = _passive_two_port(k=4)
    with pytest.raises(ValueError, match="non-finite"):
        flow.base_weights(
            data, np.array([1.0, np.inf, 1.0, 1.0]), np.ones(4, dtype=complex)
        )
    with pytest.raises(ValueError, match="relative"):
        flow.base_weights(
            data, np.ones(4), np.zeros(4, dtype=complex)
        )


# ----------------------------------------------------------------------
# External-data scenarios and campaign integration
# ----------------------------------------------------------------------
def _fast_external_scenario(**overrides):
    from repro.campaign.scenario import ScenarioSpec

    params = dict(
        name="ext",
        data_file=str(FIXTURE),
        termination_spec="0=r(1);1=rlc(r=0.2,c=1e-6)",
        observe_port=1,
        data_max_points=30,
        n_poles=6,
        refinement_rounds=1,
        enforcement_max_iterations=5,
    )
    params.update(overrides)
    return ScenarioSpec(**params)


def test_scenario_builds_external_testcase():
    scenario = _fast_external_scenario()
    testcase = scenario.build_testcase()
    assert testcase.geometry is None
    assert testcase.data.n_ports == 2
    assert testcase.data.n_frequencies == 30
    assert testcase.observe_port == 1
    assert testcase.ingest is not None
    assert testcase.ingest.data_is_passive is True
    assert np.any(testcase.termination.excitations)
    assert "external data" in testcase.summary()


def test_scenario_external_fields_require_data_file_at_build():
    from repro.campaign.scenario import CampaignSpec, ScenarioSpec

    # A synthetic scenario carrying external-only knobs fails on build...
    stray = ScenarioSpec(name="bad", termination_spec="*=r(50)")
    with pytest.raises(ValueError, match="data_file"):
        stray.build_testcase()
    # ... but a campaign base may hold them while data_file is an axis.
    spec = CampaignSpec.from_axes(
        "files",
        base=ScenarioSpec(
            name="files", termination_spec="*=r(50)", observe_port=1,
            data_max_points=20,
        ),
        axes={"data_file": [str(FIXTURE)]},
    )
    (scenario,) = spec.expand()
    assert scenario.build_testcase().data.n_ports == 2


def test_external_campaign_runs_with_cache(tmp_path):
    from repro.campaign import CampaignSpec, FlowCache, run_campaign

    spec = CampaignSpec.from_axes(
        "external-sweep",
        base=_fast_external_scenario(),
        axes={"termination_spec": ["0=r(1);1=rlc(r=0.2,c=1e-6)", "*=r(50)"]},
    )
    cache = FlowCache(tmp_path / "cache")
    result = run_campaign(spec, cache=cache, jobs=1)
    assert result.n_runs == 2
    assert result.n_failed == 0
    assert all(r.get("ingest") for r in result.records)
    # Second pass is served entirely from the content-addressed cache.
    again = run_campaign(spec, cache=cache, jobs=1)
    assert again.n_cache_hits == 2


def test_external_campaign_missing_file_fails_in_isolation(tmp_path):
    from repro.campaign import run_campaign

    bad = _fast_external_scenario(
        name="missing", data_file=str(tmp_path / "nope.s2p")
    )
    good = _fast_external_scenario(name="good")
    result = run_campaign([bad, good], jobs=1)
    assert result.n_failed == 1
    assert result.n_ok == 1


def test_external_campaign_bad_spec_isolated_on_warm_cache(tmp_path):
    """A member whose termination spec cannot even be fingerprinted must
    fail alone, also when its prefit group probes a warm cache."""
    from repro.campaign import FlowCache, run_campaign

    cache = FlowCache(tmp_path / "cache")
    good = _fast_external_scenario(name="good")
    run_campaign([good], cache=cache, jobs=1)  # warm the cache
    bad = _fast_external_scenario(
        name="bad", termination_spec="5=r(50)"  # port out of range
    )
    result = run_campaign([good, bad], cache=cache, jobs=1)
    assert result.n_ok == 1
    assert result.n_failed == 1
    assert result.n_cache_hits == 1


def test_external_default_termination_matches_renormalized_z0():
    scenario = _fast_external_scenario(
        name="matched", termination_spec=None, data_z0=10.0
    )
    testcase = scenario.build_testcase()
    assert testcase.data.z0 == 10.0
    assert all(
        isinstance(t, ResistiveTermination) and t.resistance == 10.0
        for t in testcase.termination.terminations
    )


def test_shared_standard_fits_group_external_scenarios():
    from repro.campaign.executor import _shared_standard_fits, _standard_fit_key

    scenarios = [
        _fast_external_scenario(name="a"),
        _fast_external_scenario(name="b", termination_spec="*=r(50)"),
    ]
    assert _standard_fit_key(scenarios[0]) == _standard_fit_key(scenarios[1])
    prefits = _shared_standard_fits(scenarios)
    assert len(prefits) == 1
    (fit,) = prefits.values()
    assert fit.model.n_ports == 2


def test_fixture_suffixless_copy_parses_to_two_ports(tmp_path):
    """Acceptance: a suffix-less copy of the CI fixture still reads as 2-port."""
    from repro.sparams.touchstone import read_touchstone_with_info

    bare = tmp_path / "coupled_rlc_export"
    bare.write_text(FIXTURE.read_text())
    data, info = read_touchstone_with_info(bare)
    assert data.n_ports == 2
    assert info.ports_source == "inferred"
    assert data.port_names == ("in", "out")


# ----------------------------------------------------------------------
# CLI external-data path
# ----------------------------------------------------------------------
def test_cli_fit_full_flow_on_external_file(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "fit",
            str(FIXTURE),
            "--termination",
            "0=r(1);1=rlc(r=0.2,c=1e-6)",
            "--observe-port",
            "1",
            "--poles",
            "6",
            "--max-points",
            "30",
            "--output-dir",
            str(tmp_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "ingest:" in out
    assert "passive, weighted cost" in out
    assert (tmp_path / "passive_model.json").exists()
    assert (tmp_path / "flow_report.txt").exists()
    assert (tmp_path / "flow_series.csv").exists()
    report = json.loads((tmp_path / "ingest_report.json").read_text())
    assert report["n_ports"] == 2
    assert report["data_is_passive"] is True


def test_cli_fit_plain_still_works(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "fit",
            str(FIXTURE),
            "--poles",
            "6",
            "--output-dir",
            str(tmp_path),
        ]
    )
    assert code == 0
    assert (tmp_path / "model.json").exists()
    assert (tmp_path / "ingest_report.json").exists()


def test_cli_fit_bad_termination_is_a_clean_error(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "fit",
            str(FIXTURE),
            "--termination",
            "0=bogus(1)",
            "--output-dir",
            str(tmp_path),
        ]
    )
    assert code == 2
    assert "bogus" in capsys.readouterr().err


def test_cli_flow_inline_termination(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "flow",
            str(FIXTURE),
            "--termination",
            "*=r(50)",
            "--observe-port",
            "0",
            "--poles",
            "6",
            "--max-points",
            "25",
            "--output-dir",
            str(tmp_path),
        ]
    )
    assert code == 0
    assert (tmp_path / "passive_model.json").exists()
