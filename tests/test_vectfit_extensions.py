"""Extensions: automatic order selection and DC-exact fitting."""

import numpy as np
import pytest

from repro.vectfit.core import vector_fit
from repro.vectfit.options import VFOptions
from repro.vectfit.order_selection import select_model_order
from tests.conftest import make_random_stable_model


class TestOrderSelection:
    def test_finds_true_order(self, rng):
        truth = make_random_stable_model(rng, n_real=1, n_pairs=2, n_ports=2)
        omega = np.geomspace(0.05, 100.0, 140)
        data = truth.frequency_response(omega)
        result = select_model_order(
            omega, data, orders=[3, 5, 7], target_rms=1e-8
        )
        assert result.selected_order == 5
        assert result.best.rms_error < 1e-8
        assert len(result.candidates) == 2  # stops at 5

    def test_stagnation_keeps_smaller_model(self, testcase):
        # On noisy-ish PDN data the error saturates; the sweep must stop.
        data = testcase.data
        result = select_model_order(
            data.omega,
            data.samples,
            orders=[8, 10, 12, 14, 16],
            target_rms=1e-12,  # unreachable
            stagnation_ratio=0.95,
        )
        assert result.selected_order <= 16
        assert len(result.candidates) <= 5

    def test_candidates_recorded_in_order(self, rng):
        truth = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.05, 100.0, 100)
        data = truth.frequency_response(omega)
        result = select_model_order(omega, data, orders=[2, 4, 6], target_rms=1e-10)
        orders = [c.n_poles for c in result.candidates]
        assert orders == sorted(orders)

    def test_validation(self, rng):
        truth = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.05, 100.0, 60)
        data = truth.frequency_response(omega)
        with pytest.raises(ValueError, match="ascending"):
            select_model_order(omega, data, orders=[6, 4])
        with pytest.raises(ValueError, match="target_rms"):
            select_model_order(omega, data, target_rms=0.0)


class TestDCExact:
    def test_dc_interpolated_exactly(self, testcase):
        data = testcase.data
        result = vector_fit(
            data.omega,
            data.samples,
            options=VFOptions(n_poles=12, dc_exact=True),
        )
        model_dc = result.model.frequency_response(np.array([0.0]))[0]
        assert np.allclose(model_dc, data.samples[0].real, atol=1e-11)

    def test_overall_fit_quality_retained(self, testcase):
        data = testcase.data
        plain = vector_fit(data.omega, data.samples, options=VFOptions(n_poles=12))
        exact = vector_fit(
            data.omega, data.samples, options=VFOptions(n_poles=12, dc_exact=True)
        )
        assert exact.rms_error < 3 * plain.rms_error

    def test_requires_dc_sample(self, rng):
        truth = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.1, 10.0, 40)  # no DC point
        data = truth.frequency_response(omega)
        with pytest.raises(ValueError, match="DC sample"):
            vector_fit(omega, data, options=VFOptions(n_poles=4, dc_exact=True))

    def test_requires_fit_const(self):
        with pytest.raises(ValueError, match="fit_const"):
            VFOptions(dc_exact=True, fit_const=False)

    def test_dc_exact_improves_dc_impedance(self, testcase):
        """The point of the feature: exact DC loaded impedance."""
        from repro.sensitivity.zpdn import target_impedance, target_impedance_of_model

        data = testcase.data
        zref = target_impedance(
            data.samples, data.omega, testcase.termination, testcase.observe_port
        )
        exact = vector_fit(
            data.omega, data.samples, options=VFOptions(n_poles=12, dc_exact=True)
        )
        z_model = target_impedance_of_model(
            exact.model, data.omega, testcase.termination, testcase.observe_port
        )
        rel_dc = abs(z_model[0] - zref[0]) / abs(zref[0])
        assert rel_dc < 1e-6
