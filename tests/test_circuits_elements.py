"""Unit tests for circuit branch elements."""

import numpy as np
import pytest

from repro.circuits.elements import (
    Capacitor,
    Conductance,
    Inductor,
    Resistor,
    SeriesRL,
    SeriesRLC,
)


class TestResistor:
    def test_admittance(self):
        r = Resistor("a", "b", resistance=25.0)
        assert np.allclose(r.admittance(np.array([0.0, 1e6])), 0.04)

    def test_invalid_resistance(self):
        with pytest.raises(ValueError):
            Resistor("a", "b", resistance=0.0)

    def test_same_node_rejected(self):
        with pytest.raises(ValueError, match="coincide"):
            Resistor("a", "a", resistance=1.0)


class TestConductance:
    def test_zero_allowed(self):
        g = Conductance("a", "b", conductance=0.0)
        assert np.allclose(g.admittance(np.array([1.0])), 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Conductance("a", "b", conductance=-1.0)


class TestInductor:
    def test_admittance(self):
        ind = Inductor("a", "b", inductance=1e-9)
        w = np.array([1e9])
        assert np.allclose(ind.admittance(w), 1.0 / (1j * 1e9 * 1e-9))

    def test_dc_rejected(self):
        ind = Inductor("a", "b", inductance=1e-9)
        with pytest.raises(ValueError, match="DC"):
            ind.admittance(np.array([0.0, 1.0]))


class TestCapacitor:
    def test_pure_capacitance(self):
        c = Capacitor("a", "0", capacitance=1e-12)
        w = np.array([1e9])
        assert np.allclose(c.admittance(w), 1j * 1e9 * 1e-12)

    def test_loss_tangent_conductance(self):
        c = Capacitor("a", "0", capacitance=1e-12, loss_tangent=0.02)
        w = np.array([1e9])
        y = c.admittance(w)[0]
        assert np.isclose(y.real, 1e9 * 1e-12 * 0.02)
        assert np.isclose(y.imag, 1e9 * 1e-12)

    def test_dc_is_leakage_only(self):
        c = Capacitor("a", "0", capacitance=1e-12, leakage=1e-6, loss_tangent=0.1)
        assert np.allclose(c.admittance(np.array([0.0])), 1e-6)


class TestSeriesRL:
    def test_dc_resistive(self):
        b = SeriesRL("a", "b", resistance=2e-3, inductance=1e-9)
        assert np.allclose(b.admittance(np.array([0.0])), 500.0)

    def test_high_frequency_inductive(self):
        b = SeriesRL("a", "b", resistance=1e-3, inductance=1e-9)
        w = np.array([1e10])
        y = b.admittance(w)[0]
        assert abs(y - 1.0 / (1j * 10.0)) < 1e-4

    def test_skin_corner_constant_below(self):
        b = SeriesRL("a", "b", resistance=1e-3, inductance=0.0, skin_corner_hz=1e8)
        w = 2 * np.pi * np.array([0.0, 1e4])
        y = b.admittance(w)
        assert np.allclose(np.abs(1.0 / y), 1e-3, rtol=1e-3)

    def test_skin_corner_sqrt_above(self):
        b = SeriesRL("a", "b", resistance=1e-3, inductance=0.0, skin_corner_hz=1e6)
        w = 2 * np.pi * np.array([1e8, 4e8])
        r = np.abs(1.0 / b.admittance(w))
        # One decade above the corner R ~ sqrt(f): quadrupling f doubles R.
        assert np.isclose(r[1] / r[0], 2.0, rtol=0.02)

    def test_zero_resistance_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SeriesRL("a", "b", resistance=0.0)


class TestSeriesRLC:
    def test_dc_open(self):
        b = SeriesRLC("a", "0", resistance=1e-3, inductance=1e-9, capacitance=1e-6)
        assert np.allclose(b.admittance(np.array([0.0])), 0.0)

    def test_resonance_resistive(self):
        r, l, c = 5e-3, 1e-9, 1e-6
        b = SeriesRLC("a", "0", resistance=r, inductance=l, capacitance=c)
        w0 = 1.0 / np.sqrt(l * c)
        y = b.admittance(np.array([w0]))[0]
        assert np.isclose(y.real, 1.0 / r, rtol=1e-9)
        assert abs(y.imag) < 1e-6 / r

    def test_validation(self):
        with pytest.raises(ValueError):
            SeriesRLC("a", "0", resistance=0.0)
        with pytest.raises(ValueError):
            SeriesRLC("a", "0", capacitance=0.0)
