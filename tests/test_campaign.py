"""Campaign subsystem: scenario grids, executor, cache, registry, CLI."""

import json

import numpy as np
import pytest

from repro.campaign.cache import FlowCache, flow_fingerprint
from repro.campaign.executor import (
    _shared_standard_fits,
    _standard_fit_key,
    default_blas_threads,
    execute_scenario,
    limit_blas_threads,
    run_campaign,
)
from repro.campaign.registry import CampaignRegistry, worst_by_group
from repro.campaign.report import campaign_report
from repro.campaign.scenario import (
    CampaignSpec,
    ScenarioSpec,
    filter_scenarios,
    load_campaign,
    save_campaign,
    slugify,
)
from repro.cli import main
from repro.flow.macromodel import FlowOptions
from repro.passivity.check import check_passivity
from repro.pdn.testcase import make_variant_testcase, perturb_termination
from repro.vectfit.options import VFOptions

# Coarse settings: each uncached flow run takes well under a second.
FAST = dict(
    size="small",
    n_frequencies=31,
    include_dc=False,
    n_poles=4,
    refinement_rounds=0,
    weight_model_order=3,
    enforcement_max_iterations=10,
)


def fast_scenario(name="s", **overrides) -> ScenarioSpec:
    params = dict(FAST, name=name)
    params.update(overrides)
    return ScenarioSpec(**params)


class TestScenarioSpec:
    def test_run_id_deterministic_and_content_addressed(self):
        a = fast_scenario("case", weight_mode="relative")
        b = fast_scenario("case", weight_mode="relative")
        c = fast_scenario("case", weight_mode="absolute")
        assert a.run_id == b.run_id
        assert a.run_id != c.run_id
        assert a.run_id.startswith("case-")

    def test_flow_options_mapping(self):
        scenario = fast_scenario(n_poles=7, weight_mode="absolute",
                                 enforcement_max_iterations=5)
        options = scenario.flow_options()
        assert isinstance(options, FlowOptions)
        assert options.vf == VFOptions(n_poles=7)
        assert options.weight_mode == "absolute"
        assert options.enforcement.max_iterations == 5

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario parameters"):
            ScenarioSpec.from_dict({"name": "x", "bogus_knob": 1})


class TestCampaignSpec:
    def test_grid_expansion(self):
        spec = CampaignSpec.from_axes(
            "grid",
            fast_scenario("base"),
            {"weight_mode": ["relative", "absolute"],
             "decap_c_scale": [0.5, 1.0, 2.0]},
        )
        scenarios = spec.expand()
        assert len(scenarios) == 6
        names = [s.name for s in scenarios]
        assert len(set(names)) == 6
        assert all("weight_mode=" in n and "decap_c_scale=" in n
                   for n in names)
        # Deterministic ordering regardless of axes dict insertion order.
        flipped = CampaignSpec.from_axes(
            "grid",
            fast_scenario("base"),
            {"decap_c_scale": [0.5, 1.0, 2.0],
             "weight_mode": ["relative", "absolute"]},
        )
        assert [s.run_id for s in flipped.expand()] == \
               [s.run_id for s in scenarios]

    def test_empty_axes_yield_base(self):
        spec = CampaignSpec.from_axes("solo", fast_scenario("only"))
        scenarios = spec.expand()
        assert len(scenarios) == 1
        assert scenarios[0].name == "only"

    def test_empty_grid(self):
        spec = CampaignSpec.from_axes(
            "empty", fast_scenario(), {"n_poles": []}
        )
        assert spec.expand() == []
        result = run_campaign(spec)
        assert result.n_runs == 0
        assert result.n_failed == 0
        assert "0 runs" in result.summary()

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep axes"):
            CampaignSpec.from_axes("bad", fast_scenario(), {"nope": [1]})

    def test_json_roundtrip(self, tmp_path):
        spec = CampaignSpec.from_axes(
            "rt", fast_scenario("base"),
            {"weight_mode": ["relative", "absolute"]},
        )
        path = tmp_path / "spec.json"
        save_campaign(spec, path)
        back = load_campaign(path)
        assert back == spec
        assert [s.run_id for s in back.expand()] == \
               [s.run_id for s in spec.expand()]

    def test_filter_scenarios(self):
        spec = CampaignSpec.from_axes(
            "f", fast_scenario("base"),
            {"weight_mode": ["relative", "absolute"]},
        )
        scenarios = spec.expand()
        assert len(filter_scenarios(scenarios, None)) == 2
        assert len(filter_scenarios(scenarios, "absolute")) == 1
        assert len(filter_scenarios(scenarios, "*weight_mode=rel*")) == 1
        assert filter_scenarios(scenarios, "no-such") == []
        # An exact expanded name (always contains brackets) must match,
        # both as a substring pattern and inside a glob.
        assert filter_scenarios(scenarios, scenarios[0].name) == \
               [scenarios[0]]
        assert filter_scenarios(scenarios, scenarios[0].name + "*") == \
               [scenarios[0]]

    def test_slugify_is_path_safe(self):
        assert slugify("../evil") == "..-evil"
        assert slugify("..") == "run"
        assert slugify("a/b c") == "a-b-c"
        assert slugify("") == "run"


class TestVariantTestcase:
    def test_perturbation_changes_termination_only(self):
        nominal = make_variant_testcase("small", n_frequencies=16,
                                        include_dc=False)
        variant = make_variant_testcase(
            "small", n_frequencies=16, include_dc=False,
            decap_c_scale=2.0, vrm_resistance=5e-3, total_die_current=2.0,
        )
        assert np.allclose(variant.data.samples, nominal.data.samples)
        omega = np.array([1e6, 1e9])
        y_nom = nominal.termination.admittance_matrices(omega)
        y_var = variant.termination.admittance_matrices(omega)
        assert not np.allclose(y_nom, y_var)
        assert np.isclose(np.sum(variant.termination.excitations), 2.0)
        assert "decapC" in variant.name and "vrmR" in variant.name

    def test_medium_size_exists(self):
        from repro.pdn.testcase import _medium_geometry

        geometry = _medium_geometry()
        assert len(geometry.ports_with_role("die")) == 6
        assert len(geometry.ports_with_role("vrm")) == 1

    def test_bad_scale_rejected(self):
        nominal = make_variant_testcase("small", n_frequencies=16,
                                        include_dc=False)
        with pytest.raises(ValueError, match="positive"):
            perturb_termination(nominal.termination, decap_c_scale=0.0)


@pytest.fixture(scope="module")
def campaign_env(tmp_path_factory):
    """One small campaign executed serially; reused by the read-side tests."""
    root = tmp_path_factory.mktemp("campaign")
    spec = CampaignSpec.from_axes(
        "mini", fast_scenario("mini"),
        {"weight_mode": ["relative", "absolute"]},
    )
    registry = CampaignRegistry(root / "registry")
    cache = FlowCache(root / "cache")
    result = run_campaign(spec, registry=registry, cache=cache, jobs=1)
    return {"root": root, "spec": spec, "registry": registry,
            "cache": cache, "result": result}


class TestExecutor:
    def test_single_scenario_end_to_end(self, campaign_env):
        result = campaign_env["result"]
        assert result.n_runs == 2
        assert result.n_ok == 2
        assert result.n_failed == 0
        record = result.records[0]
        assert record["metrics"]["max_rel_impedance_weighted_cost"] >= 0.0
        assert record["timings"]["flow_s"] > 0.0
        assert len(record["accuracy_table"]) == 4

    def test_registry_artifacts_written(self, campaign_env):
        registry = campaign_env["registry"]
        for record in campaign_env["result"].records:
            assert registry.has_result(record["run_id"])
            model, metadata = registry.load_model(record["run_id"])
            assert metadata["run_id"] == record["run_id"]
            assert check_passivity(model).is_passive

    def test_cache_hit_on_identical_spec(self, campaign_env):
        # Fresh registry, same cache: every run must be served from cache.
        registry = CampaignRegistry(campaign_env["root"] / "registry2")
        result = run_campaign(
            campaign_env["spec"], registry=registry,
            cache=campaign_env["cache"], jobs=1,
        )
        assert result.n_ok == 2
        assert result.n_cache_hits == 2
        for record in result.records:
            assert record["timings"]["flow_s"] == 0.0
        # Metrics survive the cache round-trip.
        original = {r["run_id"]: r for r in campaign_env["result"].records}
        for record in result.records:
            assert record["metrics"] == pytest.approx(
                original[record["run_id"]]["metrics"]
            )

    def test_resume_skips_completed(self, campaign_env):
        result = run_campaign(
            campaign_env["spec"], registry=campaign_env["registry"],
            cache=campaign_env["cache"], jobs=1, resume=True,
        )
        assert result.n_resumed == 2
        assert result.n_ok == 2

    def test_worker_failure_is_isolated(self, campaign_env, tmp_path):
        # observe_port=99 does not exist -> that worker fails; the healthy
        # scenario (already cached) still completes.  jobs=2 exercises the
        # real process pool.
        good = fast_scenario("mini", weight_mode="relative")
        bad = fast_scenario("doomed", observe_port=99)
        registry = CampaignRegistry(tmp_path / "reg")
        result = run_campaign(
            [good, bad], registry=registry,
            cache=campaign_env["cache"], jobs=2,
        )
        assert result.n_runs == 2
        assert result.n_ok == 1
        assert result.n_failed == 1
        failed = [r for r in result.records if r["status"] == "failed"][0]
        assert failed["name"] == "doomed"
        assert failed["error"]
        stored = registry.load_result(failed["run_id"])
        assert stored["status"] == "failed"

    def test_duplicate_scenarios_deduped(self, campaign_env):
        scenario = fast_scenario("mini", weight_mode="relative")
        result = run_campaign(
            [scenario, scenario], cache=campaign_env["cache"], jobs=1
        )
        assert result.n_runs == 1


class TestBatchOptimizations:
    def test_environment_recorded(self, campaign_env):
        # Serial runs are never thread-capped; the record says so.
        record = campaign_env["result"].records[0]
        env = record["environment"]
        assert env["blas_thread_limit"] is None
        assert env["blas_limit_method"] is None
        assert env["shared_standard_fit"] is True  # two scenarios, one data

    def test_standard_fit_key_groups_by_data_and_order(self):
        a = fast_scenario("a", decap_c_scale=0.5)
        b = fast_scenario("b", total_die_current=2.0)
        c = fast_scenario("c", n_poles=6)
        d = fast_scenario("d", n_frequencies=41)
        assert _standard_fit_key(a) == _standard_fit_key(b)
        assert _standard_fit_key(a) != _standard_fit_key(c)
        assert _standard_fit_key(a) != _standard_fit_key(d)

    def test_shared_fits_only_for_groups(self):
        lone = fast_scenario("solo")
        pair = [fast_scenario("p1", decap_c_scale=0.5),
                fast_scenario("p2", decap_c_scale=2.0)]
        assert _shared_standard_fits([lone]) == {}
        prefits = _shared_standard_fits(pair + [lone, fast_scenario("q", n_poles=6)])
        assert set(prefits) == {_standard_fit_key(pair[0])}
        fit = prefits[_standard_fit_key(pair[0])]
        assert fit.model.n_poles == pair[0].n_poles

    def test_warm_cache_skips_prefits(self, tmp_path):
        # Once every scenario of a group is cache-served, the dispatcher
        # must not pay for the shared standard fit again.
        scenarios = [fast_scenario("c1", decap_c_scale=0.5),
                     fast_scenario("c2", decap_c_scale=2.0)]
        cache = FlowCache(tmp_path / "cache")
        run_campaign(list(scenarios), cache=cache, jobs=1)
        assert _shared_standard_fits(list(scenarios), cache) == {}
        # A cold member keeps the group's prefit alive.
        with_cold = list(scenarios) + [fast_scenario("c3", decap_c_scale=3.0)]
        assert len(_shared_standard_fits(with_cold, cache)) == 1

    def test_shared_fit_matches_worker_fit(self, tmp_path):
        # A campaign with and without shared standard fits must produce
        # identical metrics: fit_many is deterministic.
        scenarios = [fast_scenario("s1", decap_c_scale=0.5),
                     fast_scenario("s2", decap_c_scale=2.0)]
        shared = run_campaign(list(scenarios), jobs=1, share_fits=True)
        solo = run_campaign(list(scenarios), jobs=1, share_fits=False)
        assert shared.n_ok == solo.n_ok == 2
        for a, b in zip(shared.records, solo.records):
            assert a["environment"]["shared_standard_fit"]
            assert not b["environment"]["shared_standard_fit"]
            assert a["metrics"] == pytest.approx(b["metrics"], rel=1e-12)

    def test_order_mismatch_drops_injected_fit(self, campaign_env):
        scenario = fast_scenario("mini", weight_mode="relative")
        wrong = _shared_standard_fits(
            [fast_scenario("w1", n_poles=6), fast_scenario("w2", n_poles=6,
                                                           decap_c_scale=0.5)]
        )
        (bad_fit,) = wrong.values()
        record, model = execute_scenario(
            scenario, str(campaign_env["cache"].root), standard_fit=bad_fit
        )
        assert record["status"] == "ok"
        assert record["environment"]["shared_standard_fit"] is False

    def test_limit_blas_threads(self):
        import os

        try:
            method = limit_blas_threads(1)
            assert method in ("threadpoolctl", "ctypes-openblas", "env-only")
            assert os.environ["OPENBLAS_NUM_THREADS"] == "1"
            with pytest.raises(ValueError, match="at least 1"):
                limit_blas_threads(0)
        finally:
            # Uncap again: the rest of the suite runs in this process.
            limit_blas_threads(os.cpu_count() or 1)
            for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                        "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS",
                        "VECLIB_MAXIMUM_THREADS"):
                os.environ.pop(var, None)

    def test_default_blas_threads(self):
        import os

        cores = os.cpu_count() or 1
        assert default_blas_threads(1) == cores
        assert default_blas_threads(2 * cores) == 1
        assert default_blas_threads(2) == max(1, cores // 2)


class TestCacheAndFingerprint:
    def test_fingerprint_tracks_content(self):
        testcase = make_variant_testcase("small", n_frequencies=16,
                                         include_dc=False)
        options = FlowOptions(vf=VFOptions(n_poles=4))
        key = flow_fingerprint(testcase.data, testcase.termination, 0, options)
        assert key == flow_fingerprint(testcase.data, testcase.termination,
                                       0, options)
        assert key != flow_fingerprint(testcase.data, testcase.termination,
                                       1, options)
        assert key != flow_fingerprint(
            testcase.data, testcase.termination, 0,
            FlowOptions(vf=VFOptions(n_poles=5)),
        )
        perturbed = perturb_termination(testcase.termination,
                                        decap_c_scale=2.0)
        assert key != flow_fingerprint(testcase.data, perturbed, 0, options)

    def test_corrupt_entry_is_a_miss(self, campaign_env):
        cache = campaign_env["cache"]
        paths = list(cache.root.glob("*/*.json"))
        assert paths
        key = paths[0].stem
        paths[0].write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None


class TestRegistry:
    def test_manifest_roundtrip(self, campaign_env):
        registry = campaign_env["registry"]
        manifest = registry.load_manifest()
        assert manifest["campaign"]["name"] == "mini"
        assert manifest["n_runs"] == 2
        run_ids = {entry["run_id"] for entry in manifest["runs"]}
        assert run_ids == {r["run_id"]
                           for r in campaign_env["result"].records}

    def test_manifest_keeps_earlier_runs_on_partial_rerun(
        self, campaign_env, tmp_path
    ):
        # Full campaign, then a filtered re-run into the same registry:
        # the manifest must still index every stored run.
        registry = CampaignRegistry(tmp_path / "reg")
        spec = campaign_env["spec"]
        run_campaign(spec, registry=registry,
                     cache=campaign_env["cache"], jobs=1)
        subset = [s for s in spec.expand() if "absolute" in s.name]
        run_campaign(spec, scenarios=subset, registry=registry,
                     cache=campaign_env["cache"], jobs=1)
        manifest = registry.load_manifest()
        assert manifest["n_runs"] == 2
        assert {r["run_id"] for r in manifest["runs"]} == \
               {s.run_id for s in spec.expand()}

    def test_query_and_aggregation(self, campaign_env):
        registry = campaign_env["registry"]
        records = registry.query()
        assert len(records) == 2
        relative_only = registry.query(
            lambda r: r["scenario"]["weight_mode"] == "relative"
        )
        assert len(relative_only) == 1
        worst = worst_by_group(records, "weight_mode",
                               "max_rel_impedance_weighted_cost")
        assert set(worst) == {"relative", "absolute"}
        for entry in worst.values():
            assert entry["value"] >= 0.0

    def test_report_renders(self, campaign_env):
        text = campaign_report(campaign_env["result"])
        assert "worst max_rel_impedance_weighted_cost" in text
        assert "mini" in text


class TestCampaignCLI:
    def _write_spec(self, path, n_frequencies=31):
        payload = {
            "name": "clicamp",
            "base": dict(FAST, name="cli", n_frequencies=n_frequencies),
            "axes": {"weight_mode": ["relative", "absolute"]},
        }
        path.write_text(json.dumps(payload), encoding="utf-8")

    def test_dry_run_lists_scenarios(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        self._write_spec(spec_path)
        code = main(["campaign", str(spec_path), "--dry-run",
                     "--output-dir", str(tmp_path / "out")])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 scenario(s)" in out

    def test_filter_without_match(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        self._write_spec(spec_path)
        code = main(["campaign", str(spec_path), "--filter", "zzz",
                     "--output-dir", str(tmp_path / "out")])
        assert code == 0
        assert "no scenarios" in capsys.readouterr().out

    def test_campaign_and_resume(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        self._write_spec(spec_path)
        out_dir = tmp_path / "campaigns"
        argv = ["campaign", str(spec_path), "--jobs", "1",
                "--output-dir", str(out_dir)]
        assert main(argv) == 0
        assert (out_dir / "clicamp" / "manifest.json").exists()
        assert (out_dir / "clicamp" / "report.txt").exists()
        capsys.readouterr()

        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 resumed" in out
