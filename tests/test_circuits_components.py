"""Termination components: frequency response vs state-space consistency."""

import numpy as np
import pytest

from repro.circuits.components import (
    DecouplingCapacitor,
    DieBlock,
    OpenTermination,
    ResistiveTermination,
    ShortTermination,
    VRMModel,
)
from repro.statespace.system import StateSpaceModel

ALL_COMPONENTS = [
    OpenTermination(),
    ResistiveTermination(resistance=25.0),
    ShortTermination(resistance=1e-4),
    VRMModel(resistance=1e-3, inductance=1e-10),
    DecouplingCapacitor(capacitance=1e-6, esr=5e-3, esl=1e-9),
    DieBlock(resistance=0.2, capacitance=2e-9),
]


@pytest.mark.parametrize("component", ALL_COMPONENTS, ids=lambda c: type(c).__name__)
class TestStateSpaceConsistency:
    """The state-space realization must reproduce admittance(omega)."""

    def test_response_matches_admittance(self, component):
        a, b, c, d = component.state_space()
        system = StateSpaceModel(a, b, c, np.array([[d]]))
        omega = np.geomspace(1e3, 1e10, 25)
        y_ss = system.frequency_response(omega)[:, 0, 0]
        y_direct = component.admittance(omega)
        assert np.allclose(y_ss, y_direct, rtol=1e-9, atol=1e-12)

    def test_stable_realization(self, component):
        a, b, c, d = component.state_space()
        system = StateSpaceModel(a, b, c, np.array([[d]]))
        assert system.is_stable(tol=1e-9)

    def test_positive_real_admittance(self, component):
        """Passive one-ports: Re Y(j omega) >= 0 everywhere."""
        omega = np.geomspace(1e2, 1e10, 40)
        assert np.all(component.admittance(omega).real >= -1e-15)

    def test_describe_nonempty(self, component):
        assert component.describe()


class TestOpenTermination:
    def test_zero_admittance(self):
        t = OpenTermination()
        assert np.allclose(t.admittance(np.array([0.0, 1e9])), 0.0)

    def test_empty_states(self):
        a, b, c, d = t = OpenTermination().state_space()
        assert a.shape == (0, 0)
        assert d == 0.0


class TestDecouplingCapacitor:
    def test_resonance_frequency(self):
        cap = DecouplingCapacitor(capacitance=1e-6, esr=5e-3, esl=1e-9)
        w0 = 2 * np.pi * cap.resonance_hz
        y = cap.admittance(np.array([w0]))[0]
        # At series resonance the admittance is 1/ESR (purely real).
        assert np.isclose(abs(y), 1.0 / 5e-3, rtol=1e-6)

    def test_dc_blocks(self):
        cap = DecouplingCapacitor()
        assert cap.admittance(np.array([0.0]))[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DecouplingCapacitor(capacitance=-1e-6)
        with pytest.raises(ValueError):
            DecouplingCapacitor(esr=0.0)


class TestDieBlock:
    def test_dc_blocks(self):
        die = DieBlock()
        assert die.admittance(np.array([0.0]))[0] == 0.0

    def test_high_frequency_resistive(self):
        die = DieBlock(resistance=0.5, capacitance=1e-9)
        y = die.admittance(np.array([1e12]))[0]
        assert np.isclose(y.real, 2.0, rtol=1e-3)


class TestVRMModel:
    def test_dc_resistive(self):
        vrm = VRMModel(resistance=2e-3, inductance=1e-9)
        # State-space at DC: y -> 1/R
        a, b, c, d = vrm.state_space()
        dc_gain = d - (c @ np.linalg.solve(a, b))[0, 0]
        assert np.isclose(dc_gain, 500.0)


class TestShortAndResistive:
    def test_short_admittance(self):
        assert np.isclose(
            ShortTermination(resistance=1e-4).admittance(np.array([1.0]))[0], 1e4
        )

    def test_resistive_validation(self):
        with pytest.raises(ValueError):
            ResistiveTermination(resistance=0.0)
