"""API-surface snapshot: public names of repro/repro.api/repro.flow.

Fails when the exported surface drifts from ``tests/data/api_surface.txt``
so breaking changes are an explicit decision (regenerate the snapshot via
``python tools/api_surface.py --update``), never an accident.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_tool():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import api_surface
    finally:
        sys.path.pop(0)
    return api_surface


def test_surface_matches_snapshot():
    tool = _load_tool()
    snapshot = tool.SNAPSHOT.read_text(encoding="utf-8")
    current = tool.current_surface()
    assert current == snapshot, (
        "public API surface changed; run "
        "'python tools/api_surface.py --update' if the change is intended"
    )


def test_exported_names_resolve():
    import importlib

    tool = _load_tool()
    for line in tool.current_surface().splitlines():
        module_name, _, attribute = line.rpartition(".")
        module = importlib.import_module(module_name)
        assert hasattr(module, attribute), line


def test_snapshot_covers_subsystem_modules():
    # PR 10 widened the tracked surface: the campaign, ingest and
    # passivity subsystems are public API too, not just the top layers.
    tool = _load_tool()
    for module_name in ("repro.campaign", "repro.ingest", "repro.passivity"):
        assert module_name in tool.MODULES
        prefix = module_name + "."
        assert any(
            line.startswith(prefix)
            for line in tool.SNAPSHOT.read_text(encoding="utf-8").splitlines()
        ), f"snapshot records no names for {module_name}"
