"""Backend layer tests: registry behaviour, NumpyBackend equivalence
against the legacy direct-call oracle, the resilient numpy fallback, and
the structured half-size Hamiltonian eigensolve."""

import numpy as np
import pytest
import scipy.linalg

from repro.backend import (
    KNOWN_BACKENDS,
    NumpyBackend,
    active_backend,
    available_backends,
    get_backend,
    resolve_backend_name,
    use_backend,
    validate_backend_name,
)
from repro.backend.device import ResilientBackend, missing_backend_error
from repro.obs import telemetry_session
from repro.passivity.cost import BlockDiagonalCost
from repro.statespace.hamiltonian import (
    half_size_crossings,
    half_size_from_invariants,
    half_size_invariants,
    imaginary_eigenvalue_frequencies,
)
from repro.statespace.poleresidue import PoleResidueModel
from repro.vectfit import kernels
from tests.conftest import make_random_stable_model


def rel_rms(a, b):
    a, b = np.asarray(a), np.asarray(b)
    scale = max(float(np.sqrt(np.mean(np.abs(b) ** 2))), 1e-300)
    return float(np.sqrt(np.mean(np.abs(a - b) ** 2))) / scale


def make_reciprocal_model(seed=3, n_ports=3, n_pairs=4, boost=1.0):
    """Random stable *reciprocal* model (symmetric residues and const)."""
    rng = np.random.default_rng(seed)
    model = make_random_stable_model(
        rng, n_real=2, n_pairs=n_pairs, n_ports=n_ports
    )
    residues = 0.5 * (model.residues + model.residues.transpose(0, 2, 1))
    const = 0.5 * (model.const + model.const.T) * 0.5
    return PoleResidueModel(model.poles, residues * boost, const)


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert resolve_backend_name("auto") in KNOWN_BACKENDS
        assert resolve_backend_name(None) in KNOWN_BACKENDS
        assert resolve_backend_name("numpy") == "numpy"

    def test_validate_rejects_unknown(self):
        validate_backend_name("auto")
        for name in KNOWN_BACKENDS:
            validate_backend_name(name)
        with pytest.raises(ValueError, match="bogus"):
            validate_backend_name("bogus")

    def test_get_backend_is_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_use_backend_switches_and_restores(self):
        before = active_backend()
        with use_backend("numpy") as backend:
            assert backend.name == "numpy"
            assert active_backend() is backend
        assert active_backend() is before

    def test_use_backend_none_keeps_current(self):
        with use_backend("numpy") as outer:
            with use_backend(None) as inner:
                assert inner is outer

    def test_use_backend_accepts_instance(self):
        instance = NumpyBackend()
        with use_backend(instance) as backend:
            assert backend is instance
            assert active_backend() is instance

    def test_missing_backend_error_names_extra(self):
        error = missing_backend_error("cupy", "cupy", "gpu")
        assert "cupy" in str(error)
        assert "[gpu]" in str(error)

    def test_unavailable_backend_raises_import_error(self):
        missing = [
            name
            for name in ("cupy", "jax", "array_api_strict")
            if name not in available_backends()
        ]
        if not missing:
            pytest.skip("all optional backends installed")
        with pytest.raises(ImportError, match="pip install"):
            get_backend(missing[0])


class TestNumpyBackendEquivalence:
    """NumpyBackend delegates to the exact legacy calls: results must
    match a direct-numpy replica to <= 1e-10 relative RMS (they are in
    fact bit-identical)."""

    def test_scaled_lstsq_matches_direct_solver(self):
        rng = np.random.default_rng(0)
        # Ill-conditioned columns, like a partial-fraction basis.
        a = rng.normal(size=(60, 8)) * np.logspace(0, 8, 8)
        b = rng.normal(size=(60, 3))
        with use_backend("numpy"):
            routed = kernels.scaled_lstsq(a, b)
        norms = kernels.column_scales(a)
        direct = np.linalg.lstsq(a / norms, b, rcond=None)[0] / norms[:, None]
        assert rel_rms(routed, direct) <= 1e-10

    def test_batched_qr_solve_matches_per_slice_lstsq(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(5, 40, 6)) * np.logspace(0, 5, 6)
        b = rng.normal(size=(5, 40))
        with use_backend("numpy"):
            routed = kernels.batched_qr_solve(a, b)
        oracle = np.stack(
            [np.linalg.lstsq(a[i], b[i], rcond=None)[0] for i in range(5)]
        )
        assert rel_rms(routed, oracle) <= 1e-10

    def test_cost_factorization_matches_scipy_cho_solve(self):
        rng = np.random.default_rng(2)
        n, p = 6, 2
        m = rng.normal(size=(n, n))
        gram = m @ m.T + n * np.eye(n)
        ridge = 1e-10
        with use_backend("numpy"):
            cost = BlockDiagonalCost(gram, p, ridge=ridge)
            rhs = rng.normal(size=(n, 4))
            routed = cost.solve(0, 0, rhs)
        shifted = gram + ridge * (np.trace(gram) / n) * np.eye(n)
        cho = np.linalg.cholesky(shifted)
        direct = scipy.linalg.cho_solve((cho, True), rhs, check_finite=False)
        assert rel_rms(routed, direct) <= 1e-10

    def test_primitives_match_library_calls(self):
        rng = np.random.default_rng(3)
        backend = NumpyBackend()
        a = rng.normal(size=(4, 7, 7))
        assert np.array_equal(backend.qr_r(a), np.linalg.qr(a, mode="r"))
        assert np.array_equal(
            backend.eigvals(a[0]), np.linalg.eigvals(a[0])
        )
        sym = a[1] @ a[1].transpose()
        vals, vecs = backend.eigh(sym)
        vals_np, vecs_np = np.linalg.eigh(sym)
        assert np.array_equal(vals, vals_np)
        assert np.array_equal(vecs, vecs_np)
        assert np.array_equal(
            backend.kron(a[0], a[1]), np.kron(a[0], a[1])
        )
        assert np.array_equal(
            backend.einsum("ij,jk->ik", a[0], a[1]),
            np.einsum("ij,jk->ik", a[0], a[1]),
        )


class TestHalfSizeHamiltonian:
    def test_half_size_crossings_match_full_size(self):
        model = make_reciprocal_model(seed=5, boost=1.9)
        ss = model.to_state_space()
        full = imaginary_eigenvalue_frequencies(
            ss, gamma=1.0, response_fn=model.frequency_response
        )
        invariants = half_size_invariants(ss.a, ss.b, ss.d, gamma=1.0)
        p = half_size_from_invariants(invariants, ss.c)
        assert p.shape[0] == ss.a.shape[0]  # half of the 2N Hamiltonian
        half = half_size_crossings(
            p, model.frequency_response, gamma=1.0
        )
        assert half.size == full.size
        if full.size:
            assert np.max(np.abs(half - full) / np.maximum(full, 1.0)) <= 1e-6

    def test_half_size_rejects_singular_gamma_shift(self):
        model = make_reciprocal_model(seed=7)
        ss = model.to_state_space()
        d = np.eye(ss.d.shape[0])  # D - gamma*I singular at gamma = 1
        with pytest.raises(ValueError):
            half_size_invariants(ss.a, ss.b, d, gamma=1.0)

    def test_engine_uses_half_size_only_for_reciprocal_models(self):
        from repro.passivity.engine import CheckerOptions, PassivityChecker

        model = make_reciprocal_model(seed=9, boost=1.9)
        checker = PassivityChecker(
            model, options=CheckerOptions(strategy="exact")
        )
        report = checker.check(model)
        assert checker.n_half_size_checks == 1

        rng = np.random.default_rng(11)
        skewed = make_random_stable_model(rng, n_real=2, n_pairs=3, n_ports=3)
        skewed = PoleResidueModel(
            skewed.poles, skewed.residues, 0.5 * skewed.const
        )
        full_checker = PassivityChecker(
            skewed, options=CheckerOptions(strategy="exact")
        )
        full_checker.check(skewed)
        assert full_checker.n_half_size_checks == 0  # not reciprocal

        # The half-size report agrees with the full-size oracle check.
        from repro.passivity.check import check_passivity

        oracle = check_passivity(model)
        assert report.is_passive == oracle.is_passive
        assert abs(report.worst_sigma - oracle.worst_sigma) <= 1e-6 * max(
            oracle.worst_sigma, 1.0
        )


class TestResilientBackend:
    class _FlakyBackend(NumpyBackend):
        name = "flaky"
        device = "test"

        def eigvals(self, a, *, overwrite=False):
            raise RuntimeError("device exploded")

        def svd(self, a, *, compute_uv=True):
            result = NumpyBackend.svd(self, a, compute_uv=compute_uv)
            if compute_uv:
                return result
            return result * np.nan  # non-finite from finite input

    def test_fallback_on_raise_and_counter(self, tmp_path):
        wrapped = ResilientBackend(self._FlakyBackend())
        rng = np.random.default_rng(4)
        a = rng.normal(size=(5, 5))
        with telemetry_session(tmp_path, label="t") as tel:
            values = wrapped.eigvals(a)
        assert np.array_equal(np.sort(values), np.sort(np.linalg.eigvals(a)))
        assert tel.counters.get("fallback.backend") == 1

    def test_fallback_on_nonfinite_result(self, tmp_path):
        wrapped = ResilientBackend(self._FlakyBackend())
        rng = np.random.default_rng(5)
        a = rng.normal(size=(3, 4))
        with telemetry_session(tmp_path, label="t") as tel:
            sigma = wrapped.svd(a, compute_uv=False)
        assert np.array_equal(
            sigma, np.linalg.svd(a, compute_uv=False)
        )
        assert tel.counters.get("fallback.backend") == 1

    def test_untouched_ops_pass_through(self):
        wrapped = ResilientBackend(self._FlakyBackend())
        assert wrapped.name == "flaky"
        assert wrapped.device == "test"
        a = np.arange(6.0).reshape(2, 3)
        assert np.array_equal(wrapped.asarray(a), a)


class TestArrayApiStrictSmoke:
    """Compatibility smoke: the routed kernels agree with numpy when run
    through the strict array-api backend (skipped when not installed)."""

    def test_kernels_agree_with_numpy(self):
        pytest.importorskip("array_api_strict")
        rng = np.random.default_rng(6)
        a = rng.normal(size=(30, 5)) * np.logspace(0, 4, 5)
        b = rng.normal(size=30)
        with use_backend("numpy"):
            reference = kernels.scaled_lstsq(a, b)
        with use_backend("array_api_strict"):
            strict = kernels.scaled_lstsq(a, b)
        assert rel_rms(strict, reference) <= 1e-10

    def test_half_size_crossings_agree_with_numpy(self):
        pytest.importorskip("array_api_strict")
        model = make_reciprocal_model(seed=8, boost=1.9)
        ss = model.to_state_space()
        invariants = half_size_invariants(ss.a, ss.b, ss.d, gamma=1.0)
        p = half_size_from_invariants(invariants, ss.c)
        with use_backend("numpy"):
            reference = half_size_crossings(p, model.frequency_response)
        with use_backend("array_api_strict"):
            strict = half_size_crossings(p, model.frequency_response)
        assert strict.size == reference.size
        if reference.size:
            assert rel_rms(strict, reference) <= 1e-8
