"""Shape-claim integration tests (DESIGN.md C1-C5).

These assert the paper's qualitative results on the synthetic test case:
who wins, by roughly what factor, and where -- not absolute numbers.
"""

import numpy as np

from repro.flow.metrics import (
    max_relative_impedance_error,
    rms_scattering_error,
)
from repro.passivity.check import check_passivity

LOW_BAND = (0.0, 2 * np.pi * 1e6)  # DC - 1 MHz, the hypersensitive region


def low_band_error(model, flow_result, testcase):
    return max_relative_impedance_error(
        model,
        testcase.data.omega,
        flow_result.reference_impedance,
        testcase.termination,
        testcase.observe_port,
        band=LOW_BAND,
    )


class TestC1WeightedEnforcementWins:
    """C1: standard-L2 enforcement destroys the loaded impedance; the
    sensitivity-weighted enforcement preserves it (paper Fig. 5)."""

    def test_standard_enforcement_destroys_impedance(self, flow_result, testcase):
        error = low_band_error(flow_result.standard_enforced.model, flow_result, testcase)
        assert error > 0.5  # at least 50% off (paper: order-of-magnitude)

    def test_weighted_enforcement_preserves_impedance(self, flow_result, testcase):
        error = low_band_error(flow_result.weighted_enforced.model, flow_result, testcase)
        assert error < 0.25

    def test_improvement_factor_order_of_magnitude(self, flow_result, testcase):
        std = low_band_error(flow_result.standard_enforced.model, flow_result, testcase)
        wtd = low_band_error(flow_result.weighted_enforced.model, flow_result, testcase)
        assert std / wtd > 5.0


class TestC2PassivityAchieved:
    """C2: violations before enforcement, none after (paper Fig. 4)."""

    def test_violations_before(self, flow_result):
        report = flow_result.pre_enforcement_report
        assert not report.is_passive
        assert report.worst_sigma > 1.0
        assert len(report.bands) >= 1

    def test_passive_after_both_schemes(self, flow_result):
        for result in (flow_result.standard_enforced, flow_result.weighted_enforced):
            report = check_passivity(result.model)
            assert report.is_passive
            assert report.worst_sigma <= 1.0


class TestC3ScatteringAccuracyRetained:
    """C3: all models look equally good in the native scattering domain
    (paper Figs. 1 and 6) -- the difference only shows under loading."""

    def test_scattering_errors_comparable(self, flow_result, testcase):
        omega, samples = testcase.data.omega, testcase.data.samples
        rms_std = rms_scattering_error(flow_result.standard_fit.model, omega, samples)
        rms_wtd_passive = rms_scattering_error(
            flow_result.weighted_enforced.model, omega, samples
        )
        assert rms_std < 0.01
        assert rms_wtd_passive < 0.03  # same order as the standard fit

    def test_standard_fit_invisible_error(self, flow_result, testcase):
        """Fig. 1: standard model overlaps the data (error << |S|)."""
        assert flow_result.standard_fit.rms_error < 5e-3

    def test_standard_fit_bad_under_load(self, flow_result, testcase):
        """Fig. 2 red curve: yet its loaded impedance is badly wrong."""
        error = low_band_error(flow_result.standard_fit.model, flow_result, testcase)
        assert error > 0.2

    def test_weighted_fit_good_under_load(self, flow_result, testcase):
        """Fig. 2 green curve."""
        error = low_band_error(flow_result.weighted_fit.model, flow_result, testcase)
        assert error < 0.1


class TestC4SensitivityModelQuality:
    """C4: the rational sensitivity model matches the samples (Fig. 3)."""

    def test_weight_model_fits_within_a_few_db(self, flow_result):
        assert flow_result.weight_model.fit.rms_db_error < 5.0

    def test_weight_model_is_stable_min_phase(self, flow_result):
        fit = flow_result.weight_model.fit
        assert np.all(fit.poles.real < 0)
        assert np.all(fit.zeros.real <= 1e-9)


class TestC5ConvergenceSpeed:
    """C5: enforcement converges in a small number of iterations
    (paper: 9)."""

    def test_iteration_counts(self, flow_result):
        assert 1 <= flow_result.standard_enforced.iterations <= 15
        assert 1 <= flow_result.weighted_enforced.iterations <= 15

    def test_worst_sigma_decreases(self, flow_result):
        history = flow_result.weighted_enforced.history
        assert history[-1].worst_sigma <= flow_result.pre_enforcement_report.worst_sigma
