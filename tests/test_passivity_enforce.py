"""Enforcement loop: renders models passive, respects options, reports."""

import numpy as np
import pytest

from repro.passivity.check import check_passivity
from repro.passivity.cost import l2_gramian_cost, sampled_norm_cost
from repro.passivity.enforce import (
    EnforcementOptions,
    enforce_passivity,
)
from repro.statespace.poleresidue import PoleResidueModel


def violating_model(gain=1.3):
    poles = np.array([-0.5 + 5.0j, -0.5 - 5.0j, -2.0])
    residues = np.array(
        [[[gain * 0.5]], [[gain * 0.5]], [[0.2]]], dtype=complex
    )
    return PoleResidueModel(poles, residues, np.array([[0.1]]))


class TestBasicEnforcement:
    def test_simple_violation_removed(self):
        model = violating_model()
        assert not check_passivity(model).is_passive
        result = enforce_passivity(model, l2_gramian_cost(model))
        assert result.converged
        assert check_passivity(result.model).is_passive
        assert result.iterations >= 1

    def test_passive_input_untouched(self):
        model = violating_model(gain=0.5)
        result = enforce_passivity(model, l2_gramian_cost(model))
        assert result.iterations == 0
        assert np.allclose(result.model.residues, model.residues)
        assert np.allclose(result.total_delta_c, 0.0)

    def test_poles_and_const_unchanged(self):
        model = violating_model()
        result = enforce_passivity(model, l2_gramian_cost(model))
        assert np.allclose(result.model.poles, model.poles)
        assert np.allclose(result.model.const, model.const)

    def test_perturbation_is_small(self):
        """Minimal-norm enforcement: response changes at the violation scale."""
        model = violating_model(gain=1.1)
        result = enforce_passivity(model, l2_gramian_cost(model))
        omega = np.geomspace(0.1, 100.0, 100)
        diff = np.abs(
            result.model.frequency_response(omega)
            - model.frequency_response(omega)
        )
        assert diff.max() < 0.5  # violation was ~0.1 above 1

    def test_history_recorded(self):
        model = violating_model()
        result = enforce_passivity(model, l2_gramian_cost(model))
        assert len(result.history) == result.iterations
        assert result.history[-1].worst_sigma <= 1.0
        assert not result.report_before.is_passive
        assert result.report_after.is_passive

    def test_sampled_cost_also_works(self):
        model = violating_model()
        omega = np.geomspace(0.1, 100.0, 200)
        cost = sampled_norm_cost(model, omega)
        result = enforce_passivity(model, cost)
        assert result.converged


class TestOptionsAndErrors:
    def test_d_violation_rejected(self):
        model = PoleResidueModel(
            np.array([-1.0]), np.zeros((1, 1, 1), complex), np.array([[1.01]])
        )
        with pytest.raises(ValueError, match="infinite frequency"):
            enforce_passivity(model, l2_gramian_cost(model))

    def test_cost_model_mismatch(self):
        model = violating_model()
        other = PoleResidueModel(
            np.array([-1.0]),
            np.zeros((1, 2, 2), complex),
            np.zeros((2, 2)),
        )
        with pytest.raises(ValueError, match="port count"):
            enforce_passivity(model, l2_gramian_cost(other))

    def test_iteration_cap_respected(self):
        model = violating_model(gain=2.5)
        options = EnforcementOptions(max_iterations=1)
        result = enforce_passivity(model, l2_gramian_cost(model), options)
        assert result.iterations == 1

    def test_options_validation(self):
        with pytest.raises(ValueError):
            EnforcementOptions(max_iterations=0)
        with pytest.raises(ValueError):
            EnforcementOptions(margin=0.5)
        with pytest.raises(ValueError):
            EnforcementOptions(include_threshold=0.0)

    def test_margin_leaves_headroom(self):
        model = violating_model()
        options = EnforcementOptions(margin=1e-3)
        result = enforce_passivity(model, l2_gramian_cost(model), options)
        assert result.report_after.worst_sigma <= 1.0 - 1e-4


class TestOnPDNModels:
    def test_standard_enforcement_converges(self, flow_result):
        assert flow_result.standard_enforced.converged
        assert flow_result.standard_enforced.report_after.worst_sigma <= 1.0

    def test_weighted_enforcement_converges(self, flow_result):
        assert flow_result.weighted_enforced.converged
        assert flow_result.weighted_enforced.report_after.worst_sigma <= 1.0

    def test_iteration_counts_paper_scale(self, flow_result):
        """The paper converges in 9 iterations; ours should be comparable."""
        assert flow_result.standard_enforced.iterations <= 15
        assert flow_result.weighted_enforced.iterations <= 15
