"""Vector fitting: exact recovery, weighting behaviour, options, projection."""

import numpy as np
import pytest

from repro.vectfit.core import (
    canonicalize_poles,
    flip_unstable_poles,
    vector_fit,
)
from repro.vectfit.options import VFOptions
from repro.vectfit.starting_poles import initial_poles
from tests.conftest import make_random_stable_model


class TestCanonicalizePoles:
    def test_groups_pairs(self):
        raw = np.array([-1.0 - 2.0j, -3.0, -1.0 + 2.0j])
        out = canonicalize_poles(raw)
        assert out[0] == -3.0
        assert out[1] == -1.0 + 2.0j
        assert out[2] == np.conj(out[1])

    def test_near_real_snapped(self):
        out = canonicalize_poles(np.array([-1.0 + 1e-14j]))
        assert out[0].imag == 0.0

    def test_exact_conjugacy_enforced(self):
        raw = np.array([-1.0 + 2.0j, -1.0000001 - 1.9999999j])
        out = canonicalize_poles(raw)
        assert out[1] == np.conj(out[0]) or out[0] == np.conj(out[1])

    def test_unpaired_demoted_to_real(self):
        out = canonicalize_poles(np.array([-1.0 + 2.0j]))
        assert out.size == 1
        assert out[0].imag == 0.0


class TestFlipUnstable:
    def test_flips_positive_real_part(self):
        out = flip_unstable_poles(np.array([1.0 + 2.0j, -3.0]))
        assert np.all(out.real < 0)
        assert out[0] == -1.0 + 2.0j

    def test_zero_real_part_nudged(self):
        out = flip_unstable_poles(np.array([0.0 + 5.0j]))
        assert out[0].real < 0.0


class TestInitialPoles:
    def test_count_and_pairing(self):
        p = initial_poles(np.geomspace(1.0, 1e6, 50), 6)
        assert p.size == 6
        assert np.all(p.real < 0)
        assert np.allclose(p[0::2], np.conj(p[1::2]))

    def test_odd_count_adds_real(self):
        p = initial_poles(np.geomspace(1.0, 1e6, 50), 5)
        assert np.sum(np.abs(p.imag) < 1e-12) == 1

    def test_linear_spacing(self):
        p = initial_poles(np.linspace(1.0, 100.0, 50), 4, spacing="linear")
        assert p.size == 4

    def test_invalid_spacing(self):
        with pytest.raises(ValueError, match="spacing"):
            initial_poles(np.geomspace(1, 10, 5), 2, spacing="sqrt")


class TestExactRecovery:
    def test_recover_random_model(self, rng):
        truth = make_random_stable_model(rng, n_real=1, n_pairs=2, n_ports=2)
        omega = np.geomspace(0.05, 100.0, 140)
        data = truth.frequency_response(omega)
        result = vector_fit(omega, data, options=VFOptions(n_poles=5))
        assert result.rms_error < 1e-10
        assert np.allclose(
            np.sort_complex(result.model.poles),
            np.sort_complex(truth.poles),
            atol=1e-6,
        )

    def test_recovery_with_dc_point(self, rng):
        truth = make_random_stable_model(rng, n_real=1, n_pairs=1, n_ports=1)
        omega = np.concatenate([[0.0], np.geomspace(0.05, 50.0, 90)])
        data = truth.frequency_response(omega)
        result = vector_fit(omega, data, options=VFOptions(n_poles=3))
        assert result.rms_error < 1e-9

    def test_recovery_nonrelaxed(self, rng):
        truth = make_random_stable_model(rng, n_real=1, n_pairs=1, n_ports=1)
        omega = np.geomspace(0.05, 50.0, 90)
        data = truth.frequency_response(omega)
        result = vector_fit(
            omega, data, options=VFOptions(n_poles=3, relaxed=False)
        )
        assert result.rms_error < 1e-8

    def test_stability_enforced(self, testcase):
        result = vector_fit(
            testcase.data.omega,
            testcase.data.samples,
            options=VFOptions(n_poles=10),
        )
        assert result.model.is_stable()

    def test_convergence_flag(self, rng):
        truth = make_random_stable_model(rng, n_real=0, n_pairs=2, n_ports=1)
        omega = np.geomspace(0.05, 100.0, 80)
        data = truth.frequency_response(omega)
        result = vector_fit(omega, data, options=VFOptions(n_poles=4))
        assert result.converged
        assert result.iterations < 20
        assert len(result.pole_history) == result.iterations + 1


class TestWeighting:
    def test_weights_shift_error_distribution(self, testcase):
        omega = testcase.data.omega
        f = testcase.data.frequencies
        samples = testcase.data.samples
        low = f < 1e6
        w = np.where(low, 100.0, 1.0)
        plain = vector_fit(omega, samples, options=VFOptions(n_poles=10))
        weighted = vector_fit(omega, samples, w, VFOptions(n_poles=10))
        err_plain = np.abs(plain.model.frequency_response(omega) - samples)
        err_weighted = np.abs(weighted.model.frequency_response(omega) - samples)
        assert err_weighted[low].max() < err_plain[low].max()

    def test_per_entry_weights_accepted(self, rng):
        truth = make_random_stable_model(rng, n_ports=2)
        omega = np.geomspace(0.05, 100.0, 60)
        data = truth.frequency_response(omega)
        weights = np.ones((60, 2, 2))
        result = vector_fit(omega, data, weights, VFOptions(n_poles=5))
        assert result.rms_error < 1e-8

    def test_negative_weights_rejected(self, rng):
        truth = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.1, 10.0, 30)
        data = truth.frequency_response(omega)
        with pytest.raises(ValueError, match="non-negative"):
            vector_fit(omega, data, -np.ones(30))

    def test_bad_weight_shape_rejected(self, rng):
        truth = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.1, 10.0, 30)
        data = truth.frequency_response(omega)
        with pytest.raises(ValueError, match="weights"):
            vector_fit(omega, data, np.ones(7))


class TestAsymptoticProjection:
    def test_d_projected_below_one(self, testcase):
        result = vector_fit(
            testcase.data.omega,
            testcase.data.samples,
            options=VFOptions(n_poles=12),
        )
        d_gain = np.linalg.svd(result.model.const, compute_uv=False)[0]
        assert d_gain <= 1.0 - 1e-4 + 1e-12

    def test_projection_disabled(self, rng):
        # With margin 0 the constant term is the raw LS solution.
        truth = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.05, 100.0, 60)
        data = truth.frequency_response(omega) + 1.5  # push D above 1
        result = vector_fit(
            omega,
            data,
            options=VFOptions(n_poles=5, asymptotic_passivity_margin=0.0),
        )
        assert result.model.const[0, 0] > 1.0


class TestValidation:
    def test_order_vs_samples(self):
        omega = np.geomspace(1.0, 10.0, 5)
        data = np.zeros((5, 1, 1), dtype=complex)
        with pytest.raises(ValueError, match="too high"):
            vector_fit(omega, data, options=VFOptions(n_poles=20))

    def test_initial_poles_count_checked(self, rng):
        truth = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.1, 10.0, 30)
        data = truth.frequency_response(omega)
        with pytest.raises(ValueError, match="initial_poles"):
            vector_fit(
                omega,
                data,
                options=VFOptions(n_poles=4, initial_poles=np.array([-1.0])),
            )

    def test_options_validation(self):
        with pytest.raises(ValueError):
            VFOptions(n_poles=0)
        with pytest.raises(ValueError):
            VFOptions(pole_convergence_tol=0.0)
        with pytest.raises(ValueError):
            VFOptions(asymptotic_passivity_margin=1.5)
