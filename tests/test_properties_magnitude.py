"""Property-based tests for Magnitude Vector Fitting."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.vectfit.magnitude import fit_magnitude


@st.composite
def magnitude_spec(draw):
    """Random stable SISO transfer magnitudes with positive asymptote."""
    n_poles = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n_poles, seed


@given(magnitude_spec())
@settings(max_examples=15, deadline=None)
def test_magnitude_fit_recovers_rational_magnitudes(spec):
    n_poles, seed = spec
    rng = np.random.default_rng(seed)
    poles = -np.sort(rng.uniform(0.1, 50.0, size=n_poles))[::-1]
    residues = rng.uniform(0.2, 2.0, size=n_poles)
    d = rng.uniform(0.01, 0.3)
    omega = np.geomspace(0.01, 500.0, 140)
    h = np.full(omega.size, d, dtype=complex)
    for p, r in zip(poles, residues):
        h += r / (1j * omega - p)
    magnitude = np.abs(h)
    result = fit_magnitude(omega, magnitude, n_poles=n_poles)
    # Invariants: stability, minimum phase, and a faithful magnitude.
    assert result.model.is_stable()
    assert np.all(result.poles.real < 0)
    assert np.all(result.zeros.real <= 1e-9)
    assert result.rms_db_error < 0.5


@given(
    st.floats(min_value=0.05, max_value=5.0),
    st.floats(min_value=0.01, max_value=0.5),
)
@settings(max_examples=20, deadline=None)
def test_magnitude_fit_scale_equivariance(scale, d):
    """Scaling the magnitude data scales the fitted model's response."""
    omega = np.geomspace(0.01, 100.0, 100)
    base = np.abs(1.0 / (1j * omega + 2.0) + d)
    r1 = fit_magnitude(omega, base, n_poles=1)
    r2 = fit_magnitude(omega, scale * base, n_poles=1)
    m1 = np.abs(r1.model.frequency_response(omega)[:, 0, 0])
    m2 = np.abs(r2.model.frequency_response(omega)[:, 0, 0])
    assert np.allclose(m2, scale * m1, rtol=1e-4)
