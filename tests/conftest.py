"""Shared fixtures: the canonical PDN test case and (expensive) flow runs
are computed once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MacromodelingFlow, make_paper_testcase


@pytest.fixture(scope="session")
def testcase():
    """Canonical small PDN test case (202 frequency points, 9 ports)."""
    return make_paper_testcase()


@pytest.fixture(scope="session")
def coarse_testcase():
    """Smaller grid for fast unit tests (61 points, no DC)."""
    return make_paper_testcase(n_frequencies=61, include_dc=False)


@pytest.fixture(scope="session")
def flow_result(testcase):
    """Full pipeline run on the canonical test case (used by integration
    tests and shape-claim checks; ~10 s once per session)."""
    flow = MacromodelingFlow()
    return flow.run(testcase.data, testcase.termination, testcase.observe_port)


@pytest.fixture(scope="session")
def weighted_model(flow_result):
    """The sensitivity-weighted (non-passive) macromodel."""
    return flow_result.weighted_fit.model


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def make_random_stable_model(rng, n_real=1, n_pairs=2, n_ports=2, scale=1.0):
    """Random stable pole-residue model helper shared by several tests."""
    from repro.statespace.poleresidue import PoleResidueModel

    poles = []
    for _ in range(n_real):
        poles.append(complex(-rng.uniform(0.5, 5.0) * scale, 0.0))
    for _ in range(n_pairs):
        re = -rng.uniform(0.2, 3.0) * scale
        im = rng.uniform(1.0, 20.0) * scale
        poles.append(complex(re, im))
        poles.append(complex(re, -im))
    poles = np.asarray(poles, dtype=complex)
    residues = np.zeros((poles.size, n_ports, n_ports), dtype=complex)
    idx = 0
    for _ in range(n_real):
        residues[idx] = rng.normal(size=(n_ports, n_ports))
        idx += 1
    for _ in range(n_pairs):
        value = rng.normal(size=(n_ports, n_ports)) + 1j * rng.normal(
            size=(n_ports, n_ports)
        )
        residues[idx] = value
        residues[idx + 1] = np.conj(value)
        idx += 2
    const = rng.normal(size=(n_ports, n_ports)) * 0.1
    return PoleResidueModel(poles, residues, const)
