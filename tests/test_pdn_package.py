"""Tests for the synthetic PDN generator: geometry, builder, termination,
canonical test case."""

import numpy as np
import pytest

from repro.circuits.components import OpenTermination, ResistiveTermination
from repro.pdn.builder import build_circuit
from repro.pdn.geometry import ConnectionSpec, PDNGeometry, PlaneSpec, PortSpec
from repro.pdn.termination import TerminationNetwork
from repro.pdn.testcase import make_paper_testcase


def tiny_geometry():
    plane = PlaneSpec(
        name="pl",
        nx=2,
        ny=2,
        cell_resistance=1e-3,
        cell_inductance=1e-10,
        node_capacitance=1e-12,
    )
    ports = [PortSpec("pl", (0, 0), "p1", role="die")]
    return PDNGeometry(planes=[plane], ports=ports)


class TestGeometry:
    def test_node_name(self):
        plane = tiny_geometry().planes[0]
        assert plane.node_name(1, 0) == "pl_1_0"

    def test_node_name_out_of_range(self):
        plane = tiny_geometry().planes[0]
        with pytest.raises(ValueError, match="outside"):
            plane.node_name(5, 0)

    def test_duplicate_plane_names_rejected(self):
        g = tiny_geometry()
        g.planes.append(g.planes[0])
        with pytest.raises(ValueError, match="duplicate"):
            g.validate()

    def test_unresolved_connection_rejected(self):
        g = tiny_geometry()
        g.connections.append(
            ConnectionSpec("pl", (0, 0), "nope", (0, 0), 1e-3, 1e-10)
        )
        with pytest.raises(KeyError):
            g.validate()

    def test_invalid_port_role(self):
        with pytest.raises(ValueError, match="role"):
            PortSpec("pl", (0, 0), "p", role="banana")

    def test_ports_with_role(self):
        g = tiny_geometry()
        assert g.ports_with_role("die") == [0]
        assert g.ports_with_role("vrm") == []

    def test_plane_parameter_validation(self):
        with pytest.raises(ValueError):
            PlaneSpec("x", 0, 1, 1e-3, 1e-10, 1e-12)
        with pytest.raises(ValueError):
            PlaneSpec("x", 2, 2, -1e-3, 1e-10, 1e-12)
        with pytest.raises(ValueError):
            PlaneSpec("x", 2, 2, 1e-3, 1e-10, -1e-12)


class TestBuilder:
    def test_grid_edge_count(self):
        circuit = build_circuit(tiny_geometry())
        # 2x2 grid: 4 edges + 4 node capacitors = 8 branches.
        assert len(circuit.branches) == 8

    def test_port_nodes_first(self):
        circuit = build_circuit(tiny_geometry())
        assert circuit.nodes[0] == "pl_0_0"

    def test_connections_added(self):
        g = tiny_geometry()
        g.planes.append(
            PlaneSpec("p2", 2, 1, 1e-3, 1e-10, 1e-12)
        )
        g.connections.append(ConnectionSpec("pl", (1, 1), "p2", (0, 0), 1e-3, 1e-10))
        circuit = build_circuit(g)
        # 8 + (1 edge + 2 caps) + 1 connection
        assert len(circuit.branches) == 12


class TestTerminationNetwork:
    def test_admittance_diagonal(self):
        net = TerminationNetwork(
            terminations=[ResistiveTermination(50.0), OpenTermination()],
        )
        y = net.admittance_matrices(np.array([1e6]))
        assert y.shape == (1, 2, 2)
        assert np.isclose(y[0, 0, 0], 0.02)
        assert y[0, 1, 1] == 0.0
        assert y[0, 0, 1] == 0.0

    def test_excitation_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            TerminationNetwork(
                terminations=[OpenTermination()], excitations=np.ones(3)
            )

    def test_all_open_factory(self):
        net = TerminationNetwork.all_open(4)
        assert net.n_ports == 4
        assert not np.any(net.source_vector())

    def test_type_checked(self):
        with pytest.raises(TypeError):
            TerminationNetwork(terminations=["resistor"])

    def test_describe_includes_excitation(self):
        net = TerminationNetwork(
            terminations=[ResistiveTermination(50.0)], excitations=np.array([0.5])
        )
        assert "J=0.5" in net.describe()[0]


class TestCanonicalTestCase:
    def test_structure(self, testcase):
        assert testcase.data.n_ports == 9
        assert len(testcase.die_ports) == 4
        assert len(testcase.decap_ports) == 3
        assert len(testcase.vrm_ports) == 1
        assert testcase.observe_port in testcase.die_ports

    def test_frequency_grid_matches_paper(self, testcase):
        f = testcase.data.frequencies
        assert f[0] == 0.0  # DC point included
        assert f[1] == 1e3
        assert f[-1] == 2e9

    def test_data_is_passive(self, testcase):
        assert np.all(testcase.data.passivity_metric() <= 1.0 + 1e-9)

    def test_data_is_reciprocal(self, testcase):
        assert testcase.data.is_reciprocal(1e-7)

    def test_excitation_sums_to_one_ampere(self, testcase):
        assert np.isclose(testcase.termination.source_vector().sum(), 1.0)

    def test_summary_mentions_ports(self, testcase):
        assert "9 ports" in testcase.summary()

    def test_large_variant_builds(self):
        tc = make_paper_testcase(size="large", n_frequencies=31, include_dc=False)
        assert tc.data.n_ports == 20
        assert np.all(tc.data.passivity_metric() <= 1.0 + 1e-9)

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            make_paper_testcase(size="huge")

    def test_low_frequency_near_singular_i_plus_s(self, testcase):
        """The sensitivity mechanism: (I+S) nearly singular at low f."""
        s_low = testcase.data.samples[1]
        sv = np.linalg.svd(np.eye(9) + s_low, compute_uv=False)
        assert sv.min() < 1e-3
