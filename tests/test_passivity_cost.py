"""Cost functions: block structure, equivalence with full-realization norms."""

import numpy as np
import pytest

from repro.passivity.cost import BlockDiagonalCost, l2_gramian_cost, sampled_norm_cost
from repro.statespace.gramians import controllability_gramian
from tests.conftest import make_random_stable_model


class TestBlockDiagonalCost:
    def test_shared_block(self, rng):
        g = np.eye(3)
        cost = BlockDiagonalCost(g, n_ports=2)
        assert cost.n_states == 3
        assert np.allclose(cost.block(0, 1), g)

    def test_solve(self, rng):
        a = rng.normal(size=(4, 4))
        g = a @ a.T + 4 * np.eye(4)
        cost = BlockDiagonalCost(g, n_ports=2)
        rhs = rng.normal(size=4)
        assert np.allclose(g @ cost.solve(0, 0, rhs), rhs, rtol=1e-8)

    def test_quadratic_value(self, rng):
        g = 2.0 * np.eye(2)
        cost = BlockDiagonalCost(g, n_ports=2)
        delta = np.ones((2, 2, 2))
        # Each element contributes 2*(1+1) = 4; four elements -> 16.
        assert np.isclose(cost.quadratic_value(delta), 16.0)

    def test_per_element_blocks(self, rng):
        blocks = np.stack(
            [np.stack([np.eye(2) * (1 + i + j) for j in range(2)]) for i in range(2)]
        )
        cost = BlockDiagonalCost(blocks, n_ports=2)
        assert np.allclose(cost.block(1, 1), 3 * np.eye(2))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BlockDiagonalCost(np.zeros((2, 3)), n_ports=2)
        with pytest.raises(ValueError):
            BlockDiagonalCost(np.zeros((3, 3, 2, 2)), n_ports=2)

    def test_near_singular_block_repaired(self):
        g = np.diag([1.0, 1e-18])
        cost = BlockDiagonalCost(g, n_ports=1, ridge=1e-10)
        x = cost.solve(0, 0, np.array([1.0, 1.0]))
        assert np.all(np.isfinite(x))


class TestL2GramianCost:
    def test_matches_full_realization_norm(self, rng):
        """sum_ij dc_ij^T P_e dc_ij == tr(dC P dC^T) on the full model."""
        model = make_random_stable_model(rng, n_ports=2)
        cost = l2_gramian_cost(model, ridge=0.0)
        ss = model.to_state_space()
        p_full = controllability_gramian(ss.a, ss.b)
        delta = rng.normal(size=(2, 2, model.element_state_dimension()))
        # Map element perturbation onto the full C matrix.
        base_c = model.element_output_vectors()
        perturbed = model.with_element_output_vectors(base_c + delta)
        delta_c_full = perturbed.to_state_space().c - ss.c
        full_norm = float(np.trace(delta_c_full @ p_full @ delta_c_full.T))
        block_norm = cost.quadratic_value(delta)
        assert np.isclose(block_norm, full_norm, rtol=1e-8)

    def test_block_is_element_gramian(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        cost = l2_gramian_cost(model, ridge=0.0)
        a_e, b_e = model.element_dynamics()
        expected = controllability_gramian(a_e, b_e.reshape(-1, 1))
        assert np.allclose(cost.block(0, 0), expected, rtol=1e-8)


class TestSampledNormCost:
    def test_approximates_parseval_norm(self, rng):
        """Dense unweighted quadrature ~ the exact L2 Gramian norm."""
        model = make_random_stable_model(rng, n_ports=1, scale=1.0)
        omega = np.linspace(0.0, 400.0, 12000)
        sampled = sampled_norm_cost(model, omega, ridge=0.0)
        exact = l2_gramian_cost(model, ridge=0.0)
        delta = rng.normal(size=(1, 1, model.element_state_dimension()))
        v_sampled = sampled.quadratic_value(delta)
        v_exact = exact.quadratic_value(delta)
        # One-sided quadrature covers half the spectrum: factor 2, plus
        # truncation error of the [0, 400] window.
        assert np.isclose(2 * v_sampled, v_exact, rtol=0.05)

    def test_weights_change_cost(self, rng):
        model = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.1, 100.0, 200)
        flat = sampled_norm_cost(model, omega)
        boosted = sampled_norm_cost(model, omega, weights=np.full(200, 3.0))
        delta = rng.normal(size=(1, 1, model.element_state_dimension()))
        assert np.isclose(
            boosted.quadratic_value(delta),
            9.0 * flat.quadratic_value(delta),
            rtol=1e-6,
        )

    def test_weight_shape_checked(self, rng):
        model = make_random_stable_model(rng, n_ports=1)
        with pytest.raises(ValueError, match="weights"):
            sampled_norm_cost(model, np.geomspace(0.1, 10.0, 50), np.ones(3))
