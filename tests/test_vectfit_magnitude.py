"""Magnitude Vector Fitting: recovery, minimum phase, robustness."""

import numpy as np
import pytest

from repro.vectfit.magnitude import fit_magnitude


def siso_magnitude(poles, residues, d, omega):
    h = np.full(omega.size, d, dtype=complex)
    for p, r in zip(poles, residues):
        h += r / (1j * omega - p)
    return np.abs(h)


class TestExactRecovery:
    def test_two_pole_magnitude(self):
        omega = np.geomspace(0.01, 100.0, 120)
        mag = siso_magnitude([-2.0, -30.0], [1.0, 0.5], 0.01, omega)
        result = fit_magnitude(omega, mag, n_poles=2)
        assert result.rms_db_error < 1e-6
        assert result.max_db_error < 1e-5

    def test_overfit_order_still_accurate(self):
        omega = np.geomspace(0.01, 100.0, 120)
        mag = siso_magnitude([-2.0, -30.0], [1.0, 0.5], 0.01, omega)
        result = fit_magnitude(omega, mag, n_poles=4)
        assert result.rms_db_error < 1e-4

    def test_model_is_stable_and_minimum_phase(self):
        omega = np.geomspace(0.01, 100.0, 120)
        mag = siso_magnitude([-1.0, -10.0], [2.0, -0.5], 0.05, omega)
        result = fit_magnitude(omega, mag, n_poles=3)
        assert result.model.is_stable()
        assert np.all(result.poles.real < 0)
        assert np.all(result.zeros.real <= 1e-9)

    def test_magnitude_response_matches(self):
        omega = np.geomspace(0.01, 100.0, 120)
        mag = siso_magnitude([-2.0], [1.0], 0.02, omega)
        result = fit_magnitude(omega, mag, n_poles=1)
        response = np.abs(result.model.frequency_response(omega)[:, 0, 0])
        assert np.allclose(response, mag, rtol=1e-6)

    def test_wide_dynamic_range_ghz_scale(self):
        """The PDN regime: rad/s up to 1e10, magnitudes over 3+ decades."""
        omega = 2 * np.pi * np.geomspace(1e3, 2e9, 150)
        mag = siso_magnitude([-1e6, -1e9], [5e5, 2e8], 0.003, omega)
        result = fit_magnitude(omega, mag, n_poles=2)
        assert result.rms_db_error < 1e-3


class TestWeightingModes:
    def test_unit_weighting(self):
        omega = np.geomspace(0.01, 100.0, 100)
        mag = siso_magnitude([-2.0], [1.0], 0.05, omega)
        result = fit_magnitude(omega, mag, n_poles=1, weighting="unit")
        assert result.rms_db_error < 1e-5

    def test_unknown_weighting(self):
        omega = np.geomspace(0.01, 100.0, 100)
        with pytest.raises(ValueError, match="weighting"):
            fit_magnitude(omega, np.ones(100), n_poles=1, weighting="xx")


class TestRobustness:
    def test_dc_sample_allowed(self):
        omega = np.concatenate([[0.0], np.geomspace(0.01, 100.0, 100)])
        mag = siso_magnitude([-2.0], [1.0], 0.05, omega)
        result = fit_magnitude(omega, mag, n_poles=1)
        assert result.rms_db_error < 1e-4

    def test_gain_is_asymptotic_value(self):
        omega = np.geomspace(0.01, 1000.0, 150)
        d = 0.07
        mag = siso_magnitude([-2.0], [1.0], d, omega)
        result = fit_magnitude(omega, mag, n_poles=1)
        assert np.isclose(result.gain, d, rtol=1e-3)

    def test_validation_errors(self):
        omega = np.geomspace(0.01, 100.0, 50)
        with pytest.raises(ValueError, match="shape"):
            fit_magnitude(omega, np.ones(10), n_poles=2)
        with pytest.raises(ValueError, match="non-negative"):
            fit_magnitude(omega, -np.ones(50), n_poles=2)
        with pytest.raises(ValueError, match="at least 1"):
            fit_magnitude(omega, np.ones(50), n_poles=0)
        with pytest.raises(ValueError, match="too few"):
            fit_magnitude(omega[:4], np.ones(4), n_poles=4)
        with pytest.raises(ValueError, match="zero"):
            fit_magnitude(omega, np.zeros(50), n_poles=2)

    def test_pdn_sensitivity_curve(self, flow_result):
        """The actual sensitivity weight curve fits within a few dB RMS."""
        fit = flow_result.weight_model.fit
        assert fit.rms_db_error < 5.0
        assert fit.model.is_stable()
