"""PoleResidueModel: evaluation, realizations, perturbation round trips."""

import numpy as np
import pytest

from repro.statespace.poleresidue import PoleResidueModel
from tests.conftest import make_random_stable_model


def simple_model():
    poles = np.array([-2.0, -1.0 + 5.0j, -1.0 - 5.0j])
    residues = np.zeros((3, 2, 2), dtype=complex)
    residues[0] = [[1.0, 0.2], [0.2, 0.8]]
    residues[1] = np.array([[0.5 + 0.1j, 0.0], [0.0, 0.3 - 0.2j]])
    residues[2] = np.conj(residues[1])
    const = np.array([[0.05, 0.0], [0.0, 0.05]])
    return PoleResidueModel(poles, residues, const)


class TestConstruction:
    def test_basic_queries(self):
        m = simple_model()
        assert m.n_poles == 3
        assert m.n_ports == 2
        assert m.is_stable()
        assert "order=3" in repr(m)

    def test_unpaired_complex_pole_rejected(self):
        with pytest.raises(ValueError, match="conjugate"):
            PoleResidueModel(
                np.array([-1.0 + 2.0j]),
                np.zeros((1, 1, 1), dtype=complex),
                np.zeros((1, 1)),
            )

    def test_wrong_pair_order_rejected(self):
        poles = np.array([-1.0 - 2.0j, -1.0 + 2.0j])
        with pytest.raises(ValueError, match="positive-"):
            PoleResidueModel(poles, np.zeros((2, 1, 1), complex), np.zeros((1, 1)))

    def test_mismatched_residue_pair_rejected(self):
        poles = np.array([-1.0 + 2.0j, -1.0 - 2.0j])
        residues = np.zeros((2, 1, 1), dtype=complex)
        residues[0] = 1.0 + 1.0j
        residues[1] = 1.0 + 1.0j  # should be the conjugate
        with pytest.raises(ValueError, match="conjugates"):
            PoleResidueModel(poles, residues, np.zeros((1, 1)))

    def test_complex_residue_on_real_pole_rejected(self):
        poles = np.array([-1.0])
        residues = np.full((1, 1, 1), 1.0 + 0.5j)
        with pytest.raises(ValueError, match="imaginary"):
            PoleResidueModel(poles, residues, np.zeros((1, 1)))

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="residues"):
            PoleResidueModel(
                np.array([-1.0]), np.zeros((2, 1, 1), complex), np.zeros((1, 1))
            )

    def test_unstable_detected(self):
        m = PoleResidueModel(
            np.array([1.0]), np.ones((1, 1, 1), complex), np.zeros((1, 1))
        )
        assert not m.is_stable()


class TestEvaluation:
    def test_manual_sum(self):
        m = simple_model()
        s = np.array([1j * 3.0])
        expected = (
            m.residues[0] / (s[0] - m.poles[0])
            + m.residues[1] / (s[0] - m.poles[1])
            + m.residues[2] / (s[0] - m.poles[2])
            + m.const
        )
        assert np.allclose(m.evaluate(s)[0], expected)

    def test_response_is_conjugate_symmetric(self):
        m = simple_model()
        omega = np.array([2.0])
        plus = m.frequency_response(omega)[0]
        minus = m.evaluate(np.array([-2.0j]))[0]
        assert np.allclose(minus, np.conj(plus))

    def test_dc_value_is_real(self):
        m = simple_model()
        dc = m.frequency_response(np.array([0.0]))[0]
        assert np.allclose(dc.imag, 0.0)


class TestRealizations:
    def test_full_state_space_matches_evaluation(self, rng):
        m = make_random_stable_model(rng, n_real=2, n_pairs=3, n_ports=3)
        ss = m.to_state_space()
        assert ss.n_states == m.element_state_dimension() * 3
        omega = np.geomspace(0.1, 50.0, 20)
        assert np.allclose(
            ss.frequency_response(omega), m.frequency_response(omega), atol=1e-10
        )

    def test_element_model_matches_entry(self, rng):
        m = make_random_stable_model(rng, n_ports=2)
        omega = np.geomspace(0.1, 40.0, 15)
        for i in range(2):
            for j in range(2):
                elem = m.element_model(i, j)
                assert np.allclose(
                    elem.frequency_response(omega)[:, 0, 0],
                    m.frequency_response(omega)[:, i, j],
                    atol=1e-10,
                )

    def test_element_dynamics_eigenvalues_are_poles(self, rng):
        m = make_random_stable_model(rng)
        a_e, _ = m.element_dynamics()
        eigs = np.sort_complex(np.linalg.eigvals(a_e))
        assert np.allclose(eigs, np.sort_complex(m.poles), atol=1e-10)

    def test_output_vector_roundtrip(self, rng):
        m = make_random_stable_model(rng, n_ports=3)
        c = m.element_output_vectors()
        rebuilt = m.with_element_output_vectors(c)
        assert np.allclose(rebuilt.residues, m.residues)
        assert np.allclose(rebuilt.const, m.const)

    def test_perturbation_changes_response_linearly(self, rng):
        m = make_random_stable_model(rng, n_ports=2)
        c = m.element_output_vectors()
        delta = 1e-6 * rng.normal(size=c.shape)
        perturbed = m.with_element_output_vectors(c + delta)
        omega = np.array([1.0, 10.0])
        base = m.frequency_response(omega)
        diff1 = perturbed.frequency_response(omega) - base
        perturbed2 = m.with_element_output_vectors(c + 2 * delta)
        diff2 = perturbed2.frequency_response(omega) - base
        assert np.allclose(diff2, 2 * diff1, rtol=1e-9)

    def test_with_output_vectors_shape_checked(self, rng):
        m = make_random_stable_model(rng)
        with pytest.raises(ValueError, match="shape"):
            m.with_element_output_vectors(np.zeros((1, 1, 1)))

    def test_poles_and_const_preserved_under_perturbation(self, rng):
        m = make_random_stable_model(rng)
        c = m.element_output_vectors()
        perturbed = m.with_element_output_vectors(c * 1.1)
        assert np.allclose(perturbed.poles, m.poles)
        assert np.allclose(perturbed.const, m.const)
