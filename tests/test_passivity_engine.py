"""Fast passivity engine: exact-mode equivalence with the stateless
checker, warm-started sampling grids, fast-vs-exact enforcement strategy
equivalence, and the shared-G / structured QP fast paths."""

import numpy as np
import pytest

from repro.passivity.check import check_passivity
from repro.passivity.cost import BlockDiagonalCost, l2_gramian_cost
from repro.passivity.enforce import EnforcementOptions, enforce_passivity
from repro.passivity.engine import CheckerOptions, PassivityChecker
from repro.passivity.perturbation import build_constraints
from repro.passivity.qp import _dual_nnls_dense, _solve_h_inv_ft, solve_block_qp
from repro.statespace.hamiltonian import (
    hamiltonian_from_invariants,
    hamiltonian_invariants,
    hamiltonian_matrix,
)
from repro.statespace.poleresidue import PoleResidueModel
from tests.conftest import make_random_stable_model


def violating_random_model(seed, n_ports=2, target_sigma=1.4):
    """Seeded random stable model scaled to a known passivity violation."""
    rng = np.random.default_rng(seed)
    model = make_random_stable_model(rng, n_real=2, n_pairs=3, n_ports=n_ports)
    const = model.const * 0.5  # keep sigma_max(D) safely below 1
    model = PoleResidueModel(model.poles, model.residues, const)
    for _ in range(4):
        report = check_passivity(model)
        if abs(report.worst_sigma - target_sigma) < 0.05:
            break
        factor = target_sigma / max(report.worst_sigma, 1e-9)
        model = PoleResidueModel(
            model.poles, model.residues * factor, model.const
        )
    assert not check_passivity(model).is_passive
    return model


def narrow_band_model(q=0.005, omega0=5.0, sigma=2.2):
    """High-Q resonance: one very narrow violation band around omega0."""
    poles = np.array([-q + omega0 * 1j, -q - omega0 * 1j])
    r = sigma * q / 2.0 * 1.0000005  # peak |S| ~ sigma at resonance
    residues = np.array([[[r]], [[r]]], dtype=complex)
    return PoleResidueModel(poles, residues, np.zeros((1, 1)))


class TestCheckerExactEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_stateless_checker(self, seed):
        model = violating_random_model(seed)
        reference = check_passivity(model)
        checker = PassivityChecker(model)
        report = checker.check_exact(model)
        assert report.is_passive == reference.is_passive
        assert np.isclose(report.worst_sigma, reference.worst_sigma,
                          rtol=1e-9)
        assert len(report.bands) == len(reference.bands)
        assert np.allclose(report.crossings, reference.crossings)

    def test_reusable_across_residue_perturbations(self):
        model = violating_random_model(0)
        checker = PassivityChecker(model)
        perturbed = model.with_element_output_vectors(
            model.element_output_vectors() * 0.8
        )
        report = checker.check_exact(perturbed)
        reference = check_passivity(perturbed)
        assert np.isclose(report.worst_sigma, reference.worst_sigma,
                          rtol=1e-9)

    def test_rejects_different_model_family(self):
        model = violating_random_model(0)
        other = violating_random_model(1)
        checker = PassivityChecker(model)
        with pytest.raises(ValueError, match="different"):
            checker.check_exact(other)

    def test_options_validation(self):
        with pytest.raises(ValueError):
            CheckerOptions(strategy="magic")
        with pytest.raises(ValueError):
            CheckerOptions(exact_every=-1)
        with pytest.raises(ValueError):
            CheckerOptions(base_grid_points=2)
        with pytest.raises(ValueError):
            CheckerOptions(base_grid_points=64, max_grid_points=32)


class TestHamiltonianInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_assembly_matches_direct_matrix(self, seed):
        model = violating_random_model(seed)
        ss = model.to_state_space()
        invariants = hamiltonian_invariants(ss.a, ss.b, ss.d, gamma=1.0)
        assembled = hamiltonian_from_invariants(invariants, ss.c)
        direct = hamiltonian_matrix(ss, gamma=1.0)
        assert np.allclose(assembled, direct, rtol=1e-12, atol=1e-12)

    def test_full_output_matrix_matches_realization(self):
        model = violating_random_model(0)
        assert np.allclose(
            model.full_output_matrix(), model.to_state_space().c
        )


class TestSamplingWarmStart:
    def test_cold_grid_misses_narrow_band(self):
        model = narrow_band_model()
        assert not check_passivity(model).is_passive
        checker = PassivityChecker(
            model, options=CheckerOptions(base_grid_points=32)
        )
        cold = checker.check_sampling(model)
        assert cold.is_passive  # the narrow band slips through: not conclusive

    def test_exact_crossings_warm_start_sampling(self):
        model = narrow_band_model()
        checker = PassivityChecker(
            model, options=CheckerOptions(base_grid_points=32)
        )
        exact = checker.check_exact(model)
        assert not exact.is_passive
        warm = checker.check_sampling(model)
        assert not warm.is_passive
        assert np.isclose(
            warm.worst_sigma, exact.worst_sigma, rtol=1e-3
        )

    def test_seed_grid_clusters_remembered_points(self):
        model = narrow_band_model()
        checker = PassivityChecker(
            model, options=CheckerOptions(base_grid_points=32)
        )
        base_grid = checker.seed_grid()
        exact = checker.check_exact(model)
        warmed_grid = checker.seed_grid()
        assert warmed_grid.size > base_grid.size
        for crossing in exact.crossings:
            nearest = np.min(np.abs(warmed_grid - crossing) / crossing)
            assert nearest < 1e-9  # remembered points are on the grid

    def test_check_dispatch_certifies_passing_sampling(self):
        """check() never returns an uncertified sampling 'passive'."""
        model = narrow_band_model()
        checker = PassivityChecker(
            model, options=CheckerOptions(base_grid_points=32)
        )
        # iteration=1 in fast mode would use sampling, which misses the
        # narrow band -- the certify step must catch it.
        report = checker.check(model, iteration=1)
        assert not report.is_passive
        assert report.crossings.size  # verdict came from the exact test

    def test_external_report_seeds_grid(self):
        model = narrow_band_model()
        checker = PassivityChecker(
            model, options=CheckerOptions(base_grid_points=32)
        )
        checker.seed(check_passivity(model))
        report = checker.check_sampling(model)
        assert not report.is_passive


class TestEnforcementStrategyEquivalence:
    # Seed 4 is a genuinely hard instance that exceeds the iteration cap
    # under *either* strategy; the property is asserted on convergent ones.
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 6])
    def test_fast_and_exact_agree(self, seed):
        """Property: both strategies certify the same verdict and land on
        the same worst singular value within tolerance."""
        model = violating_random_model(seed)
        cost = l2_gramian_cost(model)
        exact = enforce_passivity(
            model, cost, EnforcementOptions(checker_strategy="exact")
        )
        fast = enforce_passivity(
            model, cost, EnforcementOptions(checker_strategy="fast")
        )
        assert exact.converged and fast.converged
        assert exact.report_after.is_passive == fast.report_after.is_passive
        assert abs(
            exact.report_after.worst_sigma - fast.report_after.worst_sigma
        ) < 5e-3
        # Both final models pass an independent exact Hamiltonian check.
        assert check_passivity(exact.model).is_passive
        assert check_passivity(fast.model).is_passive

    def test_fast_result_is_exactly_certified(self):
        model = violating_random_model(1)
        result = enforce_passivity(
            model,
            l2_gramian_cost(model),
            EnforcementOptions(checker_strategy="fast"),
        )
        assert result.converged
        # report_after always comes from the exact Hamiltonian test.
        last_mode = result.history[-1].check_mode
        assert last_mode in ("exact", "sampling+certify")
        assert result.report_after.worst_sigma <= 1.0

    def test_initial_report_passthrough(self):
        model = violating_random_model(2)
        cost = l2_gramian_cost(model)
        report = check_passivity(model)
        with_seed = enforce_passivity(
            model, cost, EnforcementOptions(checker_strategy="exact"),
            initial_report=report,
        )
        without = enforce_passivity(
            model, cost, EnforcementOptions(checker_strategy="exact")
        )
        assert with_seed.iterations == without.iterations
        assert np.allclose(
            with_seed.total_delta_c, without.total_delta_c, atol=1e-12
        )

    def test_profile_records_stage_timings(self):
        model = violating_random_model(0)
        result = enforce_passivity(model, l2_gramian_cost(model))
        profile = result.profile()
        assert set(profile) == {
            "check_seconds",
            "constraint_seconds",
            "qp_seconds",
            "rebuild_seconds",
        }
        assert profile["check_seconds"] > 0.0

    def test_strategy_option_validation(self):
        with pytest.raises(ValueError, match="checker_strategy"):
            EnforcementOptions(checker_strategy="magic")
        with pytest.raises(ValueError, match="exact_every"):
            EnforcementOptions(exact_every=-2)


class TestSharedGFastPath:
    def test_solve_all_shared_matches_per_element(self, rng):
        n, p = 4, 3
        a = rng.normal(size=(n, n))
        block = a @ a.T + n * np.eye(n)
        shared = BlockDiagonalCost(block, n_ports=p)
        tiled = BlockDiagonalCost(
            np.broadcast_to(block, (p, p, n, n)).copy(), n_ports=p
        )
        rhs = rng.normal(size=(p, p, n, 5))
        assert np.allclose(shared.solve_all(rhs), tiled.solve_all(rhs),
                           rtol=1e-10)
        flat = rng.normal(size=p * p * n)
        assert np.allclose(shared.solve_flat(flat), tiled.solve_flat(flat),
                           rtol=1e-10)
        delta = rng.normal(size=(p, p, n))
        assert np.isclose(
            shared.quadratic_value(delta), tiled.quadratic_value(delta),
            rtol=1e-10,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_structured_qp_matches_dense_route(self, seed):
        """The factor-space working-set solve equals the dense NNLS."""
        model = violating_random_model(seed, n_ports=3)
        report = check_passivity(model)
        constraints = build_constraints(
            model, report.constraint_frequencies()
        )
        assert constraints.structured
        cost = l2_gramian_cost(model)
        solution = solve_block_qp(cost, constraints)
        y = _solve_h_inv_ft(cost, constraints)
        diag = np.einsum("ij,ji->i", constraints.dense_matrix(), y)
        ridge = 1e-12 * max(float(np.mean(diag)), 1e-300)
        lam = _dual_nnls_dense(
            constraints.dense_matrix(), y, constraints.bounds, ridge
        )
        x = -(y @ lam)
        scale = max(1.0, float(np.max(np.abs(x))))
        assert np.allclose(
            solution.delta_c.reshape(-1), x, atol=1e-6 * scale
        )
        assert solution.max_violation < 1e-6

    def test_per_element_cost_uses_dense_route(self, rng):
        """Non-shared costs fall back to the dense solver and still agree."""
        model = violating_random_model(0, n_ports=2)
        report = check_passivity(model)
        constraints = build_constraints(
            model, report.constraint_frequencies()
        )
        n = model.element_state_dimension()
        a = rng.normal(size=(n, n))
        block = a @ a.T + n * np.eye(n)
        blocks = np.stack(
            [
                np.stack([block * (1.0 + 0.1 * (i + j)) for j in range(2)])
                for i in range(2)
            ]
        )
        cost = BlockDiagonalCost(blocks, n_ports=2)
        solution = solve_block_qp(cost, constraints)
        assert solution.max_violation < 1e-7
        assert np.all(np.isfinite(solution.delta_c))
