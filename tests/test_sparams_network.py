"""Unit tests for the NetworkData container."""

import numpy as np
import pytest

from repro.sparams.network import NetworkData


def make_data(k=5, p=2, kind="s"):
    f = np.linspace(1e3, 1e6, k)
    rng = np.random.default_rng(0)
    s = 0.1 * (rng.normal(size=(k, p, p)) + 1j * rng.normal(size=(k, p, p)))
    return NetworkData(frequencies=f, samples=s, kind=kind)


class TestConstruction:
    def test_basic_properties(self):
        d = make_data(k=7, p=3)
        assert d.n_ports == 3
        assert d.n_frequencies == 7
        assert d.kind == "s"
        assert d.z0 == 50.0

    def test_omega(self):
        d = make_data()
        assert np.allclose(d.omega, 2 * np.pi * d.frequencies)

    def test_sample_count_mismatch(self):
        with pytest.raises(ValueError, match="sample matrices"):
            NetworkData(np.array([1.0, 2.0]), np.zeros((3, 2, 2)))

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="kind"):
            make_data(kind="h")

    def test_invalid_z0(self):
        f = np.array([1.0])
        with pytest.raises(ValueError, match="z0"):
            NetworkData(f, np.zeros((1, 1, 1)), z0=0.0)

    def test_port_names_length(self):
        f = np.array([1.0])
        with pytest.raises(ValueError, match="port_names"):
            NetworkData(f, np.zeros((1, 2, 2)), port_names=("a",))

    def test_element_trace(self):
        d = make_data(k=4, p=2)
        assert np.array_equal(d.element(0, 1), d.samples[:, 0, 1])


class TestSubsets:
    def test_band(self):
        d = make_data(k=10)
        sub = d.band(2e5, 8e5)
        assert sub.n_frequencies < d.n_frequencies
        assert sub.frequencies.min() >= 2e5
        assert sub.frequencies.max() <= 8e5

    def test_empty_mask_raises(self):
        d = make_data()
        with pytest.raises(ValueError, match="no frequency"):
            d.subset(np.zeros(d.n_frequencies, dtype=bool))

    def test_without_dc(self):
        f = np.array([0.0, 1.0, 2.0])
        d = NetworkData(f, np.zeros((3, 1, 1)))
        assert d.without_dc().frequencies[0] == 1.0

    def test_without_dc_noop(self):
        d = make_data()
        assert d.without_dc().n_frequencies == d.n_frequencies

    def test_with_samples(self):
        d = make_data()
        new = d.with_samples(np.zeros_like(d.samples), kind="y")
        assert new.kind == "y"
        assert np.all(new.samples == 0)


class TestChecks:
    def test_reciprocal_true(self):
        d = make_data()
        sym = d.with_samples(d.samples + np.transpose(d.samples, (0, 2, 1)))
        assert sym.is_reciprocal()

    def test_reciprocal_false(self):
        k, p = 3, 2
        s = np.zeros((k, p, p), dtype=complex)
        s[:, 0, 1] = 1.0
        d = NetworkData(np.arange(1.0, k + 1), s)
        assert not d.is_reciprocal()

    def test_passivity_metric_identity(self):
        k = 4
        s = np.stack([0.5 * np.eye(2)] * k).astype(complex)
        d = NetworkData(np.arange(1.0, k + 1), s)
        assert np.allclose(d.passivity_metric(), 0.5)

    def test_passivity_metric_wrong_kind(self):
        d = make_data(kind="y")
        with pytest.raises(ValueError, match="scattering"):
            d.passivity_metric()
