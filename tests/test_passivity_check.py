"""Passivity checker: verdicts, bands, constraint frequencies."""

import numpy as np
import pytest

from repro.passivity.check import check_passivity
from repro.statespace.poleresidue import PoleResidueModel


def bump_model(gain, omega0=5.0):
    poles = np.array([-0.5 + omega0 * 1j, -0.5 - omega0 * 1j])
    residues = np.array([[[gain * 0.5]], [[gain * 0.5]]], dtype=complex)
    return PoleResidueModel(poles, residues, np.zeros((1, 1)))


def two_bump_model():
    """Two separate violation bands."""
    poles = np.array(
        [-0.3 + 5.0j, -0.3 - 5.0j, -0.8 + 50.0j, -0.8 - 50.0j]
    )
    residues = np.array(
        [[[0.75]], [[0.75]], [[1.1]], [[1.1]]], dtype=complex
    )
    return PoleResidueModel(poles, residues, np.zeros((1, 1)))


class TestVerdicts:
    def test_passive_model(self):
        report = check_passivity(bump_model(0.7))
        assert report.is_passive
        assert not report.bands
        assert report.worst_sigma <= 1.0

    def test_violating_model(self):
        report = check_passivity(bump_model(1.6))
        assert not report.is_passive
        assert len(report.bands) == 1
        assert report.worst_sigma > 1.0

    def test_unstable_model_rejected(self):
        model = PoleResidueModel(
            np.array([0.5]), np.ones((1, 1, 1), complex), np.zeros((1, 1))
        )
        with pytest.raises(ValueError, match="stable"):
            check_passivity(model)

    def test_asymptotic_violation_reported(self):
        model = PoleResidueModel(
            np.array([-1.0]), np.zeros((1, 1, 1), complex), np.array([[1.1]])
        )
        report = check_passivity(model)
        assert not report.is_passive
        assert report.worst_omega == np.inf
        assert report.asymptotic_gain > 1.0


class TestBands:
    def test_band_peak_location(self):
        report = check_passivity(bump_model(1.6, omega0=5.0))
        band = report.bands[0]
        # Peak of the resonance sits near omega0.
        assert 4.0 < band.omega_peak < 6.0
        sigma_direct = np.abs(
            bump_model(1.6).frequency_response(np.array([band.omega_peak]))[0, 0, 0]
        )
        assert np.isclose(band.sigma_peak, sigma_direct, rtol=1e-9)

    def test_two_bands_found(self):
        report = check_passivity(two_bump_model())
        assert len(report.bands) == 2
        peaks = sorted(b.omega_peak for b in report.bands)
        assert 3.0 < peaks[0] < 7.0
        assert 45.0 < peaks[1] < 55.0

    def test_band_str(self):
        report = check_passivity(bump_model(1.6))
        assert "peak sigma" in str(report.bands[0])

    def test_constraint_frequencies_cover_bands(self):
        report = check_passivity(two_bump_model())
        freqs = report.constraint_frequencies()
        assert freqs.size >= 2
        for band in report.bands:
            assert np.any((freqs >= band.omega_low) & (freqs <= band.omega_high))

    def test_worst_sigma_consistent_with_bands(self):
        report = check_passivity(two_bump_model())
        best_band = max(b.sigma_peak for b in report.bands)
        # worst_sigma also tracks interval midpoints, so it may exceed the
        # refined band peak by the sampling granularity.
        assert report.worst_sigma >= best_band - 1e-12
        assert np.isclose(report.worst_sigma, best_band, rtol=0.02)


class TestOnRealModel:
    def test_weighted_pdn_model_verdict(self, flow_result):
        report = flow_result.pre_enforcement_report
        assert not report.is_passive
        assert report.bands  # multiple finite-frequency violations
        assert report.asymptotic_gain < 1.0

    def test_enforced_model_is_passive(self, flow_result):
        report = check_passivity(flow_result.weighted_enforced.model)
        assert report.is_passive
