"""Batched VF kernels: equivalence with the reference path, fit_many.

The batched kernel is a pure reimplementation of the reference per-column
loops; these tests pin the contract that both compute the same fits.
Random pole-residue models cover the option matrix (shared vs per-column
weights, relaxed vs non-relaxed, ``dc_exact``, the ``fixed_const``
projection path), and :func:`fit_many` is checked against sequential
:func:`vector_fit` calls, which it must reproduce exactly.
"""

import dataclasses

import numpy as np
import pytest

from repro.vectfit import kernels
from repro.vectfit.core import (
    _identify_residues,
    _normalize_weights,
    _symmetric_reduction,
    fit_many,
    initial_poles,
    vector_fit,
)
from repro.vectfit.options import VFOptions
from repro.vectfit.order_selection import select_model_order
from tests.conftest import make_random_stable_model

RTOL = 1e-8  # roundoff-only divergence between the two kernels


def both_kernels(omega, samples, weights, options):
    reference = vector_fit(
        omega, samples, weights, dataclasses.replace(options, kernel="reference")
    )
    batched = vector_fit(
        omega, samples, weights, dataclasses.replace(options, kernel="batched")
    )
    return reference, batched


def assert_equivalent(reference, batched, rtol=RTOL):
    assert batched.model.n_poles == reference.model.n_poles
    assert batched.iterations == reference.iterations
    assert batched.converged == reference.converged
    ref_poles = np.sort_complex(reference.model.poles)
    bat_poles = np.sort_complex(batched.model.poles)
    np.testing.assert_allclose(bat_poles, ref_poles, rtol=rtol, atol=1e-300)
    # The absolute term covers exact-recovery fits whose RMS *is* the
    # roundoff floor (both kernels hit ~1e-16 with different noise).
    assert (
        abs(batched.rms_error - reference.rms_error)
        <= rtol * abs(reference.rms_error) + 1e-14
    )
    np.testing.assert_allclose(
        batched.model.const, reference.model.const, rtol=1e-6, atol=1e-12
    )


class TestKernelEquivalence:
    def test_unweighted(self, rng):
        truth = make_random_stable_model(rng, n_real=1, n_pairs=2, n_ports=3)
        omega = np.geomspace(0.05, 100.0, 90)
        data = truth.frequency_response(omega)
        ref, bat = both_kernels(omega, data, None, VFOptions(n_poles=5))
        assert_equivalent(ref, bat)
        assert bat.rms_error < 1e-9  # both recover the true model

    def test_shared_frequency_weights(self, rng):
        truth = make_random_stable_model(rng, n_real=0, n_pairs=3, n_ports=2)
        omega = np.geomspace(0.1, 50.0, 80)
        data = truth.frequency_response(omega)
        weights = np.geomspace(100.0, 1.0, omega.size)
        ref, bat = both_kernels(omega, data, weights, VFOptions(n_poles=6))
        assert_equivalent(ref, bat)

    def test_per_column_weights(self, rng):
        truth = make_random_stable_model(rng, n_real=1, n_pairs=1, n_ports=2)
        omega = np.geomspace(0.1, 50.0, 70)
        data = truth.frequency_response(omega)
        weights = rng.uniform(0.5, 5.0, (omega.size, 2, 2))
        ref, bat = both_kernels(omega, data, weights, VFOptions(n_poles=3))
        assert_equivalent(ref, bat)

    def test_non_relaxed(self, rng):
        truth = make_random_stable_model(rng, n_real=1, n_pairs=1, n_ports=2)
        omega = np.geomspace(0.1, 50.0, 70)
        data = truth.frequency_response(omega)
        ref, bat = both_kernels(
            omega, data, None, VFOptions(n_poles=3, relaxed=False)
        )
        assert_equivalent(ref, bat)

    def test_dc_exact(self, rng):
        truth = make_random_stable_model(rng, n_real=1, n_pairs=1, n_ports=2)
        omega = np.concatenate([[0.0], np.geomspace(0.05, 50.0, 80)])
        data = truth.frequency_response(omega)
        ref, bat = both_kernels(
            omega, data, None, VFOptions(n_poles=3, dc_exact=True)
        )
        assert_equivalent(ref, bat)
        model_dc = bat.model.frequency_response(np.array([0.0]))[0]
        np.testing.assert_allclose(model_dc, data[0].real, atol=1e-11)

    def test_fixed_const_projection(self, rng):
        # Shifting the data pushes sigma_max(D) above 1, forcing the
        # asymptotic projection's fixed-const refit on both kernels.
        truth = make_random_stable_model(rng, n_ports=2)
        omega = np.geomspace(0.05, 100.0, 60)
        data = truth.frequency_response(omega) + 1.5
        ref, bat = both_kernels(omega, data, None, VFOptions(n_poles=5))
        assert_equivalent(ref, bat)
        d_gain = np.linalg.svd(bat.model.const, compute_uv=False)[0]
        assert d_gain <= 1.0 - 1e-4 + 1e-12

    def test_fixed_const_with_per_column_weights(self, rng):
        truth = make_random_stable_model(rng, n_real=1, n_pairs=1, n_ports=2)
        omega = np.geomspace(0.1, 50.0, 60)
        data = truth.frequency_response(omega)
        poles = initial_poles(omega, 4)
        weights = _normalize_weights(
            rng.uniform(0.5, 2.0, (omega.size, 2, 2)), data.shape
        )
        responses = data.reshape(omega.size, -1)
        fixed = np.linspace(-0.2, 0.3, 4)
        options = VFOptions(n_poles=4)
        res_ref, const_ref = _identify_residues(
            omega, responses, weights, poles,
            dataclasses.replace(options, kernel="reference"), fixed_const=fixed,
        )
        res_bat, const_bat = _identify_residues(
            omega, responses, weights, poles, options, fixed_const=fixed,
        )
        np.testing.assert_allclose(res_bat, res_ref, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(const_bat, fixed)
        np.testing.assert_allclose(const_ref, fixed)

    def test_large_symmetric_pdn_case(self, coarse_testcase):
        # PDN scattering data is reciprocal: the batched kernel takes the
        # upper-triangle reduction and must still match the reference.
        data = coarse_testcase.data
        ref, bat = both_kernels(
            data.omega, data.samples, None, VFOptions(n_poles=8)
        )
        assert_equivalent(ref, bat)


class TestSymmetricReduction:
    def test_reduces_symmetric_data(self, rng):
        truth = make_random_stable_model(rng, n_ports=3)
        omega = np.geomspace(0.1, 10.0, 20)
        data = truth.frequency_response(omega)
        data = 0.5 * (data + data.transpose(0, 2, 1))
        table = np.ones((omega.size, 9))
        reduced = _symmetric_reduction(data, table)
        assert reduced is not None
        responses, weights = reduced
        assert responses.shape == (omega.size, 6)  # P(P+1)/2
        assert weights.shape == (omega.size, 6)

    def test_rejects_asymmetric_data(self, rng):
        data = (
            rng.normal(size=(10, 2, 2)) + 1j * rng.normal(size=(10, 2, 2))
        )
        table = np.ones((10, 4))
        assert _symmetric_reduction(data, table) is None

    def test_rejects_asymmetric_weights(self, rng):
        truth = make_random_stable_model(rng, n_ports=2)
        omega = np.geomspace(0.1, 10.0, 12)
        data = truth.frequency_response(omega)
        data = 0.5 * (data + data.transpose(0, 2, 1))
        table = np.ones((omega.size, 2, 2))
        table[:, 0, 1] = 2.0  # asymmetric per-entry weights
        assert _symmetric_reduction(data, table.reshape(-1, 4)) is None

    def test_siso_not_reduced(self, rng):
        truth = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.1, 10.0, 12)
        data = truth.frequency_response(omega)
        assert _symmetric_reduction(data, np.ones((omega.size, 1))) is None


class TestFitMany:
    def test_matches_sequential_vector_fit(self, rng):
        truth_a = make_random_stable_model(rng, n_real=1, n_pairs=2, n_ports=2)
        truth_b = make_random_stable_model(rng, n_real=1, n_pairs=2, n_ports=3)
        omega = np.geomspace(0.05, 100.0, 90)
        data_a = truth_a.frequency_response(omega)
        data_b = truth_b.frequency_response(omega)
        weights_b = np.geomspace(10.0, 1.0, omega.size)
        options = VFOptions(n_poles=5)
        seq_a = vector_fit(omega, data_a, None, options)
        seq_b = vector_fit(omega, data_b, weights_b, options)
        bat_a, bat_b = fit_many(
            omega, [data_a, data_b], [None, weights_b], options
        )
        # fit_many runs the identical per-set computation: exact equality.
        for seq, bat in zip((seq_a, seq_b), (bat_a, bat_b)):
            assert bat.iterations == seq.iterations
            assert bat.converged == seq.converged
            np.testing.assert_array_equal(bat.model.poles, seq.model.poles)
            np.testing.assert_array_equal(
                bat.model.residues, seq.model.residues
            )
            assert bat.rms_error == seq.rms_error

    def test_identical_sets_collapse_to_one_fit(self, rng):
        truth = make_random_stable_model(rng, n_ports=2)
        omega = np.geomspace(0.05, 50.0, 60)
        data = truth.frequency_response(omega)
        first, second = fit_many(omega, [data, data], None, VFOptions(n_poles=5))
        assert first is second  # deduplicated, not merely equal
        solo = vector_fit(omega, data, None, VFOptions(n_poles=5))
        np.testing.assert_array_equal(first.model.poles, solo.model.poles)
        assert first.rms_error == solo.rms_error

    def test_duplicate_detection_respects_weights(self, rng):
        truth = make_random_stable_model(rng, n_ports=2)
        omega = np.geomspace(0.05, 50.0, 60)
        data = truth.frequency_response(omega)
        w = np.geomspace(5.0, 1.0, omega.size)
        plain, weighted = fit_many(
            omega, [data, data], [None, w], VFOptions(n_poles=5)
        )
        assert plain is not weighted
        assert plain.weighted_rms_error != weighted.weighted_rms_error

    def test_empty_input(self):
        assert fit_many(np.geomspace(1, 10, 20), []) == []

    def test_weights_must_align(self, rng):
        truth = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.1, 10.0, 30)
        data = truth.frequency_response(omega)
        with pytest.raises(ValueError, match="align"):
            fit_many(omega, [data], [None, None])

    def test_mismatched_k_rejected(self, rng):
        truth = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.1, 10.0, 30)
        data = truth.frequency_response(omega)
        with pytest.raises(ValueError, match="agree on K"):
            fit_many(omega[:-1], [data])


class TestBatchedQrSolve:
    def test_matches_lstsq(self, rng):
        a = rng.normal(size=(7, 30, 5))
        b = rng.normal(size=(7, 30))
        out = kernels.batched_qr_solve(a, b)
        for i in range(7):
            expected = kernels.scaled_lstsq(a[i], b[i])
            np.testing.assert_allclose(out[i], expected, rtol=1e-9, atol=1e-12)

    def test_rank_deficient_falls_back_to_min_norm(self, rng):
        a = rng.normal(size=(3, 20, 4))
        a[1, :, 3] = a[1, :, 0]  # slice 1 is rank deficient
        b = rng.normal(size=(3, 20))
        out = kernels.batched_qr_solve(a, b)
        expected = kernels.scaled_lstsq(a[1], b[1])
        np.testing.assert_allclose(out[1], expected, rtol=1e-8, atol=1e-10)

    def test_underdetermined_rows(self, rng):
        a = rng.normal(size=(2, 3, 5))
        b = rng.normal(size=(2, 3))
        out = kernels.batched_qr_solve(a, b)
        for i in range(2):
            expected = kernels.scaled_lstsq(a[i], b[i])
            np.testing.assert_allclose(out[i], expected, rtol=1e-9, atol=1e-12)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="shape"):
            kernels.batched_qr_solve(
                rng.normal(size=(2, 10, 3)), rng.normal(size=(2, 9))
            )


class TestSharedWeightsDetection:
    def test_shared(self):
        w = np.repeat(np.linspace(1, 2, 10)[:, None], 4, axis=1)
        assert kernels.shared_weights(w)

    def test_not_shared(self):
        w = np.ones((10, 4))
        w[3, 2] = 1.5
        assert not kernels.shared_weights(w)


class TestKernelOption:
    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            VFOptions(kernel="fast")


class TestWarmStartedOrderSweep:
    def test_warm_start_matches_cold_selection(self, rng):
        truth = make_random_stable_model(rng, n_real=1, n_pairs=2, n_ports=2)
        omega = np.geomspace(0.05, 100.0, 140)
        data = truth.frequency_response(omega)
        warm = select_model_order(
            omega, data, orders=[3, 5, 7], target_rms=1e-8, warm_start=True
        )
        cold = select_model_order(
            omega, data, orders=[3, 5, 7], target_rms=1e-8, warm_start=False
        )
        assert warm.selected_order == cold.selected_order == 5
        assert warm.candidates[-1].warm_started
        assert not any(c.warm_started for c in cold.candidates)

    def test_duplicate_orders_skipped(self, rng):
        truth = make_random_stable_model(rng, n_ports=1)
        omega = np.geomspace(0.05, 100.0, 100)
        data = truth.frequency_response(omega)
        result = select_model_order(
            omega, data, orders=[2, 4, 4, 6, 6], target_rms=1e-300,
            stagnation_ratio=0.0,
        )
        assert result.skipped_orders == [4, 6]
        assert [c.n_poles for c in result.candidates] == [2, 4, 6]

    def test_two_consecutive_stagnations_stop(self, coarse_testcase):
        data = coarse_testcase.data
        result = select_model_order(
            data.omega, data.samples,
            orders=[6, 8, 10, 12, 14, 16],
            target_rms=1e-12,
            stagnation_ratio=0.5,  # only 6 -> 8 halves the error here
            stagnation_runs=2,
        )
        # Orders 10 and 12 both fail to halve the order-8 error: two
        # consecutive stagnations stop the sweep with 14/16 unexplored,
        # keeping the smaller accepted model.
        assert [c.n_poles for c in result.candidates] == [6, 8, 10, 12]
        assert result.selected_order == 8

    def test_stagnation_runs_validation(self, coarse_testcase):
        data = coarse_testcase.data
        with pytest.raises(ValueError, match="stagnation_runs"):
            select_model_order(
                data.omega, data.samples, orders=[4, 6], stagnation_runs=0
            )
