"""Fixture: names that break the telemetry grammar (telemetry-hygiene)."""

from repro import obs


def instrumented(label):
    with obs.span("fit_stage"):  # missing category prefix
        obs.incr("NotDotted")
        obs.incr("totally.unregistered_counter")
        obs.emit(f"UPPER.{label}", value=1)
