"""Fixture: malformed suppression pragmas (reserved `pragma` rule)."""

X = 1  # reprolint: disable=backend-routing
Y = 2  # reprolint: disable=not-a-rule -- the rule name is made up
