"""Fixture: host linalg OUTSIDE the kernel packages (must not be flagged)."""

import numpy as np


def project(a, b):
    solution, *_ = np.linalg.lstsq(a, b, rcond=None)
    return solution
