"""Fixture: the backend layer importing upward (import-hygiene)."""

from repro.api import config


def activate():
    from repro.campaign import executor

    return config, executor
