"""Fixture: bare builtin raise in taxonomy-required code (error-taxonomy)."""


def load(path):
    if not path:
        raise ValueError("empty path")
    raise RuntimeError("unreadable")
