"""Fixture: digest function that skips a field (fingerprint-safety)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ScenarioSpec:
    name: str
    backend: str = "numpy"

    def to_dict(self):
        return {"name": self.name}
