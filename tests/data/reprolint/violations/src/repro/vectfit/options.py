"""Fixture: digest-fed dataclass with a mutable default (fingerprint-safety)."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class VFOptions:
    n_poles: int = 10
    weights: list = field(default_factory=list)
    extras: dict = {}
