"""Fixture: direct host linalg in a kernel package (backend-routing)."""

import numpy as np
import scipy.linalg as sla


def fit_step(lhs, rhs):
    solution, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
    q, r = sla.qr(lhs, mode="economic")
    return solution, q, r
