"""Fixture: whole-file suppression via disable-file (clean).

# reprolint: disable-file=backend-routing -- reference oracle kernels stay on host LAPACK
"""

import numpy as np


def oracle_eig(matrix):
    return np.linalg.eig(matrix)


def oracle_svd(matrix):
    return np.linalg.svd(matrix)
