"""Fixture: kernel code routed through the backend layer (clean)."""

import numpy as np

from repro.backend import active_backend


def fit_step(lhs, rhs):
    backend = active_backend()
    solution = backend.lstsq(lhs, rhs)
    residual = np.linalg.norm(lhs @ solution - rhs)  # norm has no primitive
    return solution, residual
