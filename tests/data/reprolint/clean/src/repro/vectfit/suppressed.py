"""Fixture: documented host paths behind line pragmas (clean)."""

import numpy as np


def rescue(lhs, rhs):
    solution, *_ = np.linalg.lstsq(  # reprolint: disable=backend-routing -- per-column host rescue
        lhs, rhs, rcond=None,
    )
    values = np.linalg.eigvals(
        lhs,
    )  # reprolint: disable=backend-routing -- pragma on the call's last physical line
    return solution, values
