"""Fixture: telemetry names that follow the grammar (clean)."""

from repro import obs


def instrumented(backend_name):
    with obs.span("stage:fit"):
        obs.incr("vf.iterations")  # registered counter
        obs.emit("vf.converged", iterations=3)
        obs.gauge(f"backend.active.{backend_name}", 1)
