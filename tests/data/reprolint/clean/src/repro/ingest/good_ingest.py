"""Fixture: typed taxonomy raises and exempt validation (clean)."""

from dataclasses import dataclass

from repro.resilience.errors import IngestError


def load(path):
    if not path:
        raise IngestError("empty path", stage="ingest")
    return path


@dataclass(frozen=True)
class LoaderOptions:
    retries: int = 1

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError("retries must be non-negative")  # exempt
