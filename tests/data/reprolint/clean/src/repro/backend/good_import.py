"""Fixture: backend-layer imports that respect the layering (clean)."""

import numpy as np

from repro.backend.numpy_backend import NumpyBackend
from repro.util.linalg import stable_pinv


def activate(backend):
    if backend.name != "numpy":
        from repro.obs import telemetry as obs

        obs.emit("backend.active", backend=backend.name)
    return NumpyBackend(), stable_pinv(np.eye(2))
