"""StateSpaceModel: responses, cascade, Gramians."""

import numpy as np
import pytest

from repro.statespace.system import StateSpaceModel


def siso(a, b, c, d):
    return StateSpaceModel(
        np.atleast_2d(a), np.atleast_2d(b).reshape(-1, 1),
        np.atleast_2d(c).reshape(1, -1), np.array([[d]])
    )


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="square"):
            StateSpaceModel(np.zeros((2, 3)), np.zeros((2, 1)), np.zeros((1, 2)), np.zeros((1, 1)))
        with pytest.raises(ValueError, match="B must"):
            StateSpaceModel(np.zeros((2, 2)), np.zeros((3, 1)), np.zeros((1, 2)), np.zeros((1, 1)))
        with pytest.raises(ValueError, match="C must"):
            StateSpaceModel(np.zeros((2, 2)), np.zeros((2, 1)), np.zeros((1, 3)), np.zeros((1, 1)))
        with pytest.raises(ValueError, match="D must"):
            StateSpaceModel(np.zeros((2, 2)), np.zeros((2, 1)), np.zeros((1, 2)), np.zeros((2, 2)))

    def test_static_system(self):
        s = StateSpaceModel(np.zeros((0, 0)), np.zeros((0, 2)), np.zeros((2, 0)), np.eye(2))
        assert s.n_states == 0
        assert s.is_stable()
        resp = s.frequency_response(np.array([1.0, 2.0]))
        assert np.allclose(resp, np.eye(2))


class TestResponses:
    def test_first_order_lowpass(self):
        # H(s) = 1/(s+1)
        sys = siso(-1.0, 1.0, 1.0, 0.0)
        omega = np.array([0.0, 1.0, 10.0])
        h = sys.frequency_response(omega)[:, 0, 0]
        assert np.allclose(h, 1.0 / (1j * omega + 1.0))

    def test_transfer_at_complex_point(self):
        sys = siso(-2.0, 1.0, 3.0, 0.5)
        s0 = 1.0 + 2.0j
        assert np.isclose(sys.transfer_at(s0)[0, 0], 3.0 / (s0 + 2.0) + 0.5)

    def test_poles(self):
        sys = siso(-3.0, 1.0, 1.0, 0.0)
        assert np.allclose(sys.poles(), [-3.0])


class TestSeries:
    def test_cascade_is_product(self):
        g1 = siso(-1.0, 1.0, 2.0, 0.1)
        g2 = siso(-5.0, 1.0, 1.0, 0.3)
        cascade = g1.series(g2)
        omega = np.geomspace(0.01, 100.0, 17)
        h1 = g1.frequency_response(omega)[:, 0, 0]
        h2 = g2.frequency_response(omega)[:, 0, 0]
        hc = cascade.frequency_response(omega)[:, 0, 0]
        assert np.allclose(hc, h1 * h2, rtol=1e-10)

    def test_cascade_state_count(self):
        g1 = siso(-1.0, 1.0, 2.0, 0.1)
        g2 = siso(-5.0, 1.0, 1.0, 0.3)
        assert g1.series(g2).n_states == 2

    def test_dimension_mismatch(self):
        g1 = siso(-1.0, 1.0, 2.0, 0.1)
        wide = StateSpaceModel(
            np.array([[-1.0]]), np.ones((1, 2)), np.ones((2, 1)), np.zeros((2, 2))
        )
        with pytest.raises(ValueError, match="cascade"):
            g1.series(wide)


class TestGramiansAndNorms:
    def test_h2_norm_first_order(self):
        # ||1/(s+a)||_H2^2 = 1/(2a)
        a = 3.0
        sys = siso(-a, 1.0, 1.0, 0.0)
        assert np.isclose(sys.h2_norm_squared(), 1.0 / (2 * a))

    def test_gramian_value_first_order(self):
        a = 2.0
        sys = siso(-a, 1.0, 1.0, 0.0)
        assert np.isclose(sys.controllability_gramian()[0, 0], 1.0 / (2 * a))

    def test_observability_gramian(self):
        a = 2.0
        sys = siso(-a, 1.0, 3.0, 0.0)
        assert np.isclose(sys.observability_gramian()[0, 0], 9.0 / (2 * a))
