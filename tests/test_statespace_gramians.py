"""Gramian solvers: residuals, PSD, balancing, Parseval cross-check."""

import numpy as np
import pytest

from repro.statespace.gramians import (
    controllability_gramian,
    ensure_psd,
    lyapunov_residual,
    observability_gramian,
)
from tests.conftest import make_random_stable_model


class TestControllability:
    def test_residual_small(self, rng):
        m = make_random_stable_model(rng, n_ports=2)
        ss = m.to_state_space()
        p = controllability_gramian(ss.a, ss.b)
        assert lyapunov_residual(ss.a, ss.b, p) < 1e-8

    def test_psd(self, rng):
        m = make_random_stable_model(rng, n_ports=2)
        ss = m.to_state_space()
        p = controllability_gramian(ss.a, ss.b)
        eigs = np.linalg.eigvalsh(p)
        assert eigs.min() >= -1e-10 * max(eigs.max(), 1.0)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="eigenvalue"):
            controllability_gramian(np.array([[1.0]]), np.array([[1.0]]))

    def test_empty_system(self):
        p = controllability_gramian(np.zeros((0, 0)), np.zeros((0, 1)))
        assert p.shape == (0, 0)

    def test_parseval_cross_check(self):
        """trace(C P C^T) equals (1/2pi) integral |H|^2 for a SISO system."""
        a = np.array([[-2.0, 0.0], [0.0, -30.0]])
        b = np.array([[1.0], [1.0]])
        c = np.array([[1.0, 0.5]])
        p = controllability_gramian(a, b)
        norm_algebraic = float((c @ p @ c.T)[0, 0])
        omega = np.linspace(-3e3, 3e3, 600001)
        h = np.array(
            [c @ np.linalg.solve(1j * w * np.eye(2) - a, b) for w in omega]
        )[:, 0, 0]
        norm_quadrature = np.trapezoid(np.abs(h) ** 2, omega) / (2 * np.pi)
        assert np.isclose(norm_algebraic, norm_quadrature, rtol=1e-3)

    def test_stiff_system_stays_psd(self):
        """7-decade pole spread (the PDN regime) must not go indefinite."""
        poles = -np.logspace(0, 7, 12)
        a = np.diag(poles)
        b = np.ones((12, 1))
        p = controllability_gramian(a, b)
        eigs = np.linalg.eigvalsh(p)
        assert eigs.min() >= -1e-12 * eigs.max()


class TestObservability:
    def test_residual(self, rng):
        m = make_random_stable_model(rng, n_ports=2)
        ss = m.to_state_space()
        q = observability_gramian(ss.a, ss.c)
        residual = ss.a.T @ q + q @ ss.a + ss.c.T @ ss.c
        assert np.linalg.norm(residual) < 1e-8 * np.linalg.norm(ss.c.T @ ss.c)

    def test_duality(self):
        """Observability of (A, C) = controllability of (A^T, C^T)."""
        a = np.array([[-1.0, 0.5], [0.0, -4.0]])
        c = np.array([[1.0, 2.0]])
        q = observability_gramian(a, c)
        p = controllability_gramian(a.T, c.T)
        assert np.allclose(q, p)


class TestEnsurePsd:
    def test_clips_small_negative(self):
        m = np.diag([1.0, -1e-16])
        repaired = ensure_psd(m)
        assert np.linalg.eigvalsh(repaired).min() >= 0.0

    def test_rejects_genuinely_indefinite(self):
        with pytest.raises(ValueError, match="indefinite"):
            ensure_psd(np.diag([1.0, -0.5]))

    def test_zero_matrix(self):
        assert np.allclose(ensure_psd(np.zeros((3, 3))), 0.0)
