"""Weighted norm (eqs. 18-21): the Gramian block must equal the actual
frequency-domain weighted L2 norm of the perturbation."""

import numpy as np
import pytest

from repro.passivity.cost import l2_gramian_cost
from repro.sensitivity.weighted_norm import (
    per_element_weighted_cost,
    sensitivity_weighted_cost,
    weighted_gramian_block,
)
from repro.statespace.system import StateSpaceModel
from tests.conftest import make_random_stable_model


def first_order_weight(pole=-3.0, gain=1.0, d=0.1):
    return StateSpaceModel(
        np.array([[pole]]), np.array([[1.0]]), np.array([[gain]]), np.array([[d]])
    )


class TestWeightedGramianBlock:
    def test_quadrature_cross_check(self, rng):
        """delta_c^T P11 delta_c == (1/2pi) int |Xi(jw)|^2 |dS(jw)|^2 dw."""
        model = make_random_stable_model(rng, n_ports=1, scale=1.0)
        weight = first_order_weight()
        a_e, b_e = model.element_dynamics()
        block = weighted_gramian_block(a_e, b_e, weight)
        delta_c = rng.normal(size=model.element_state_dimension())

        omega = np.linspace(-500.0, 500.0, 400001)
        eye = np.eye(a_e.shape[0])
        kernel = np.array(
            [np.linalg.solve(1j * w * eye - a_e, b_e) for w in omega]
        )
        d_s = kernel @ delta_c
        xi = weight.frequency_response(np.abs(omega))[:, 0, 0]
        xi = np.where(omega >= 0, xi, np.conj(xi))
        integrand = np.abs(xi) ** 2 * np.abs(d_s) ** 2
        quadrature = np.trapezoid(integrand, omega) / (2 * np.pi)
        algebraic = float(delta_c @ block @ delta_c)
        assert np.isclose(algebraic, quadrature, rtol=2e-3)

    def test_unit_weight_reduces_to_l2(self, rng):
        """Xi(s) = 1 must reproduce the standard L2 Gramian cost."""
        model = make_random_stable_model(rng, n_ports=2)
        unit = StateSpaceModel(
            np.zeros((0, 0)), np.zeros((0, 1)), np.zeros((1, 0)), np.array([[1.0]])
        )
        weighted = sensitivity_weighted_cost(model, unit, ridge=0.0)
        plain = l2_gramian_cost(model, ridge=0.0)
        assert np.allclose(weighted.block(0, 0), plain.block(0, 0), rtol=1e-9)

    def test_scaling_quadratic_in_weight(self, rng):
        model = make_random_stable_model(rng, n_ports=1)
        a_e, b_e = model.element_dynamics()
        w1 = first_order_weight(gain=1.0, d=0.2)
        w2 = first_order_weight(gain=2.0, d=0.4)
        b1 = weighted_gramian_block(a_e, b_e, w1)
        b2 = weighted_gramian_block(a_e, b_e, w2)
        assert np.allclose(b2, 4.0 * b1, rtol=1e-9)

    def test_requires_siso_weight(self, rng):
        model = make_random_stable_model(rng, n_ports=1)
        a_e, b_e = model.element_dynamics()
        mimo = StateSpaceModel(
            np.array([[-1.0]]), np.ones((1, 2)), np.ones((2, 1)), np.zeros((2, 2))
        )
        with pytest.raises(ValueError, match="SISO"):
            weighted_gramian_block(a_e, b_e, mimo)


class TestCosts:
    def test_shared_cost_block_spd(self, flow_result, weighted_model):
        cost = sensitivity_weighted_cost(
            weighted_model, flow_result.weight_model.model
        )
        block = cost.block(0, 0)
        eigs = np.linalg.eigvalsh(block)
        assert eigs.min() > 0.0

    def test_per_element_extension(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        weights = np.empty((2, 2), dtype=object)
        for a in range(2):
            for b in range(2):
                weights[a, b] = first_order_weight(gain=1.0 + a + b)
        cost = per_element_weighted_cost(model, weights, ridge=0.0)
        # Blocks must differ according to their weight gains.
        assert not np.allclose(cost.block(0, 0), cost.block(1, 1))

    def test_per_element_shape_checked(self, rng):
        model = make_random_stable_model(rng, n_ports=2)
        with pytest.raises(ValueError, match="object array"):
            per_element_weighted_cost(model, np.empty((3, 3), dtype=object))
