"""Loaded impedance (eq. 2): analytic one-port cases and data consistency."""

import numpy as np
import pytest

from repro.circuits.components import (
    OpenTermination,
    ResistiveTermination,
    ShortTermination,
)
from repro.pdn.termination import TerminationNetwork
from repro.sensitivity.zpdn import (
    loaded_impedance_matrix,
    target_impedance,
    target_impedance_of_model,
)


def resistor_s(resistance, k=3, z0=50.0):
    gamma = (resistance - z0) / (resistance + z0)
    return np.full((k, 1, 1), gamma, dtype=complex)


class TestAnalyticOnePort:
    def test_parallel_resistors(self):
        # Network: shunt R1 seen at the port; load R2: Z = R1 || R2.
        r1, r2 = 100.0, 50.0
        s = resistor_s(r1)
        omega = np.array([1.0, 2.0, 3.0])
        net = TerminationNetwork(
            terminations=[ResistiveTermination(r2)], excitations=np.array([1.0])
        )
        z = loaded_impedance_matrix(s, omega, net)
        expected = r1 * r2 / (r1 + r2)
        assert np.allclose(z[:, 0, 0], expected)

    def test_open_termination_returns_raw_impedance(self):
        r1 = 75.0
        s = resistor_s(r1)
        omega = np.array([1.0, 2.0, 3.0])
        net = TerminationNetwork(
            terminations=[OpenTermination()], excitations=np.array([1.0])
        )
        z = target_impedance(s, omega, net, 0)
        assert np.allclose(z, r1)

    def test_short_termination_kills_impedance(self):
        s = resistor_s(100.0)
        omega = np.array([1.0, 2.0, 3.0])
        net = TerminationNetwork(
            terminations=[ShortTermination(resistance=1e-9)],
            excitations=np.array([1.0]),
        )
        z = target_impedance(s, omega, net, 0)
        assert np.all(np.abs(z) < 1e-8)


class TestValidation:
    def test_port_count_mismatch(self):
        s = resistor_s(100.0)
        net = TerminationNetwork.all_open(2)
        with pytest.raises(ValueError, match="ports"):
            loaded_impedance_matrix(s, np.array([1.0, 2.0, 3.0]), net)

    def test_no_excitation_rejected(self):
        s = resistor_s(100.0)
        net = TerminationNetwork.all_open(1)
        with pytest.raises(ValueError, match="excitation"):
            target_impedance(s, np.array([1.0, 2.0, 3.0]), net, 0)

    def test_k_mismatch(self):
        s = resistor_s(100.0, k=3)
        net = TerminationNetwork.all_open(1)
        with pytest.raises(ValueError, match="agree"):
            loaded_impedance_matrix(s, np.array([1.0]), net)


class TestOnPDNData:
    def test_dc_impedance_is_small_and_real(self, testcase):
        z = target_impedance(
            testcase.data.samples,
            testcase.data.omega,
            testcase.termination,
            testcase.observe_port,
        )
        assert abs(z[0].imag) < 1e-6 * abs(z[0])
        assert 1e-4 < abs(z[0]) < 0.1  # milliohm regime

    def test_model_vs_data_impedance_consistency(self, flow_result, testcase):
        """A near-exact model must give a near-exact target impedance away
        from the hypersensitive low band."""
        z_data = flow_result.reference_impedance
        z_model = target_impedance_of_model(
            flow_result.weighted_fit.model,
            testcase.data.omega,
            testcase.termination,
            testcase.observe_port,
        )
        f = testcase.data.frequencies
        band = (f > 1e8) & (f < 3e8)
        rel = np.abs(z_model - z_data)[band] / np.abs(z_data)[band]
        assert rel.max() < 0.2

    def test_impedance_shape_features(self, testcase):
        """Low-f short-dominated, inductive rise, plane resonances."""
        z = np.abs(
            target_impedance(
                testcase.data.samples,
                testcase.data.omega,
                testcase.termination,
                testcase.observe_port,
            )
        )
        f = testcase.data.frequencies
        # Impedance peaks in the 10 MHz - 2 GHz region exceed the DC value.
        assert z[(f > 1e7)].max() > 5 * z[1]
