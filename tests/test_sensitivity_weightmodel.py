"""Sensitivity weight model construction (eq. 17 wrapper)."""

import numpy as np
import pytest

from repro.sensitivity.weightmodel import build_weight_model


def synthetic_xi(omega):
    return 3.0 / (1.0 + (omega / 2e5)) + 0.01


class TestBuildWeightModel:
    def test_basic_fit(self):
        omega = 2 * np.pi * np.geomspace(1e3, 2e9, 150)
        xi = synthetic_xi(omega)
        weight = build_weight_model(omega, xi, order=4)
        assert weight.model.is_stable()
        assert weight.fit.rms_db_error < 0.5
        assert np.isclose(weight.xi.max(), 1.0)  # normalized
        assert np.isclose(weight.scale, xi.max())

    def test_magnitude_response_helper(self):
        omega = 2 * np.pi * np.geomspace(1e3, 2e9, 150)
        weight = build_weight_model(omega, synthetic_xi(omega), order=4)
        response = weight.magnitude_response(omega)
        ratio = response / weight.xi
        assert np.all(ratio > 0.5)
        assert np.all(ratio < 2.0)

    def test_unnormalized(self):
        omega = 2 * np.pi * np.geomspace(1e3, 2e9, 150)
        xi = synthetic_xi(omega)
        weight = build_weight_model(omega, xi, order=4, normalize=False)
        assert weight.scale == 1.0
        assert np.isclose(weight.xi.max(), xi.max())

    def test_band_restriction(self):
        omega = 2 * np.pi * np.geomspace(1e3, 2e9, 200)
        xi = synthetic_xi(omega)
        # Add a narrow artifact near 1 GHz that the band restriction skips
        # (the paper's "we did not care of matching the spike").
        xi = xi + 0.5 * np.exp(-(((omega - 2 * np.pi * 1e9) / 5e8) ** 2))
        weight = build_weight_model(
            omega, xi, order=4, band=(0.0, 2 * np.pi * 1e8)
        )
        low = omega < 2 * np.pi * 1e7
        ratio = weight.magnitude_response(omega[low]) / weight.xi[low]
        assert np.all(np.abs(20 * np.log10(ratio)) < 3.0)

    def test_band_too_narrow_rejected(self):
        omega = 2 * np.pi * np.geomspace(1e3, 2e9, 50)
        with pytest.raises(ValueError, match="too few"):
            build_weight_model(
                omega, synthetic_xi(omega), order=8, band=(0.0, 2 * np.pi * 1e4)
            )

    def test_validation(self):
        omega = 2 * np.pi * np.geomspace(1e3, 1e9, 60)
        with pytest.raises(ValueError, match="shape"):
            build_weight_model(omega, np.ones(10))
        with pytest.raises(ValueError, match="non-negative"):
            build_weight_model(omega, -np.ones(60))
        with pytest.raises(ValueError, match="zero"):
            build_weight_model(omega, np.zeros(60))
