"""Time-domain substrate: closed-loop assembly and transient simulation."""

import numpy as np
import pytest

from repro.circuits.components import (
    DieBlock,
    OpenTermination,
    ResistiveTermination,
)
from repro.pdn.termination import TerminationNetwork
from repro.statespace.poleresidue import PoleResidueModel
from repro.timedomain.lti import close_loop
from repro.timedomain.simulate import simulate_transient


def resistor_model(resistance, z0=50.0):
    """Static 1-port scattering model of a shunt resistor."""
    gamma = (resistance - z0) / (resistance + z0)
    return PoleResidueModel(
        np.array([-1.0]),
        np.zeros((1, 1, 1), dtype=complex),
        np.array([[gamma]]),
    )


class TestClosedLoopStatics:
    def test_dc_gain_parallel_resistors(self):
        r_net, r_load = 100.0, 25.0
        model = resistor_model(r_net)
        net = TerminationNetwork(
            terminations=[ResistiveTermination(r_load)],
            excitations=np.array([1.0]),
        )
        loop = close_loop(model, net)
        expected = r_net * r_load / (r_net + r_load)
        assert np.isclose(loop.dc_gain()[0, 0], expected, rtol=1e-9)

    def test_open_termination_dc_gain(self):
        model = resistor_model(80.0)
        net = TerminationNetwork(
            terminations=[OpenTermination()], excitations=np.array([1.0])
        )
        loop = close_loop(model, net)
        assert np.isclose(loop.dc_gain()[0, 0], 80.0, rtol=1e-9)

    def test_frequency_response_matches_eq2(self, flow_result, testcase):
        """Closed-loop transfer v(j w)/j == loaded impedance row (eq. 2)."""
        from repro.sensitivity.zpdn import loaded_impedance_matrix

        model = flow_result.weighted_enforced.model
        loop = close_loop(model, testcase.termination)
        omega = testcase.data.omega[[10, 60, 120]]
        h = loop.system.frequency_response(omega)
        z = loaded_impedance_matrix(
            model.frequency_response(omega), omega, testcase.termination
        )
        assert np.allclose(h, z, rtol=1e-6, atol=1e-9)

    def test_port_count_mismatch(self):
        model = resistor_model(80.0)
        with pytest.raises(ValueError, match="ports"):
            close_loop(model, TerminationNetwork.all_open(3))


class TestStability:
    def test_passive_model_passive_load_stable(self, flow_result, testcase):
        loop = close_loop(flow_result.weighted_enforced.model, testcase.termination)
        assert loop.is_stable(tol=1e-3)

    def test_standard_enforced_also_stable(self, flow_result, testcase):
        loop = close_loop(flow_result.standard_enforced.model, testcase.termination)
        assert loop.is_stable(tol=1e-3)


class TestTransient:
    def test_rc_step_response(self):
        """Shunt-resistor model + die RC load: exact exponential charging."""
        r_net = 1e9  # effectively open network resistance
        r_die, c_die = 10.0, 1e-9
        model = resistor_model(r_net)
        net = TerminationNetwork(
            terminations=[DieBlock(resistance=r_die, capacitance=c_die)],
            excitations=np.array([1.0]),
        )
        tau = r_die * c_die  # charging time constant (v -> open-circuit)
        result = simulate_transient(
            model, net, t_end=5e-9, dt=1e-11, excitation=np.array([1.0])
        )
        # Initial value: current flows through R_die into C: v(0) = R_die.
        assert np.isclose(result.droop(0)[0], r_die, rtol=1e-2)

    def test_step_final_value_is_dc_impedance(self, flow_result, testcase):
        model = flow_result.weighted_enforced.model
        result = simulate_transient(
            model, testcase.termination, t_end=2e-6, dt=5e-11
        )
        final = result.droop(testcase.observe_port)[-1]
        z_dc = np.abs(flow_result.reference_impedance[0])
        assert np.isclose(final, z_dc, rtol=0.25)

    def test_bounded_response_for_passive_model(self, flow_result, testcase):
        result = simulate_transient(
            flow_result.weighted_enforced.model,
            testcase.termination,
            t_end=5e-7,
            dt=5e-11,
        )
        assert np.all(np.isfinite(result.voltages))
        assert np.abs(result.voltages).max() < 10.0

    def test_excitation_callable(self, flow_result, testcase):
        j0 = testcase.termination.source_vector()
        result = simulate_transient(
            flow_result.weighted_enforced.model,
            testcase.termination,
            t_end=1e-8,
            dt=1e-10,
            excitation=lambda t: j0 * (t > 5e-9),
        )
        assert np.allclose(result.voltages[0], 0.0)

    def test_invalid_dt(self, flow_result, testcase):
        with pytest.raises(ValueError, match="dt"):
            simulate_transient(
                flow_result.weighted_enforced.model,
                testcase.termination,
                t_end=1e-9,
                dt=1e-8,
            )

    def test_missing_termination(self, flow_result):
        with pytest.raises(ValueError, match="termination"):
            simulate_transient(
                flow_result.weighted_enforced.model, None, t_end=1e-9, dt=1e-10
            )

    def test_excitation_table_shape_checked(self, flow_result, testcase):
        with pytest.raises(ValueError, match="excitation table"):
            simulate_transient(
                flow_result.weighted_enforced.model,
                testcase.termination,
                t_end=1e-9,
                dt=1e-10,
                excitation=np.ones((3, 9)),
            )
