"""Robustness tests for the Touchstone reader/writer.

Covers the external-data bug class: port-count inference for suffix-less
files, duplicate/unsorted grids from stitched solver exports, option-line
edge cases, and metadata (port names, format/unit) round-trips.
"""

import numpy as np
import pytest

from repro.sparams.network import NetworkData
from repro.sparams.touchstone import (
    read_touchstone,
    read_touchstone_with_info,
    write_touchstone,
)


def _random_network(p, k=7, seed=0, port_names=()):
    rng = np.random.default_rng(seed + 13 * p)
    f = np.sort(rng.uniform(1e3, 1e9, size=k))
    s = 0.4 * (rng.normal(size=(k, p, p)) + 1j * rng.normal(size=(k, p, p)))
    return NetworkData(frequencies=f, samples=s, port_names=port_names)


# ----------------------------------------------------------------------
# Port-count inference (the suffix-less 2-port bug)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("ports", [1, 2, 3, 4])
def test_suffixless_file_infers_correct_port_count(tmp_path, ports):
    data = _random_network(ports)
    path = tmp_path / f"x.s{ports}p"
    write_touchstone(data, path)
    # Copy to a name without a recognized .sNp suffix.
    bare = tmp_path / "export.dat"
    bare.write_text(path.read_text())
    back, info = read_touchstone_with_info(bare)
    assert back.n_ports == ports
    assert info.ports_source == "inferred"
    assert np.allclose(back.samples, data.samples, atol=1e-8)


def test_suffixless_unsorted_one_port_not_misread_as_multiport(tmp_path):
    # 3 unsorted 1-port points = 9 values, which also reshapes into one
    # (trivially monotone) 2-port block; the single-block candidate must
    # not outrank the multi-block plausible one.
    path = tmp_path / "unsorted.dat"
    path.write_text(
        "# HZ S RI R 50\n"
        "2e6 0.2 -0.1\n"
        "1e6 0.1 -0.2\n"
        "3e6 0.3 -0.3\n"
    )
    # The discarded single-block 2-port reading is still reported as an
    # ambiguity -- only a suffix truly settles the layout.
    with pytest.warns(UserWarning, match="ambiguous"):
        data = read_touchstone(path)
    assert data.n_ports == 1
    assert data.n_frequencies == 3
    assert np.allclose(data.samples[:, 0, 0].real, [0.1, 0.2, 0.3])


def test_suffixless_single_frequency_multiport_warns(tmp_path):
    # One 2-port block whose interleaved values are all non-negative also
    # reshapes into three 1-port rows; whatever wins, the reader must not
    # stay silent about the alternative.
    path = tmp_path / "onepoint.dat"
    path.write_text("# HZ S RI R 50\n1e6 0.7 0.001 0.28 0.002 0.28 0.002 0.71 0.001\n")
    with pytest.warns(UserWarning, match="ambiguous"):
        read_touchstone(path)


def test_suffixless_single_frequency_file(tmp_path):
    # A genuine one-point file: only the single-block candidate exists.
    path = tmp_path / "point.dat"
    path.write_text("# HZ S RI R 50\n1e6 0.25 -0.5\n")
    data = read_touchstone(path)
    assert data.n_ports == 1
    assert data.samples[0, 0, 0] == pytest.approx(0.25 - 0.5j)


def test_suffix_always_wins(tmp_path):
    data = _random_network(2)
    path = tmp_path / "x.s2p"
    write_touchstone(data, path)
    back, info = read_touchstone_with_info(path)
    assert back.n_ports == 2
    assert info.ports_source == "suffix"


def test_suffix_mismatch_warns(tmp_path):
    # 2-port data (9 values per block) mislabeled .s1p: every block count
    # divides by 3, so the old smallest-divisor inference silently read
    # such layouts as 1-port; a suffix is trusted but must warn when a
    # different layout parses cleanly.
    data = _random_network(2)
    path = tmp_path / "x.s2p"
    write_touchstone(data, path)
    mislabeled = tmp_path / "y.s1p"
    mislabeled.write_text(path.read_text())
    # The suffix is trusted, so the interleaved "frequency" column then
    # fails grid validation -- loudly, instead of a silent misread.
    with pytest.warns(UserWarning, match="disagrees"):
        with pytest.raises(ValueError):
            read_touchstone(mislabeled)


def test_inconsistent_suffix_raises(tmp_path):
    data = _random_network(1, k=4)  # 12 values: no 2-port block fits
    path = tmp_path / "x.s1p"
    write_touchstone(data, path)
    mislabeled = tmp_path / "y.s2p"
    mislabeled.write_text(path.read_text())
    with pytest.raises(ValueError, match="inconsistent"):
        read_touchstone(mislabeled)


# ----------------------------------------------------------------------
# Grid repair: duplicates and unsorted points
# ----------------------------------------------------------------------
def test_duplicate_frequency_points_deduped_keep_first(tmp_path):
    path = tmp_path / "x.s1p"
    path.write_text(
        "# HZ S RI R 50\n"
        "1e6 0.1 0.0\n"
        "2e6 0.2 0.0\n"
        "2e6 0.9 0.0\n"  # duplicate seam point: first occurrence wins
        "3e6 0.3 0.0\n"
    )
    with pytest.warns(UserWarning, match="duplicate"):
        data, info = read_touchstone_with_info(path)
    assert data.n_frequencies == 3
    assert info.n_duplicates_dropped == 1
    assert np.allclose(data.samples[:, 0, 0].real, [0.1, 0.2, 0.3])


def test_near_coincident_points_deduped(tmp_path):
    path = tmp_path / "x.s1p"
    path.write_text(
        "# HZ S RI R 50\n"
        "1e9 0.1 0.0\n"
        f"{1e9 * (1 + 1e-13)} 0.5 0.0\n"
        "2e9 0.2 0.0\n"
    )
    with pytest.warns(UserWarning, match="duplicate"):
        data = read_touchstone(path)
    assert data.n_frequencies == 2
    assert np.allclose(data.samples[:, 0, 0].real, [0.1, 0.2])


def test_unsorted_grid_sorted_on_read(tmp_path):
    path = tmp_path / "x.s1p"
    path.write_text(
        "# HZ S RI R 50\n"
        "2e6 0.2 0.0\n"
        "1e6 0.1 0.0\n"
        "3e6 0.3 0.0\n"
    )
    data, info = read_touchstone_with_info(path)
    assert not info.grid_was_sorted
    assert np.all(np.diff(data.frequencies) > 0)
    assert np.allclose(data.samples[:, 0, 0].real, [0.1, 0.2, 0.3])


def test_stitched_two_band_export(tmp_path):
    """Two concatenated bands sharing the seam frequency (common export)."""
    rng = np.random.default_rng(3)
    f_low = np.linspace(1e6, 1e8, 5)
    f_high = np.linspace(1e8, 1e9, 5)  # seam 1e8 repeated
    lines = ["# HZ S RI R 50"]
    for f in np.concatenate([f_low, f_high]):
        a, b = rng.normal(size=2)
        lines.append(f"{f:.12g} {a:.6g} {b:.6g}")
    path = tmp_path / "stitched.s1p"
    path.write_text("\n".join(lines) + "\n")
    with pytest.warns(UserWarning, match="duplicate"):
        data = read_touchstone(path)
    assert data.n_frequencies == 9


# ----------------------------------------------------------------------
# Option-line edge cases
# ----------------------------------------------------------------------
def test_option_line_r_token_case_insensitive(tmp_path):
    path = tmp_path / "x.s1p"
    path.write_text("# hz s ri r 75\n1e6 0.1 0.0\n")
    assert read_touchstone(path).z0 == 75.0


def test_option_line_mixed_case_units_and_format(tmp_path):
    path = tmp_path / "x.s1p"
    path.write_text("# MHz S Ri R 50\n1 0.1 0.0\n")
    data = read_touchstone(path)
    assert data.frequencies[0] == 1e6


def test_first_option_line_wins(tmp_path):
    path = tmp_path / "x.s1p"
    path.write_text(
        "# HZ S RI R 50\n"
        "# GHZ Z MA R 75\n"  # per spec, ignored
        "1e6 0.1 0.0\n"
    )
    data = read_touchstone(path)
    assert data.kind == "s"
    assert data.z0 == 50.0
    assert data.frequencies[0] == 1e6


def test_option_line_defaults(tmp_path):
    # No option line values: GHz, MA, S, 50 ohm are the v1 defaults.
    path = tmp_path / "x.s1p"
    path.write_text("#\n1 0.5 0\n")
    data, info = read_touchstone_with_info(path)
    assert data.frequencies[0] == 1e9
    assert info.fmt == "ma"
    assert data.samples[0, 0, 0] == pytest.approx(0.5)


def test_inline_comments_after_data_values(tmp_path):
    path = tmp_path / "x.s1p"
    path.write_text(
        "# HZ S RI R 50\n"
        "1e6 0.1 0.0 ! first point\n"
        "2e6 0.2 0.0 ! 1e9 99 99 this is not data\n"
    )
    data = read_touchstone(path)
    assert data.n_frequencies == 2
    assert np.allclose(data.samples[:, 0, 0].real, [0.1, 0.2])


def test_unknown_option_token_raises(tmp_path):
    path = tmp_path / "x.s1p"
    path.write_text("# HZ S RI R 50 BOGUS\n1e6 0.1 0.0\n")
    with pytest.raises(ValueError, match="unrecognized token"):
        read_touchstone(path)


# ----------------------------------------------------------------------
# Metadata round-trips
# ----------------------------------------------------------------------
def test_port_names_roundtrip(tmp_path):
    data = _random_network(3, port_names=("vdd_die", "vdd cap", "vrm"))
    path = tmp_path / "named.s3p"
    write_touchstone(data, path)
    back = read_touchstone(path)
    assert back.port_names == ("vdd_die", "vdd cap", "vrm")


def test_free_text_comment_mentioning_port_is_not_a_port_name(tmp_path):
    path = tmp_path / "x.s1p"
    path.write_text(
        "! reference at Port[1] = 50 ohm single-ended\n"
        "# HZ S RI R 50\n"
        "1e6 0.1 0.0\n"
    )
    assert read_touchstone(path).port_names == ()
    # A dedicated '! Port[n] = name' line still counts.
    path.write_text(
        "! Port[1] = vdd\n"
        "# HZ S RI R 50\n"
        "1e6 0.1 0.0\n"
    )
    assert read_touchstone(path).port_names == ("vdd",)


def test_format_and_unit_metadata_roundtrip(tmp_path):
    data = _random_network(2)
    path = tmp_path / "x.s2p"
    write_touchstone(data, path, fmt="db", unit="ghz")
    back, info = read_touchstone_with_info(path)
    assert (info.fmt, info.unit) == ("db", "ghz")
    # Re-writing in the reported convention reproduces the file.
    second = tmp_path / "y.s2p"
    write_touchstone(back, second, fmt=info.fmt, unit=info.unit)
    third, info3 = read_touchstone_with_info(second)
    assert (info3.fmt, info3.unit) == ("db", "ghz")
    assert np.allclose(third.samples, back.samples, atol=1e-10)
    assert np.allclose(third.frequencies, back.frequencies, rtol=1e-12)
