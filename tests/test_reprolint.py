"""tools/reprolint: checkers, suppression pragmas, CLI and report schema.

Each rule is exercised against committed fixture mini-trees under
``tests/data/reprolint/`` (which the real scan skips via the
``tests/data/`` prefix): ``violations/`` seeds one or more findings per
rule, ``clean/`` shows the compliant counterpart plus both pragma forms.
The last test runs the engine over the actual repository tree -- the
adoption criterion is that it stays at zero findings.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import Engine, parse_pragmas  # noqa: E402
from tools.reprolint.checkers import default_checkers  # noqa: E402
from tools.reprolint.checkers.telemetry import load_registry  # noqa: E402
from tools.reprolint.cli import (  # noqa: E402
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    _registry_drift,
)
from tools.reprolint.cli import main as lint_main  # noqa: E402
from tools.reprolint.core import REPORT_FORMAT  # noqa: E402

DATA = REPO_ROOT / "tests" / "data" / "reprolint"

RULES = {
    "backend-routing",
    "telemetry-hygiene",
    "error-taxonomy",
    "fingerprint-safety",
    "import-hygiene",
}


def run_tree(tree: str, paths=("src",), rules=None):
    engine = Engine(default_checkers(), root=DATA / tree)
    return engine.run(list(paths), rules=rules)


def by_rule(report, rule):
    return [f for f in report.findings if f.rule == rule]


# ----------------------------------------------------------------------
# per-rule fixture pairs
# ----------------------------------------------------------------------
def test_violations_tree_fires_every_rule():
    report = run_tree("violations")
    fired = {f.rule for f in report.findings}
    assert RULES | {"pragma"} <= fired


def test_clean_tree_has_no_findings():
    report = run_tree("clean")
    assert report.findings == [], [f.render() for f in report.findings]


def test_backend_routing_flags_host_linalg_in_kernel_packages():
    report = run_tree("violations")
    hits = by_rule(report, "backend-routing")
    paths = {f.file for f in hits}
    assert paths == {"src/repro/vectfit/bad_kernel.py"}
    messages = " ".join(f.message for f in hits)
    assert "numpy.linalg.lstsq" in messages
    assert "scipy.linalg.qr" in messages
    # host linalg OUTSIDE the kernel packages is not the rule's business
    assert not any(f.file.endswith("hostmath.py") for f in report.findings)


def test_telemetry_hygiene_span_counter_and_prefix():
    report = run_tree("violations")
    hits = by_rule(report, "telemetry-hygiene")
    messages = [f.message for f in hits]
    assert any("'fit_stage'" in m and "category" in m for m in messages)
    assert any("'NotDotted'" in m for m in messages)
    assert any(
        "'totally.unregistered_counter'" in m and "registry" in m
        for m in messages
    )
    assert any("'UPPER.'" in m for m in messages)


def test_error_taxonomy_flags_bare_raises():
    report = run_tree("violations")
    hits = by_rule(report, "error-taxonomy")
    assert {f.file for f in hits} == {"src/repro/ingest/bad_ingest.py"}
    assert {m.split("`")[1] for m in (f.message for f in hits)} == {
        "raise ValueError",
        "raise RuntimeError",
    }


def test_error_taxonomy_exempts_post_init_validation():
    # the clean tree raises ValueError inside __post_init__ unflagged
    report = run_tree("clean")
    assert by_rule(report, "error-taxonomy") == []


def test_fingerprint_mutable_defaults_and_missing_coverage():
    report = run_tree("violations")
    hits = by_rule(report, "fingerprint-safety")
    messages = " ".join(f.message for f in hits)
    assert "VFOptions.weights has a mutable default" in messages
    assert "VFOptions.extras has a mutable default" in messages
    assert "['backend']" in messages and "ScenarioSpec" in messages


def test_import_hygiene_module_level_and_lazy():
    report = run_tree("violations")
    hits = by_rule(report, "import-hygiene")
    messages = " ".join(f.message for f in hits)
    assert "imports repro.api at module level" in messages
    assert "lazily imports repro.campaign" in messages


# ----------------------------------------------------------------------
# suppression pragmas
# ----------------------------------------------------------------------
def test_parse_pragmas_grammar():
    pragmas = parse_pragmas(
        "x = 1  # reprolint: disable=backend-routing -- host rescue\n"
        "# reprolint: disable-file=error-taxonomy, import-hygiene -- legacy\n"
        "y = 2  # reprolint: disable=telemetry-hygiene\n"
    )
    assert [p.kind for p in pragmas] == ["disable", "disable-file", "disable"]
    assert pragmas[0].rules == ("backend-routing",)
    assert pragmas[0].reason == "host rescue"
    assert pragmas[1].rules == ("error-taxonomy", "import-hygiene")
    assert pragmas[2].reason is None  # missing reason survives parsing...


def test_reasonless_and_unknown_rule_pragmas_are_reported():
    # ...but the engine reports it under the reserved `pragma` rule.
    report = run_tree("violations")
    hits = by_rule(report, "pragma")
    assert {f.file for f in hits} == {"src/repro/pragma_bad.py"}
    messages = " ".join(f.message for f in hits)
    assert "requires a reason" in messages
    assert "unknown rule 'not-a-rule'" in messages


def test_line_pragma_suppresses_across_multiline_statement():
    # suppressed.py carries the pragma on the first line of one call and
    # on the LAST physical line of another; both must silence the rule.
    report = run_tree("clean", paths=("src/repro/vectfit/suppressed.py",))
    assert report.findings == [], [f.render() for f in report.findings]


def test_file_pragma_silences_whole_module():
    report = run_tree("clean", paths=("src/repro/statespace/reference.py",))
    assert report.findings == [], [f.render() for f in report.findings]


def test_unknown_rule_subset_rejected():
    with pytest.raises(ValueError, match="unknown rules"):
        run_tree("clean", rules=["no-such-rule"])


# ----------------------------------------------------------------------
# CLI: exit codes, JSON schema, registry workflow
# ----------------------------------------------------------------------
def test_cli_exit_codes():
    root = str(DATA / "violations")
    assert lint_main(["src/repro", "--root", root]) == EXIT_FINDINGS
    assert (
        lint_main(["src/repro", "--root", str(DATA / "clean")]) == EXIT_CLEAN
    )
    assert lint_main(["no_such_dir", "--root", root]) == EXIT_ERROR
    assert lint_main(["src/repro", "--root", root, "--rules", "bogus"]) \
        == EXIT_ERROR


def test_cli_json_report_schema(capsys):
    rc = lint_main(["src/repro", "--root", str(DATA / "violations"), "--json"])
    assert rc == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == REPORT_FORMAT
    assert set(payload) == {
        "format", "files_scanned", "rules", "n_findings", "findings",
    }
    assert payload["rules"] == sorted(RULES)
    assert payload["n_findings"] == len(payload["findings"]) > 0
    for finding in payload["findings"]:
        assert set(finding) == {"file", "line", "col", "rule", "message"}
        assert isinstance(finding["line"], int) and finding["line"] >= 1
    # findings are sorted for stable diffs
    keys = [(f["file"], f["line"], f["col"]) for f in payload["findings"]]
    assert keys == sorted(keys)


def test_registry_drift_detects_stale_counters():
    engine = Engine(default_checkers(), root=DATA / "clean")
    drift = _registry_drift(engine, ["src"])
    stale = {f.message.split("'")[1] for f in drift}
    # the clean tree only increments vf.iterations; every other committed
    # counter reads as stale against it
    assert stale == load_registry() - {"vf.iterations"}
    assert all(f.rule == "telemetry-hygiene" for f in drift)
    # and the drift pass is skipped when src is not scanned
    assert _registry_drift(engine, ["src/repro"]) == []


def test_update_registry_rewrites_counter_file(tmp_path, monkeypatch):
    import tools.reprolint.cli as cli_mod

    target = tmp_path / "counters.txt"
    monkeypatch.setattr(cli_mod, "REGISTRY_PATH", target)
    rc = lint_main(
        ["src/repro", "--root", str(DATA / "clean"), "--update-registry"]
    )
    assert rc == EXIT_CLEAN
    assert target.read_text(encoding="utf-8").splitlines()[-1] \
        == "vf.iterations"


def test_self_test_passes():
    from tools.reprolint.selftest import run_self_test

    assert run_self_test() == 0


def test_repro_lint_subcommand_list_rules(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES | {"pragma"}:
        assert rule in out


# ----------------------------------------------------------------------
# the adoption criterion: the real tree is clean
# ----------------------------------------------------------------------
def test_repository_tree_is_clean():
    engine = Engine(default_checkers(), root=REPO_ROOT)
    report = engine.run(["src", "tests"])
    report.findings.extend(_registry_drift(engine, ["src"]))
    assert report.ok, "\n" + report.render()
