"""Unit tests for S/Y/Z conversions, including analytic one-port checks."""

import numpy as np
import pytest

from repro.sparams.conversions import (
    renormalize_s,
    s_to_y,
    s_to_z,
    y_to_s,
    y_to_z,
    z_to_s,
    z_to_y,
)


def random_passive_s(rng, k=6, p=3):
    """Random strictly-sub-unitary scattering stack."""
    s = rng.normal(size=(k, p, p)) + 1j * rng.normal(size=(k, p, p))
    norms = np.linalg.norm(s, ord=2, axis=(1, 2))
    return 0.7 * s / norms[:, None, None]


class TestAnalyticOnePort:
    """A resistor R at a single port: S = (R - R0)/(R + R0)."""

    @pytest.mark.parametrize("resistance", [10.0, 50.0, 200.0])
    def test_z_to_s_resistor(self, resistance):
        z = np.array([[[resistance + 0j]]])
        s = z_to_s(z, 50.0)
        expected = (resistance - 50.0) / (resistance + 50.0)
        assert np.allclose(s[0, 0, 0], expected)

    @pytest.mark.parametrize("resistance", [10.0, 200.0])
    def test_s_to_z_resistor(self, resistance):
        gamma = (resistance - 50.0) / (resistance + 50.0)
        s = np.array([[[gamma + 0j]]])
        z = s_to_z(s, 50.0)
        assert np.allclose(z[0, 0, 0], resistance)

    def test_matched_load_is_zero_reflection(self):
        z = np.array([[[50.0 + 0j]]])
        assert np.allclose(z_to_s(z, 50.0), 0.0)

    def test_s_to_y_inverse_of_z(self):
        gamma = 0.25
        s = np.array([[[gamma + 0j]]])
        y = s_to_y(s, 50.0)
        z = s_to_z(s, 50.0)
        assert np.allclose(y[0, 0, 0] * z[0, 0, 0], 1.0)


class TestRoundTrips:
    def test_s_y_s(self, rng):
        s = random_passive_s(rng)
        assert np.allclose(y_to_s(s_to_y(s, 50.0), 50.0), s)

    def test_s_z_s(self, rng):
        s = random_passive_s(rng)
        assert np.allclose(z_to_s(s_to_z(s, 50.0), 50.0), s)

    def test_y_z_y(self, rng):
        s = random_passive_s(rng)
        y = s_to_y(s, 50.0)
        assert np.allclose(z_to_y(y_to_z(y)), y)

    def test_y_z_consistent_with_s(self, rng):
        s = random_passive_s(rng)
        assert np.allclose(y_to_z(s_to_y(s, 50.0)), s_to_z(s, 50.0))

    def test_nondefault_reference(self, rng):
        s = random_passive_s(rng)
        assert np.allclose(y_to_s(s_to_y(s, 75.0), 75.0), s)


class TestRenormalization:
    def test_identity_when_same_reference(self, rng):
        s = random_passive_s(rng)
        assert np.allclose(renormalize_s(s, 50.0, 50.0), s)

    def test_roundtrip(self, rng):
        s = random_passive_s(rng)
        s75 = renormalize_s(s, 50.0, 75.0)
        assert np.allclose(renormalize_s(s75, 75.0, 50.0), s)

    def test_resistor_renormalized(self):
        # R = 75 ohm is matched in a 75-ohm system.
        s50 = np.array([[[(75.0 - 50.0) / (75.0 + 50.0) + 0j]]])
        s75 = renormalize_s(s50, 50.0, 75.0)
        assert np.allclose(s75, 0.0, atol=1e-12)

    def test_invalid_reference(self, rng):
        s = random_passive_s(rng)
        with pytest.raises(ValueError):
            renormalize_s(s, -50.0, 75.0)


class TestSingularCases:
    def test_ideal_open_s_to_z_raises(self):
        # S = +I is an ideal open: Z does not exist.
        s = np.eye(2)[None, :, :].astype(complex)
        with pytest.raises(np.linalg.LinAlgError, match="singular"):
            s_to_z(s)

    def test_ideal_short_s_to_y_raises(self):
        # S = -I is an ideal short: Y does not exist.
        s = -np.eye(2)[None, :, :].astype(complex)
        with pytest.raises(np.linalg.LinAlgError, match="singular"):
            s_to_y(s)

    def test_ideal_short_has_zero_impedance(self):
        s = -np.eye(2)[None, :, :].astype(complex)
        assert np.allclose(s_to_z(s), 0.0)

    def test_ideal_open_has_zero_admittance(self):
        s = np.eye(2)[None, :, :].astype(complex)
        assert np.allclose(s_to_y(s), 0.0)
