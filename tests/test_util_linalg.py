"""Unit tests for repro.util.linalg."""

import numpy as np
import pytest

from repro.util.linalg import (
    hermitian_part,
    is_stable_poles,
    log_spaced_frequencies,
    real_block_of_conjugate_pair,
    solve_hermitian_psd,
    unvec_columns,
    vec_columns,
)


class TestVecColumns:
    def test_column_stacking_order(self):
        m = np.array([[1, 2], [3, 4]])
        assert np.array_equal(vec_columns(m), [1, 3, 2, 4])

    def test_rectangular(self):
        m = np.arange(6).reshape(2, 3)
        v = vec_columns(m)
        assert v.shape == (6,)
        assert np.array_equal(v, [0, 3, 1, 4, 2, 5])

    def test_roundtrip(self):
        m = np.random.default_rng(0).normal(size=(3, 5))
        assert np.array_equal(unvec_columns(vec_columns(m), 3, 5), m)

    def test_unvec_size_mismatch(self):
        with pytest.raises(ValueError, match="cannot reshape"):
            unvec_columns(np.zeros(5), 2, 3)


class TestHermitianPart:
    def test_already_hermitian(self):
        m = np.array([[2.0, 1j], [-1j, 3.0]])
        assert np.allclose(hermitian_part(m), m)

    def test_result_is_hermitian(self):
        m = np.random.default_rng(1).normal(size=(4, 4)) + 1j * np.random.default_rng(
            2
        ).normal(size=(4, 4))
        h = hermitian_part(m)
        assert np.allclose(h, h.conj().T)


class TestSolveHermitianPsd:
    def test_spd_solve(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(5, 5))
        spd = a @ a.T + 5.0 * np.eye(5)
        rhs = rng.normal(size=5)
        x = solve_hermitian_psd(spd, rhs)
        assert np.allclose(spd @ x, rhs)

    def test_semidefinite_falls_back(self):
        # Rank-1 PSD matrix: Cholesky fails, solver must still return
        # something consistent in the least-squares sense.
        v = np.array([1.0, 2.0])
        psd = np.outer(v, v)
        rhs = psd @ np.array([3.0, 1.0])
        x = solve_hermitian_psd(psd, rhs)
        assert np.allclose(psd @ x, rhs, atol=1e-8)

    def test_regularization_keeps_solvable(self):
        psd = np.diag([1.0, 0.0])
        x = solve_hermitian_psd(psd, np.array([1.0, 0.0]), regularization=1e-8)
        assert np.isfinite(x).all()

    def test_non_square_raises(self):
        with pytest.raises(ValueError, match="square"):
            solve_hermitian_psd(np.zeros((2, 3)), np.zeros(2))


class TestIsStablePoles:
    def test_stable(self):
        assert is_stable_poles(np.array([-1.0, -2.0 + 3j, -2.0 - 3j]))

    def test_unstable(self):
        assert not is_stable_poles(np.array([-1.0, 0.5]))

    def test_marginal_is_unstable(self):
        assert not is_stable_poles(np.array([0.0 + 1j]))


class TestLogSpacedFrequencies:
    def test_endpoints_exact(self):
        f = log_spaced_frequencies(1e3, 2e9, 201)
        assert f[0] == 1e3
        assert f[-1] == 2e9
        assert f.size == 201

    def test_dc_point_prepended(self):
        f = log_spaced_frequencies(1e3, 2e9, 201, include_dc=True)
        assert f[0] == 0.0
        assert f.size == 202

    def test_strictly_increasing(self):
        f = log_spaced_frequencies(10.0, 1e6, 50, include_dc=True)
        assert np.all(np.diff(f) > 0)

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            log_spaced_frequencies(0.0, 1e6, 10)
        with pytest.raises(ValueError):
            log_spaced_frequencies(1e6, 1e3, 10)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            log_spaced_frequencies(1.0, 10.0, 1)


class TestRealBlockOfConjugatePair:
    def test_block_structure(self):
        block = real_block_of_conjugate_pair(complex(-2.0, 5.0))
        assert np.array_equal(block, [[-2.0, 5.0], [-5.0, -2.0]])

    def test_eigenvalues_are_the_pair(self):
        p = complex(-1.5, 3.0)
        eigs = np.linalg.eigvals(real_block_of_conjugate_pair(p))
        assert set(np.round(eigs, 10)) == {
            np.round(p, 10),
            np.round(np.conj(p), 10),
        }
