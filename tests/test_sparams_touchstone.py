"""Touchstone reader/writer tests: round trips, formats, v1 quirks."""

import numpy as np
import pytest

from repro.sparams.network import NetworkData
from repro.sparams.touchstone import read_touchstone, write_touchstone


def make_data(k=5, p=3):
    rng = np.random.default_rng(7)
    f = np.linspace(1e6, 1e9, k)
    s = 0.4 * (rng.normal(size=(k, p, p)) + 1j * rng.normal(size=(k, p, p)))
    return NetworkData(frequencies=f, samples=s)


class TestRoundTrip:
    @pytest.mark.parametrize("fmt", ["ri", "ma", "db"])
    @pytest.mark.parametrize("ports", [1, 2, 3, 4])
    def test_roundtrip_formats_and_ports(self, tmp_path, fmt, ports):
        data = make_data(p=ports)
        path = tmp_path / f"test.s{ports}p"
        write_touchstone(data, path, fmt=fmt)
        back = read_touchstone(path)
        assert back.n_ports == ports
        assert np.allclose(back.frequencies, data.frequencies)
        assert np.allclose(back.samples, data.samples, atol=1e-9)

    @pytest.mark.parametrize("unit", ["hz", "khz", "mhz", "ghz"])
    def test_units(self, tmp_path, unit):
        data = make_data(p=2)
        path = tmp_path / "u.s2p"
        write_touchstone(data, path, unit=unit)
        back = read_touchstone(path)
        assert np.allclose(back.frequencies, data.frequencies)

    def test_suffix_autocorrected(self, tmp_path):
        data = make_data(p=3)
        path = tmp_path / "wrong.s2p"
        write_touchstone(data, path)
        assert (tmp_path / "wrong.s3p").exists()


class TestParsing:
    def test_two_port_column_major_quirk(self, tmp_path):
        # Touchstone v1 two-port rows are f S11 S21 S12 S22.
        content = "# HZ S RI R 50\n1.0 0.1 0 0.21 0 0.12 0 0.2 0\n"
        path = tmp_path / "quirk.s2p"
        path.write_text(content)
        data = read_touchstone(path)
        assert np.isclose(data.samples[0, 1, 0].real, 0.21)
        assert np.isclose(data.samples[0, 0, 1].real, 0.12)

    def test_comments_and_blank_lines(self, tmp_path):
        content = (
            "! leading comment\n\n# HZ S RI R 50\n"
            "! another\n1.0 0.5 0.0 ! inline comment\n2.0 0.25 0.1\n"
        )
        path = tmp_path / "c.s1p"
        path.write_text(content)
        data = read_touchstone(path)
        assert data.n_frequencies == 2
        assert np.isclose(data.samples[1, 0, 0], 0.25 + 0.1j)

    def test_default_option_line_is_ghz_ma(self, tmp_path):
        path = tmp_path / "d.s1p"
        path.write_text("#\n1.0 1.0 0.0\n")
        data = read_touchstone(path)
        assert np.isclose(data.frequencies[0], 1e9)

    def test_reference_resistance_parsed(self, tmp_path):
        path = tmp_path / "r.s1p"
        path.write_text("# HZ S RI R 75\n1.0 0.5 0.0\n")
        assert read_touchstone(path).z0 == 75.0

    def test_frequency_sorting(self, tmp_path):
        path = tmp_path / "s.s1p"
        path.write_text("# HZ S RI R 50\n2.0 0.2 0\n1.0 0.1 0\n")
        data = read_touchstone(path)
        assert np.array_equal(data.frequencies, [1.0, 2.0])
        assert np.isclose(data.samples[0, 0, 0].real, 0.1)

    def test_wrapped_multiport_rows(self, tmp_path):
        # 3-port data wrapped over several lines must reassemble.
        data = make_data(k=2, p=3)
        path = tmp_path / "w.s3p"
        write_touchstone(data, path)
        text = path.read_text()
        assert any(line.startswith("  ") for line in text.splitlines())
        back = read_touchstone(path)
        assert np.allclose(back.samples, data.samples, atol=1e-9)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "e.s1p"
        path.write_text("! nothing here\n")
        with pytest.raises(ValueError, match="no data"):
            read_touchstone(path)

    def test_v2_keyword_rejected(self, tmp_path):
        path = tmp_path / "v2.s1p"
        path.write_text("[Version] 2.0\n# HZ S RI R 50\n1.0 0.1 0\n")
        with pytest.raises(ValueError, match="v2"):
            read_touchstone(path)

    def test_inconsistent_layout_raises(self, tmp_path):
        path = tmp_path / "bad.s2p"
        path.write_text("# HZ S RI R 50\n1.0 0.1 0 0.2 0\n")
        with pytest.raises(ValueError, match="inconsistent"):
            read_touchstone(path)

    def test_y_parameter_type(self, tmp_path):
        path = tmp_path / "y.s1p"
        path.write_text("# HZ Y RI R 50\n1.0 0.02 0.0\n")
        assert read_touchstone(path).kind == "y"

    def test_unsupported_type_raises(self, tmp_path):
        path = tmp_path / "h.s1p"
        path.write_text("# HZ H RI R 50\n1.0 0.02 0.0\n")
        with pytest.raises(ValueError, match="unsupported"):
            read_touchstone(path)


class TestWriterValidation:
    def test_bad_format(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            write_touchstone(make_data(), tmp_path / "x.s3p", fmt="xx")

    def test_bad_unit(self, tmp_path):
        with pytest.raises(ValueError, match="unit"):
            write_touchstone(make_data(), tmp_path / "x.s3p", unit="thz")

    def test_pdn_data_roundtrip(self, tmp_path, coarse_testcase):
        data = coarse_testcase.data
        path = tmp_path / "pdn.s9p"
        write_touchstone(data, path)
        back = read_touchstone(path)
        assert back.n_ports == data.n_ports
        assert np.allclose(back.samples, data.samples, atol=1e-9)
