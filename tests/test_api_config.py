"""ReproConfig: JSON round-trip, unknown-key rejection, defaults, shims."""

import json

import numpy as np
import pytest

from repro.api.config import (
    ReproConfig,
    ValidationOptions,
    options_from_dict,
    options_to_dict,
    options_token,
)
from repro.flow.macromodel import FlowOptions
from repro.ingest.conditioning import ConditioningOptions
from repro.passivity.enforce import EnforcementOptions
from repro.vectfit.options import VFOptions


class TestOptionCodec:
    @pytest.mark.parametrize(
        "options",
        [
            VFOptions(),
            VFOptions(n_poles=7, dc_exact=True, kernel="reference"),
            EnforcementOptions(),
            EnforcementOptions(max_iterations=5, checker_strategy="exact"),
            ConditioningOptions(),
            ConditioningOptions(z0=75.0, dc_policy="drop", f_max=1e9,
                                max_points=50, symmetrize="always"),
            ValidationOptions(),
            ValidationOptions(low_band_hz=2e6),
            FlowOptions(),
            FlowOptions(
                vf=VFOptions(n_poles=6),
                weight_mode="absolute",
                weight_floor=0.1,
                refinement_rounds=0,
                enforcement=EnforcementOptions(margin=1e-4),
            ),
        ],
        ids=lambda o: type(o).__name__,
    )
    def test_roundtrip_every_option_dataclass(self, options):
        payload = options_to_dict(options)
        json.dumps(payload)  # must be JSON-serializable as-is
        assert options_from_dict(type(options), payload) == options

    def test_initial_poles_roundtrip(self):
        poles = np.array([-1.0 + 0j, -2.0 + 30.0j, -2.0 - 30.0j])
        options = VFOptions(n_poles=3, initial_poles=poles)
        payload = options_to_dict(options)
        restored = options_from_dict(VFOptions, payload)
        assert np.array_equal(restored.initial_poles, poles)

    def test_unknown_key_rejected_with_path(self):
        with pytest.raises(ValueError, match="vf.*n_polse"):
            options_from_dict(
                FlowOptions, {"vf": {"n_polse": 9}}, path="flow."
            )

    def test_validation_runs_on_load(self):
        with pytest.raises(ValueError, match="weight_mode"):
            options_from_dict(FlowOptions, {"weight_mode": "inverse"})

    def test_token_is_canonical(self):
        assert options_token(VFOptions()) == options_token(VFOptions())
        assert options_token(VFOptions()) != options_token(
            VFOptions(n_poles=11)
        )


class TestReproConfig:
    def test_defaults_compose_the_dataclass_defaults(self):
        config = ReproConfig()
        assert config.flow == FlowOptions()
        assert config.ingest == ConditioningOptions()
        assert config.validation == ValidationOptions()
        assert config.vf == VFOptions(n_poles=12)
        assert config.enforcement == EnforcementOptions()

    def test_json_roundtrip(self):
        config = ReproConfig(
            flow=FlowOptions(vf=VFOptions(n_poles=9), weight_floor=0.05),
            ingest=ConditioningOptions(z0=75.0, max_points=99),
            validation=ValidationOptions(low_band_hz=5e5),
        )
        assert ReproConfig.from_json(config.to_json()) == config

    def test_defaults_stability(self):
        # An empty document and a default-constructed config must agree;
        # a default round-trip must be the identity.  Guards against a
        # default silently changing meaning between the two forms.
        assert ReproConfig.from_dict({}) == ReproConfig()
        payload = ReproConfig().to_dict()
        assert payload["format"] == "repro.config"
        assert payload["version"] == 1
        assert payload["flow"]["vf"]["n_poles"] == 12
        assert payload["flow"]["weight_mode"] == "relative"
        assert payload["flow"]["enforcement"]["max_iterations"] == 30
        assert payload["ingest"]["symmetrize"] == "auto"
        assert payload["validation"]["low_band_hz"] == 1e6
        assert ReproConfig.from_dict(payload) == ReproConfig()

    def test_unknown_keys_rejected_at_every_level(self):
        with pytest.raises(ValueError, match="unknown keys.*bogus"):
            ReproConfig.from_dict({"bogus": 1})
        with pytest.raises(ValueError, match="flow.*bogus"):
            ReproConfig.from_dict({"flow": {"bogus": 1}})
        with pytest.raises(ValueError, match="enforcement.*bogus"):
            ReproConfig.from_dict(
                {"flow": {"enforcement": {"bogus": 1}}}
            )
        with pytest.raises(ValueError, match="ingest.*bogus"):
            ReproConfig.from_dict({"ingest": {"bogus": 1}})

    def test_format_and_version_checked(self):
        with pytest.raises(ValueError, match="not a repro.config"):
            ReproConfig.from_dict({"format": "something-else"})
        with pytest.raises(ValueError, match="version"):
            ReproConfig.from_dict({"format": "repro.config", "version": 99})

    def test_save_load(self, tmp_path):
        config = ReproConfig(flow=FlowOptions(refinement_rounds=1))
        path = tmp_path / "config.json"
        config.save(path)
        assert ReproConfig.load(path) == config

    def test_coerce_shim(self):
        legacy = FlowOptions(weight_mode="absolute")
        upgraded = ReproConfig.coerce(legacy)
        assert upgraded.flow is legacy
        assert upgraded.flow_options() is legacy
        assert ReproConfig.coerce(None) == ReproConfig()
        config = ReproConfig()
        assert ReproConfig.coerce(config) is config
        with pytest.raises(TypeError):
            ReproConfig.coerce({"flow": {}})

    def test_replace(self):
        config = ReproConfig().replace(
            validation=ValidationOptions(low_band_hz=2e6)
        )
        assert config.validation.low_band_hz == 2e6
        assert config.flow == FlowOptions()
