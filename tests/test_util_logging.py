"""Logging helpers."""

import logging

from repro.util.logging import enable_console_logging, get_logger


class TestGetLogger:
    def test_namespaced_under_package_root(self):
        logger = get_logger("mymodule")
        assert logger.name == "repro.mymodule"

    def test_package_names_passed_through(self):
        logger = get_logger("repro.vectfit.core")
        assert logger.name == "repro.vectfit.core"

    def test_hierarchy(self):
        child = get_logger("repro.passivity.enforce")
        root = logging.getLogger("repro")
        assert child.parent is not None
        assert child.name.startswith(root.name)


class TestEnableConsoleLogging:
    def test_adds_single_handler(self):
        root = logging.getLogger("repro")
        before = [h for h in root.handlers if isinstance(h, logging.StreamHandler)]
        enable_console_logging()
        enable_console_logging()  # idempotent
        after = [h for h in root.handlers if isinstance(h, logging.StreamHandler)]
        assert len(after) <= len(before) + 1

    def test_level_applied(self):
        enable_console_logging(logging.WARNING)
        assert logging.getLogger("repro").level == logging.WARNING
