"""Logging helpers."""

import logging

from repro.util.logging import enable_console_logging, get_logger


class TestGetLogger:
    def test_namespaced_under_package_root(self):
        logger = get_logger("mymodule")
        assert logger.name == "repro.mymodule"

    def test_package_names_passed_through(self):
        logger = get_logger("repro.vectfit.core")
        assert logger.name == "repro.vectfit.core"

    def test_hierarchy(self):
        child = get_logger("repro.passivity.enforce")
        root = logging.getLogger("repro")
        assert child.parent is not None
        assert child.name.startswith(root.name)


def _console_handlers(root):
    return [
        h for h in root.handlers
        if getattr(h, "_repro_console_handler", False)
    ]


class TestEnableConsoleLogging:
    def setup_method(self):
        root = logging.getLogger("repro")
        for handler in _console_handlers(root):
            root.removeHandler(handler)

    teardown_method = setup_method

    def test_adds_single_handler(self):
        root = logging.getLogger("repro")
        enable_console_logging()
        enable_console_logging()  # idempotent
        assert len(_console_handlers(root)) == 1

    def test_level_applied(self):
        enable_console_logging(logging.WARNING)
        assert logging.getLogger("repro").level == logging.WARNING

    def test_repeated_call_updates_handler_level(self):
        root = logging.getLogger("repro")
        enable_console_logging(logging.INFO)
        enable_console_logging(logging.DEBUG)
        handlers = _console_handlers(root)
        assert len(handlers) == 1
        assert handlers[0].level == logging.DEBUG

    def test_file_handler_does_not_suppress_console(self, tmp_path):
        # FileHandler subclasses StreamHandler; an isinstance-based dedup
        # would see it and skip installing the console handler entirely.
        root = logging.getLogger("repro")
        file_handler = logging.FileHandler(tmp_path / "repro.log")
        root.addHandler(file_handler)
        try:
            enable_console_logging()
            assert len(_console_handlers(root)) == 1
            assert file_handler in root.handlers
        finally:
            root.removeHandler(file_handler)
            file_handler.close()
