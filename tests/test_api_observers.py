"""Observer layer: timing accumulation, console output, event views."""

import io
import logging

import pytest

from repro.api import (
    ConsoleObserver,
    EventObserver,
    Pipeline,
    PipelineStage,
    ReproConfig,
    StageExecution,
    TimingObserver,
)
from repro.api.artifacts import ArtifactSpec


class _CountStage(PipelineStage):
    """Trivial stage: counts its own executions."""

    inputs = ()
    outputs = (ArtifactSpec("token", object, "a value"),)
    cacheable = False

    def __init__(self, name="count"):
        self.name = name
        self.calls = 0
        self.outputs = (ArtifactSpec(f"{name}_token", object, "a value"),)

    def run(self, config, inputs):
        self.calls += 1
        return {f"{self.name}_token": self.calls}


class TestTimingObserver:
    def test_accumulates_across_repeated_stages(self):
        timer = TimingObserver()
        stage = _CountStage()
        pipeline = Pipeline([stage], observers=[timer])
        pipeline.run(ReproConfig())
        pipeline.run(ReproConfig())
        assert [e.stage for e in timer.executions] == ["count", "count"]
        # seconds() sums repeated stages instead of last-one-wins.
        total = sum(e.seconds for e in timer.executions)
        assert timer.seconds() == {"count": pytest.approx(total)}

    def test_keeps_execution_objects(self):
        timer = TimingObserver()
        Pipeline([_CountStage()], observers=[timer]).run(ReproConfig())
        assert isinstance(timer.executions[0], StageExecution)
        assert timer.executions[0].status == "computed"


class TestStageExecution:
    def test_to_dict_round_trip(self):
        execution = StageExecution(
            stage="fit", status="cached", seconds=1.25,
            key="ab" * 32, outputs=("standard_fit",),
        )
        payload = execution.to_dict()
        assert payload == {
            "stage": "fit",
            "status": "cached",
            "seconds": 1.25,
            "cache_hit": True,
            "key": "ab" * 32,
            "outputs": ["standard_fit"],
        }
        rebuilt = StageExecution(
            stage=payload["stage"], status=payload["status"],
            seconds=payload["seconds"], key=payload["key"],
            outputs=tuple(payload["outputs"]),
        )
        assert rebuilt == execution
        assert rebuilt.to_dict() == payload

    def test_json_compatible(self):
        import json

        execution = StageExecution(stage="fit", status="computed",
                                   seconds=0.5)
        assert json.loads(json.dumps(execution.to_dict()))


class TestConsoleObserver:
    def test_stream_output_format(self):
        stream = io.StringIO()
        Pipeline(
            [_CountStage()], observers=[ConsoleObserver(stream)]
        ).run(ReproConfig())
        lines = stream.getvalue().splitlines()
        assert lines[0] == "stage count: running ..."
        assert lines[1].startswith("stage count: computed in ")
        assert lines[1].endswith("s")

    def test_default_routes_through_package_logger(self, caplog, capsys):
        with caplog.at_level(logging.INFO, logger="repro.api.pipeline"):
            Pipeline(
                [_CountStage()], observers=[ConsoleObserver()]
            ).run(ReproConfig())
        messages = [r.getMessage() for r in caplog.records]
        assert any(m == "stage count: running ..." for m in messages)
        assert any(m.startswith("stage count: computed in ")
                   for m in messages)
        # Nothing printed: embedders are not spammed on stdout.
        assert "stage count" not in capsys.readouterr().out


class TestEventObserver:
    def test_receives_structured_events(self):
        events = []

        class Recorder(EventObserver):
            def on_event(self, event):
                events.append(event)

        Pipeline([_CountStage()], observers=[Recorder()]).run(ReproConfig())
        assert [e["event"] for e in events] == ["stage.start", "stage.finish"]
        assert events[0]["stage"] == "count"
        finish = events[1]
        assert finish["status"] == "computed"
        assert finish["cache_hit"] is False
        assert finish["outputs"] == ["count_token"]

    def test_event_payload_matches_telemetry_stream(self, tmp_path):
        """The observer view and the telemetry sink see the same record."""
        import json

        from repro.obs import telemetry_session

        events = []

        class Recorder(EventObserver):
            def on_event(self, event):
                if event["event"] == "stage.finish":
                    events.append(event)

        with telemetry_session(tmp_path, label="t") as tel:
            Pipeline(
                [_CountStage()], observers=[Recorder()]
            ).run(ReproConfig())
        recorded = [
            e for e in tel.events if e.get("event") == "stage.finish"
        ]
        assert len(recorded) == 1 and len(events) == 1
        for key in ("stage", "status", "seconds", "cache_hit", "outputs"):
            assert recorded[0][key] == events[0][key]
