"""Flow behaviour under non-default configurations.

The default configuration is covered by the session fixture; these tests
exercise the knobs (weight modes, refinement off, enforcement options)
on a coarse grid so they stay fast.
"""

import numpy as np
import pytest

from repro.flow.macromodel import FlowOptions, MacromodelingFlow
from repro.passivity.enforce import EnforcementOptions
from repro.vectfit.options import VFOptions


@pytest.fixture(scope="module")
def coarse(coarse_testcase):
    return coarse_testcase


class TestWeightModes:
    def test_absolute_mode_runs(self, coarse):
        flow = MacromodelingFlow(
            FlowOptions(
                vf=VFOptions(n_poles=10),
                weight_mode="absolute",
                refinement_rounds=0,
            )
        )
        result = flow.run(coarse.data, coarse.termination, coarse.observe_port)
        assert result.weighted_enforced.model.n_poles == 10

    def test_zero_refinement_rounds(self, coarse):
        flow = MacromodelingFlow(
            FlowOptions(vf=VFOptions(n_poles=10), refinement_rounds=0)
        )
        result = flow.run(coarse.data, coarse.termination, coarse.observe_port)
        # Without refinement the final weights equal the base weights.
        assert np.allclose(result.final_weights, result.base_weights)

    def test_higher_floor_tightens_scattering(self, coarse):
        low_floor = MacromodelingFlow(
            FlowOptions(
                vf=VFOptions(n_poles=10), weight_floor=0.005, refinement_rounds=0
            )
        )
        high_floor = MacromodelingFlow(
            FlowOptions(
                vf=VFOptions(n_poles=10), weight_floor=0.5, refinement_rounds=0
            )
        )
        omega = coarse.data.omega
        r_low = low_floor.run(coarse.data, coarse.termination, coarse.observe_port)
        r_high = high_floor.run(coarse.data, coarse.termination, coarse.observe_port)
        err_low = np.abs(
            r_low.weighted_fit.model.frequency_response(omega) - coarse.data.samples
        ).max()
        err_high = np.abs(
            r_high.weighted_fit.model.frequency_response(omega) - coarse.data.samples
        ).max()
        # A higher floor keeps the weighted fit closer to the plain fit.
        assert err_high < err_low * 1.5


class TestEnforcementConfig:
    def test_custom_enforcement_options_propagate(self, coarse):
        options = FlowOptions(
            vf=VFOptions(n_poles=10),
            refinement_rounds=0,
            enforcement=EnforcementOptions(max_iterations=2),
        )
        flow = MacromodelingFlow(options)
        result = flow.run(coarse.data, coarse.termination, coarse.observe_port)
        assert result.standard_enforced.iterations <= 2
        assert result.weighted_enforced.iterations <= 2

    def test_weight_model_order_propagates(self, coarse):
        flow = MacromodelingFlow(
            FlowOptions(
                vf=VFOptions(n_poles=10),
                weight_model_order=5,
                refinement_rounds=0,
            )
        )
        result = flow.run(coarse.data, coarse.termination, coarse.observe_port)
        assert result.weight_model.model.n_states == 5
