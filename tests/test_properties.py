"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparams.conversions import s_to_y, s_to_z, y_to_s, z_to_s
from repro.statespace.gramians import controllability_gramian
from repro.statespace.poleresidue import PoleResidueModel
from repro.util.linalg import unvec_columns, vec_columns
from repro.vectfit.core import canonicalize_poles, flip_unstable_poles, vector_fit
from repro.vectfit.options import VFOptions

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# vec/unvec
# ----------------------------------------------------------------------
@given(
    hnp.arrays(np.float64, hnp.array_shapes(min_dims=2, max_dims=2), elements=finite_floats)
)
def test_vec_roundtrip(matrix):
    rows, cols = matrix.shape
    assert np.array_equal(
        unvec_columns(vec_columns(matrix), rows, cols), matrix
    )


# ----------------------------------------------------------------------
# Conversions round-trip for passive scattering matrices
# ----------------------------------------------------------------------
@st.composite
def passive_scattering(draw):
    p = draw(st.integers(min_value=1, max_value=4))
    k = draw(st.integers(min_value=1, max_value=3))
    re = draw(
        hnp.arrays(np.float64, (k, p, p), elements=st.floats(-1.0, 1.0))
    )
    im = draw(
        hnp.arrays(np.float64, (k, p, p), elements=st.floats(-1.0, 1.0))
    )
    s = re + 1j * im
    norms = np.maximum(
        np.linalg.norm(s, ord=2, axis=(1, 2)), 1e-6
    )
    return 0.8 * s / norms[:, None, None]


@given(passive_scattering())
@settings(max_examples=40, deadline=None)
def test_s_y_roundtrip_property(s):
    assert np.allclose(y_to_s(s_to_y(s, 50.0), 50.0), s, atol=1e-8)


@given(passive_scattering())
@settings(max_examples=40, deadline=None)
def test_s_z_roundtrip_property(s):
    assert np.allclose(z_to_s(s_to_z(s, 50.0), 50.0), s, atol=1e-8)


# ----------------------------------------------------------------------
# Pole canonicalization
# ----------------------------------------------------------------------
pole_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-100.0, max_value=-0.01),
        st.floats(min_value=0.0, max_value=100.0),
    ),
    min_size=1,
    max_size=6,
)


@given(pole_strategy)
def test_canonicalize_preserves_count_and_pairs(pole_specs):
    raw = []
    for re, im in pole_specs:
        if im < 0.05:
            raw.append(complex(re, 0.0))
        else:
            raw.append(complex(re, im))
            raw.append(complex(re, -im))
    out = canonicalize_poles(np.asarray(raw, dtype=complex))
    assert out.size == len(raw)
    # Pair-grouped: every +imag pole is immediately followed by its conjugate.
    n = 0
    while n < out.size:
        if out[n].imag == 0.0:
            n += 1
        else:
            assert out[n].imag > 0
            assert out[n + 1] == np.conj(out[n])
            n += 2


@given(pole_strategy)
def test_flip_unstable_makes_stable(pole_specs):
    raw = np.asarray(
        [complex(abs(re), im) for re, im in pole_specs], dtype=complex
    )
    flipped = flip_unstable_poles(raw, floor=1e-6)
    assert np.all(flipped.real < 0)
    assert np.allclose(np.abs(flipped.imag), np.abs(raw.imag))


# ----------------------------------------------------------------------
# Gramians of random stable diagonal-ish systems
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(min_value=-1e4, max_value=-1e-2), min_size=1, max_size=8),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_gramian_psd_property(pole_list, seed):
    rng = np.random.default_rng(seed)
    n = len(pole_list)
    a = np.diag(pole_list) + np.triu(rng.normal(size=(n, n)), k=1)
    b = rng.normal(size=(n, 1))
    p = controllability_gramian(a, b)
    eigs = np.linalg.eigvalsh(p)
    assert eigs.min() >= -1e-8 * max(eigs.max(), 1e-30)


# ----------------------------------------------------------------------
# Vector fitting recovers random rational models
# ----------------------------------------------------------------------
@st.composite
def random_model_spec(draw):
    n_real = draw(st.integers(min_value=0, max_value=2))
    n_pairs = draw(st.integers(min_value=0, max_value=2))
    if n_real + n_pairs == 0:
        n_real = 1
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n_real, n_pairs, seed


@given(random_model_spec())
@settings(max_examples=15, deadline=None)
def test_vector_fit_recovery_property(spec):
    n_real, n_pairs, seed = spec
    rng = np.random.default_rng(seed)
    poles = []
    for _ in range(n_real):
        poles.append(complex(-rng.uniform(0.1, 5.0), 0.0))
    for _ in range(n_pairs):
        re, im = -rng.uniform(0.1, 2.0), rng.uniform(0.5, 30.0)
        poles.append(complex(re, im))
        poles.append(complex(re, -im))
    poles = np.asarray(poles)
    residues = np.zeros((poles.size, 1, 1), dtype=complex)
    idx = 0
    for _ in range(n_real):
        residues[idx, 0, 0] = rng.normal()
        idx += 1
    for _ in range(n_pairs):
        residues[idx, 0, 0] = rng.normal() + 1j * rng.normal()
        residues[idx + 1, 0, 0] = np.conj(residues[idx, 0, 0])
        idx += 2
    truth = PoleResidueModel(poles, residues, np.array([[rng.normal() * 0.1]]))
    omega = np.geomspace(0.01, 100.0, 160)
    data = truth.frequency_response(omega)
    result = vector_fit(
        omega,
        data,
        options=VFOptions(
            n_poles=poles.size, asymptotic_passivity_margin=0.0
        ),
    )
    scale = max(float(np.abs(data).max()), 1e-12)
    assert result.rms_error < 1e-6 * scale


# ----------------------------------------------------------------------
# Pole-residue realization equivalence
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_realization_equivalence_property(seed):
    from tests.conftest import make_random_stable_model

    rng = np.random.default_rng(seed)
    model = make_random_stable_model(rng, n_ports=2)
    omega = np.geomspace(0.1, 50.0, 12)
    direct = model.frequency_response(omega)
    via_ss = model.to_state_space().frequency_response(omega)
    assert np.allclose(direct, via_ss, atol=1e-9)
