"""Pipeline engine: legacy equivalence, store-backed resume, composition.

The acceptance bar of the API redesign: the pipeline-backed ``run_flow``
must reproduce the legacy fixed-chain results exactly (the legacy chain
is re-created inline from the same primitives), stage results must resume
byte-identically from the content-addressed store, and the flow-cache
fingerprints must not move.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import make_paper_testcase
from repro.api import (
    ArtifactSpec,
    ArtifactStore,
    Pipeline,
    PipelineObserver,
    PipelineStage,
    ReproConfig,
    StandardFitStage,
    TimingObserver,
    WeightingStage,
    artifact_digest,
    decode_artifact,
    encode_artifact,
    file_pipeline,
    standard_pipeline,
)
from repro.api.stages import compute_base_weights, refine_weighted_fit
from repro.flow.macromodel import FlowOptions, run_flow
from repro.passivity.check import check_passivity
from repro.passivity.cost import l2_gramian_cost
from repro.passivity.enforce import enforce_passivity
from repro.sensitivity.firstorder import sensitivity_analytic
from repro.sensitivity.weighted_norm import sensitivity_weighted_cost
from repro.sensitivity.weightmodel import build_weight_model
from repro.sensitivity.zpdn import target_impedance
from repro.vectfit.core import fit_many
from repro.vectfit.options import VFOptions

EXTERNAL_S2P = Path(__file__).parent.parent / "examples/data/coupled_rlc.s2p"


@pytest.fixture(scope="module")
def coarse():
    return make_paper_testcase(n_frequencies=61, include_dc=False)


@pytest.fixture(scope="module")
def fast_options():
    return FlowOptions(vf=VFOptions(n_poles=8), refinement_rounds=1)


def legacy_chain(data, termination, observe_port, options):
    """The pre-redesign ``MacromodelingFlow.run`` body, verbatim."""
    omega = data.omega
    reference = target_impedance(
        data.samples, omega, termination, observe_port, z0=data.z0
    )
    xi = sensitivity_analytic(
        data.samples, omega, termination, observe_port, z0=data.z0
    )
    base = compute_base_weights(options, xi, reference)
    standard, weighted0 = fit_many(
        omega, [data.samples, data.samples], [None, base], options.vf
    )
    weighted, final_weights = refine_weighted_fit(
        options, data, termination, observe_port, base, reference,
        initial_result=weighted0,
    )
    weight_model = build_weight_model(
        omega, base, order=options.weight_model_order
    )
    report = check_passivity(
        weighted.model, band_samples=options.enforcement.band_samples
    )
    standard_enforced = enforce_passivity(
        weighted.model, l2_gramian_cost(weighted.model),
        options.enforcement, initial_report=report,
    )
    weighted_enforced = enforce_passivity(
        weighted.model,
        sensitivity_weighted_cost(weighted.model, weight_model.model),
        options.enforcement, initial_report=report,
    )
    return {
        "reference": reference,
        "xi": xi,
        "base": base,
        "standard": standard,
        "weighted": weighted,
        "final_weights": final_weights,
        "report": report,
        "standard_enforced": standard_enforced,
        "weighted_enforced": weighted_enforced,
    }


def assert_matches_legacy(result, legacy, rtol=1e-12):
    def close(a, b):
        np.testing.assert_allclose(
            np.asarray(a), np.asarray(b), rtol=rtol, atol=0.0
        )

    close(result.base_weights, legacy["base"])
    close(result.final_weights, legacy["final_weights"])
    close(result.xi, legacy["xi"])
    close(result.reference_impedance, legacy["reference"])
    assert result.weighted_fit.rms_error == pytest.approx(
        legacy["weighted"].rms_error, rel=rtol
    )
    assert result.standard_fit.rms_error == pytest.approx(
        legacy["standard"].rms_error, rel=rtol
    )
    assert result.pre_enforcement_report.worst_sigma == pytest.approx(
        legacy["report"].worst_sigma, rel=rtol
    )
    for name in ("standard_enforced", "weighted_enforced"):
        ours = getattr(result, name).model
        theirs = legacy[name].model
        close(ours.poles, theirs.poles)
        close(ours.residues, theirs.residues)
        close(ours.const, theirs.const)


class TestLegacyEquivalence:
    def test_seed_small_pdn_case(self, testcase, flow_result):
        """Acceptance: seed small PDN case matches the legacy chain."""
        legacy = legacy_chain(
            testcase.data, testcase.termination, testcase.observe_port,
            FlowOptions(),
        )
        assert_matches_legacy(flow_result, legacy)

    def test_external_coupled_rlc_case(self):
        """Acceptance: the checked-in external .s2p matches too."""
        from repro.ingest import build_termination, load_network

        options = FlowOptions(vf=VFOptions(n_poles=8))
        data, _ = load_network(EXTERNAL_S2P)
        termination = build_termination(
            "0=r(1);1=rlc(r=0.2,c=1e-6)", data.n_ports, observe_port=1
        )
        legacy = legacy_chain(data, termination, 1, options)
        result = run_flow(data, termination, 1, options)
        assert_matches_legacy(result, legacy)

    def test_flow_cache_fingerprints_unchanged(self):
        """Flow-cache keys are pinned: campaign re-runs keep hitting."""
        from repro.campaign.cache import flow_fingerprint
        from repro.ingest.termination import build_termination
        from repro.sparams.network import NetworkData

        tc = make_paper_testcase(n_frequencies=11, include_dc=False)
        assert flow_fingerprint(
            tc.data, tc.termination, tc.observe_port, FlowOptions()
        ) == (
            "aadb9b88d9e55c7b025f8b5fe232b5732797d5233d47157cc3e13b9c6c1eb503"
        )

        f = np.linspace(1e6, 1e9, 5)
        s = np.zeros((f.size, 2, 2), dtype=complex)
        for i in range(f.size):
            s[i] = np.array([[0.1 + 0.01j * i, 0.02], [0.02, 0.1 - 0.005j * i]])
        data = NetworkData(frequencies=f, samples=s)
        term = build_termination("0=r(50);1=r(50)", 2, observe_port=0)
        assert flow_fingerprint(data, term, 0, FlowOptions()) == (
            "5d754d6c82b4ebda2d1bd06bac980e88ddbe6ca6eacff7754bf3e85f8efdfc96"
        )


class TestArtifactCodec:
    def test_ndarray_byte_identical(self):
        rng = np.random.default_rng(7)
        for array in (
            rng.normal(size=(3, 4)),
            rng.normal(size=5) + 1j * rng.normal(size=5),
            np.array([], dtype=float),
        ):
            restored = decode_artifact(
                json.loads(json.dumps(encode_artifact(array)))
            )
            assert restored.dtype == array.dtype
            assert restored.tobytes() == array.tobytes()

    def test_termination_roundtrip(self, coarse):
        restored = decode_artifact(encode_artifact(coarse.termination))
        from repro.pdn.spec import termination_to_dict

        assert termination_to_dict(restored) == termination_to_dict(
            coarse.termination
        )

    def test_digest_tracks_content(self, coarse):
        a = artifact_digest(coarse.data)
        assert a == artifact_digest(coarse.data)
        perturbed = coarse.data.samples.copy()
        perturbed[0, 0, 0] += 1e-12
        from repro.sparams.network import NetworkData

        other = NetworkData(
            frequencies=coarse.data.frequencies, samples=perturbed
        )
        assert artifact_digest(other) != a

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="no artifact codec"):
            encode_artifact(object())


class TestStoreAndResume:
    def test_kill_after_standard_fit_resumes_byte_identically(
        self, coarse, fast_options, tmp_path
    ):
        """Satellite acceptance: partial run, then resume; the stored fit
        artifact is reused (not recomputed) and is byte-identical."""
        config = ReproConfig.from_flow_options(fast_options)
        seed = {
            "network": coarse.data,
            "termination": coarse.termination,
            "observe_port": coarse.observe_port,
        }
        store = ArtifactStore(tmp_path / "stages")
        partial = standard_pipeline(store=store).run(
            config, seed=dict(seed), stop_after="standard_fit"
        )
        assert [e.stage for e in partial.executions] == ["standard_fit"]
        assert "weighted_fit" not in partial

        fit_key = partial.executions[0].key
        stored_file = store.path(fit_key)
        assert stored_file.exists()
        bytes_before = stored_file.read_bytes()

        # "Kill": a brand-new pipeline and store instance (fresh process
        # semantics -- the memory layer is empty, only disk survives).
        resumed_store = ArtifactStore(tmp_path / "stages")
        run = standard_pipeline(store=resumed_store).run(
            config, seed=dict(seed)
        )
        by_stage = {e.stage: e for e in run.executions}
        assert by_stage["standard_fit"].status == "cached"
        assert by_stage["standard_fit"].key == fit_key
        assert stored_file.read_bytes() == bytes_before

        # The resumed fit is byte-identical to a from-scratch computation.
        fresh = StandardFitStage().run(config, {"network": coarse.data})
        resumed_fit = run["standard_fit"]
        for attribute in ("poles", "residues", "const"):
            assert (
                getattr(resumed_fit.model, attribute).tobytes()
                == getattr(fresh["standard_fit"].model, attribute).tobytes()
            )

    def test_second_run_is_fully_cached(self, coarse, fast_options, tmp_path):
        store = tmp_path / "stages"
        first = run_flow(
            coarse.data, coarse.termination, coarse.observe_port,
            fast_options, store=store,
        )
        second = run_flow(
            coarse.data, coarse.termination, coarse.observe_port,
            fast_options, store=store,
        )
        assert all(p["status"] == "computed" for p in first.stage_provenance)
        assert all(p["status"] == "cached" for p in second.stage_provenance)
        assert second.headline_metrics == first.headline_metrics
        assert (
            second.weighted_enforced.model.residues.tobytes()
            == first.weighted_enforced.model.residues.tobytes()
        )

    def test_config_change_misses(self, coarse, fast_options, tmp_path):
        store = tmp_path / "stages"
        run_flow(
            coarse.data, coarse.termination, coarse.observe_port,
            fast_options, store=store,
        )
        other = FlowOptions(vf=VFOptions(n_poles=6), refinement_rounds=1)
        rerun = run_flow(
            coarse.data, coarse.termination, coarse.observe_port,
            other, store=store,
        )
        by_stage = {p["stage"]: p for p in rerun.stage_provenance}
        assert by_stage["standard_fit"]["status"] == "computed"
        # The sensitivity stage reads no configuration: still a hit.
        assert by_stage["sensitivity"]["status"] == "cached"

    def test_seeded_standard_fit_is_skipped(self, coarse, fast_options):
        result = run_flow(
            coarse.data, coarse.termination, coarse.observe_port, fast_options
        )
        reseeded = run_flow(
            coarse.data, coarse.termination, coarse.observe_port,
            fast_options, standard_fit=result.standard_fit,
        )
        assert reseeded.stage_provenance[0]["status"] == "seeded"
        assert (
            reseeded.weighted_enforced.model.residues.tobytes()
            == result.weighted_enforced.model.residues.tobytes()
        )

    def test_partial_seed_rejected(self, coarse, fast_options):
        pipeline = standard_pipeline()
        with pytest.raises(ValueError, match="seed all of a stage's outputs"):
            pipeline.run(
                ReproConfig.from_flow_options(fast_options),
                seed={
                    "network": coarse.data,
                    "termination": coarse.termination,
                    "observe_port": coarse.observe_port,
                    "base_weights": np.ones(coarse.data.n_frequencies),
                },
            )


class TestGraphAndComposition:
    def test_missing_input_names_the_artifact(self, coarse):
        pipeline = standard_pipeline()
        with pytest.raises(ValueError, match="termination"):
            pipeline.run(seed={"network": coarse.data, "observe_port": 0})

    def test_duplicate_producer_rejected(self):
        class ShadowFit(StandardFitStage):
            name = "shadow_fit"

        with pytest.raises(ValueError, match="produced by both"):
            Pipeline([StandardFitStage(), ShadowFit()])

    def test_duplicate_stage_name_rejected(self):
        stage = StandardFitStage()
        with pytest.raises(ValueError, match="duplicate stage name"):
            Pipeline([stage, stage])

    def test_type_validation(self, fast_options):
        pipeline = Pipeline([StandardFitStage()])
        with pytest.raises(TypeError, match="network.*NetworkData"):
            pipeline.run(
                ReproConfig.from_flow_options(fast_options),
                seed={"network": "not a network"},
            )

    def test_describe_lists_the_graph(self):
        text = standard_pipeline().describe()
        assert "standard_fit: network -> standard_fit" in text
        assert "validate:" in text

    def test_observers_see_every_stage(self, coarse, fast_options):
        timer = TimingObserver()
        events = []

        class Recorder(PipelineObserver):
            def on_stage_start(self, stage):
                events.append(("start", stage.name))

            def on_stage_finish(self, stage, execution):
                events.append(("finish", execution.stage, execution.status))

        run_flow(
            coarse.data, coarse.termination, coarse.observe_port,
            fast_options, observers=(timer, Recorder()),
        )
        stages = ["standard_fit", "sensitivity", "weighting", "enforce",
                  "validate"]
        assert [e.stage for e in timer.executions] == stages
        assert [e for e in events if e[0] == "start"] == [
            ("start", name) for name in stages
        ]
        assert all(e[2] == "computed" for e in events if e[0] == "finish")

    def test_custom_stage_inserted_between_weighting_and_enforce(
        self, coarse, fast_options
    ):
        """The README/example scenario: a custom audit stage riding in the
        middle of the chain, publishing a new artifact."""

        class WeightAuditStage(PipelineStage):
            name = "weight_audit"
            inputs = (
                ArtifactSpec("base_weights", np.ndarray),
                ArtifactSpec("final_weights", np.ndarray),
            )
            outputs = (ArtifactSpec("weight_stats", dict),)

            def run(self, config, inputs):
                boost = inputs["final_weights"] / inputs["base_weights"]
                return {
                    "weight_stats": {
                        "max_boost": float(np.max(boost)),
                        "n_points": int(boost.size),
                    }
                }

        pipeline = standard_pipeline().with_stage(
            WeightAuditStage(), after="weighting"
        )
        run = pipeline.run(
            ReproConfig.from_flow_options(fast_options),
            seed={
                "network": coarse.data,
                "termination": coarse.termination,
                "observe_port": coarse.observe_port,
            },
        )
        stats = run["weight_stats"]
        assert stats["n_points"] == coarse.data.n_frequencies
        assert stats["max_boost"] >= 1.0
        assert "weighted_enforced" in run

    def test_replace_weighting_variant(self, coarse, fast_options):
        class UniformWeighting(WeightingStage):
            version = "uniform-1"

            def base_weights(self, config, data, xi, reference):
                return np.ones(data.n_frequencies)

        pipeline = standard_pipeline().replace_stage(
            "weighting", UniformWeighting()
        )
        run = pipeline.run(
            ReproConfig.from_flow_options(fast_options),
            seed={
                "network": coarse.data,
                "termination": coarse.termination,
                "observe_port": coarse.observe_port,
            },
        )
        assert np.all(run["base_weights"] == 1.0)

    def test_unknown_anchor_rejected(self):
        with pytest.raises(ValueError, match="no stage named"):
            standard_pipeline().with_stage(StandardFitStage(), after="nope")

    def test_file_pipeline_runs_external_data(self, fast_options):
        pipeline = file_pipeline(
            EXTERNAL_S2P, "0=r(1);1=rlc(r=0.2,c=1e-6)", observe_port=1
        )
        run = pipeline.run(ReproConfig.from_flow_options(fast_options))
        assert run["network"].n_ports == 2
        assert run["ingest_report"].n_ports == 2
        assert "weighted_enforced" in run
