"""Hamiltonian passivity test: crossings must match singular-value sweeps."""

import numpy as np
import pytest

from repro.statespace.hamiltonian import (
    hamiltonian_matrix,
    imaginary_eigenvalue_frequencies,
    is_passive_hamiltonian,
)
from repro.statespace.poleresidue import PoleResidueModel


def bump_model(gain):
    """SISO model whose |H| peaks near omega = 5 with peak ~ gain."""
    poles = np.array([-0.5 + 5.0j, -0.5 - 5.0j])
    r = gain * 0.5
    residues = np.array([[[r]], [[r]]], dtype=complex)
    return PoleResidueModel(poles, residues, np.zeros((1, 1)))


class TestHamiltonianMatrix:
    def test_shape(self):
        ss = bump_model(0.5).to_state_space()
        m = hamiltonian_matrix(ss)
        assert m.shape == (4, 4)

    def test_eigenvalue_symmetry(self):
        """Hamiltonian spectra are symmetric about the imaginary axis."""
        ss = bump_model(1.4).to_state_space()
        eigs = np.linalg.eigvals(hamiltonian_matrix(ss))
        for lam in eigs:
            assert np.min(np.abs(eigs + np.conj(lam))) < 1e-8 * max(abs(lam), 1.0)

    def test_gamma_equal_to_d_gain_rejected(self):
        model = PoleResidueModel(
            np.array([-1.0]), np.zeros((1, 1, 1), complex), np.array([[1.0]])
        )
        with pytest.raises(ValueError, match="singular value of D"):
            hamiltonian_matrix(model.to_state_space(), gamma=1.0)


class TestCrossings:
    def test_passive_model_has_no_crossings(self):
        ss = bump_model(0.8).to_state_space()
        assert imaginary_eigenvalue_frequencies(ss).size == 0

    def test_violating_model_has_crossings(self):
        ss = bump_model(1.5).to_state_space()
        crossings = imaginary_eigenvalue_frequencies(ss)
        assert crossings.size == 2  # up-crossing and down-crossing

    def test_crossings_match_svd_sweep(self):
        ss = bump_model(1.5).to_state_space()
        crossings = imaginary_eigenvalue_frequencies(ss)
        for omega in crossings:
            sigma = np.linalg.svd(ss.transfer_at(1j * omega), compute_uv=False)[0]
            assert np.isclose(sigma, 1.0, atol=1e-6)

    def test_violation_between_crossings(self):
        ss = bump_model(1.5).to_state_space()
        lo, hi = imaginary_eigenvalue_frequencies(ss)
        mid = 0.5 * (lo + hi)
        sigma = np.linalg.svd(ss.transfer_at(1j * mid), compute_uv=False)[0]
        assert sigma > 1.0


class TestVerdict:
    def test_passive(self):
        assert is_passive_hamiltonian(bump_model(0.8).to_state_space())

    def test_not_passive(self):
        assert not is_passive_hamiltonian(bump_model(1.5).to_state_space())

    def test_d_gain_violation(self):
        model = PoleResidueModel(
            np.array([-1.0]), np.zeros((1, 1, 1), complex), np.array([[1.2]])
        )
        assert not is_passive_hamiltonian(model.to_state_space())
