"""Lyapunov-equation Gramians (paper eq. 11).

Wrappers around :func:`scipy.linalg.solve_continuous_lyapunov` with
stability checking, diagonal balancing, and symmetrization: macromodel
dynamics span ~7 frequency decades (poles from ~1e4 to ~1e10 rad/s), which
makes the raw Schur-based Lyapunov solve lose definiteness to roundoff.
Balancing the state space with a diagonal similarity before the solve and
transforming back keeps the result numerically PSD; a residual eigenvalue
clip guards the enforcement cost construction.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg


def _check_stable(a: np.ndarray, context: str) -> None:
    eigenvalues = np.linalg.eigvals(a)  # reprolint: disable=backend-routing -- stability precheck for the host-only scipy Lyapunov solver
    worst = float(np.max(eigenvalues.real)) if eigenvalues.size else -np.inf
    if worst >= 0.0:
        raise ValueError(
            f"{context}: A has an eigenvalue with Re = {worst:.3e} >= 0; "
            "the Lyapunov equation has no PSD solution for unstable systems"
        )


def ensure_psd(matrix: np.ndarray, *, clip_ratio: float = 1e-14) -> np.ndarray:
    """Symmetrize and clip tiny negative eigenvalues of a nominal-PSD matrix.

    ``clip_ratio`` is relative to the largest eigenvalue; genuine
    indefiniteness (eigenvalues more negative than that) raises.
    """
    sym = 0.5 * (matrix + matrix.T)
    eigenvalues, vectors = np.linalg.eigh(sym)  # reprolint: disable=backend-routing -- PSD projection beside the host-only scipy Lyapunov solver
    top = float(eigenvalues[-1]) if eigenvalues.size else 0.0
    if top <= 0.0:
        return np.zeros_like(sym)
    floor = -1e-6 * top
    if float(eigenvalues[0]) < floor:
        raise ValueError(
            f"matrix is genuinely indefinite (min eig {eigenvalues[0]:.3e} "
            f"vs max {top:.3e}); not a roundoff artifact"
        )
    clipped = np.maximum(eigenvalues, clip_ratio * top)
    return (vectors * clipped) @ vectors.T


def _balanced_lyapunov(a: np.ndarray, q_rhs: np.ndarray) -> np.ndarray:
    """Solve A P + P A^T = -Q with similarity balancing of A.

    With balanced = T^-1 A T the transformed equation has right-hand side
    T^-1 Q T^-T and solution P_s = T^-1 P T^-T.
    """
    balanced, transform = scipy.linalg.matrix_balance(a, separate=False)
    t_inv = np.linalg.inv(transform)
    q_scaled = t_inv @ q_rhs @ t_inv.T
    p_scaled = scipy.linalg.solve_continuous_lyapunov(balanced, -q_scaled)
    p = transform @ p_scaled @ transform.T
    return 0.5 * (p + p.T)


def controllability_gramian(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve A P + P A^T = -B B^T for the controllability Gramian P."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if a.shape[0] == 0:
        return np.zeros((0, 0))
    _check_stable(a, "controllability_gramian")
    return _balanced_lyapunov(a, b @ b.T)


def observability_gramian(a: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Solve A^T Q + Q A = -C^T C for the observability Gramian Q."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    c = np.atleast_2d(np.asarray(c, dtype=float))
    if a.shape[0] == 0:
        return np.zeros((0, 0))
    _check_stable(a, "observability_gramian")
    return _balanced_lyapunov(a.T, c.T @ c)


def lyapunov_residual(a: np.ndarray, b: np.ndarray, p: np.ndarray) -> float:
    """Relative residual of the controllability Lyapunov equation.

    Diagnostic used in tests: ``|| A P + P A^T + B B^T || / || B B^T ||``.
    """
    lhs = a @ p + p @ a.T + b @ b.T
    scale = max(float(np.linalg.norm(b @ b.T)), 1e-300)
    return float(np.linalg.norm(lhs)) / scale
