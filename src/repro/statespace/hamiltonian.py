"""Hamiltonian-matrix passivity test for scattering systems.

For a scattering state-space model (A, B, C, D) and gain level gamma, the
Hamiltonian matrix

    M = [ A - B R^-1 D^T C        -B R^-1 B^T          ]
        [ gamma^2 C^T S^-1 C       -A^T + C^T D R^-1 B^T ]

with R = D^T D - gamma^2 I and S = D D^T - gamma^2 I has a purely imaginary
eigenvalue j*omega exactly when some singular value of H(j omega) equals
gamma [Grivet-Talocia 2004, ref. 14 of the paper].  With gamma = 1 the
imaginary eigenvalues delimit the passivity-violation bands used by the
enforcement loop and by the Fig. 4 reproduction.

During passivity enforcement only C changes between iterations (residue
perturbation; A, B, D are fixed), so everything that does not involve C --
the R/S solves and the (1,2) block -- is computed once and cached in
:class:`HamiltonianInvariants`; per-iteration assembly is then three small
matrix products (:func:`hamiltonian_from_invariants`).

For *reciprocal* models (S = S^T, the physical PDN case) the 2n x 2n
eigenproblem halves [Semlyen & Gustavsen 2009]: with symmetric D the
test matrix

    P = (A - B (D - gamma I)^-1 C) (A - B (D + gamma I)^-1 C)

is n x n and its eigenvalues are the squares lambda = (j omega)^2 =
-omega^2 of the Hamiltonian's, so gamma-crossings are the real negative
eigenvalues of P -- an ~8x cheaper eigensolve, the dominant cost of the
exact passivity test.  :class:`HalfSizeInvariants` caches the two
C-independent solves ``B (D -+ gamma I)^-1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import active_backend
from repro.statespace.system import StateSpaceModel


@dataclass(frozen=True)
class HamiltonianInvariants:
    """C-independent pieces of the Hamiltonian matrix at a gain level.

    Attributes
    ----------
    a:
        State matrix A (n, n) of the underlying realization.
    m12:
        Constant (1,2) block ``-B R^-1 B^T`` (n, n).
    k1:
        ``B R^-1 D^T`` (n, P); the (1,1) block is ``A - k1 @ C`` and the
        (2,2) block is ``-A^T + C^T @ k1.T`` (R is symmetric).
    s_inv:
        ``S^-1`` (P, P); the (2,1) block is ``gamma^2 C^T S^-1 C``.
    gamma:
        Gain level the factorizations were built for.
    """

    a: np.ndarray
    m12: np.ndarray
    k1: np.ndarray
    s_inv: np.ndarray
    gamma: float


def hamiltonian_invariants(
    a: np.ndarray, b: np.ndarray, d: np.ndarray, gamma: float = 1.0
) -> HamiltonianInvariants:
    """Precompute the C-independent Hamiltonian blocks for (A, B, D).

    Raises if ``gamma`` is (numerically) a singular value of D, since then
    R and S become singular; callers should nudge gamma in that case.
    """
    gamma2 = gamma * gamma
    r = d.T @ d - gamma2 * np.eye(d.shape[1])
    s = d @ d.T - gamma2 * np.eye(d.shape[0])
    min_r = float(np.min(np.abs(np.linalg.eigvalsh(r))))
    if min_r < 1e-12 * max(gamma2, 1.0):
        raise ValueError(
            f"gamma={gamma} is numerically a singular value of D "
            f"(min |eig(R)| = {min_r:.2e}); perturb gamma slightly"
        )
    r_inv_bt = np.linalg.solve(r, b.T)
    return HamiltonianInvariants(
        a=a,
        m12=-b @ r_inv_bt,
        k1=(d @ r_inv_bt).T,
        s_inv=np.linalg.inv(s),
        gamma=gamma,
    )


def hamiltonian_from_invariants(
    invariants: HamiltonianInvariants, c: np.ndarray
) -> np.ndarray:
    """Assemble the Hamiltonian matrix for output matrix ``c`` (P, n)."""
    a = invariants.a
    n = a.shape[0]
    gamma2 = invariants.gamma * invariants.gamma
    m = np.empty((2 * n, 2 * n))
    k1c = invariants.k1 @ c
    m[:n, :n] = a - k1c
    m[:n, n:] = invariants.m12
    m[n:, :n] = gamma2 * (c.T @ (invariants.s_inv @ c))
    m[n:, n:] = (c.T @ invariants.k1.T) - a.T
    return m


def hamiltonian_matrix(model: StateSpaceModel, gamma: float = 1.0) -> np.ndarray:
    """Build the Hamiltonian matrix associated with gain level ``gamma``.

    Raises if ``gamma`` is (numerically) a singular value of D, since then
    R and S become singular; callers should nudge gamma in that case.
    """
    invariants = hamiltonian_invariants(model.a, model.b, model.d, gamma)
    return hamiltonian_from_invariants(invariants, model.c)


@dataclass(frozen=True)
class HalfSizeInvariants:
    """C-independent pieces of the half-size (reciprocal) test matrix.

    Attributes
    ----------
    a:
        State matrix A (n, n) of the underlying realization.
    bd_minus:
        ``B (D - gamma I)^-1`` (n, P).
    bd_plus:
        ``B (D + gamma I)^-1`` (n, P).
    gamma:
        Gain level the solves were built for.
    """

    a: np.ndarray
    bd_minus: np.ndarray
    bd_plus: np.ndarray
    gamma: float


def half_size_invariants(
    a: np.ndarray, b: np.ndarray, d: np.ndarray, gamma: float = 1.0
) -> HalfSizeInvariants:
    """Precompute the C-independent half-size blocks for (A, B, D).

    Only valid for reciprocal models (symmetric D and S(s)); raises if
    ``gamma`` is numerically an eigenvalue of the symmetric D, which
    makes a factor singular (same degeneracy the full test guards via R).
    """
    eye = np.eye(d.shape[0])
    d_minus = d - gamma * eye
    d_plus = d + gamma * eye
    smallest = min(
        float(np.min(np.abs(np.linalg.eigvalsh(0.5 * (d_minus + d_minus.T))))),
        float(np.min(np.abs(np.linalg.eigvalsh(0.5 * (d_plus + d_plus.T))))),
    )
    if smallest < 1e-12 * max(abs(gamma), 1.0):
        raise ValueError(
            f"gamma={gamma} is numerically an eigenvalue of D "
            f"(min |eig(D -+ gamma I)| = {smallest:.2e}); perturb gamma"
        )
    return HalfSizeInvariants(
        a=a,
        bd_minus=np.linalg.solve(d_minus.T, b.T).T,
        bd_plus=np.linalg.solve(d_plus.T, b.T).T,
        gamma=gamma,
    )


def half_size_from_invariants(
    invariants: HalfSizeInvariants, c: np.ndarray
) -> np.ndarray:
    """Assemble the half-size test matrix P for output matrix ``c`` (P, n)."""
    a = invariants.a
    return (a - invariants.bd_minus @ c) @ (a - invariants.bd_plus @ c)


def half_size_crossings(
    p: np.ndarray,
    response_fn,
    gamma: float = 1.0,
    *,
    rel_tol: float = 1e-8,
    abs_tol: float = 1e-3,
) -> np.ndarray:
    """Verified gamma-crossing frequencies of a half-size test matrix.

    Crossings of the full Hamiltonian at ``lambda = j omega`` appear in
    the half-size spectrum at ``lambda^2 = -omega^2``, so the candidates
    are the (numerically) real negative eigenvalues of ``p``.  The full
    test accepts ``|Re lambda| <= rel_tol |lambda| + abs_tol``; squaring
    maps that band to ``|Im lambda^2| <= 2 (rel_tol |lambda^2| + abs_tol
    sqrt(|lambda^2|))``, which is the acceptance used here -- and the
    same singular-value verification then weeds out false candidates.
    ``p`` is overwritten by the eigensolver.
    """
    backend = active_backend()
    eigenvalues = backend.from_device(
        backend.eigvals(backend.asarray(p), overwrite=True)
    )
    magnitude = np.abs(eigenvalues)
    accept = (eigenvalues.real < 0.0) & (
        np.abs(eigenvalues.imag)
        <= 2.0 * (rel_tol * magnitude + abs_tol * np.sqrt(magnitude))
    )
    if not np.any(accept):
        return np.zeros(0)
    omegas = np.sort(np.sqrt(-eigenvalues.real[accept]))
    return _verified_crossings(omegas, response_fn, gamma)


def _verified_crossings(
    omegas: np.ndarray, response_fn, gamma: float
) -> np.ndarray:
    """Candidates kept when a singular value actually sits at gamma."""
    # Verify: at a true crossing the closest singular value equals gamma.
    backend = active_backend()
    response = response_fn(omegas)
    sigma = backend.from_device(
        backend.svd(backend.asarray(response), compute_uv=False)
    )
    verified = (
        np.min(np.abs(sigma - gamma), axis=1) <= 1e-4 * max(gamma, 1.0)
    )
    return omegas[verified]


def imaginary_crossings(
    m: np.ndarray,
    response_fn,
    gamma: float = 1.0,
    *,
    rel_tol: float = 1e-8,
    abs_tol: float = 1e-3,
) -> np.ndarray:
    """Verified gamma-crossing frequencies of a prebuilt Hamiltonian matrix.

    ``response_fn(omega_array) -> (K, P, P)`` evaluates the transfer matrix
    on a frequency grid; candidates are verified against the actual
    singular values, which weeds out borderline eigenvalues of the
    ill-conditioned Hamiltonian.  ``m`` is overwritten by the eigensolver
    (callers pass a freshly assembled matrix).
    """
    backend = active_backend()
    eigenvalues = backend.from_device(
        backend.eigvals(backend.asarray(m), overwrite=True)
    )
    imag = eigenvalues.imag
    accept = (imag > 0.0) & (
        np.abs(eigenvalues.real) <= rel_tol * np.abs(eigenvalues) + abs_tol
    )
    if not np.any(accept):
        return np.zeros(0)
    omegas = np.sort(imag[accept])
    return _verified_crossings(omegas, response_fn, gamma)


def imaginary_eigenvalue_frequencies(
    model: StateSpaceModel,
    gamma: float = 1.0,
    *,
    rel_tol: float = 1e-8,
    abs_tol: float = 1e-3,
    response_fn=None,
) -> np.ndarray:
    """Positive frequencies where some singular value crosses ``gamma``.

    Returns the sorted angular frequencies omega > 0 of the (numerically)
    purely imaginary eigenvalues of the Hamiltonian matrix.  An eigenvalue
    lambda is accepted as imaginary when |Re lambda| <= rel_tol * |lambda|
    + abs_tol; candidates are then verified by evaluating the actual
    singular values.  ``response_fn`` lets callers supply a cheaper
    equivalent response evaluator (e.g. the pole-residue form of the same
    model) instead of the dense state-space solve.
    """
    m = hamiltonian_matrix(model, gamma)
    if response_fn is None:
        response_fn = model.frequency_response
    return imaginary_crossings(
        m, response_fn, gamma, rel_tol=rel_tol, abs_tol=abs_tol
    )


def is_passive_hamiltonian(
    model: StateSpaceModel, *, gamma: float = 1.0
) -> bool:
    """Quick passivity verdict: no crossings of gamma=1 and sigma_max(D) < 1.

    A stable scattering model is passive iff sigma_max(H(j omega)) <= 1 for
    all omega; absence of imaginary Hamiltonian eigenvalues means the
    singular values never *cross* 1, so combined with a spot check (at one
    frequency and at infinity via D) it certifies passivity.
    """
    d_gain = float(np.linalg.norm(model.d, 2))
    if d_gain >= 1.0:
        return False
    crossings = imaginary_eigenvalue_frequencies(model, gamma)
    if crossings.size:
        return False
    sigma0 = float(np.linalg.svd(model.transfer_at(0.0), compute_uv=False)[0])  # reprolint: disable=backend-routing -- one P-by-P SVD at DC for the certificate; not a batched kernel
    return sigma0 <= 1.0
