"""Hamiltonian-matrix passivity test for scattering systems.

For a scattering state-space model (A, B, C, D) and gain level gamma, the
Hamiltonian matrix

    M = [ A - B R^-1 D^T C        -B R^-1 B^T          ]
        [ gamma^2 C^T S^-1 C       -A^T + C^T D R^-1 B^T ]

with R = D^T D - gamma^2 I and S = D D^T - gamma^2 I has a purely imaginary
eigenvalue j*omega exactly when some singular value of H(j omega) equals
gamma [Grivet-Talocia 2004, ref. 14 of the paper].  With gamma = 1 the
imaginary eigenvalues delimit the passivity-violation bands used by the
enforcement loop and by the Fig. 4 reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.statespace.system import StateSpaceModel


def hamiltonian_matrix(model: StateSpaceModel, gamma: float = 1.0) -> np.ndarray:
    """Build the Hamiltonian matrix associated with gain level ``gamma``.

    Raises if ``gamma`` is (numerically) a singular value of D, since then
    R and S become singular; callers should nudge gamma in that case.
    """
    a, b, c, d = model.a, model.b, model.c, model.d
    gamma2 = gamma * gamma
    r = d.T @ d - gamma2 * np.eye(d.shape[1])
    s = d @ d.T - gamma2 * np.eye(d.shape[0])
    min_r = float(np.min(np.abs(np.linalg.eigvalsh(r))))
    if min_r < 1e-12 * max(gamma2, 1.0):
        raise ValueError(
            f"gamma={gamma} is numerically a singular value of D "
            f"(min |eig(R)| = {min_r:.2e}); perturb gamma slightly"
        )
    r_inv_dt_c = np.linalg.solve(r, d.T @ c)
    r_inv_bt = np.linalg.solve(r, b.T)
    s_inv_c = np.linalg.solve(s, c)
    n = model.n_states
    m = np.zeros((2 * n, 2 * n))
    m[:n, :n] = a - b @ r_inv_dt_c
    m[:n, n:] = -b @ r_inv_bt
    m[n:, :n] = gamma2 * c.T @ s_inv_c
    m[n:, n:] = -a.T + c.T @ d @ r_inv_bt
    return m


def imaginary_eigenvalue_frequencies(
    model: StateSpaceModel,
    gamma: float = 1.0,
    *,
    rel_tol: float = 1e-8,
    abs_tol: float = 1e-3,
) -> np.ndarray:
    """Positive frequencies where some singular value crosses ``gamma``.

    Returns the sorted angular frequencies omega > 0 of the (numerically)
    purely imaginary eigenvalues of the Hamiltonian matrix.  An eigenvalue
    lambda is accepted as imaginary when |Re lambda| <= rel_tol * |lambda|
    + abs_tol; candidates are then verified by evaluating the actual
    singular values, which weeds out borderline eigenvalues of the
    ill-conditioned Hamiltonian.
    """
    m = hamiltonian_matrix(model, gamma)
    eigenvalues = np.linalg.eigvals(m)
    candidates = []
    for lam in eigenvalues:
        if lam.imag <= 0.0:
            continue
        if abs(lam.real) <= rel_tol * abs(lam) + abs_tol:
            candidates.append(lam.imag)
    if not candidates:
        return np.zeros(0)
    omegas = np.array(sorted(candidates))
    # Verify: at a true crossing the closest singular value equals gamma.
    verified = []
    for omega in omegas:
        h = model.transfer_at(1j * omega)
        sigma = np.linalg.svd(h, compute_uv=False)
        if np.min(np.abs(sigma - gamma)) <= 1e-4 * max(gamma, 1.0):
            verified.append(omega)
    return np.array(verified)


def is_passive_hamiltonian(
    model: StateSpaceModel, *, gamma: float = 1.0
) -> bool:
    """Quick passivity verdict: no crossings of gamma=1 and sigma_max(D) < 1.

    A stable scattering model is passive iff sigma_max(H(j omega)) <= 1 for
    all omega; absence of imaginary Hamiltonian eigenvalues means the
    singular values never *cross* 1, so combined with a spot check (at one
    frequency and at infinity via D) it certifies passivity.
    """
    d_gain = float(np.linalg.norm(model.d, 2))
    if d_gain >= 1.0:
        return False
    crossings = imaginary_eigenvalue_frequencies(model, gamma)
    if crossings.size:
        return False
    sigma0 = float(np.linalg.svd(model.transfer_at(0.0), compute_uv=False)[0])
    return sigma0 <= 1.0
