"""Persistence for pole-residue macromodels.

JSON schema (version 1): poles and residues stored as [real, imag] pairs
so files are portable and diffable; the conjugate-pairing invariants are
re-validated on load by the :class:`PoleResidueModel` constructor.

A model file may carry an optional ``metadata`` object (free-form,
JSON-serializable) so callers can attach provenance -- enforcement
diagnostics, passivity reports, campaign scenario parameters -- that
round-trips with the model.  Readers that do not care about it
(:func:`load_model`) ignore it; :func:`load_model_with_metadata` returns it.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.statespace.poleresidue import PoleResidueModel

_FORMAT = "repro.pole-residue"
_VERSION = 1


def _complex_to_pairs(values: np.ndarray) -> list:
    """Nested lists of [re, im] pairs preserving the array shape."""
    stacked = np.stack([values.real, values.imag], axis=-1)
    return stacked.tolist()


def _pairs_to_complex(data: list) -> np.ndarray:
    arr = np.asarray(data, dtype=float)
    if arr.shape[-1] != 2:
        raise ValueError("complex entries must be [real, imag] pairs")
    return arr[..., 0] + 1j * arr[..., 1]


def sanitize_metadata(value):
    """Recursively convert a metadata tree to plain JSON-compatible types.

    Numpy scalars and arrays show up naturally in diagnostics dicts; this
    maps them (and tuples/sets) onto JSON primitives so metadata can be
    attached without the caller hand-converting every leaf.
    """
    if isinstance(value, dict):
        return {str(k): sanitize_metadata(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [sanitize_metadata(v) for v in value]
    if isinstance(value, np.ndarray):
        return sanitize_metadata(value.tolist())
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, complex):
        return [value.real, value.imag]
    return value


def save_model(
    model: PoleResidueModel,
    path: str | Path,
    metadata: dict | None = None,
) -> None:
    """Write a macromodel (plus optional provenance metadata) to JSON."""
    payload = {
        "format": _FORMAT,
        "version": _VERSION,
        "n_poles": model.n_poles,
        "n_ports": model.n_ports,
        "poles": _complex_to_pairs(model.poles),
        "residues": _complex_to_pairs(model.residues),
        "const": model.const.tolist(),
    }
    if metadata is not None:
        payload["metadata"] = sanitize_metadata(metadata)
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_model(path: str | Path) -> PoleResidueModel:
    """Read a macromodel written by :func:`save_model`."""
    model, _ = load_model_with_metadata(path)
    return model


def load_model_with_metadata(path: str | Path) -> tuple[PoleResidueModel, dict]:
    """Read a macromodel and its metadata object ({} when absent)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != _FORMAT:
        raise ValueError(f"{path}: not a {_FORMAT} file")
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported version {payload.get('version')!r}"
        )
    poles = _pairs_to_complex(payload["poles"])
    residues = _pairs_to_complex(payload["residues"])
    const = np.asarray(payload["const"], dtype=float)
    model = PoleResidueModel(poles, residues, const)
    if model.n_poles != payload["n_poles"] or model.n_ports != payload["n_ports"]:
        raise ValueError(f"{path}: header counts disagree with stored arrays")
    metadata = payload.get("metadata", {})
    if not isinstance(metadata, dict):
        raise ValueError(f"{path}: metadata must be a JSON object")
    return model, metadata
