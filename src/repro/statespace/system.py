"""Minimal real state-space system container.

Provides exactly what the macromodeling flow needs: frequency responses,
series (cascade) interconnection for the weighted-norm construction of
paper eq. (18), Gramians, and pole/stability queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StateSpaceModel:
    """LTI system ``x' = A x + B u``, ``y = C x + D u`` with real matrices."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray

    def __post_init__(self) -> None:
        a = np.atleast_2d(np.asarray(self.a, dtype=float))
        b = np.atleast_2d(np.asarray(self.b, dtype=float))
        c = np.atleast_2d(np.asarray(self.c, dtype=float))
        d = np.atleast_2d(np.asarray(self.d, dtype=float))
        n = a.shape[0]
        if a.shape != (n, n):
            raise ValueError("A must be square")
        if b.shape[0] != n:
            raise ValueError(f"B must have {n} rows, got {b.shape}")
        if c.shape[1] != n:
            raise ValueError(f"C must have {n} columns, got {c.shape}")
        if d.shape != (c.shape[0], b.shape[1]):
            raise ValueError(
                f"D must have shape ({c.shape[0]}, {b.shape[1]}), got {d.shape}"
            )
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "d", d)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return int(self.a.shape[0])

    @property
    def n_inputs(self) -> int:
        return int(self.b.shape[1])

    @property
    def n_outputs(self) -> int:
        return int(self.c.shape[0])

    def poles(self) -> np.ndarray:
        """Eigenvalues of A."""
        if self.n_states == 0:
            return np.zeros(0, dtype=complex)
        return np.linalg.eigvals(self.a)  # reprolint: disable=backend-routing -- pole diagnostics accessor, not on the enforcement hot path

    def is_stable(self, tol: float = 0.0) -> bool:
        """True when all eigenvalues of A are strictly in the LHP."""
        if self.n_states == 0:
            return True
        return bool(np.all(self.poles().real < tol))

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def frequency_response(self, omega: np.ndarray) -> np.ndarray:
        """Transfer matrix H(j omega) on a real frequency grid; (K, P_out, P_in)."""
        omega = np.atleast_1d(np.asarray(omega, dtype=float))
        k = omega.size
        out = np.empty((k, self.n_outputs, self.n_inputs), dtype=complex)
        if self.n_states == 0:
            out[:] = self.d
            return out
        eye = np.eye(self.n_states)
        for idx in range(k):
            x = np.linalg.solve(1j * omega[idx] * eye - self.a, self.b)
            out[idx] = self.c @ x + self.d
        return out

    def transfer_at(self, s: complex) -> np.ndarray:
        """Transfer matrix at a single complex frequency s."""
        if self.n_states == 0:
            return self.d.astype(complex)
        x = np.linalg.solve(s * np.eye(self.n_states) - self.a, self.b)
        return self.c @ x + self.d

    # ------------------------------------------------------------------
    # Interconnections
    # ------------------------------------------------------------------
    def series(self, inner: "StateSpaceModel") -> "StateSpaceModel":
        """Cascade realization of ``self(s) @ inner(s)`` (inner drives self).

        This is the block form of paper eq. (18) when ``self`` is a single
        scattering entry and ``inner`` the sensitivity weight:

            A = [[A1, B1 C2], [0, A2]],  B = [[B1 D2], [B2]],
            C = [C1, D1 C2],             D = D1 D2.
        """
        if inner.n_outputs != self.n_inputs:
            raise ValueError(
                f"cannot cascade: inner has {inner.n_outputs} outputs, "
                f"outer expects {self.n_inputs} inputs"
            )
        n1, n2 = self.n_states, inner.n_states
        a = np.zeros((n1 + n2, n1 + n2))
        a[:n1, :n1] = self.a
        a[:n1, n1:] = self.b @ inner.c
        a[n1:, n1:] = inner.a
        b = np.vstack([self.b @ inner.d, inner.b])
        c = np.hstack([self.c, self.d @ inner.c])
        d = self.d @ inner.d
        return StateSpaceModel(a, b, c, d)

    # ------------------------------------------------------------------
    # Gramians
    # ------------------------------------------------------------------
    def controllability_gramian(self) -> np.ndarray:
        """Solution P of A P + P A^T = -B B^T (paper eq. 11); requires stability."""
        from repro.statespace.gramians import controllability_gramian

        return controllability_gramian(self.a, self.b)

    def observability_gramian(self) -> np.ndarray:
        """Solution Q of A^T Q + Q A = -C^T C."""
        from repro.statespace.gramians import observability_gramian

        return observability_gramian(self.a, self.c)

    def h2_norm_squared(self) -> float:
        """Squared H2 norm trace(C P C^T) (paper eq. 10/12 for D = 0)."""
        if self.n_states == 0:
            return 0.0
        p = self.controllability_gramian()
        return float(np.trace(self.c @ p @ self.c.T))

    def __repr__(self) -> str:
        return (
            f"StateSpaceModel(n={self.n_states}, inputs={self.n_inputs}, "
            f"outputs={self.n_outputs})"
        )
