"""State-space machinery: pole-residue models, realizations, Gramians,
Hamiltonian-based passivity tests."""

from repro.statespace.poleresidue import PoleBlock, PoleResidueModel
from repro.statespace.system import StateSpaceModel
from repro.statespace.gramians import (
    controllability_gramian,
    observability_gramian,
)
from repro.statespace.hamiltonian import (
    hamiltonian_matrix,
    imaginary_eigenvalue_frequencies,
)
from repro.statespace.serialization import load_model, save_model

__all__ = [
    "PoleBlock",
    "PoleResidueModel",
    "StateSpaceModel",
    "controllability_gramian",
    "observability_gramian",
    "hamiltonian_matrix",
    "imaginary_eigenvalue_frequencies",
    "load_model",
    "save_model",
]
