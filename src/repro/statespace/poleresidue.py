"""Matrix-valued pole-residue macromodels (paper eq. 3).

    S(s) = sum_n R_n / (s - p_n) + D

Poles are stored as a flat complex array in *pair-grouped order*: real poles
appear singly, complex poles appear as adjacent conjugate pairs with the
positive-imaginary member first.  Residue matrices R_n follow the same
ordering and satisfy the conjugate-pairing constraints that make the model
real (real impulse response).

The module also provides the real Gilbert realizations used throughout the
passivity machinery:

* the *full* realization (A, B, C, D) with A = blkdiag(block_n x I_P),
  B = stack of I_P blocks, C = residue blocks -- the form whose C matrix is
  perturbed during passivity enforcement (paper Sec. III);
* the *element* realization (A_e, b_e, c_ij, d_ij) of a single scattering
  entry S_ij(s), sharing A_e, b_e across all entries because the poles are
  common -- the form entering the weighted-norm cascade of eq. (18).

The two are consistent by construction: entry (i, j) of the full C matrix
restricted to pole block n equals the corresponding entries of c_ij, so a
perturbation expressed on element c vectors maps exactly onto a perturbation
of the full C matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PoleBlock:
    """Structural descriptor of one pole block.

    ``kind`` is ``"real"`` (1 state per port) or ``"pair"`` (2 states per
    port); ``index`` is the position of the (first) pole in the flat pole
    array; ``offset`` is the state offset of this block in the *element*
    realization (per-port state dimension).
    """

    kind: str
    index: int
    offset: int

    @property
    def width(self) -> int:
        """Number of element-realization states contributed by this block."""
        return 1 if self.kind == "real" else 2


def _analyse_pole_structure(
    poles: np.ndarray, pairing_tol: float
) -> list[PoleBlock]:
    """Group a flat pole array into real poles and conjugate pairs."""
    blocks: list[PoleBlock] = []
    offset = 0
    n = 0
    while n < poles.size:
        pole = poles[n]
        scale = max(abs(pole), 1.0)
        if abs(pole.imag) <= pairing_tol * scale:
            blocks.append(PoleBlock(kind="real", index=n, offset=offset))
            offset += 1
            n += 1
            continue
        if n + 1 >= poles.size:
            raise ValueError(
                f"complex pole {pole} at position {n} lacks a conjugate partner"
            )
        partner = poles[n + 1]
        if abs(partner - np.conj(pole)) > pairing_tol * scale:
            raise ValueError(
                f"poles at positions {n},{n + 1} are not a conjugate pair: "
                f"{pole} vs {partner}"
            )
        if pole.imag < 0.0:
            raise ValueError(
                f"conjugate pair at position {n} must list the positive-"
                f"imaginary pole first, got {pole}"
            )
        blocks.append(PoleBlock(kind="pair", index=n, offset=offset))
        offset += 2
        n += 2
    return blocks


class PoleResidueModel:
    """Rational macromodel in pole-residue form with a constant term.

    Parameters
    ----------
    poles:
        Flat complex array (N,), pair-grouped (see module docstring).
    residues:
        Complex array (N, P, P); residues of complex-pair poles must be
        conjugates of each other, residues of real poles must be real.
    const:
        Real direct-coupling matrix D, shape (P, P).
    pairing_tol:
        Relative tolerance used to classify poles as real / paired.
    """

    def __init__(
        self,
        poles: np.ndarray,
        residues: np.ndarray,
        const: np.ndarray,
        *,
        pairing_tol: float = 1e-9,
    ) -> None:
        poles = np.atleast_1d(np.asarray(poles, dtype=complex))
        residues = np.asarray(residues, dtype=complex)
        const = np.asarray(const, dtype=float)
        if poles.ndim != 1:
            raise ValueError("poles must be one-dimensional")
        if residues.ndim != 3 or residues.shape[0] != poles.size:
            raise ValueError(
                f"residues must have shape (N, P, P) with N={poles.size}, "
                f"got {residues.shape}"
            )
        if residues.shape[1] != residues.shape[2]:
            raise ValueError("residue matrices must be square")
        if const.shape != residues.shape[1:]:
            raise ValueError("const matrix shape must match residues")
        self._poles = poles
        self._residues = residues
        self._const = const
        self._blocks = _analyse_pole_structure(poles, pairing_tol)
        self._build_block_index()
        self._check_residue_pairing(pairing_tol)

    def _build_block_index(self) -> None:
        """Precompute index arrays for the vectorized realization builders.

        The passivity-enforcement loop rebuilds realizations every
        iteration; gather/scatter with these arrays replaces the per-block
        Python loops on that hot path.
        """
        self._real_indices = np.array(
            [b.index for b in self._blocks if b.kind == "real"], dtype=int
        )
        self._real_offsets = np.array(
            [b.offset for b in self._blocks if b.kind == "real"], dtype=int
        )
        self._pair_indices = np.array(
            [b.index for b in self._blocks if b.kind == "pair"], dtype=int
        )
        self._pair_offsets = np.array(
            [b.offset for b in self._blocks if b.kind == "pair"], dtype=int
        )
        self._n_element_states = int(
            self._real_offsets.size + 2 * self._pair_offsets.size
        )

    def _check_residue_pairing(self, tol: float) -> None:
        for block in self._blocks:
            r = self._residues[block.index]
            scale = max(float(np.max(np.abs(r))), 1.0)
            if block.kind == "real":
                if np.max(np.abs(r.imag)) > tol * scale:
                    raise ValueError(
                        f"residue of real pole {self._poles[block.index]} "
                        "has a non-negligible imaginary part"
                    )
            else:
                partner = self._residues[block.index + 1]
                if np.max(np.abs(partner - np.conj(r))) > tol * scale:
                    raise ValueError(
                        f"residues of conjugate pair at index {block.index} "
                        "are not conjugates"
                    )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def poles(self) -> np.ndarray:
        return self._poles.copy()

    @property
    def residues(self) -> np.ndarray:
        return self._residues.copy()

    @property
    def const(self) -> np.ndarray:
        return self._const.copy()

    @property
    def blocks(self) -> list[PoleBlock]:
        return list(self._blocks)

    @property
    def n_poles(self) -> int:
        """Model order N (conjugate pairs count as two)."""
        return int(self._poles.size)

    @property
    def n_ports(self) -> int:
        return int(self._residues.shape[1])

    def is_stable(self, tol: float = 0.0) -> bool:
        """True when all poles lie strictly in the left half plane."""
        return bool(np.all(self._poles.real < tol))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, s: np.ndarray) -> np.ndarray:
        """Evaluate S(s) on an array of complex frequencies; (K, P, P)."""
        s = np.atleast_1d(np.asarray(s, dtype=complex))
        # (K, N) partial-fraction basis
        basis = 1.0 / (s[:, None] - self._poles[None, :])
        out = np.tensordot(basis, self._residues, axes=(1, 0))
        out += self._const[None, :, :]
        return out

    def frequency_response(self, omega: np.ndarray) -> np.ndarray:
        """Evaluate S(j omega) on a real angular-frequency grid."""
        omega = np.atleast_1d(np.asarray(omega, dtype=float))
        return self.evaluate(1j * omega)

    # ------------------------------------------------------------------
    # Real realizations
    # ------------------------------------------------------------------
    def element_state_dimension(self) -> int:
        """State count of the per-element realization (= N)."""
        return self._n_element_states

    def element_dynamics(self) -> tuple[np.ndarray, np.ndarray]:
        """Shared (A_e, b_e) of every scalar entry S_ij(s).

        A_e is N x N block-diagonal with real-pole scalars and 2x2 rotation
        blocks for conjugate pairs; b_e is the matching (N,) input vector
        with 1 for real poles and (2, 0) for pairs.  Each 2x2 block follows
        :func:`repro.util.linalg.real_block_of_conjugate_pair`.
        """
        n = self._n_element_states
        a = np.zeros((n, n))
        b = np.zeros(n)
        ro, ri = self._real_offsets, self._real_indices
        a[ro, ro] = self._poles[ri].real
        b[ro] = 1.0
        po, pi = self._pair_offsets, self._pair_indices
        pair_poles = self._poles[pi]
        a[po, po] = pair_poles.real
        a[po + 1, po + 1] = pair_poles.real
        a[po, po + 1] = pair_poles.imag
        a[po + 1, po] = -pair_poles.imag
        b[po] = 2.0
        return a, b

    def element_output_vectors(self) -> np.ndarray:
        """All element output vectors c_ij stacked as (P, P, N).

        ``c[i, j]`` realizes entry S_ij together with
        :meth:`element_dynamics` and d_ij = const[i, j].
        """
        p = self.n_ports
        c = np.empty((p, p, self._n_element_states))
        ro, ri = self._real_offsets, self._real_indices
        c[:, :, ro] = self._residues[ri].real.transpose(1, 2, 0)
        po, pi = self._pair_offsets, self._pair_indices
        pair_residues = self._residues[pi]
        c[:, :, po] = pair_residues.real.transpose(1, 2, 0)
        c[:, :, po + 1] = pair_residues.imag.transpose(1, 2, 0)
        return c

    def with_element_output_vectors(self, c: np.ndarray) -> "PoleResidueModel":
        """Rebuild a model with replaced element output vectors.

        Inverse of :meth:`element_output_vectors`: maps (P, P, N) real
        coefficients back onto conjugate-consistent residue matrices.  Used
        by passivity enforcement to apply the residue perturbation while
        keeping poles and D fixed.  The rebuilt residues are conjugate-
        consistent by construction, so the pole/pairing analysis of the
        original model is reused instead of being re-run.
        """
        c = np.asarray(c, dtype=float)
        expected = (self.n_ports, self.n_ports, self._n_element_states)
        if c.shape != expected:
            raise ValueError(f"c must have shape {expected}, got {c.shape}")
        residues = np.empty_like(self._residues)
        ro, ri = self._real_offsets, self._real_indices
        residues[ri] = c[:, :, ro].transpose(2, 0, 1)
        po, pi = self._pair_offsets, self._pair_indices
        value = (
            c[:, :, po].transpose(2, 0, 1)
            + 1j * c[:, :, po + 1].transpose(2, 0, 1)
        )
        residues[pi] = value
        residues[pi + 1] = np.conj(value)
        clone = object.__new__(PoleResidueModel)
        clone._poles = self._poles
        clone._residues = residues
        clone._const = self._const
        clone._blocks = self._blocks
        clone._real_indices = ri
        clone._real_offsets = ro
        clone._pair_indices = pi
        clone._pair_offsets = po
        clone._n_element_states = self._n_element_states
        return clone

    def full_output_matrix(self) -> np.ndarray:
        """C matrix of the full Gilbert realization, shape (P, N*P).

        Entry layout matches :meth:`to_state_space`:
        ``C[i, offset*P + j] = element_output_vectors()[i, j, offset]``.
        The passivity checker rebuilds only this matrix per enforcement
        iteration (A and B are invariant under residue perturbation).
        """
        p = self.n_ports
        return (
            self.element_output_vectors()
            .transpose(0, 2, 1)
            .reshape(p, self._n_element_states * p)
        )

    def to_state_space(self) -> "StateSpaceModel":
        """Full real Gilbert realization (paper eq. 7).

        States are grouped by pole block, then by port:
        A = blkdiag(block_n (x) I_P) = A_e (x) I_P, B stacks I_P (real
        poles) and [2 I_P; 0] (pairs) = b_e (x) I_P, C stacks [R_n] and
        [Re R_n, Im R_n].
        """
        from repro.statespace.system import StateSpaceModel

        from repro.backend import active_backend

        backend = active_backend()
        p = self.n_ports
        a_e, b_e = self.element_dynamics()
        eye = np.eye(p)
        a = backend.from_device(
            backend.kron(backend.asarray(a_e), backend.asarray(eye))
        )
        b = backend.from_device(
            backend.kron(backend.asarray(b_e[:, None]), backend.asarray(eye))
        )
        c = self.full_output_matrix()
        return StateSpaceModel(a, b, c, self._const.copy())

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def element_model(self, i: int, j: int) -> "StateSpaceModel":
        """SISO state-space realization of entry S_ij(s)."""
        from repro.statespace.system import StateSpaceModel

        a, b = self.element_dynamics()
        c = self.element_output_vectors()[i, j]
        return StateSpaceModel(
            a, b.reshape(-1, 1), c.reshape(1, -1), np.array([[self._const[i, j]]])
        )

    def __repr__(self) -> str:
        return (
            f"PoleResidueModel(order={self.n_poles}, ports={self.n_ports}, "
            f"stable={self.is_stable()})"
        )
