"""Accuracy metrics for macromodels: scattering-domain and loaded-impedance
errors, plus tabular reports used by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pdn.termination import TerminationNetwork
from repro.sensitivity.zpdn import target_impedance_of_model
from repro.statespace.poleresidue import PoleResidueModel


def rms_scattering_error(
    model: PoleResidueModel, omega: np.ndarray, samples: np.ndarray
) -> float:
    """Unweighted RMS scattering error (paper eq. 4 scale)."""
    response = model.frequency_response(np.asarray(omega, dtype=float))
    return float(np.sqrt(np.mean(np.abs(response - samples) ** 2)))


def max_scattering_error(
    model: PoleResidueModel, omega: np.ndarray, samples: np.ndarray
) -> float:
    """Worst-case entry-wise scattering error."""
    response = model.frequency_response(np.asarray(omega, dtype=float))
    return float(np.max(np.abs(response - samples)))


def relative_impedance_error(
    model: PoleResidueModel,
    omega: np.ndarray,
    reference: np.ndarray,
    termination: TerminationNetwork,
    observe_port: int,
    *,
    z0: float = 50.0,
) -> np.ndarray:
    """Per-frequency relative target-impedance error |Z_model - Z_ref|/|Z_ref|."""
    z_model = target_impedance_of_model(
        model, omega, termination, observe_port, z0=z0
    )
    return np.abs(z_model - reference) / np.abs(reference)


def max_relative_impedance_error(
    model: PoleResidueModel,
    omega: np.ndarray,
    reference: np.ndarray,
    termination: TerminationNetwork,
    observe_port: int,
    *,
    band: tuple[float, float] | None = None,
    z0: float = 50.0,
) -> float:
    """Maximum relative target-impedance error, optionally band-limited.

    ``band`` is an (omega_low, omega_high) angular-frequency window; the
    paper's headline claim concerns the low-frequency band where standard
    enforcement destroys accuracy.
    """
    omega = np.asarray(omega, dtype=float)
    errors = relative_impedance_error(
        model, omega, reference, termination, observe_port, z0=z0
    )
    if band is not None:
        mask = (omega >= band[0]) & (omega <= band[1])
        if not mask.any():
            raise ValueError("band selects no frequency points")
        errors = errors[mask]
    return float(np.max(errors))


@dataclass(frozen=True)
class ModelAccuracyRow:
    """One row of the accuracy summary table (per model variant)."""

    label: str
    rms_scattering: float
    max_scattering: float
    max_rel_impedance: float
    low_band_rel_impedance: float
    is_passive: bool

    def format(self) -> str:
        return (
            f"{self.label:<28s} {self.rms_scattering:11.3e} "
            f"{self.max_scattering:11.3e} {self.max_rel_impedance:13.4f} "
            f"{self.low_band_rel_impedance:13.4f} {str(self.is_passive):>7s}"
        )


def flow_accuracy_rows(
    result,
    data,
    termination: TerminationNetwork,
    observe_port: int,
    *,
    low_band_hz: float = 1e6,
) -> list[ModelAccuracyRow]:
    """Accuracy rows for the four model variants of a flow run.

    ``result`` is a :class:`repro.flow.macromodel.FlowResult`; the order of
    rows matches the paper's Fig. 5 comparison (standard fit, weighted fit,
    and the two enforced models).  Shared by the CLI ``flow`` command and
    the campaign executor so every surface reports identical numbers.
    """
    from repro.passivity.check import check_passivity

    omega = data.omega
    low_band = (0.0, 2.0 * np.pi * low_band_hz)
    variants = [
        ("standard VF", result.standard_fit.model),
        ("weighted VF (non-passive)", result.weighted_fit.model),
        ("passive, standard cost", result.standard_enforced.model),
        ("passive, weighted cost", result.weighted_enforced.model),
    ]
    rows = []
    for label, model in variants:
        rows.append(
            ModelAccuracyRow(
                label=label,
                rms_scattering=rms_scattering_error(model, omega, data.samples),
                max_scattering=max_scattering_error(model, omega, data.samples),
                max_rel_impedance=max_relative_impedance_error(
                    model, omega, result.reference_impedance, termination,
                    observe_port, z0=data.z0,
                ),
                low_band_rel_impedance=max_relative_impedance_error(
                    model, omega, result.reference_impedance, termination,
                    observe_port, band=low_band, z0=data.z0,
                ),
                is_passive=check_passivity(model).is_passive,
            )
        )
    return rows


#: Accuracy-table labels promoted to headline metrics (per-model suffix).
_HEADLINE_ROWS = {
    "passive, standard cost": "standard_cost",
    "passive, weighted cost": "weighted_cost",
}


def accuracy_table(rows: list[ModelAccuracyRow]) -> list[dict]:
    """JSON-compatible form of the accuracy rows (campaign records)."""
    return [
        {
            "label": row.label,
            "rms_scattering": row.rms_scattering,
            "max_scattering": row.max_scattering,
            "max_rel_impedance": row.max_rel_impedance,
            "low_band_rel_impedance": row.low_band_rel_impedance,
            "is_passive": row.is_passive,
        }
        for row in rows
    ]


def headline_metrics(table: list[dict], result) -> dict:
    """Scalar summary metrics of one flow run.

    ``table`` is :func:`accuracy_table` output; ``result`` is any object
    with the flow-result attributes ``weighted_fit``,
    ``pre_enforcement_report`` and ``weighted_enforced`` (a
    :class:`~repro.flow.macromodel.FlowResult` or the validation stage's
    proxy).  Shared by the validation stage and the campaign executor so
    every surface reports identical numbers.
    """
    metrics: dict = {}
    for row in table:
        suffix = _HEADLINE_ROWS.get(row["label"])
        if suffix is None:
            continue
        metrics[f"max_rel_impedance_{suffix}"] = row["max_rel_impedance"]
        metrics[f"low_band_rel_impedance_{suffix}"] = (
            row["low_band_rel_impedance"]
        )
        metrics[f"passive_{suffix}"] = row["is_passive"]
    metrics["rms_scattering_weighted_fit"] = float(
        result.weighted_fit.rms_error
    )
    metrics["worst_sigma_before_enforcement"] = float(
        result.pre_enforcement_report.worst_sigma
    )
    metrics["enforcement_iterations_weighted_cost"] = int(
        result.weighted_enforced.iterations
    )
    metrics["enforcement_converged_weighted_cost"] = bool(
        result.weighted_enforced.converged
    )
    return metrics


def impedance_error_report(
    rows: list[ModelAccuracyRow],
) -> str:
    """Render the accuracy summary table (derived Table B of DESIGN.md)."""
    header = (
        f"{'model':<28s} {'rms(S err)':>11s} {'max(S err)':>11s} "
        f"{'max relZ':>13s} {'low-f relZ':>13s} {'passive':>7s}"
    )
    lines = [header, "-" * len(header)]
    lines.extend(row.format() for row in rows)
    return "\n".join(lines)
