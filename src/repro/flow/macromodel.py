"""End-to-end sensitivity-weighted macromodeling flow.

Chains every stage of the paper into one reproducible pipeline:

1. *Standard fit* -- plain vector fitting of the scattering data (eq. 4),
   the baseline whose loaded impedance goes wrong (Figs. 1-2).
2. *Sensitivity analysis* -- first-order sensitivity Xi_k of the target
   impedance under the nominal termination (eq. 5, Fig. 3).
3. *Weighted fit* -- vector fitting with sensitivity-derived weights
   (eq. 6), iteratively refined as in ref. [23] (Fig. 2).
4. *Sensitivity macromodel* -- Magnitude-VF rational model Xi~(s) of the
   weight curve (eq. 17, Fig. 3).
5. *Passivity enforcement*, twice on the weighted model: with the standard
   L2 cost (eq. 10; destroys the loaded impedance, Fig. 5) and with the
   sensitivity-weighted cost (eqs. 18-21; preserves it, Figs. 4-6).

Weighting scheme note (documented substitution): the paper weights by the
raw sensitivity w_k = Xi_k, whose 80 dB decay on the Intel test case makes
absolute and relative weighting nearly equivalent.  On the synthetic test
case the relative-error sensitivity w_k = Xi_k / |Zhat_PDN,k| is the
meaningful curve (Xi alone is nearly flat below 100 MHz); both are
available via ``FlowOptions.weight_mode`` and both reduce to the same
quantity up to the known reference impedance curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.passivity.check import PassivityReport, check_passivity
from repro.passivity.cost import l2_gramian_cost
from repro.passivity.enforce import (
    EnforcementOptions,
    EnforcementResult,
    enforce_passivity,
)
from repro.pdn.termination import TerminationNetwork
from repro.sensitivity.firstorder import sensitivity_analytic
from repro.sensitivity.weighted_norm import sensitivity_weighted_cost
from repro.sensitivity.weightmodel import SensitivityWeight, build_weight_model
from repro.sensitivity.zpdn import target_impedance, target_impedance_of_model
from repro.sparams.network import NetworkData
from repro.util.logging import get_logger
from repro.vectfit.core import VFResult, fit_many, vector_fit
from repro.vectfit.options import VFOptions

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class FlowOptions:
    """Configuration of the full macromodeling flow.

    Parameters
    ----------
    vf:
        Vector-fitting options; the paper uses 12 common poles.
    weight_mode:
        "relative" (default) weights by Xi_k / |Zhat_PDN,k|; "absolute"
        weights by the raw Xi_k as in the paper's eq. (6).
    weight_floor:
        Lower clamp of the normalized fitting weights; keeps the weighted
        model accurate in the native scattering representation (paper
        Fig. 6 requirement).
    refinement_rounds:
        Iterative weight-refinement passes (ref. [23]): weights are boosted
        where the relative impedance error of the current weighted fit is
        largest.
    weight_model_order:
        Order n_w of the rational sensitivity model (paper: 8).
    enforcement:
        Options of the passivity-enforcement loop.
    """

    vf: VFOptions = field(default_factory=lambda: VFOptions(n_poles=12))
    weight_mode: str = "relative"
    weight_floor: float = 0.01
    refinement_rounds: int = 3
    weight_model_order: int = 8
    enforcement: EnforcementOptions = field(default_factory=EnforcementOptions)

    def __post_init__(self) -> None:
        if self.weight_mode not in ("relative", "absolute"):
            raise ValueError("weight_mode must be 'relative' or 'absolute'")
        if not (0.0 < self.weight_floor <= 1.0):
            raise ValueError("weight_floor must be in (0, 1]")
        if self.refinement_rounds < 0:
            raise ValueError("refinement_rounds must be non-negative")
        if self.weight_model_order < 1:
            raise ValueError("weight_model_order must be at least 1")


@dataclass(frozen=True)
class FlowResult:
    """Everything produced by one flow run (the four Fig. 5 models).

    Attributes
    ----------
    reference_impedance:
        Target impedance computed from the raw data (the "nominal" curve).
    xi:
        First-order sensitivity samples Xi_k.
    base_weights:
        Normalized pre-refinement fitting weights (also the Xi~ fit data).
    final_weights:
        Post-refinement weights actually used by the weighted fit.
    standard_fit / weighted_fit:
        VF results without / with sensitivity weighting.
    weight_model:
        Rational sensitivity model Xi~(s).
    standard_enforced / weighted_enforced:
        Passivity enforcement of the weighted model under the standard L2
        cost and under the sensitivity-weighted cost.
    standard_fit_report:
        Passivity report of the weighted (non-passive) model before
        enforcement.
    """

    omega: np.ndarray
    reference_impedance: np.ndarray
    xi: np.ndarray
    base_weights: np.ndarray
    final_weights: np.ndarray
    standard_fit: VFResult
    weighted_fit: VFResult
    weight_model: SensitivityWeight
    pre_enforcement_report: PassivityReport
    standard_enforced: EnforcementResult
    weighted_enforced: EnforcementResult


class MacromodelingFlow:
    """Driver object running the full paper pipeline on one data set."""

    def __init__(self, options: FlowOptions | None = None) -> None:
        self.options = options or FlowOptions()

    # ------------------------------------------------------------------
    # Individual stages (usable standalone)
    # ------------------------------------------------------------------
    def fit_standard(self, data: NetworkData) -> VFResult:
        """Stage 1: plain vector fit (paper eq. 4)."""
        return vector_fit(data.omega, data.samples, options=self.options.vf)

    def compute_sensitivity(
        self,
        data: NetworkData,
        termination: TerminationNetwork,
        observe_port: int,
    ) -> np.ndarray:
        """Stage 2: first-order sensitivity Xi_k (paper eq. 5)."""
        return sensitivity_analytic(
            data.samples, data.omega, termination, observe_port, z0=data.z0
        )

    def base_weights(
        self,
        data: NetworkData,
        xi: np.ndarray,
        reference: np.ndarray,
    ) -> np.ndarray:
        """Normalized, floored fitting weights from the sensitivity.

        External data can produce degenerate inputs the paper's synthetic
        case never hits: a (near-)zero target-impedance sample would put
        inf/NaN into the relative weights, and an identically-flat
        sensitivity has no peak to normalize by.  The reference magnitude
        is therefore clamped to a small fraction of its peak, and a
        sensitivity with no positive finite peak falls back to uniform
        weights (the weighted fit then degenerates to the standard one,
        which is the right answer for zero information).
        """
        xi = np.asarray(xi, dtype=float)
        if not np.all(np.isfinite(xi)):
            raise ValueError("sensitivity contains non-finite entries")
        if self.options.weight_mode == "relative":
            ref_abs = np.abs(np.asarray(reference))
            peak_ref = float(np.max(ref_abs, initial=0.0))
            if not np.isfinite(peak_ref) or peak_ref <= 0.0:
                raise ValueError(
                    "reference impedance is zero or non-finite; relative "
                    "weighting is undefined (use weight_mode='absolute')"
                )
            raw = xi / np.maximum(ref_abs, 1e-12 * peak_ref)
        else:
            raw = xi.copy()
        peak = float(np.max(raw, initial=0.0))
        if not np.isfinite(peak):
            raise ValueError("sensitivity weights overflowed to non-finite")
        if peak <= 0.0:
            return np.ones_like(raw)
        normalized = raw / peak
        return np.maximum(normalized, self.options.weight_floor)

    def fit_weighted(
        self,
        data: NetworkData,
        termination: TerminationNetwork,
        observe_port: int,
        weights: np.ndarray,
        reference: np.ndarray,
        initial_result: VFResult | None = None,
    ) -> tuple[VFResult, np.ndarray]:
        """Stage 3: weighted fit with iterative refinement (ref. [23]).

        ``initial_result`` optionally supplies the fit of the unrefined
        ``weights`` (e.g. from a batched :func:`fit_many` call) so the
        first vector fit is not recomputed.  Returns the final fit and
        the final weight vector.
        """
        w = weights.copy()
        result = initial_result
        if result is None:
            result = vector_fit(data.omega, data.samples, w, self.options.vf)
        for round_index in range(self.options.refinement_rounds):
            errors = np.abs(
                target_impedance_of_model(
                    result.model, data.omega, termination, observe_port,
                    z0=data.z0,
                )
                - reference
            ) / np.abs(reference)
            pivot = max(float(np.median(errors)), 1e-4)
            w = w * np.sqrt(np.maximum(errors / pivot, 1.0))
            w = np.maximum(w / float(np.max(w)), self.options.weight_floor)
            result = vector_fit(data.omega, data.samples, w, self.options.vf)
            _LOG.info(
                "weight refinement %d: max rel Z error %.4f",
                round_index + 1,
                float(np.max(errors)),
            )
        return result, w

    def build_weight_model(
        self, data: NetworkData, base_weights: np.ndarray
    ) -> SensitivityWeight:
        """Stage 4: rational sensitivity model Xi~(s) (paper eq. 17)."""
        return build_weight_model(
            data.omega,
            base_weights,
            order=self.options.weight_model_order,
        )

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def run(
        self,
        data: NetworkData,
        termination: TerminationNetwork,
        observe_port: int,
        *,
        standard_fit: VFResult | None = None,
    ) -> FlowResult:
        """Run all stages; see :class:`FlowResult` for the outputs.

        The sensitivity Xi_k (eq. 5) is computed from the raw samples, so
        the base weights exist before any fitting: the standard fit and
        the first weighted fit share one :func:`fit_many` call (shared
        grid validation, starting poles and iteration-0 basis work).

        ``standard_fit`` optionally injects a precomputed standard fit of
        the *same* data under the *same* VF options -- the campaign
        executor shares one standard fit across all scenarios of a sweep
        that reuse the scattering data (termination perturbations leave
        it untouched).  The injected result must equal what
        :meth:`fit_standard` would compute; :func:`fit_many` guarantees
        that determinism.
        """
        if data.kind != "s":
            raise ValueError("the flow expects scattering data")
        omega = data.omega
        reference = target_impedance(
            data.samples, omega, termination, observe_port, z0=data.z0
        )
        xi = self.compute_sensitivity(data, termination, observe_port)
        base = self.base_weights(data, xi, reference)
        if standard_fit is None:
            standard, weighted0 = fit_many(
                omega, [data.samples, data.samples], [None, base],
                self.options.vf,
            )
        else:
            standard = standard_fit
            weighted0 = vector_fit(omega, data.samples, base, self.options.vf)
        weighted, final_weights = self.fit_weighted(
            data, termination, observe_port, base, reference,
            initial_result=weighted0,
        )
        weight_model = self.build_weight_model(data, base)
        report = check_passivity(
            weighted.model, band_samples=self.options.enforcement.band_samples
        )

        # Both enforcement runs start from the same weighted model, so the
        # pre-enforcement report doubles as their exact iteration-0 check.
        standard_cost = l2_gramian_cost(weighted.model)
        standard_enforced = enforce_passivity(
            weighted.model, standard_cost, self.options.enforcement,
            initial_report=report,
        )
        weighted_cost = sensitivity_weighted_cost(
            weighted.model, weight_model.model
        )
        weighted_enforced = enforce_passivity(
            weighted.model, weighted_cost, self.options.enforcement,
            initial_report=report,
        )
        return FlowResult(
            omega=omega,
            reference_impedance=reference,
            xi=xi,
            base_weights=base,
            final_weights=final_weights,
            standard_fit=standard,
            weighted_fit=weighted,
            weight_model=weight_model,
            pre_enforcement_report=report,
            standard_enforced=standard_enforced,
            weighted_enforced=weighted_enforced,
        )


def run_flow(
    data: NetworkData,
    termination: TerminationNetwork,
    observe_port: int,
    options: FlowOptions | None = None,
    standard_fit: VFResult | None = None,
) -> FlowResult:
    """Pure functional entry point to the full pipeline.

    Module-level (hence picklable) so campaign workers can ship it to
    subprocesses; all state lives in the arguments, which are themselves
    plain-data containers.  ``standard_fit`` forwards a shared
    precomputed standard fit (see :meth:`MacromodelingFlow.run`).
    """
    return MacromodelingFlow(options).run(
        data, termination, observe_port, standard_fit=standard_fit
    )
