"""End-to-end sensitivity-weighted macromodeling flow.

Chains every stage of the paper into one reproducible pipeline:

1. *Standard fit* -- plain vector fitting of the scattering data (eq. 4),
   the baseline whose loaded impedance goes wrong (Figs. 1-2).
2. *Sensitivity analysis* -- first-order sensitivity Xi_k of the target
   impedance under the nominal termination (eq. 5, Fig. 3).
3. *Weighted fit* -- vector fitting with sensitivity-derived weights
   (eq. 6), iteratively refined as in ref. [23] (Fig. 2).
4. *Sensitivity macromodel* -- Magnitude-VF rational model Xi~(s) of the
   weight curve (eq. 17, Fig. 3).
5. *Passivity enforcement*, twice on the weighted model: with the standard
   L2 cost (eq. 10; destroys the loaded impedance, Fig. 5) and with the
   sensitivity-weighted cost (eqs. 18-21; preserves it, Figs. 4-6).
6. *Validation* -- accuracy table and headline metrics of the four model
   variants.

Execution is delegated to the composable pipeline engine of
:mod:`repro.api`: :meth:`MacromodelingFlow.run` seeds a
:func:`repro.api.pipeline.standard_pipeline` with the in-memory data and
returns the assembled :class:`FlowResult`, so this module, the CLI and
the campaign executor all share one execution path, one per-stage cache
(pass ``store=``) and one event surface (pass ``observers=``).  The
numerical chain is unchanged -- a pipeline-backed run reproduces the
legacy results exactly.

Weighting scheme note (documented substitution): the paper weights by the
raw sensitivity w_k = Xi_k, whose 80 dB decay on the Intel test case makes
absolute and relative weighting nearly equivalent.  On the synthetic test
case the relative-error sensitivity w_k = Xi_k / |Zhat_PDN,k| is the
meaningful curve (Xi alone is nearly flat below 100 MHz); both are
available via ``FlowOptions.weight_mode`` and both reduce to the same
quantity up to the known reference impedance curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.passivity.check import PassivityReport
from repro.passivity.enforce import (
    EnforcementOptions,
    EnforcementResult,
)
from repro.pdn.termination import TerminationNetwork
from repro.sensitivity.firstorder import sensitivity_analytic
from repro.sensitivity.weightmodel import SensitivityWeight, build_weight_model
from repro.sparams.network import NetworkData
from repro.util.logging import get_logger
from repro.vectfit.core import VFResult, vector_fit
from repro.vectfit.options import VFOptions

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class FlowOptions:
    """Configuration of the full macromodeling flow.

    Parameters
    ----------
    vf:
        Vector-fitting options; the paper uses 12 common poles.
    weight_mode:
        "relative" (default) weights by Xi_k / |Zhat_PDN,k|; "absolute"
        weights by the raw Xi_k as in the paper's eq. (6).
    weight_floor:
        Lower clamp of the normalized fitting weights; keeps the weighted
        model accurate in the native scattering representation (paper
        Fig. 6 requirement).
    refinement_rounds:
        Iterative weight-refinement passes (ref. [23]): weights are boosted
        where the relative impedance error of the current weighted fit is
        largest.
    weight_model_order:
        Order n_w of the rational sensitivity model (paper: 8).
    enforcement:
        Options of the passivity-enforcement loop.
    """

    vf: VFOptions = field(default_factory=lambda: VFOptions(n_poles=12))
    weight_mode: str = "relative"
    weight_floor: float = 0.01
    refinement_rounds: int = 3
    weight_model_order: int = 8
    enforcement: EnforcementOptions = field(default_factory=EnforcementOptions)

    def __post_init__(self) -> None:
        if self.weight_mode not in ("relative", "absolute"):
            raise ValueError("weight_mode must be 'relative' or 'absolute'")
        if not (0.0 < self.weight_floor <= 1.0):
            raise ValueError("weight_floor must be in (0, 1]")
        if self.refinement_rounds < 0:
            raise ValueError("refinement_rounds must be non-negative")
        if self.weight_model_order < 1:
            raise ValueError("weight_model_order must be at least 1")


@dataclass(frozen=True)
class FlowResult:
    """Everything produced by one flow run (the four Fig. 5 models).

    Attributes
    ----------
    reference_impedance:
        Target impedance computed from the raw data (the "nominal" curve).
    xi:
        First-order sensitivity samples Xi_k.
    base_weights:
        Normalized pre-refinement fitting weights (also the Xi~ fit data).
    final_weights:
        Post-refinement weights actually used by the weighted fit.
    standard_fit / weighted_fit:
        VF results without / with sensitivity weighting.
    weight_model:
        Rational sensitivity model Xi~(s).
    standard_enforced / weighted_enforced:
        Passivity enforcement of the weighted model under the standard L2
        cost and under the sensitivity-weighted cost.
    pre_enforcement_report:
        Passivity report of the weighted (non-passive) model before
        enforcement.
    accuracy_rows:
        Per-variant accuracy rows from the validation stage
        (:class:`~repro.flow.metrics.ModelAccuracyRow`).
    headline_metrics:
        Scalar summary metrics (:func:`repro.flow.metrics.headline_metrics`).
    stage_provenance:
        Per-stage execution records of the pipeline run: stage name,
        status (``computed``/``cached``/``seeded``), wall seconds and the
        content-addressed store key.
    """

    omega: np.ndarray
    reference_impedance: np.ndarray
    xi: np.ndarray
    base_weights: np.ndarray
    final_weights: np.ndarray
    standard_fit: VFResult
    weighted_fit: VFResult
    weight_model: SensitivityWeight
    pre_enforcement_report: PassivityReport
    standard_enforced: EnforcementResult
    weighted_enforced: EnforcementResult
    accuracy_rows: tuple = ()
    headline_metrics: dict = field(default_factory=dict, repr=False)
    stage_provenance: tuple = ()

    def stage_timings(self) -> dict[str, float]:
        """Wall seconds per pipeline stage of this run."""
        return {
            record["stage"]: record["seconds"]
            for record in self.stage_provenance
        }

    def summary_dict(self) -> dict:
        """JSON-compatible run summary: metrics, timings, provenance.

        The one summary every surface shares: the CLI writes it as
        ``flow_summary.json`` and campaign records embed the ``stages``
        block, so per-stage wall times and cache-hit provenance are
        always reported alongside the accuracy numbers.
        """
        from repro.flow.metrics import accuracy_table

        return {
            "metrics": dict(self.headline_metrics),
            "accuracy_table": accuracy_table(list(self.accuracy_rows)),
            "stages": [dict(record) for record in self.stage_provenance],
            "stage_seconds": self.stage_timings(),
            "enforcement": {
                "standard_cost": {
                    "iterations": int(self.standard_enforced.iterations),
                    "converged": bool(self.standard_enforced.converged),
                    "profile": self.standard_enforced.profile(),
                },
                "weighted_cost": {
                    "iterations": int(self.weighted_enforced.iterations),
                    "converged": bool(self.weighted_enforced.converged),
                    "profile": self.weighted_enforced.profile(),
                },
            },
        }


class MacromodelingFlow:
    """Driver object running the full paper pipeline on one data set."""

    def __init__(self, options: FlowOptions | None = None) -> None:
        self.options = options or FlowOptions()

    # ------------------------------------------------------------------
    # Individual stages (usable standalone)
    # ------------------------------------------------------------------
    def fit_standard(self, data: NetworkData) -> VFResult:
        """Stage 1: plain vector fit (paper eq. 4)."""
        return vector_fit(data.omega, data.samples, options=self.options.vf)

    def compute_sensitivity(
        self,
        data: NetworkData,
        termination: TerminationNetwork,
        observe_port: int,
    ) -> np.ndarray:
        """Stage 2: first-order sensitivity Xi_k (paper eq. 5)."""
        return sensitivity_analytic(
            data.samples, data.omega, termination, observe_port, z0=data.z0
        )

    def base_weights(
        self,
        data: NetworkData,
        xi: np.ndarray,
        reference: np.ndarray,
    ) -> np.ndarray:
        """Normalized, floored fitting weights from the sensitivity.

        Delegates to :func:`repro.api.stages.compute_base_weights`, the
        single implementation both APIs share; see there for the
        degenerate-input handling (zero reference, flat sensitivity).
        """
        from repro.api.stages import compute_base_weights

        return compute_base_weights(self.options, xi, reference)

    def fit_weighted(
        self,
        data: NetworkData,
        termination: TerminationNetwork,
        observe_port: int,
        weights: np.ndarray,
        reference: np.ndarray,
        initial_result: VFResult | None = None,
    ) -> tuple[VFResult, np.ndarray]:
        """Stage 3: weighted fit with iterative refinement (ref. [23]).

        ``initial_result`` optionally supplies the fit of the unrefined
        ``weights`` so the first vector fit is not recomputed.  Returns
        the final fit and the final weight vector.
        """
        from repro.api.stages import refine_weighted_fit

        return refine_weighted_fit(
            self.options, data, termination, observe_port, weights,
            reference, initial_result=initial_result,
        )

    def build_weight_model(
        self, data: NetworkData, base_weights: np.ndarray
    ) -> SensitivityWeight:
        """Stage 4: rational sensitivity model Xi~(s) (paper eq. 17)."""
        return build_weight_model(
            data.omega,
            base_weights,
            order=self.options.weight_model_order,
        )

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def run(
        self,
        data: NetworkData,
        termination: TerminationNetwork,
        observe_port: int,
        *,
        standard_fit: VFResult | None = None,
        store=None,
        store_stages=None,
        observers=(),
        config=None,
    ) -> FlowResult:
        """Run all stages; see :class:`FlowResult` for the outputs.

        Executes through :func:`repro.api.pipeline.standard_pipeline`
        seeded with the in-memory data, so per-stage caching and event
        hooks come for free:

        ``standard_fit``
            optionally injects a precomputed standard fit of the *same*
            data under the *same* VF options -- the campaign executor
            shares one standard fit across all scenarios of a sweep that
            reuse the scattering data (termination perturbations leave it
            untouched).  The injected result must equal what
            :meth:`fit_standard` would compute;
            :func:`repro.vectfit.core.fit_many` guarantees that
            determinism.  It seeds the ``standard_fit`` artifact (the
            stage is skipped).
        ``store`` / ``store_stages``
            optional :class:`repro.api.artifacts.ArtifactStore` (or a
            directory path for one): stage results are loaded from /
            saved to it by content key, making the run resumable and
            shareable.  ``store_stages`` optionally restricts the store
            to the named stages (see :class:`repro.api.pipeline.
            Pipeline`).

        Note on stage decomposition: the legacy fixed chain computed the
        standard and iteration-0 weighted fits in one joint
        :func:`~repro.vectfit.core.fit_many` call; content-keyed stages
        compute them independently (identical numbers, a few percent of
        one cold run's wall time), which is what makes the standard fit
        shareable across terminations via the store.
        ``observers``
            :class:`repro.api.pipeline.PipelineObserver` instances
            receiving ``on_stage_start``/``on_stage_finish`` events.
        ``config``
            optional full :class:`repro.api.config.ReproConfig`; when
            omitted one is built from ``self.options`` (validation at
            its defaults).
        """
        from repro.api.artifacts import ArtifactStore
        from repro.api.config import ReproConfig
        from repro.api.pipeline import standard_pipeline

        if data.kind != "s":
            raise ValueError("the flow expects scattering data")
        if config is None:
            config = ReproConfig.from_flow_options(self.options)
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        seed: dict = {
            "network": data,
            "termination": termination,
            "observe_port": int(observe_port),
        }
        if standard_fit is not None:
            seed["standard_fit"] = standard_fit
        pipeline = standard_pipeline(
            store=store, store_stages=store_stages, observers=observers
        )
        run = pipeline.run(config, seed=seed)
        return flow_result_from_run(run)


def flow_result_from_run(run) -> FlowResult:
    """Assemble a :class:`FlowResult` from a pipeline run's artifacts.

    The run must have executed the standard flow stages (any extra
    artifacts from inserted custom stages are simply not part of the
    result object; read them off ``run.artifacts`` directly).
    """
    artifacts = run.artifacts
    return FlowResult(
        omega=artifacts["network"].omega,
        reference_impedance=artifacts["reference_impedance"],
        xi=artifacts["xi"],
        base_weights=artifacts["base_weights"],
        final_weights=artifacts["final_weights"],
        standard_fit=artifacts["standard_fit"],
        weighted_fit=artifacts["weighted_fit"],
        weight_model=artifacts["weight_model"],
        pre_enforcement_report=artifacts["pre_enforcement_report"],
        standard_enforced=artifacts["standard_enforced"],
        weighted_enforced=artifacts["weighted_enforced"],
        accuracy_rows=tuple(artifacts.get("accuracy_rows", ())),
        headline_metrics=dict(artifacts.get("headline_metrics", {})),
        stage_provenance=tuple(run.provenance()),
    )


def run_flow(
    data: NetworkData,
    termination: TerminationNetwork,
    observe_port: int,
    options=None,
    standard_fit: VFResult | None = None,
    *,
    store=None,
    store_stages=None,
    observers=(),
) -> FlowResult:
    """Pure functional entry point to the full pipeline.

    Module-level (hence picklable) so campaign workers can ship it to
    subprocesses; all state lives in the arguments, which are themselves
    plain-data containers.  ``options`` accepts a legacy
    :class:`FlowOptions` or a full :class:`repro.api.config.ReproConfig`;
    ``standard_fit`` forwards a shared precomputed standard fit and
    ``store``/``observers`` forward the pipeline engine's per-stage cache
    and event hooks (see :meth:`MacromodelingFlow.run`).
    """
    from repro.api.config import ReproConfig

    config = ReproConfig.coerce(options)
    return MacromodelingFlow(config.flow).run(
        data,
        termination,
        observe_port,
        standard_fit=standard_fit,
        store=store,
        store_stages=store_stages,
        observers=observers,
        config=config,
    )
