"""End-to-end macromodeling flow and accuracy metrics."""

from repro.flow.macromodel import FlowOptions, FlowResult, MacromodelingFlow
from repro.flow.metrics import (
    impedance_error_report,
    max_relative_impedance_error,
    rms_scattering_error,
)

__all__ = [
    "FlowOptions",
    "FlowResult",
    "MacromodelingFlow",
    "impedance_error_report",
    "max_relative_impedance_error",
    "rms_scattering_error",
]
