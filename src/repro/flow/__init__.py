"""End-to-end macromodeling flow and accuracy metrics."""

from repro.flow.macromodel import (
    FlowOptions,
    FlowResult,
    MacromodelingFlow,
    flow_result_from_run,
    run_flow,
)
from repro.flow.metrics import (
    accuracy_table,
    flow_accuracy_rows,
    headline_metrics,
    impedance_error_report,
    max_relative_impedance_error,
    rms_scattering_error,
)

__all__ = [
    "FlowOptions",
    "FlowResult",
    "MacromodelingFlow",
    "flow_result_from_run",
    "run_flow",
    "accuracy_table",
    "flow_accuracy_rows",
    "headline_metrics",
    "impedance_error_report",
    "max_relative_impedance_error",
    "rms_scattering_error",
]
