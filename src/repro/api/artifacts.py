"""Typed artifacts, content digests, and the content-addressed store.

Every value flowing between pipeline stages is an *artifact*: a named,
typed object (:class:`ArtifactSpec` declares the name and expected type).
This module provides the two capabilities the pipeline engine needs on
top of that:

* **Digesting** -- :func:`artifact_digest` maps any supported artifact to
  a stable SHA-256 over its canonical encoded form, so stage cache keys
  can be derived from *content* (the same scattering data always produces
  the same standard-fit key, whatever scenario or file name delivered it).
* **Persistence** -- :class:`ArtifactStore` is a content-addressed
  key-value store of stage outputs (in-memory, optionally mirrored to a
  directory), generalizing the campaign flow cache down to individual
  stage results: any stage becomes individually cacheable and resumable,
  and cross-scenario sharing (e.g. one standard fit serving a whole
  termination sweep) is a store hit instead of bespoke executor plumbing.

Encoding is exact: numpy arrays are serialized as raw little-endian bytes
(base64), so a decoded artifact is *byte-identical* to what was stored --
a resumed pipeline continues from exactly the numbers the interrupted run
produced.  Dataclass artifacts (fit results, passivity reports,
enforcement outcomes, ...) are encoded field-by-field through a type
registry; terminations go through the canonical
:func:`repro.pdn.spec.termination_to_dict` codec so the store can never
disagree with the flow-cache fingerprint about what a termination *is*.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path

import numpy as np

from repro.flow.metrics import ModelAccuracyRow
from repro.obs import telemetry as obs
from repro.ingest.conditioning import IngestAction, IngestReport
from repro.passivity.check import PassivityReport, ViolationBand
from repro.passivity.enforce import EnforcementResult, IterationRecord
from repro.pdn.spec import termination_from_dict, termination_to_dict
from repro.pdn.termination import TerminationNetwork
from repro.sensitivity.weightmodel import SensitivityWeight
from repro.sparams.network import NetworkData
from repro.statespace.poleresidue import PoleResidueModel
from repro.statespace.system import StateSpaceModel
from repro.vectfit.core import VFResult
from repro.vectfit.magnitude import MagnitudeFitResult

_TAG = "__repro_artifact__"
_STORE_FORMAT = "repro.artifact-store/1"

#: Dataclasses encoded field-by-field; the name is the wire tag, so it is
#: part of the persisted format -- extend, don't rename.
_DATACLASS_REGISTRY: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        NetworkData,
        StateSpaceModel,
        VFResult,
        MagnitudeFitResult,
        SensitivityWeight,
        PassivityReport,
        ViolationBand,
        EnforcementResult,
        IterationRecord,
        IngestReport,
        IngestAction,
        ModelAccuracyRow,
    )
}


@dataclass(frozen=True)
class ArtifactSpec:
    """Declared name and type of one stage input/output."""

    name: str
    type: type | tuple[type, ...] | None = None
    description: str = ""

    def check(self, value) -> None:
        """Raise ``TypeError`` when ``value`` does not match the spec."""
        if self.type is not None and not isinstance(value, self.type):
            expected = (
                self.type.__name__
                if isinstance(self.type, type)
                else "/".join(t.__name__ for t in self.type)
            )
            raise TypeError(
                f"artifact {self.name!r} must be {expected}, got "
                f"{type(value).__name__}"
            )


def encode_artifact(value):
    """JSON-compatible tagged encoding of one artifact value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (complex, np.complexfloating)):
        return {_TAG: "complex", "re": float(value.real), "im": float(value.imag)}
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        return {
            _TAG: "ndarray",
            "dtype": data.dtype.str,
            "shape": list(data.shape),
            "data": base64.b64encode(data.tobytes()).decode("ascii"),
        }
    if isinstance(value, TerminationNetwork):
        return {_TAG: "termination", "spec": termination_to_dict(value)}
    if isinstance(value, PoleResidueModel):
        # Plain class (not a dataclass): encode its defining arrays.
        return {
            _TAG: "pole_residue",
            "poles": encode_artifact(value.poles),
            "residues": encode_artifact(value.residues),
            "const": encode_artifact(value.const),
        }
    if is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _DATACLASS_REGISTRY:
            raise TypeError(f"no artifact codec for dataclass {name}")
        return {
            _TAG: "dataclass",
            "type": name,
            "fields": {
                spec.name: encode_artifact(getattr(value, spec.name))
                for spec in fields(value)
            },
        }
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode_artifact(v) for v in value]}
    if isinstance(value, list):
        return [encode_artifact(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError("artifact dict keys must be strings")
            out[key] = encode_artifact(item)
        return out
    raise TypeError(f"no artifact codec for {type(value).__name__}")


def decode_artifact(payload):
    """Inverse of :func:`encode_artifact` (byte-identical arrays)."""
    if isinstance(payload, list):
        return [decode_artifact(v) for v in payload]
    if not isinstance(payload, dict):
        return payload
    tag = payload.get(_TAG)
    if tag is None:
        return {k: decode_artifact(v) for k, v in payload.items()}
    if tag == "complex":
        return complex(payload["re"], payload["im"])
    if tag == "ndarray":
        raw = base64.b64decode(payload["data"])
        array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        return array.reshape(payload["shape"]).copy()
    if tag == "tuple":
        return tuple(decode_artifact(v) for v in payload["items"])
    if tag == "termination":
        return termination_from_dict(payload["spec"])
    if tag == "pole_residue":
        return PoleResidueModel(
            decode_artifact(payload["poles"]),
            decode_artifact(payload["residues"]),
            decode_artifact(payload["const"]),
        )
    if tag == "dataclass":
        cls = _DATACLASS_REGISTRY.get(payload["type"])
        if cls is None:
            raise ValueError(f"unknown artifact dataclass {payload['type']!r}")
        kwargs = {
            key: decode_artifact(value)
            for key, value in payload["fields"].items()
        }
        return cls(**kwargs)
    raise ValueError(f"unknown artifact tag {tag!r}")


def artifact_digest(value) -> str:
    """Stable SHA-256 hex digest of one artifact's content."""
    canonical = json.dumps(
        encode_artifact(value), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class ArtifactStore:
    """Content-addressed store of stage outputs.

    Entries map a stage result key (see
    :meth:`repro.api.stages.PipelineStage.result_key`) to the dict of
    output artifacts that stage produced.  Lookups consult a process-local
    memory layer first (so repeated pipelines in one process share decoded
    objects for free); when ``root`` is given, entries are mirrored to
    disk with atomic writes (temp file + rename), making results durable
    across processes and sessions -- the resume story.

    The on-disk layout mirrors :class:`repro.campaign.cache.FlowCache`
    (two-level fan-out of JSON files), and a corrupt entry behaves like a
    miss, never an error.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, dict] = {}

    def path(self, key: str) -> Path | None:
        """On-disk location of one entry (``None`` for memory-only stores)."""
        if self.root is None:
            return None
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Decoded output dict of one entry; ``None`` on miss."""
        hit = self._memory.get(key)
        if hit is not None:
            obs.incr("artifact_store.hits")
            return dict(hit)
        path = self.path(key)
        if path is None or not path.exists():
            obs.incr("artifact_store.misses")
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("format") != _STORE_FORMAT:
                obs.incr("artifact_store.misses")
                return None
            values = {
                name: decode_artifact(encoded)
                for name, encoded in payload["values"].items()
            }
        except (KeyError, ValueError, TypeError, OSError):
            obs.incr("artifact_store.misses")
            return None
        self._memory[key] = values
        obs.incr("artifact_store.hits")
        return dict(values)

    def put(self, key: str, values: dict) -> None:
        """Store one entry (memory always; disk atomically when enabled)."""
        obs.incr("artifact_store.puts")
        self._memory[key] = dict(values)
        path = self.path(key)
        if path is None:
            return
        payload = {
            "format": _STORE_FORMAT,
            "key": key,
            "values": {
                name: encode_artifact(value) for name, value in values.items()
            },
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        path = self.path(key)
        return path is not None and path.exists()

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.root is not None:
            keys.update(p.stem for p in self.root.glob("*/*.json"))
        return len(keys)

    def clear(self) -> int:
        """Drop all entries; returns how many were removed."""
        keys = set(self._memory)
        self._memory.clear()
        if self.root is not None:
            for path in self.root.glob("*/*.json"):
                keys.add(path.stem)
                path.unlink()
        return len(keys)
