"""The pipeline runner: typed stage graph, store-backed execution, events.

A :class:`Pipeline` is an ordered list of
:class:`~repro.api.stages.PipelineStage` objects validated as a graph:
every artifact has exactly one producer, and every stage's inputs must be
satisfied by an earlier stage or by the run's *seed* artifacts.  Running
a pipeline walks the stages in order; for each stage it either

* **seeds** -- all declared outputs were provided by the caller (e.g. a
  precomputed standard fit shipped by the campaign dispatcher), so the
  stage is skipped;
* **loads** -- a content-addressed :class:`~repro.api.artifacts.
  ArtifactStore` already holds the stage's outputs under its
  :meth:`~repro.api.stages.PipelineStage.result_key` (resume, or another
  scenario already did this work);
* **computes** -- runs the stage and stores the outputs.

Every decision is recorded as a :class:`StageExecution` (status, wall
time, store key), which is the provenance surfaced in ``FlowResult``
summaries and campaign records.  Observers receive
``on_stage_start``/``on_stage_finish`` callbacks -- the structured
replacement for ad-hoc ``--profile`` plumbing.

Pipelines are immutable and composable: :meth:`Pipeline.with_stage`
inserts a custom stage relative to an existing one and
:meth:`Pipeline.replace_stage` swaps an implementation (e.g. an
alternative weighting law), each returning a new validated pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.api.artifacts import ArtifactStore
from repro.api.config import ReproConfig
from repro.api.stages import PipelineStage, standard_stages
from repro.obs import telemetry as obs
from repro.resilience.guards import ensure_finite_outputs
from repro.util.logging import get_logger

_LOG = get_logger(__name__)

#: StageExecution.status values, in the order a stage tries them.
STATUS_SEEDED = "seeded"
STATUS_CACHED = "cached"
STATUS_COMPUTED = "computed"


@dataclass(frozen=True)
class StageExecution:
    """Provenance of one stage in one pipeline run."""

    stage: str
    status: str
    seconds: float
    key: str | None = None
    outputs: tuple[str, ...] = ()

    @property
    def cache_hit(self) -> bool:
        """True when no computation happened (seeded or store-served)."""
        return self.status != STATUS_COMPUTED

    def to_dict(self) -> dict:
        """JSON-compatible form (flow summaries, campaign records)."""
        return {
            "stage": self.stage,
            "status": self.status,
            "seconds": self.seconds,
            "cache_hit": self.cache_hit,
            "key": self.key,
            "outputs": list(self.outputs),
        }


class PipelineObserver:
    """Event hook base class; override any subset of the callbacks."""

    def on_stage_start(self, stage: PipelineStage) -> None:
        """Called immediately before a stage is resolved (any status)."""

    def on_stage_finish(
        self, stage: PipelineStage, execution: StageExecution
    ) -> None:
        """Called after a stage resolved, with its provenance record."""


class EventObserver(PipelineObserver):
    """Observer receiving stage callbacks as structured event dicts.

    The callback payloads are the same shapes the telemetry layer records
    (``{"event": "stage.start", "stage": name}`` and ``{"event":
    "stage.finish", **execution.to_dict()}``), so an observer written
    against :meth:`on_event` works identically over a live pipeline run
    and over a replayed ``events-*.jsonl`` telemetry stream.
    """

    def on_event(self, event: dict) -> None:
        """Receive one structured event; override in subclasses."""

    def on_stage_start(self, stage: PipelineStage) -> None:
        self.on_event({"event": "stage.start", "stage": stage.name})

    def on_stage_finish(
        self, stage: PipelineStage, execution: StageExecution
    ) -> None:
        self.on_event({"event": "stage.finish", **execution.to_dict()})


class TimingObserver(PipelineObserver):
    """Collects per-stage provenance; handy for tests and embedding."""

    def __init__(self) -> None:
        self.executions: list[StageExecution] = []

    def on_stage_finish(
        self, stage: PipelineStage, execution: StageExecution
    ) -> None:
        self.executions.append(execution)

    def seconds(self) -> dict[str, float]:
        """Accumulated wall seconds per stage name.

        Stages that ran more than once (e.g. across repeated ``run``
        calls observed by one instance) sum rather than overwrite.
        """
        totals: dict[str, float] = {}
        for e in self.executions:
            totals[e.stage] = totals.get(e.stage, 0.0) + e.seconds
        return totals


class ConsoleObserver(EventObserver):
    """Reports stage progress and timings (the CLI ``--profile`` surface).

    By default lines go through the package logger (``repro.api.pipeline``
    at INFO), so library embedders control them with standard logging
    configuration and nothing hits stdout unbidden.  Passing a ``stream``
    writes the same lines there instead -- the CLI passes ``sys.stdout``
    to keep ``--profile`` output visible without logging setup.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream

    def _emit_line(self, line: str) -> None:
        if self.stream is not None:
            print(line, file=self.stream)
        else:
            _LOG.info("%s", line)

    def on_event(self, event: dict) -> None:
        if event.get("event") == "stage.start":
            self._emit_line(f"stage {event['stage']}: running ...")
        elif event.get("event") == "stage.finish":
            self._emit_line(
                f"stage {event['stage']}: {event['status']} "
                f"in {event['seconds']:.3f}s"
            )


@dataclass(frozen=True)
class PipelineRun:
    """Everything one :meth:`Pipeline.run` produced."""

    artifacts: dict = field(repr=False)
    executions: tuple[StageExecution, ...] = ()

    def __getitem__(self, name: str):
        return self.artifacts[name]

    def __contains__(self, name: str) -> bool:
        return name in self.artifacts

    def timings(self) -> dict[str, float]:
        """Wall seconds per stage (zero for seeded/loaded stages)."""
        return {e.stage: e.seconds for e in self.executions}

    def provenance(self) -> list[dict]:
        """JSON-compatible per-stage execution records."""
        return [e.to_dict() for e in self.executions]


class Pipeline:
    """Immutable, validated sequence of stages executable as one flow."""

    def __init__(
        self,
        stages: Sequence[PipelineStage],
        *,
        store: ArtifactStore | None = None,
        store_stages: Iterable[str] | None = None,
        observers: Iterable[PipelineObserver] = (),
    ) -> None:
        """``store_stages`` restricts which stages use the store (both
        lookup and write); ``None`` means every cacheable stage.  Callers
        that already have a coarser result cache (the campaign executor's
        flow cache) use it to persist only the stages whose sharing they
        exploit, instead of double-writing every heavy artifact."""
        self.stages: tuple[PipelineStage, ...] = tuple(stages)
        self.store = store
        self.store_stages: frozenset[str] | None = (
            None if store_stages is None else frozenset(store_stages)
        )
        self.observers: tuple[PipelineObserver, ...] = tuple(observers)
        self._validate_graph()

    # ------------------------------------------------------------------
    # Graph validation and composition
    # ------------------------------------------------------------------
    def _validate_graph(self) -> None:
        if not self.stages:
            raise ValueError("pipeline needs at least one stage")
        producer: dict[str, str] = {}
        names: set[str] = set()
        for stage in self.stages:
            if stage.name in names:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            names.add(stage.name)
            for spec in stage.outputs:
                if spec.name in producer:
                    raise ValueError(
                        f"artifact {spec.name!r} produced by both "
                        f"{producer[spec.name]!r} and {stage.name!r}"
                    )
                producer[spec.name] = stage.name

    def describe(self) -> str:
        """Human-readable stage graph (name, inputs -> outputs)."""
        lines = []
        for stage in self.stages:
            ins = ", ".join(s.name for s in stage.inputs) or "-"
            outs = ", ".join(s.name for s in stage.outputs)
            lines.append(f"{stage.name}: {ins} -> {outs}")
        return "\n".join(lines)

    def _index_of(self, name: str) -> int:
        for index, stage in enumerate(self.stages):
            if stage.name == name:
                return index
        raise ValueError(f"pipeline has no stage named {name!r}")

    def with_stage(
        self,
        stage: PipelineStage,
        *,
        after: str | None = None,
        before: str | None = None,
        store: ArtifactStore | None = None,
        observers: Iterable[PipelineObserver] | None = None,
    ) -> "Pipeline":
        """A new pipeline with ``stage`` inserted relative to an existing one.

        Exactly one of ``after``/``before`` selects the anchor; omitting
        both appends.  ``store``/``observers`` default to this pipeline's.
        """
        if after is not None and before is not None:
            raise ValueError("pass only one of 'after' and 'before'")
        stages = list(self.stages)
        if after is not None:
            stages.insert(self._index_of(after) + 1, stage)
        elif before is not None:
            stages.insert(self._index_of(before), stage)
        else:
            stages.append(stage)
        return Pipeline(
            stages,
            store=self.store if store is None else store,
            store_stages=self.store_stages,
            observers=self.observers if observers is None else observers,
        )

    def replace_stage(
        self, name: str, stage: PipelineStage
    ) -> "Pipeline":
        """A new pipeline with the named stage swapped for ``stage``."""
        stages = list(self.stages)
        stages[self._index_of(name)] = stage
        return Pipeline(
            stages, store=self.store, store_stages=self.store_stages,
            observers=self.observers,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        config: ReproConfig | None = None,
        seed: dict | None = None,
        *,
        stop_after: str | None = None,
    ) -> PipelineRun:
        """Execute the stages; see the module docstring for semantics.

        Parameters
        ----------
        config:
            Unified configuration (or ``None`` for defaults; a legacy
            ``FlowOptions`` is upgraded via :meth:`ReproConfig.coerce`).
        seed:
            Pre-existing artifacts by name.  A stage whose *every* output
            is seeded is skipped; seeding only part of a stage's outputs
            is an error (the stage would recompute and shadow the seed).
        stop_after:
            Stop once the named stage resolved -- partial runs for
            prewarming or debugging; downstream artifacts stay absent.
        """
        config = ReproConfig.coerce(config)
        if stop_after is not None:
            self._index_of(stop_after)  # fail fast on typos
        state: dict = dict(seed or {})
        executions: list[StageExecution] = []

        for stage in self.stages:
            out_names = [spec.name for spec in stage.outputs]
            seeded = [name for name in out_names if name in state]
            for observer in self.observers:
                observer.on_stage_start(stage)
            with obs.span(f"stage:{stage.name}"):
                started = time.perf_counter()
                if seeded and len(seeded) == len(out_names):
                    execution = StageExecution(
                        stage=stage.name, status=STATUS_SEEDED, seconds=0.0,
                        outputs=tuple(out_names),
                    )
                elif seeded:
                    raise ValueError(
                        f"stage {stage.name!r}: outputs {sorted(seeded)} are "
                        "seeded but "
                        f"{sorted(set(out_names) - set(seeded))} are not; "
                        "seed all of a stage's outputs or none"
                    )
                else:
                    missing = [
                        spec.name for spec in stage.inputs
                        if spec.name not in state
                    ]
                    if missing:
                        raise ValueError(
                            f"stage {stage.name!r} requires artifacts "
                            f"{sorted(missing)} which no earlier stage or "
                            "seed provides"
                        )
                    inputs = {
                        spec.name: state[spec.name] for spec in stage.inputs
                    }
                    for spec in stage.inputs:
                        spec.check(inputs[spec.name])
                    try:
                        execution, values = self._resolve(
                            stage, config, inputs, started
                        )
                    except Exception as exc:
                        # Tag the failing stage so campaign failure
                        # records can name it even for exceptions
                        # raised deep inside solver code.
                        if getattr(exc, "repro_stage", None) is None:
                            try:
                                exc.repro_stage = stage.name
                            except AttributeError:
                                pass  # slotted exception; keep original
                        raise
                    state.update(values)
            executions.append(execution)
            obs.incr(f"pipeline.stages_{execution.status}")
            obs.emit("stage.finish", **execution.to_dict())
            for observer in self.observers:
                observer.on_stage_finish(stage, execution)
            if stage.name == stop_after:
                break

        return PipelineRun(artifacts=state, executions=tuple(executions))

    def _resolve(
        self,
        stage: PipelineStage,
        config: ReproConfig,
        inputs: dict,
        started: float,
    ) -> tuple[StageExecution, dict]:
        """Load the stage's outputs from the store or compute (and store)."""
        out_names = [spec.name for spec in stage.outputs]
        key: str | None = None
        values: dict | None = None
        status = STATUS_COMPUTED
        store_this = (
            self.store is not None
            and stage.cacheable
            and (self.store_stages is None or stage.name in self.store_stages)
        )
        if store_this:
            key = stage.result_key(config, inputs)
            hit = self.store.get(key)
            if hit is not None and set(hit) >= set(out_names):
                values = {name: hit[name] for name in out_names}
                status = STATUS_CACHED
        if values is None:
            values = stage.run(config, inputs)
            missing = sorted(set(out_names) - set(values))
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} did not produce declared "
                    f"outputs {missing}"
                )
            for spec in stage.outputs:
                spec.check(values[spec.name])
            # Boundary guard *before* the store write: a stage emitting
            # NaN/Inf fails here with a typed error naming the stage,
            # and the poisoned artifacts never enter the cache.
            ensure_finite_outputs(
                stage.name, {name: values[name] for name in out_names}
            )
            if store_this and key is not None:
                self.store.put(key, {name: values[name] for name in out_names})
        values = {name: values[name] for name in out_names}
        seconds = time.perf_counter() - started
        if status == STATUS_CACHED:
            _LOG.info("stage %s: store hit (%s)", stage.name, key[:12])
        execution = StageExecution(
            stage=stage.name, status=status, seconds=seconds,
            key=key, outputs=tuple(out_names),
        )
        return execution, values


def standard_pipeline(
    *,
    store: ArtifactStore | None = None,
    store_stages: Iterable[str] | None = None,
    observers: Iterable[PipelineObserver] = (),
) -> Pipeline:
    """The paper's five-step flow over in-memory data.

    Seed ``network``/``termination``/``observe_port`` (and optionally a
    precomputed ``standard_fit``) when running it; use
    :func:`file_pipeline` to start from a Touchstone file instead.
    """
    return Pipeline(
        standard_stages(), store=store, store_stages=store_stages,
        observers=observers,
    )


def file_pipeline(
    source,
    termination: str | None = None,
    observe_port: int = 0,
    *,
    store: ArtifactStore | None = None,
    store_stages: Iterable[str] | None = None,
    observers: Iterable[PipelineObserver] = (),
) -> Pipeline:
    """Ingest stage + the standard flow: Touchstone file to passive model."""
    from repro.api.stages import IngestStage

    return Pipeline(
        (IngestStage(source, termination, observe_port), *standard_stages()),
        store=store,
        store_stages=store_stages,
        observers=observers,
    )
