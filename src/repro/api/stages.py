"""Pipeline stages: the paper's flow as composable, typed units.

Each stage declares its inputs and outputs as :class:`ArtifactSpec` lists
and implements one step of the macromodeling flow; the
:class:`~repro.api.pipeline.Pipeline` runner wires them by artifact name,
validates the types, and caches each stage's outputs in a content-
addressed :class:`~repro.api.artifacts.ArtifactStore` under
:meth:`PipelineStage.result_key` -- a digest of the stage identity, the
configuration slice the stage actually reads, and the content of its
inputs.  Two consequences fall out of keying by content:

* a re-run (same data, same config) resumes from stored stage results
  instead of recomputing, stage by stage;
* scenarios that share inputs share stage results -- the campaign
  executor's shared-standard-fit batching is now simply a store hit on
  :class:`StandardFitStage`'s key.

The numerical path is exactly the legacy ``MacromodelingFlow.run`` chain
(same functions, same operands, same order), so a pipeline-backed flow
reproduces the legacy results to machine precision.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.api.artifacts import ArtifactSpec, artifact_digest
from repro.obs import telemetry as obs
from repro.api.config import ReproConfig, options_to_dict, options_token
from repro.flow.macromodel import FlowOptions
from repro.ingest.conditioning import IngestReport
from repro.passivity.check import PassivityReport, check_passivity
from repro.passivity.cost import l2_gramian_cost
from repro.passivity.enforce import EnforcementResult, enforce_passivity
from repro.pdn.termination import TerminationNetwork
from repro.resilience.errors import IngestError, StageOutputError
from repro.sensitivity.firstorder import sensitivity_analytic
from repro.sensitivity.weighted_norm import sensitivity_weighted_cost
from repro.sensitivity.weightmodel import SensitivityWeight, build_weight_model
from repro.sensitivity.zpdn import target_impedance, target_impedance_of_model
from repro.sparams.network import NetworkData
from repro.util.logging import get_logger
from repro.vectfit.core import VFResult, vector_fit

_LOG = get_logger(__name__)

_KEY_FORMAT = "repro.stage-key/1"

# ----------------------------------------------------------------------
# Canonical artifact vocabulary of the standard flow
# ----------------------------------------------------------------------
A_NETWORK = ArtifactSpec("network", NetworkData, "conditioned scattering data")
A_TERMINATION = ArtifactSpec(
    "termination", TerminationNetwork, "nominal termination network"
)
A_OBSERVE_PORT = ArtifactSpec("observe_port", int, "observation port (0-based)")
A_INGEST_REPORT = ArtifactSpec(
    "ingest_report", IngestReport, "conditioning audit trail"
)
A_REFERENCE = ArtifactSpec(
    "reference_impedance", np.ndarray, "nominal target impedance Zhat(j w)"
)
A_XI = ArtifactSpec("xi", np.ndarray, "first-order sensitivity Xi_k (eq. 5)")
A_STANDARD_FIT = ArtifactSpec(
    "standard_fit", VFResult, "plain vector fit (eq. 4)"
)
A_BASE_WEIGHTS = ArtifactSpec(
    "base_weights", np.ndarray, "normalized pre-refinement weights"
)
A_WEIGHTED_FIT = ArtifactSpec(
    "weighted_fit", VFResult, "sensitivity-weighted vector fit (eq. 6)"
)
A_FINAL_WEIGHTS = ArtifactSpec(
    "final_weights", np.ndarray, "post-refinement weights"
)
A_WEIGHT_MODEL = ArtifactSpec(
    "weight_model", SensitivityWeight, "rational weight model Xi~(s) (eq. 17)"
)
A_PRE_REPORT = ArtifactSpec(
    "pre_enforcement_report", PassivityReport,
    "passivity of the weighted model before enforcement",
)
A_STANDARD_ENFORCED = ArtifactSpec(
    "standard_enforced", EnforcementResult, "enforcement under the L2 cost"
)
A_WEIGHTED_ENFORCED = ArtifactSpec(
    "weighted_enforced", EnforcementResult,
    "enforcement under the sensitivity-weighted cost (eqs. 18-21)",
)
A_ACCURACY_ROWS = ArtifactSpec(
    "accuracy_rows", tuple, "per-variant accuracy table rows"
)
A_HEADLINE_METRICS = ArtifactSpec(
    "headline_metrics", dict, "scalar summary metrics"
)


# ----------------------------------------------------------------------
# Shared numerical helpers (also backing the legacy MacromodelingFlow
# stage methods, so both APIs compute through one implementation)
# ----------------------------------------------------------------------
def compute_base_weights(
    options: FlowOptions, xi: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Normalized, floored fitting weights from the sensitivity.

    External data can produce degenerate inputs the paper's synthetic
    case never hits: a (near-)zero target-impedance sample would put
    inf/NaN into the relative weights, and an identically-flat
    sensitivity has no peak to normalize by.  The reference magnitude
    is therefore clamped to a small fraction of its peak, and a
    sensitivity with no positive finite peak falls back to uniform
    weights (the weighted fit then degenerates to the standard one,
    which is the right answer for zero information).
    """
    xi = np.asarray(xi, dtype=float)
    if not np.all(np.isfinite(xi)):
        raise StageOutputError(
            "sensitivity contains non-finite entries", stage="weighting"
        )
    if options.weight_mode == "relative":
        ref_abs = np.abs(np.asarray(reference))
        peak_ref = float(np.max(ref_abs, initial=0.0))
        if not np.isfinite(peak_ref) or peak_ref <= 0.0:
            raise StageOutputError(
                "reference impedance is zero or non-finite; relative "
                "weighting is undefined (use weight_mode='absolute')",
                stage="weighting",
            )
        raw = xi / np.maximum(ref_abs, 1e-12 * peak_ref)
    else:
        raw = xi.copy()
    peak = float(np.max(raw, initial=0.0))
    if not np.isfinite(peak):
        raise StageOutputError(
            "sensitivity weights overflowed to non-finite", stage="weighting"
        )
    if peak <= 0.0:
        return np.ones_like(raw)
    normalized = raw / peak
    return np.maximum(normalized, options.weight_floor)


def refine_weighted_fit(
    options: FlowOptions,
    data: NetworkData,
    termination: TerminationNetwork,
    observe_port: int,
    weights: np.ndarray,
    reference: np.ndarray,
    initial_result: VFResult | None = None,
) -> tuple[VFResult, np.ndarray]:
    """Weighted fit with iterative refinement (ref. [23]).

    ``initial_result`` optionally supplies the fit of the unrefined
    ``weights`` so the first vector fit is not recomputed.  Returns the
    final fit and the final weight vector.
    """
    w = weights.copy()
    result = initial_result
    if result is None:
        result = vector_fit(data.omega, data.samples, w, options.vf)
    for round_index in range(options.refinement_rounds):
        errors = np.abs(
            target_impedance_of_model(
                result.model, data.omega, termination, observe_port,
                z0=data.z0,
            )
            - reference
        ) / np.abs(reference)
        pivot = max(float(np.median(errors)), 1e-4)
        w = w * np.sqrt(np.maximum(errors / pivot, 1.0))
        w = np.maximum(w / float(np.max(w)), options.weight_floor)
        result = vector_fit(data.omega, data.samples, w, options.vf)
        _LOG.info(
            "weight refinement %d: max rel Z error %.4f",
            round_index + 1,
            float(np.max(errors)),
        )
    return result, w


# ----------------------------------------------------------------------
# Stage protocol
# ----------------------------------------------------------------------
class PipelineStage:
    """One typed unit of the flow.

    Subclasses set the class attributes and implement :meth:`run`.
    ``version`` participates in the cache key: bump it whenever the
    stage's numerics change so stale store entries can never be replayed.
    ``cacheable = False`` opts a stage out of the store entirely.
    """

    name: str = "stage"
    version: str = "1"
    inputs: tuple[ArtifactSpec, ...] = ()
    outputs: tuple[ArtifactSpec, ...] = ()
    cacheable: bool = True

    def config_token(self, config: ReproConfig) -> str:
        """Canonical string of the config slice this stage depends on.

        The default is the empty token (a pure function of its inputs);
        stages reading configuration MUST override this, otherwise a
        config change would replay stale cached results.
        """
        return ""

    def run(self, config: ReproConfig, inputs: dict) -> dict:
        """Compute the stage's outputs; must return every declared output."""
        raise NotImplementedError

    def result_key(self, config: ReproConfig, inputs: dict) -> str:
        """Content-addressed store key of this stage's outputs.

        Keyed by the stage *identity* (name, concrete class, version),
        the configuration slice it reads, and the content digests of its
        inputs.  The concrete class participates so a subclass variant
        (an overridden weighting law, say) can never replay the base
        class's stored results even if its author forgot to bump
        ``version``.
        """
        cls = type(self)
        payload = {
            "format": _KEY_FORMAT,
            "stage": self.name,
            "stage_class": f"{cls.__module__}.{cls.__qualname__}",
            "version": self.version,
            "config": self.config_token(config),
            "inputs": {
                spec.name: artifact_digest(inputs[spec.name])
                for spec in self.inputs
            },
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# ----------------------------------------------------------------------
# Concrete stages
# ----------------------------------------------------------------------
class IngestStage(PipelineStage):
    """Load and condition a Touchstone file; build the nominal termination.

    The stage is parameterized by the *source* (file path, termination
    spec, observation port) because those identify the workload, while
    the conditioning knobs come from ``config.ingest``.  Its cache token
    hashes the file *content*, so editing the file in place invalidates
    downstream results correctly.
    """

    name = "ingest"
    outputs = (A_NETWORK, A_TERMINATION, A_OBSERVE_PORT, A_INGEST_REPORT)

    def __init__(
        self,
        source: str | Path,
        termination: str | None = None,
        observe_port: int = 0,
    ) -> None:
        self.source = str(source)
        self.termination = termination
        self.observe_port = int(observe_port)

    def config_token(self, config: ReproConfig) -> str:
        source_digest = hashlib.sha256(
            Path(self.source).read_bytes()
        ).hexdigest()
        termination = self.termination
        if termination is not None and Path(termination).is_file():
            termination = hashlib.sha256(
                Path(termination).read_bytes()
            ).hexdigest()
        return json.dumps(
            {
                "source_sha256": source_digest,
                "termination": termination,
                "observe_port": self.observe_port,
                "conditioning": options_to_dict(config.ingest),
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def run(self, config: ReproConfig, inputs: dict) -> dict:
        from repro.ingest import build_termination, load_network

        try:
            data, report = load_network(self.source, config.ingest)
            termination = build_termination(
                self.termination,
                data.n_ports,
                observe_port=self.observe_port,
                default_z0=data.z0,
            )
        except IngestError:
            raise
        except (OSError, ValueError) as exc:
            # Typed boundary: parse and conditioning failures carry the
            # "ingest" error code into run records and telemetry.
            raise IngestError(
                f"failed to ingest {self.source}: {exc}", stage="ingest"
            ) from exc
        return {
            "network": data,
            "termination": termination,
            "observe_port": self.observe_port,
            "ingest_report": report,
        }


class StandardFitStage(PipelineStage):
    """Plain vector fit of the scattering data (paper eq. 4).

    Keyed by the data content and the VF options only, so every scenario
    of a termination sweep (which perturbs loading, not scattering data)
    maps to the same store entry -- the shared-standard-fit optimization
    as a cache property.
    """

    name = "standard_fit"
    inputs = (A_NETWORK,)
    outputs = (A_STANDARD_FIT,)

    def config_token(self, config: ReproConfig) -> str:
        return options_token(config.flow.vf)

    def run(self, config: ReproConfig, inputs: dict) -> dict:
        data: NetworkData = inputs["network"]
        if data.kind != "s":
            raise IngestError(
                "the flow expects scattering data", stage=self.name
            )
        return {
            "standard_fit": vector_fit(
                data.omega, data.samples, options=config.flow.vf
            )
        }


class SensitivityStage(PipelineStage):
    """Nominal target impedance (eq. 2) and first-order sensitivity (eq. 5).

    A pure function of the raw data and termination -- no configuration
    enters, hence the empty config token.
    """

    name = "sensitivity"
    inputs = (A_NETWORK, A_TERMINATION, A_OBSERVE_PORT)
    outputs = (A_REFERENCE, A_XI)

    def run(self, config: ReproConfig, inputs: dict) -> dict:
        data: NetworkData = inputs["network"]
        termination = inputs["termination"]
        observe_port = inputs["observe_port"]
        reference = target_impedance(
            data.samples, data.omega, termination, observe_port, z0=data.z0
        )
        xi = sensitivity_analytic(
            data.samples, data.omega, termination, observe_port, z0=data.z0
        )
        return {"reference_impedance": reference, "xi": xi}


class WeightingStage(PipelineStage):
    """Sensitivity-derived weights, weighted fit, and the weight model.

    Computes the normalized base weights (eq. 6 / the documented relative
    variant), runs the weighted vector fit with iterative refinement
    (ref. [23]) and fits the rational sensitivity model Xi~(s) (eq. 17).
    Subclasses can override :meth:`base_weights` to implement alternative
    weighting laws while inheriting the fitting machinery -- see
    ``examples/pipeline_api.py``.
    """

    name = "weighting"
    inputs = (A_NETWORK, A_TERMINATION, A_OBSERVE_PORT, A_XI, A_REFERENCE)
    outputs = (A_BASE_WEIGHTS, A_WEIGHTED_FIT, A_FINAL_WEIGHTS, A_WEIGHT_MODEL)

    def config_token(self, config: ReproConfig) -> str:
        flow = config.flow
        return json.dumps(
            {
                "vf": options_to_dict(flow.vf),
                "weight_mode": flow.weight_mode,
                "weight_floor": flow.weight_floor,
                "refinement_rounds": flow.refinement_rounds,
                "weight_model_order": flow.weight_model_order,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def base_weights(
        self, config: ReproConfig, data: NetworkData,
        xi: np.ndarray, reference: np.ndarray,
    ) -> np.ndarray:
        """Weighting law hook; the default is the paper's scheme."""
        return compute_base_weights(config.flow, xi, reference)

    def run(self, config: ReproConfig, inputs: dict) -> dict:
        data: NetworkData = inputs["network"]
        termination = inputs["termination"]
        observe_port = inputs["observe_port"]
        base = self.base_weights(
            config, data, inputs["xi"], inputs["reference_impedance"]
        )
        weighted0 = vector_fit(data.omega, data.samples, base, config.flow.vf)
        weighted, final_weights = refine_weighted_fit(
            config.flow, data, termination, observe_port, base,
            inputs["reference_impedance"], initial_result=weighted0,
        )
        weight_model = build_weight_model(
            data.omega, base, order=config.flow.weight_model_order
        )
        return {
            "base_weights": base,
            "weighted_fit": weighted,
            "final_weights": final_weights,
            "weight_model": weight_model,
        }


class EnforceStage(PipelineStage):
    """Passivity enforcement of the weighted model under both costs.

    Checks the weighted model once (the report doubles as both runs'
    exact iteration-0 certificate) and enforces twice: standard L2 cost
    (eq. 10) and sensitivity-weighted cost (eqs. 18-21).
    """

    name = "enforce"
    inputs = (A_WEIGHTED_FIT, A_WEIGHT_MODEL)
    outputs = (A_PRE_REPORT, A_STANDARD_ENFORCED, A_WEIGHTED_ENFORCED)

    def config_token(self, config: ReproConfig) -> str:
        return options_token(config.flow.enforcement)

    def run(self, config: ReproConfig, inputs: dict) -> dict:
        weighted: VFResult = inputs["weighted_fit"]
        weight_model: SensitivityWeight = inputs["weight_model"]
        enforcement = config.flow.enforcement
        report = check_passivity(
            weighted.model, band_samples=enforcement.band_samples
        )
        standard_cost = l2_gramian_cost(weighted.model)
        with obs.span("enforce:standard_cost"):
            standard_enforced = enforce_passivity(
                weighted.model, standard_cost, enforcement,
                initial_report=report, cost_label="standard",
            )
        weighted_cost = sensitivity_weighted_cost(
            weighted.model, weight_model.model
        )
        with obs.span("enforce:weighted_cost"):
            weighted_enforced = enforce_passivity(
                weighted.model, weighted_cost, enforcement,
                initial_report=report, cost_label="weighted",
            )
        return {
            "pre_enforcement_report": report,
            "standard_enforced": standard_enforced,
            "weighted_enforced": weighted_enforced,
        }


class ValidateStage(PipelineStage):
    """Accuracy table and headline metrics of the four model variants."""

    name = "validate"
    inputs = (
        A_NETWORK,
        A_TERMINATION,
        A_OBSERVE_PORT,
        A_REFERENCE,
        A_STANDARD_FIT,
        A_WEIGHTED_FIT,
        A_PRE_REPORT,
        A_STANDARD_ENFORCED,
        A_WEIGHTED_ENFORCED,
    )
    outputs = (A_ACCURACY_ROWS, A_HEADLINE_METRICS)

    def config_token(self, config: ReproConfig) -> str:
        return options_token(config.validation)

    def run(self, config: ReproConfig, inputs: dict) -> dict:
        from types import SimpleNamespace

        from repro.flow.metrics import (
            accuracy_table,
            flow_accuracy_rows,
            headline_metrics,
        )

        proxy = SimpleNamespace(
            reference_impedance=inputs["reference_impedance"],
            standard_fit=inputs["standard_fit"],
            weighted_fit=inputs["weighted_fit"],
            pre_enforcement_report=inputs["pre_enforcement_report"],
            standard_enforced=inputs["standard_enforced"],
            weighted_enforced=inputs["weighted_enforced"],
        )
        rows = flow_accuracy_rows(
            proxy,
            inputs["network"],
            inputs["termination"],
            inputs["observe_port"],
            low_band_hz=config.validation.low_band_hz,
        )
        metrics = headline_metrics(accuracy_table(rows), proxy)
        return {
            "accuracy_rows": tuple(rows),
            "headline_metrics": metrics,
        }


def standard_stages() -> tuple[PipelineStage, ...]:
    """The paper's five-step chain as fresh stage instances."""
    return (
        StandardFitStage(),
        SensitivityStage(),
        WeightingStage(),
        EnforceStage(),
        ValidateStage(),
    )


__all__ = [
    "ArtifactSpec",
    "PipelineStage",
    "IngestStage",
    "StandardFitStage",
    "SensitivityStage",
    "WeightingStage",
    "EnforceStage",
    "ValidateStage",
    "standard_stages",
    "compute_base_weights",
    "refine_weighted_fit",
]
