"""repro.api: the composable, embeddable pipeline engine.

This package turns the paper's fixed five-step chain (fit -> sensitivity
-> weighting -> enforcement -> validation) into a typed stage graph that
every execution surface shares -- ``repro.flow.run_flow``, the
``repro fit``/``flow`` CLI subcommands, and the campaign executor all run
the same :class:`Pipeline`.

* :mod:`repro.api.config` -- :class:`ReproConfig`, one JSON-round-
  trippable configuration composing every option dataclass;
* :mod:`repro.api.stages` -- the :class:`PipelineStage` protocol and the
  concrete stages with typed artifact declarations;
* :mod:`repro.api.artifacts` -- artifact codecs, content digests and the
  content-addressed :class:`ArtifactStore` (per-stage caching/resume);
* :mod:`repro.api.pipeline` -- the :class:`Pipeline` runner, provenance
  records and the observer event hooks.

Quick start (embedding)::

    from repro.api import ArtifactStore, ReproConfig, standard_pipeline

    pipeline = standard_pipeline(store=ArtifactStore("stores/stages"))
    run = pipeline.run(ReproConfig(), seed={
        "network": data, "termination": termination, "observe_port": 0,
    })
    passive = run["weighted_enforced"].model
"""

from repro.api.artifacts import (
    ArtifactSpec,
    ArtifactStore,
    artifact_digest,
    decode_artifact,
    encode_artifact,
)
from repro.api.config import (
    ReproConfig,
    ValidationOptions,
    options_from_dict,
    options_to_dict,
    options_token,
)
from repro.api.pipeline import (
    ConsoleObserver,
    EventObserver,
    Pipeline,
    PipelineObserver,
    PipelineRun,
    StageExecution,
    TimingObserver,
    file_pipeline,
    standard_pipeline,
)
from repro.api.stages import (
    EnforceStage,
    IngestStage,
    PipelineStage,
    SensitivityStage,
    StandardFitStage,
    ValidateStage,
    WeightingStage,
    compute_base_weights,
    refine_weighted_fit,
    standard_stages,
)

__all__ = [
    "ArtifactSpec",
    "ArtifactStore",
    "artifact_digest",
    "decode_artifact",
    "encode_artifact",
    "ReproConfig",
    "ValidationOptions",
    "options_from_dict",
    "options_to_dict",
    "options_token",
    "ConsoleObserver",
    "EventObserver",
    "Pipeline",
    "PipelineObserver",
    "PipelineRun",
    "StageExecution",
    "TimingObserver",
    "file_pipeline",
    "standard_pipeline",
    "EnforceStage",
    "IngestStage",
    "PipelineStage",
    "SensitivityStage",
    "StandardFitStage",
    "ValidateStage",
    "WeightingStage",
    "compute_base_weights",
    "refine_weighted_fit",
    "standard_stages",
]
