"""Unified pipeline configuration.

:class:`ReproConfig` is the single configuration object of the composable
pipeline engine: it composes the existing option dataclasses
(:class:`~repro.flow.macromodel.FlowOptions`, which itself nests
:class:`~repro.vectfit.options.VFOptions` and
:class:`~repro.passivity.enforce.EnforcementOptions`, plus
:class:`~repro.ingest.conditioning.ConditioningOptions` and the new
:class:`ValidationOptions`) without duplicating a single default: every
leaf default and every validation rule lives in the composed dataclass,
so ``ReproConfig()`` can never drift from what ``FlowOptions()`` means.

The JSON codec (:meth:`ReproConfig.to_dict` / :meth:`ReproConfig.from_dict`)
round-trips every composed dataclass, rejects unknown keys at any nesting
level (a typo in a config file fails loudly instead of silently running
defaults), and accepts partial documents (missing keys take the composed
defaults, which keeps old config files readable by newer versions).

Deprecation shim: every pre-existing entry point keeps accepting a bare
:class:`FlowOptions`; :meth:`ReproConfig.coerce` upgrades either form, and
:meth:`ReproConfig.flow_options` recovers the legacy object, so the
content-addressed flow-cache fingerprints (which hash ``FlowOptions``)
are unchanged by this layer.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path

import numpy as np

from repro.backend import validate_backend_name
from repro.flow.macromodel import FlowOptions
from repro.ingest.conditioning import ConditioningOptions
from repro.passivity.enforce import EnforcementOptions
from repro.vectfit.options import VFOptions

_FORMAT = "repro.config"
_VERSION = 1


@dataclass(frozen=True)
class ValidationOptions:
    """Configuration of the pipeline's validation stage.

    Parameters
    ----------
    low_band_hz:
        Upper edge (Hz) of the low-frequency band reported separately in
        the accuracy table -- the band where the paper's headline claim
        (standard enforcement destroys the loaded impedance) lives.
    """

    low_band_hz: float = 1e6

    def __post_init__(self) -> None:
        if self.low_band_hz <= 0.0:
            raise ValueError("low_band_hz must be positive")


#: Dataclass-valued fields of the option tree: (owner class, field name)
#: -> nested class.  Drives both directions of the JSON codec.
_NESTED_OPTIONS: dict[type, dict[str, type]] = {
    FlowOptions: {"vf": VFOptions, "enforcement": EnforcementOptions},
}


def _encode_leaf(value: object) -> object:
    if isinstance(value, np.ndarray):
        # Complex pole arrays as [re, im] pairs (VFOptions.initial_poles).
        stacked = np.stack(
            [np.asarray(value).real, np.asarray(value).imag], axis=-1
        )
        return stacked.tolist()
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def options_to_dict(options: object) -> dict:
    """JSON-compatible dict of one option dataclass (recursing nested ones)."""
    payload = {}
    for spec in fields(options):
        value = getattr(options, spec.name)
        if is_dataclass(value) and not isinstance(value, type):
            payload[spec.name] = options_to_dict(value)
        else:
            payload[spec.name] = _encode_leaf(value)
    return payload


def options_from_dict(cls: type, payload: dict, *, path: str = "") -> object:
    """Reconstruct an option dataclass from :func:`options_to_dict` output.

    Unknown keys raise :class:`ValueError` with the full nested path;
    missing keys take the dataclass defaults; the dataclass's own
    ``__post_init__`` validation runs as usual.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"{path or cls.__name__}: expected an object")
    known = {spec.name for spec in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        where = path or cls.__name__
        raise ValueError(f"{where}: unknown keys {unknown}")
    nested = _NESTED_OPTIONS.get(cls, {})
    kwargs = {}
    for key, value in payload.items():
        if key in nested and value is not None:
            kwargs[key] = options_from_dict(
                nested[key], value, path=f"{path}{key}." if path else f"{key}."
            )
        elif key == "initial_poles" and value is not None:
            pairs = np.asarray(value, dtype=float)
            if pairs.ndim != 2 or pairs.shape[-1] != 2:
                raise ValueError(
                    "initial_poles must be a list of [re, im] pairs"
                )
            kwargs[key] = pairs[:, 0] + 1j * pairs[:, 1]
        else:
            kwargs[key] = value
    return cls(**kwargs)


def options_token(options: object) -> str:
    """Canonical JSON string of an option dataclass (stage cache keys)."""
    return json.dumps(
        options_to_dict(options), sort_keys=True, separators=(",", ":")
    )


@dataclass(frozen=True)
class ReproConfig:
    """One configuration object for the whole pipeline.

    Parameters
    ----------
    flow:
        Macromodeling flow options (vector fitting, weighting scheme,
        passivity enforcement) -- the object the flow-cache fingerprint
        hashes, unchanged.
    ingest:
        Data-conditioning options applied by :class:`~repro.api.stages.
        IngestStage` when the pipeline starts from a Touchstone file.
    validation:
        Accuracy-report options of the validation stage.
    backend:
        Default array backend for the whole pipeline ("auto", "numpy",
        "cupy", "jax" or "array_api_strict").  Pushed down into the
        nested ``vf``/``enforcement`` options by :meth:`flow_options`
        wherever those are still at their own "auto" default, so a
        single top-level switch selects the backend end-to-end without
        overriding an explicit per-stage choice.
    """

    flow: FlowOptions = field(default_factory=FlowOptions)
    ingest: ConditioningOptions = field(default_factory=ConditioningOptions)
    validation: ValidationOptions = field(default_factory=ValidationOptions)
    backend: str = "auto"

    def __post_init__(self) -> None:
        validate_backend_name(self.backend)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def vf(self) -> VFOptions:
        return self.flow.vf

    @property
    def enforcement(self) -> EnforcementOptions:
        return self.flow.enforcement

    # ------------------------------------------------------------------
    # Deprecation shims (legacy FlowOptions call sites)
    # ------------------------------------------------------------------
    def flow_options(self) -> FlowOptions:
        """The legacy flow-options object (cache fingerprints hash this).

        A non-"auto" top-level ``backend`` is pushed down into the nested
        VF and enforcement options wherever those still read "auto".
        """
        if self.backend == "auto":
            return self.flow
        flow = self.flow
        if flow.vf.backend == "auto":
            flow = dataclasses.replace(
                flow, vf=dataclasses.replace(flow.vf, backend=self.backend)
            )
        if flow.enforcement.backend == "auto":
            flow = dataclasses.replace(
                flow,
                enforcement=dataclasses.replace(
                    flow.enforcement, backend=self.backend
                ),
            )
        return flow

    @classmethod
    def from_flow_options(
        cls,
        options: FlowOptions | None,
        *,
        ingest: ConditioningOptions | None = None,
        validation: ValidationOptions | None = None,
    ) -> "ReproConfig":
        """Upgrade a legacy :class:`FlowOptions` to a full config."""
        return cls(
            flow=options or FlowOptions(),
            ingest=ingest or ConditioningOptions(),
            validation=validation or ValidationOptions(),
        )

    @classmethod
    def coerce(
        cls, value: "ReproConfig | FlowOptions | None"
    ) -> "ReproConfig":
        """Accept a config, a legacy ``FlowOptions``, or ``None``."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, FlowOptions):
            return cls.from_flow_options(value)
        raise TypeError(
            "expected ReproConfig, FlowOptions or None, got "
            f"{type(value).__name__}"
        )

    def replace(self, **changes: object) -> "ReproConfig":
        """Functional update (frozen dataclass convenience)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # JSON persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "flow": options_to_dict(self.flow),
            "ingest": options_to_dict(self.ingest),
            "validation": options_to_dict(self.validation),
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ReproConfig":
        if not isinstance(payload, dict):
            raise ValueError("config must be a JSON object")
        if payload.get("format", _FORMAT) != _FORMAT:
            raise ValueError(f"not a {_FORMAT} document")
        if payload.get("version", _VERSION) != _VERSION:
            raise ValueError(
                f"unsupported config version {payload.get('version')!r}"
            )
        body = {k: v for k, v in payload.items() if k not in ("format", "version")}
        known = {"flow", "ingest", "validation", "backend"}
        unknown = sorted(set(body) - known)
        if unknown:
            raise ValueError(f"ReproConfig: unknown keys {unknown}")
        return cls(
            flow=options_from_dict(
                FlowOptions, body.get("flow", {}), path="flow."
            ),
            ingest=options_from_dict(
                ConditioningOptions, body.get("ingest", {}), path="ingest."
            ),
            validation=options_from_dict(
                ValidationOptions, body.get("validation", {}),
                path="validation.",
            ),
            backend=body.get("backend", "auto"),
        )

    def to_json(self, *, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ReproConfig":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ReproConfig":
        try:
            return cls.from_json(Path(path).read_text(encoding="utf-8"))
        except ValueError as exc:  # includes json.JSONDecodeError
            raise ValueError(f"{path}: {exc}") from exc
