"""Transient simulation of the loaded macromodel.

Exact zero-order-hold discretization (matrix exponential of the augmented
system) -- the closed-loop PDN dynamics span nanosecond plane resonances
and microsecond decap time constants, far too stiff for explicit
integrators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.linalg

from repro.pdn.termination import TerminationNetwork
from repro.statespace.poleresidue import PoleResidueModel
from repro.timedomain.lti import ClosedLoopSystem, close_loop


@dataclass(frozen=True)
class TransientResult:
    """Sampled transient response.

    ``time`` has shape (n_steps,), ``voltages`` (n_steps, P) holds the
    port voltages, and ``currents`` (n_steps, P) the injected source
    currents.
    """

    time: np.ndarray
    voltages: np.ndarray
    currents: np.ndarray

    def droop(self, port: int) -> np.ndarray:
        """Voltage trace at one port (the PDN droop of the paper's flow)."""
        return self.voltages[:, port]


def _excitation_table(
    excitation: np.ndarray | Callable[[float], np.ndarray],
    time: np.ndarray,
    n_ports: int,
) -> np.ndarray:
    if callable(excitation):
        table = np.stack([np.asarray(excitation(t), dtype=float) for t in time])
    else:
        table = np.asarray(excitation, dtype=float)
        if table.shape == (n_ports,):
            table = np.broadcast_to(table, (time.size, n_ports)).copy()
    if table.shape != (time.size, n_ports):
        raise ValueError(
            f"excitation table must have shape ({time.size}, {n_ports})"
        )
    return table


def simulate_transient(
    model: PoleResidueModel | ClosedLoopSystem,
    termination: TerminationNetwork | None = None,
    *,
    t_end: float,
    dt: float,
    excitation: np.ndarray | Callable[[float], np.ndarray] | None = None,
    z0: float = 50.0,
) -> TransientResult:
    """Simulate the loaded macromodel's voltage response.

    Parameters
    ----------
    model:
        A scattering :class:`PoleResidueModel` (terminated on the fly) or a
        prebuilt :class:`ClosedLoopSystem`.
    termination:
        Required when ``model`` is a pole-residue model.
    t_end, dt:
        Simulation horizon and fixed step (ZOH-exact discretization).
    excitation:
        Source currents: a (P,) constant vector (step excitation, default:
        the termination's nominal J as a step), an (n_steps, P) table, or a
        callable t -> (P,).
    """
    if isinstance(model, ClosedLoopSystem):
        loop = model
    else:
        if termination is None:
            raise ValueError("termination is required for a pole-residue model")
        loop = close_loop(model, termination, z0=z0)
    system = loop.system
    p = system.n_inputs
    if t_end <= 0.0 or dt <= 0.0 or dt > t_end:
        raise ValueError("need 0 < dt <= t_end")

    time = np.arange(0.0, t_end + 0.5 * dt, dt)
    if excitation is None:
        if termination is None:
            raise ValueError("excitation required when termination is absent")
        excitation = termination.source_vector()
    currents = _excitation_table(excitation, time, p)

    n = system.n_states
    # ZOH discretization via the augmented exponential.
    augmented = np.zeros((n + p, n + p))
    augmented[:n, :n] = system.a * dt
    augmented[:n, n:] = system.b * dt
    phi = scipy.linalg.expm(augmented)
    a_d = phi[:n, :n]
    b_d = phi[:n, n:]

    states = np.zeros(n)
    voltages = np.empty((time.size, p))
    for step in range(time.size):
        voltages[step] = system.c @ states + system.d @ currents[step]
        if step + 1 < time.size:
            states = a_d @ states + b_d @ currents[step]
    return TransientResult(time=time, voltages=voltages, currents=currents)
