"""Closed-loop interconnection of a scattering macromodel and terminations.

The macromodel is a wave system: x' = A x + B a, b = C x + D a with
incident/reflected waves a, b referenced to R0.  Port voltage and current
(into the macromodel) are v = sqrt(R0)(a+b), i = (a-b)/sqrt(R0).  Each
termination is a one-port admittance state space x_t' = A_t x_t + B_t v,
i_load = C_t x_t + D_t v, and the Norton sources inject j(t), so KCL gives
i = j - i_load.  Eliminating the algebraic loop yields an ordinary LTI
system driven by j(t) with the port voltages as outputs:

    E v = 2 sqrt(R0) C x - R0 (I+D) C_t x_t + R0 (I+D) j ,
    E = (I - D) + R0 (I + D) D_t .

A passive macromodel terminated by passive loads always yields a stable
closed loop; a non-passive one may not -- that is precisely the paper's
motivation for enforcement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pdn.termination import TerminationNetwork
from repro.statespace.poleresidue import PoleResidueModel
from repro.statespace.system import StateSpaceModel


@dataclass(frozen=True)
class ClosedLoopSystem:
    """Closed-loop LTI system x' = A x + B j, v = C x + D j.

    States stack the macromodel states followed by all termination states;
    inputs are the P Norton source currents; outputs are the P port
    voltages.
    """

    system: StateSpaceModel
    n_model_states: int
    n_termination_states: int

    def eigenvalues(self) -> np.ndarray:
        """Closed-loop poles; any Re > 0 means an unstable simulation."""
        return self.system.poles()

    def is_stable(self, tol: float = 0.0) -> bool:
        return self.system.is_stable(tol)

    def dc_gain(self) -> np.ndarray:
        """Static gain v = G j (the DC loaded impedance matrix)."""
        a, b = self.system.a, self.system.b
        c, d = self.system.c, self.system.d
        if a.shape[0] == 0:
            return d.copy()
        return d - c @ np.linalg.solve(a, b)


def _stack_terminations(
    termination: TerminationNetwork,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Block-diagonal (A_t, B_t, C_t, D_t) over all ports."""
    blocks = [term.state_space() for term in termination.terminations]
    n_total = sum(block[0].shape[0] for block in blocks)
    p = termination.n_ports
    a_t = np.zeros((n_total, n_total))
    b_t = np.zeros((n_total, p))
    c_t = np.zeros((p, n_total))
    d_t = np.zeros((p, p))
    offset = 0
    for port, (a, b, c, d) in enumerate(blocks):
        n = a.shape[0]
        a_t[offset : offset + n, offset : offset + n] = a
        b_t[offset : offset + n, port] = b[:, 0] if n else 0.0
        c_t[port, offset : offset + n] = c[0, :] if n else 0.0
        d_t[port, port] = d
        offset += n
    return a_t, b_t, c_t, d_t


def close_loop(
    model: PoleResidueModel | StateSpaceModel,
    termination: TerminationNetwork,
    *,
    z0: float = 50.0,
) -> ClosedLoopSystem:
    """Connect a scattering macromodel to its termination network."""
    if isinstance(model, PoleResidueModel):
        state_space = model.to_state_space()
    else:
        state_space = model
    p = state_space.n_outputs
    if state_space.n_inputs != p:
        raise ValueError("macromodel must be square (P inputs, P outputs)")
    if termination.n_ports != p:
        raise ValueError(
            f"termination has {termination.n_ports} ports, model has {p}"
        )
    a, b = state_space.a, state_space.b
    c, d = state_space.c, state_space.d
    a_t, b_t, c_t, d_t = _stack_terminations(termination)

    eye = np.eye(p)
    sqrt_r0 = np.sqrt(z0)
    e = (eye - d) + z0 * (eye + d) @ d_t
    try:
        e_inv = np.linalg.inv(e)
    except np.linalg.LinAlgError as exc:
        raise np.linalg.LinAlgError(
            "algebraic loop is singular; the macromodel/termination "
            "combination has no unique port solution"
        ) from exc

    # v = Vx x + Vt x_t + Vj j
    vx = e_inv @ (2.0 * sqrt_r0 * c)
    vt = -e_inv @ (z0 * (eye + d) @ c_t)
    vj = e_inv @ (z0 * (eye + d))
    # a = (v + R0 i)/(2 sqrt R0),  i = j - C_t x_t - D_t v
    gain = (eye - z0 * d_t) / (2.0 * sqrt_r0)
    ax = gain @ vx
    at = gain @ vt - (z0 / (2.0 * sqrt_r0)) * c_t
    aj = gain @ vj + (z0 / (2.0 * sqrt_r0)) * eye

    n_m = state_space.n_states
    n_t = a_t.shape[0]
    a_cl = np.zeros((n_m + n_t, n_m + n_t))
    a_cl[:n_m, :n_m] = a + b @ ax
    a_cl[:n_m, n_m:] = b @ at
    a_cl[n_m:, :n_m] = b_t @ vx
    a_cl[n_m:, n_m:] = a_t + b_t @ vt
    b_cl = np.vstack([b @ aj, b_t @ vj])
    c_cl = np.hstack([vx, vt])
    d_cl = vj
    return ClosedLoopSystem(
        system=StateSpaceModel(a_cl, b_cl, c_cl, d_cl),
        n_model_states=n_m,
        n_termination_states=n_t,
    )
