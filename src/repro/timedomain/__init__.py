"""Time-domain verification substrate.

The paper's motivation for passivity is transient power-integrity
simulation: a non-passive macromodel can destabilize the circuit solver
once embedded in its termination network.  This package assembles the
closed-loop LTI system of a scattering macromodel terminated by the
nominal Norton network and simulates the voltage-droop response to die
switching currents.
"""

from repro.timedomain.lti import ClosedLoopSystem, close_loop
from repro.timedomain.simulate import TransientResult, simulate_transient

__all__ = [
    "ClosedLoopSystem",
    "close_loop",
    "TransientResult",
    "simulate_transient",
]
