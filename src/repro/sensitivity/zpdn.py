"""Loaded PDN impedance computation (paper eq. 2).

Given scattering samples S_k (data or macromodel responses) and the
generalized Norton termination (Y_L, J) of eq. (1), the loaded impedance
matrix is

    Z_k = { R0^-1 (I - S_k)(I + S_k)^-1 + Y_L(j omega_k) }^-1

and the *target impedance* is the voltage at the observation port i for
the nominal current excitation J: Z_PDN,k = (Z_k J)_i.  With a single unit
excitation at port j this reduces to the paper's element (i, j).
"""

from __future__ import annotations

import numpy as np

from repro.pdn.termination import TerminationNetwork
from repro.sparams.conversions import s_to_y
from repro.statespace.poleresidue import PoleResidueModel
from repro.util.validation import check_square_stack


def loaded_impedance_matrix(
    samples: np.ndarray,
    omega: np.ndarray,
    termination: TerminationNetwork,
    *,
    z0: float = 50.0,
) -> np.ndarray:
    """Loaded impedance stack Z_k of eq. (2); shape (K, P, P)."""
    samples = check_square_stack(samples, "samples")
    omega = np.asarray(omega, dtype=float)
    if samples.shape[0] != omega.size:
        raise ValueError("samples and omega must agree on K")
    if samples.shape[1] != termination.n_ports:
        raise ValueError(
            f"termination has {termination.n_ports} ports, data has "
            f"{samples.shape[1]}"
        )
    y_block = s_to_y(samples, z0)
    y_load = termination.admittance_matrices(omega)
    return np.linalg.inv(y_block + y_load)


def target_impedance(
    samples: np.ndarray,
    omega: np.ndarray,
    termination: TerminationNetwork,
    observe_port: int,
    *,
    z0: float = 50.0,
) -> np.ndarray:
    """Target impedance trace Z_PDN(j omega_k) = (Z_k J)_i; shape (K,).

    This is the PDN voltage at ``observe_port`` per the nominal switching
    excitation J (normalized: with ||J||_1 = 1 A the value is in ohms).
    """
    z = loaded_impedance_matrix(samples, omega, termination, z0=z0)
    j = termination.source_vector()
    if not np.any(j):
        raise ValueError(
            "termination network has no current excitation; set excitations"
        )
    return z[:, observe_port, :] @ j


def target_impedance_of_model(
    model: PoleResidueModel,
    omega: np.ndarray,
    termination: TerminationNetwork,
    observe_port: int,
    *,
    z0: float = 50.0,
) -> np.ndarray:
    """Target impedance computed from a macromodel's responses."""
    omega = np.asarray(omega, dtype=float)
    samples = model.frequency_response(omega)
    return target_impedance(
        samples, omega, termination, observe_port, z0=z0
    )
