"""First-order sensitivity of the target impedance to scattering errors
(paper eq. 5).

The paper defines Xi_k through a stochastic perturbation experiment:
perturb all P^2 entries of the scattering sample S_k with i.i.d. zero-mean
Gaussian noise of standard deviation sigma and measure the expected
deviation of the target impedance,

    E{ |Z_PDN(j omega_k) - Zhat_PDN,k| }  ~  Xi_k * sigma .

Here we compute Xi_k in closed form.  Writing the loaded impedance as
Z = (Y_S + Y_L)^-1 with Y_S = R0^-1 (I - S)(I + S)^-1
= R0^-1 (2 (I + S)^-1 - I), the differentials are

    dY_S = -2 R0^-1 (I + S)^-1 dS (I + S)^-1 ,
    dz   = -e_i^T Z dY_S Z J = (2/R0) * L dS M ,
    L = e_i^T Z (I + S)^-1    (row),    M = (I + S)^-1 Z J    (column),

so the gradient of the scalar target z with respect to entry S_ab is
(2/R0) L_a M_b and the root-sum-square sensitivity is the product

    Xi_k = (2/R0) ||L||_2 ||M||_2 .

This equals the paper's expected-deviation definition up to an O(1)
constant that depends on the perturbation ensemble (verified against the
Monte-Carlo estimator below); only the frequency *shape* of Xi matters for
the weighting, so the constant is irrelevant.

The near-singularity of (I + S) at low frequency -- reflective PDN data
whose ports are tied by milliohm plane resistances -- is what makes Xi
orders of magnitude larger at low frequency (paper Fig. 3).
"""

from __future__ import annotations

import numpy as np

from repro.pdn.termination import TerminationNetwork
from repro.util.validation import check_square_stack


def _l_and_m(
    sample: np.ndarray,
    y_load: np.ndarray,
    source: np.ndarray,
    observe_port: int,
    z0: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute the row L and column M factors of the gradient at one sample."""
    p = sample.shape[0]
    eye = np.eye(p)
    t = np.linalg.inv(eye + sample)  # (I + S)^-1
    y_s = (2.0 * t - eye) / z0
    z = np.linalg.inv(y_s + y_load)
    l_row = z[observe_port, :] @ t
    m_col = t @ (z @ source)
    return l_row, m_col


def sensitivity_analytic(
    samples: np.ndarray,
    omega: np.ndarray,
    termination: TerminationNetwork,
    observe_port: int,
    *,
    z0: float = 50.0,
) -> np.ndarray:
    """Closed-form first-order sensitivity Xi_k; shape (K,)."""
    samples = check_square_stack(samples, "samples")
    omega = np.asarray(omega, dtype=float)
    y_load = termination.admittance_matrices(omega)
    source = termination.source_vector()
    if not np.any(source):
        raise ValueError("termination network has no current excitation")
    xi = np.empty(omega.size)
    for k in range(omega.size):
        l_row, m_col = _l_and_m(samples[k], y_load[k], source, observe_port, z0)
        xi[k] = (
            (2.0 / z0)
            * float(np.linalg.norm(l_row))
            * float(np.linalg.norm(m_col))
        )
    return xi


def sensitivity_matrix(
    samples: np.ndarray,
    omega: np.ndarray,
    termination: TerminationNetwork,
    observe_port: int,
    *,
    z0: float = 50.0,
) -> np.ndarray:
    """Entry-wise gradient magnitudes |dz/dS_ab|; shape (K, P, P).

    Extension beyond the paper: per-entry sensitivities enable per-element
    weighting in both fitting and enforcement (the paper uses the scalar
    collapse Xi_k = ||.||_F of this matrix).
    """
    samples = check_square_stack(samples, "samples")
    omega = np.asarray(omega, dtype=float)
    y_load = termination.admittance_matrices(omega)
    source = termination.source_vector()
    if not np.any(source):
        raise ValueError("termination network has no current excitation")
    out = np.empty((omega.size,) + samples.shape[1:])
    for k in range(omega.size):
        l_row, m_col = _l_and_m(samples[k], y_load[k], source, observe_port, z0)
        out[k] = (2.0 / z0) * np.abs(np.outer(l_row, m_col))
    return out


def sensitivity_monte_carlo(
    samples: np.ndarray,
    omega: np.ndarray,
    termination: TerminationNetwork,
    observe_port: int,
    *,
    z0: float = 50.0,
    noise_std: float = 1e-7,
    n_draws: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Monte-Carlo estimate of E{|delta Z_PDN|} / sigma (paper eq. 5).

    Perturbs every complex entry of each scattering sample with i.i.d.
    circular Gaussian noise of standard deviation ``noise_std`` and
    averages the resulting target-impedance deviation.  Used to validate
    :func:`sensitivity_analytic`; the two agree up to the ensemble constant
    sqrt(pi)/2 of a circular Gaussian's mean modulus.
    """
    from repro.sensitivity.zpdn import target_impedance

    samples = check_square_stack(samples, "samples")
    omega = np.asarray(omega, dtype=float)
    rng = rng or np.random.default_rng()
    reference = target_impedance(
        samples, omega, termination, observe_port, z0=z0
    )
    k, p, _ = samples.shape
    accum = np.zeros(k)
    for _ in range(n_draws):
        noise = rng.normal(size=(k, p, p)) + 1j * rng.normal(size=(k, p, p))
        perturbed = samples + (noise_std / np.sqrt(2.0)) * noise
        z = target_impedance(perturbed, omega, termination, observe_port, z0=z0)
        accum += np.abs(z - reference)
    return accum / (n_draws * noise_std)
