"""Rational sensitivity macromodel Xi~(s) (paper eqs. 15-17, Fig. 3).

The enforcement cost needs the sensitivity as a *dynamical system*, not as
frequency samples: a stable SISO model Xi~(s) with
|Xi~(j omega_k)|^2 ~ Xi_k^2, identified with Magnitude Vector Fitting and
realized in minimal state-space form.  The paper uses order n_w = 8 and
deliberately ignores narrow spikes where the underlying responses are
already accurate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.statespace.system import StateSpaceModel
from repro.util.validation import check_frequency_grid
from repro.vectfit.magnitude import MagnitudeFitResult, fit_magnitude


@dataclass(frozen=True)
class SensitivityWeight:
    """Sensitivity samples plus their fitted rational weight model.

    Attributes
    ----------
    omega:
        Angular frequency grid of the samples.
    xi:
        Sensitivity samples Xi_k (normalized to unit maximum when
        ``build_weight_model(normalize=True)``, the default).
    scale:
        Normalization factor: raw Xi = scale * xi.
    model:
        Stable minimum-phase SISO state-space model with
        |model(j omega_k)| ~ xi_k.
    fit:
        Full magnitude-fitting diagnostics.
    """

    omega: np.ndarray
    xi: np.ndarray
    scale: float
    model: StateSpaceModel
    fit: MagnitudeFitResult

    def magnitude_response(self, omega: np.ndarray) -> np.ndarray:
        """|Xi~(j omega)| of the fitted weight model."""
        return np.abs(self.model.frequency_response(np.asarray(omega))[:, 0, 0])


def build_weight_model(
    omega: np.ndarray,
    xi: np.ndarray,
    order: int = 8,
    *,
    normalize: bool = True,
    weighting: str = "relative",
    band: tuple[float, float] | None = None,
) -> SensitivityWeight:
    """Fit a rational weight model to sensitivity samples.

    Parameters
    ----------
    omega:
        Angular frequencies of the samples (rad/s); DC allowed.
    xi:
        Non-negative sensitivity samples (from
        :func:`repro.sensitivity.firstorder.sensitivity_analytic`).
    order:
        Order of the weighting subsystem (paper: n_w = 8).
    normalize:
        Scale xi to unit maximum before fitting.  The enforcement weighting
        is scale-invariant, and normalized data keeps the cascade Gramians
        well conditioned.
    weighting:
        Magnitude-fit weighting: "relative" (dB-balanced, default) or
        "unit".
    band:
        Optional (omega_low, omega_high) restriction of the samples used
        for fitting -- the paper's device for ignoring the 0.5-1 GHz spike
        ("we did not care of matching the spike").  The returned model is
        still evaluated/validated on the full grid.
    """
    omega = check_frequency_grid(np.asarray(omega, dtype=float))
    xi = np.asarray(xi, dtype=float)
    if xi.shape != omega.shape:
        raise ValueError("xi and omega must have the same shape")
    if np.any(xi < 0.0):
        raise ValueError("sensitivity samples must be non-negative")
    scale = float(np.max(xi))
    if scale <= 0.0:
        raise ValueError("sensitivity samples are all zero")
    normalized = xi / scale if normalize else xi.copy()
    used_scale = scale if normalize else 1.0

    if band is not None:
        lo, hi = band
        mask = (omega >= lo) & (omega <= hi)
        if mask.sum() < 4 * order:
            raise ValueError("band restriction leaves too few samples")
        fit_omega, fit_xi = omega[mask], normalized[mask]
    else:
        fit_omega, fit_xi = omega, normalized

    fit = fit_magnitude(fit_omega, fit_xi, n_poles=order, weighting=weighting)
    return SensitivityWeight(
        omega=omega,
        xi=normalized,
        scale=used_scale,
        model=fit.model,
        fit=fit,
    )
