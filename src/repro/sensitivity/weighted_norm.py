"""Sensitivity-weighted perturbation norm (paper eqs. 14, 18-21).

The weighted norm ||delta S||_Xi^2 = ||Xi~ delta S||_2^2 is characterized
algebraically: for each scattering entry, form the cascade realization of
S_ij(s) Xi~(s) (eq. 18), compute its controllability Gramian, and keep the
(1,1) block P^Xi,11 (eq. 19); then

    ||delta S_ij||_Xi^2 = delta_c_ij P^Xi,11 delta_c_ij^T        (eq. 20)
    ||delta S||_Xi^2    = sum_ij ||delta S_ij||_Xi^2             (eq. 21)

Because the macromodel uses *common poles*, the cascade's (A, B) pair --
and hence P^Xi,11 -- is identical for every entry, so the whole weighted
cost needs exactly one Lyapunov solve of size (N + n_w): the "no
additional cost" property the paper emphasizes when comparing against the
sampled-norm alternative.

Per-element weight models (one Xi~_ij per entry) are supported as an
extension: then each entry gets its own cascade Gramian block.
"""

from __future__ import annotations

import numpy as np

from repro.passivity.cost import BlockDiagonalCost
from repro.statespace.gramians import controllability_gramian
from repro.statespace.poleresidue import PoleResidueModel
from repro.statespace.system import StateSpaceModel


def weighted_gramian_block(
    element_a: np.ndarray,
    element_b: np.ndarray,
    weight: StateSpaceModel,
) -> np.ndarray:
    """P^Xi,11 of the cascade [S_ij * Xi~] for shared element dynamics.

    Builds the (A, B) pair of paper eq. (18),

        A = [[A_e, b_e c~], [0, A~]],   B = [[b_e d~], [b~]],

    solves the Lyapunov equation for the full cascade Gramian (eq. 19) and
    returns the N x N (1,1) block used in the cost (eq. 20).  Only (A, B)
    matter: the Gramian is independent of the output matrices, which is
    why one block serves every scattering entry.
    """
    if weight.n_inputs != 1 or weight.n_outputs != 1:
        raise ValueError("weight model must be SISO")
    element_a = np.atleast_2d(np.asarray(element_a, dtype=float))
    element_b = np.asarray(element_b, dtype=float).reshape(-1)
    n = element_a.shape[0]
    if element_b.shape != (n,):
        raise ValueError("element_b must match element_a dimension")
    nw = weight.n_states
    a = np.zeros((n + nw, n + nw))
    a[:n, :n] = element_a
    a[:n, n:] = np.outer(element_b, weight.c[0])
    a[n:, n:] = weight.a
    b = np.zeros((n + nw, 1))
    b[:n, 0] = element_b * float(weight.d[0, 0])
    b[n:, :] = weight.b
    gramian = controllability_gramian(a, b)
    return gramian[:n, :n]


def sensitivity_weighted_cost(
    model: PoleResidueModel,
    weight: StateSpaceModel,
    *,
    ridge: float = 1e-10,
) -> BlockDiagonalCost:
    """Weighted enforcement cost ||delta S||_Xi^2 (paper eqs. 18-21).

    Parameters
    ----------
    model:
        The macromodel to be perturbed (supplies the shared element
        dynamics A_e, b_e).
    weight:
        Stable SISO sensitivity model Xi~(s) from
        :func:`repro.sensitivity.weightmodel.build_weight_model`
        (``.model`` attribute).
    ridge:
        Diagonal regularization for the Cholesky factorization.
    """
    a_e, b_e = model.element_dynamics()
    block = weighted_gramian_block(a_e, b_e, weight)
    return BlockDiagonalCost(block, model.n_ports, ridge=ridge)


def per_element_sensitivity_cost(
    model: PoleResidueModel,
    omega: np.ndarray,
    gradient_magnitudes: np.ndarray,
    *,
    order: int = 4,
    ridge: float = 1e-10,
    floor_ratio: float = 0.05,
) -> BlockDiagonalCost:
    """Extension beyond the paper: one weight model per scattering entry.

    The paper collapses the (K, P, P) gradient-magnitude array
    |dZ_PDN/dS_ab| (from
    :func:`repro.sensitivity.firstorder.sensitivity_matrix`) into the
    scalar Xi_k; here each entry keeps its own frequency profile, fitted
    with a low-order Magnitude VF model, and the cascade Gramian of
    eqs. (18)-(19) is built per entry.  Entries with negligible influence
    everywhere are floored at ``floor_ratio`` of the global maximum: much
    lower floors make those directions nearly free, and the QP then
    requests steps far outside the linearization's validity (the
    enforcement loop stops converging).
    """
    from repro.sensitivity.weightmodel import build_weight_model

    gradient_magnitudes = np.asarray(gradient_magnitudes, dtype=float)
    p = model.n_ports
    if gradient_magnitudes.shape != (omega.size, p, p):
        raise ValueError(
            f"gradient_magnitudes must have shape ({omega.size}, {p}, {p})"
        )
    global_max = float(gradient_magnitudes.max())
    if global_max <= 0.0:
        raise ValueError("gradient magnitudes are all zero")
    a_e, b_e = model.element_dynamics()
    n = model.element_state_dimension()
    blocks = np.empty((p, p, n, n))
    for a in range(p):
        for b in range(p):
            trace = np.maximum(
                gradient_magnitudes[:, a, b] / global_max, floor_ratio
            )
            weight = build_weight_model(omega, trace, order=order, normalize=False)
            blocks[a, b] = weighted_gramian_block(a_e, b_e, weight.model)
    return BlockDiagonalCost(blocks, p, ridge=ridge)


def per_element_weighted_cost(
    model: PoleResidueModel,
    weights: np.ndarray,
    *,
    ridge: float = 1e-10,
) -> BlockDiagonalCost:
    """Extension: a different weight model Xi~_ij per scattering entry.

    ``weights`` is a (P, P) object array of SISO :class:`StateSpaceModel`
    instances.  Each entry gets its own cascade Gramian block; cost grows
    to P^2 Lyapunov solves, still negligible next to the QP.
    """
    p = model.n_ports
    weights = np.asarray(weights, dtype=object)
    if weights.shape != (p, p):
        raise ValueError(f"weights must be a ({p},{p}) object array")
    a_e, b_e = model.element_dynamics()
    n = model.element_state_dimension()
    blocks = np.empty((p, p, n, n))
    for a in range(p):
        for b in range(p):
            blocks[a, b] = weighted_gramian_block(a_e, b_e, weights[a, b])
    return BlockDiagonalCost(blocks, p, ridge=ridge)
