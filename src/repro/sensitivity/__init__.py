"""The paper's core contribution: target-impedance sensitivity analysis and
sensitivity-based weighting for fitting and passivity enforcement."""

from repro.sensitivity.zpdn import (
    loaded_impedance_matrix,
    target_impedance,
    target_impedance_of_model,
)
from repro.sensitivity.firstorder import (
    sensitivity_analytic,
    sensitivity_matrix,
    sensitivity_monte_carlo,
)
from repro.sensitivity.weightmodel import SensitivityWeight, build_weight_model
from repro.sensitivity.weighted_norm import (
    per_element_sensitivity_cost,
    per_element_weighted_cost,
    sensitivity_weighted_cost,
    weighted_gramian_block,
)

__all__ = [
    "loaded_impedance_matrix",
    "target_impedance",
    "target_impedance_of_model",
    "sensitivity_analytic",
    "sensitivity_matrix",
    "sensitivity_monte_carlo",
    "SensitivityWeight",
    "build_weight_model",
    "per_element_sensitivity_cost",
    "per_element_weighted_cost",
    "sensitivity_weighted_cost",
    "weighted_gramian_block",
]
