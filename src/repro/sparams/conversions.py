"""Conversions between scattering, impedance and admittance representations.

All functions operate on (K, P, P) stacks (vectorized over the frequency
axis) and assume a real scalar reference resistance ``z0`` identical at all
ports, matching the paper's setup (R0 = 50 ohm).

The key identity used throughout the paper (eq. 2) is the admittance seen
from the ports of a scattering block:

    Y = R0^-1 (I - S)(I + S)^-1

and its inverses.  ``(I + S)`` can be close to singular for reflective PDN
data at low frequency -- this near-singularity is precisely the sensitivity
mechanism the paper studies -- so these routines solve linear systems rather
than forming explicit inverses, and raise a descriptive error when a sample
is numerically singular.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_square_stack


def _solve_stack(a: np.ndarray, b: np.ndarray, context: str) -> np.ndarray:
    """Solve a[k] @ x[k] = b[k] for every k with a helpful failure message."""
    message = (
        f"singular matrix while converting network parameters ({context}); "
        "the data may contain an ideal open/short at some frequency"
    )
    try:
        solution = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise np.linalg.LinAlgError(message) from exc
    # LAPACK does not always flag exact singularity; catch inf/nan output.
    if not np.all(np.isfinite(solution)):
        raise np.linalg.LinAlgError(message)
    return solution


def _identity_like(samples: np.ndarray) -> np.ndarray:
    ports = samples.shape[-1]
    return np.broadcast_to(np.eye(ports), samples.shape)


def s_to_y(s: np.ndarray, z0: float = 50.0) -> np.ndarray:
    """Scattering to admittance: ``Y = R0^-1 (I - S)(I + S)^-1``.

    Implemented as the equivalent right-division ``R0^-1 (I+S)^-1 (I-S)``
    using the fact that (I-S) and (I+S)^-1 commute.
    """
    s = check_square_stack(s, "s")
    eye = _identity_like(s)
    # (I+S)^T x^T = (I-S)^T  =>  x = (I-S)(I+S)^-1
    x = _solve_stack(
        np.transpose(eye + s, (0, 2, 1)), np.transpose(eye - s, (0, 2, 1)), "s_to_y"
    )
    return np.transpose(x, (0, 2, 1)) / z0


def s_to_z(s: np.ndarray, z0: float = 50.0) -> np.ndarray:
    """Scattering to impedance: ``Z = R0 (I + S)(I - S)^-1``."""
    s = check_square_stack(s, "s")
    eye = _identity_like(s)
    x = _solve_stack(
        np.transpose(eye - s, (0, 2, 1)), np.transpose(eye + s, (0, 2, 1)), "s_to_z"
    )
    return z0 * np.transpose(x, (0, 2, 1))


def y_to_s(y: np.ndarray, z0: float = 50.0) -> np.ndarray:
    """Admittance to scattering: ``S = (I - R0 Y)(I + R0 Y)^-1``."""
    y = check_square_stack(y, "y")
    eye = _identity_like(y)
    ry = z0 * y
    x = _solve_stack(
        np.transpose(eye + ry, (0, 2, 1)), np.transpose(eye - ry, (0, 2, 1)), "y_to_s"
    )
    return np.transpose(x, (0, 2, 1))


def z_to_s(z: np.ndarray, z0: float = 50.0) -> np.ndarray:
    """Impedance to scattering: ``S = (Z - R0 I)(Z + R0 I)^-1``."""
    z = check_square_stack(z, "z")
    eye = _identity_like(z)
    x = _solve_stack(
        np.transpose(z + z0 * eye, (0, 2, 1)),
        np.transpose(z - z0 * eye, (0, 2, 1)),
        "z_to_s",
    )
    return np.transpose(x, (0, 2, 1))


def y_to_z(y: np.ndarray) -> np.ndarray:
    """Admittance to impedance (matrix inverse per frequency)."""
    y = check_square_stack(y, "y")
    return _solve_stack(y, _identity_like(y).copy(), "y_to_z")


def z_to_y(z: np.ndarray) -> np.ndarray:
    """Impedance to admittance (matrix inverse per frequency)."""
    z = check_square_stack(z, "z")
    return _solve_stack(z, _identity_like(z).copy(), "z_to_y")


def renormalize_s(s: np.ndarray, z0_old: float, z0_new: float) -> np.ndarray:
    """Renormalize scattering data from reference ``z0_old`` to ``z0_new``.

    Uses the real-reference renormalization
    ``S' = (I - r I - (I + r I) S)^-1 ... `` specialised to equal resistive
    references at all ports, implemented via the Z-domain round trip which
    is numerically adequate for the smooth data handled here.
    """
    if z0_old <= 0.0 or z0_new <= 0.0:
        raise ValueError("reference resistances must be positive")
    if z0_old == z0_new:
        return check_square_stack(s, "s").copy()
    return z_to_s(s_to_z(s, z0_old), z0_new)
