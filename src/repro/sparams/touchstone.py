"""Touchstone (version 1) file reader and writer.

Supports `.sNp` files with RI / MA / DB formats, Hz/kHz/MHz/GHz units, the
option line, comment lines, and the 4-column-pair wrapping used for
multiport data.  Only S, Y, Z parameter types are handled, with a single
real reference resistance, which covers field-solver PDN exports (the
paper's input data format).

The 2-port convention quirk of Touchstone v1 (data stored as S11 S21 S12
S22, i.e. column-major) is honoured on both read and write.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from repro.sparams.network import NetworkData

_UNIT_SCALE = {"hz": 1.0, "khz": 1e3, "mhz": 1e6, "ghz": 1e9}


def _parse_option_line(line: str) -> tuple[float, str, str, float]:
    """Parse a ``# <unit> <type> <format> R <z0>`` option line."""
    tokens = line[1:].split()
    unit_scale = 1e9  # Touchstone default unit is GHz
    kind = "s"
    fmt = "ma"  # Touchstone default format
    z0 = 50.0
    i = 0
    while i < len(tokens):
        token = tokens[i].lower()
        if token in _UNIT_SCALE:
            unit_scale = _UNIT_SCALE[token]
        elif token in ("s", "y", "z"):
            kind = token
        elif token in ("g", "h"):
            raise ValueError(f"unsupported Touchstone parameter type {token!r}")
        elif token in ("ri", "ma", "db"):
            fmt = token
        elif token == "r":
            if i + 1 >= len(tokens):
                raise ValueError("option line 'R' without resistance value")
            z0 = float(tokens[i + 1])
            i += 1
        else:
            raise ValueError(f"unrecognized token {token!r} in option line")
        i += 1
    return unit_scale, kind, fmt, z0


def _pairs_to_complex(pairs: np.ndarray, fmt: str) -> np.ndarray:
    """Convert (N, 2) value pairs to complex numbers according to ``fmt``."""
    a, b = pairs[:, 0], pairs[:, 1]
    if fmt == "ri":
        return a + 1j * b
    if fmt == "ma":
        return a * np.exp(1j * np.deg2rad(b))
    if fmt == "db":
        return 10.0 ** (a / 20.0) * np.exp(1j * np.deg2rad(b))
    raise ValueError(f"unknown format {fmt!r}")


def _complex_to_pairs(values: np.ndarray, fmt: str) -> np.ndarray:
    """Convert complex array to an (N, 2) pair array according to ``fmt``."""
    if fmt == "ri":
        return np.column_stack([values.real, values.imag])
    if fmt == "ma":
        return np.column_stack([np.abs(values), np.rad2deg(np.angle(values))])
    if fmt == "db":
        magnitude = np.abs(values)
        with np.errstate(divide="ignore"):
            db = 20.0 * np.log10(magnitude)
        db = np.where(magnitude > 0.0, db, -400.0)
        return np.column_stack([db, np.rad2deg(np.angle(values))])
    raise ValueError(f"unknown format {fmt!r}")


def _ports_from_suffix(path: Path) -> int | None:
    match = re.fullmatch(r"\.s(\d+)p", path.suffix, flags=re.IGNORECASE)
    if match:
        return int(match.group(1))
    return None


def read_touchstone(path: str | Path) -> NetworkData:
    """Read a Touchstone v1 file into a :class:`NetworkData`.

    The port count is taken from the ``.sNp`` suffix when present, otherwise
    inferred from the number of values per frequency block.
    """
    path = Path(path)
    unit_scale, kind, fmt, z0 = 1e9, "s", "ma", 50.0
    numbers: list[float] = []
    saw_option = False
    with path.open("r", encoding="utf-8", errors="replace") as handle:
        for raw_line in handle:
            line = raw_line.split("!", 1)[0].strip()
            if not line:
                continue
            if line.startswith("#"):
                if not saw_option:  # per spec, only the first option line counts
                    unit_scale, kind, fmt, z0 = _parse_option_line(line)
                    saw_option = True
                continue
            if line.startswith("["):  # Touchstone v2 keyword; not supported
                raise ValueError("Touchstone v2 keywords are not supported")
            numbers.extend(float(token) for token in line.split())

    if not numbers:
        raise ValueError(f"no data found in {path}")

    ports = _ports_from_suffix(path)
    values = np.asarray(numbers)
    if ports is None:
        # Each frequency block is 1 + 2*P*P numbers; find the smallest P
        # that divides the stream evenly.
        for candidate in range(1, 65):
            if values.size % (1 + 2 * candidate * candidate) == 0:
                ports = candidate
                break
        else:
            raise ValueError("could not infer port count from data layout")

    block = 1 + 2 * ports * ports
    if values.size % block != 0:
        raise ValueError(
            f"file size inconsistent with {ports}-port data "
            f"({values.size} values, block {block})"
        )
    values = values.reshape(-1, block)
    frequencies = values[:, 0] * unit_scale
    pairs = values[:, 1:].reshape(-1, 2)
    flat = _pairs_to_complex(pairs, fmt).reshape(-1, ports * ports)

    if ports == 2:
        # v1 two-port files store S11 S21 S12 S22.
        samples = flat.reshape(-1, 2, 2).transpose(0, 2, 1)
    else:
        samples = flat.reshape(-1, ports, ports)

    order = np.argsort(frequencies)
    return NetworkData(
        frequencies=frequencies[order], samples=samples[order], kind=kind, z0=z0
    )


def write_touchstone(
    data: NetworkData,
    path: str | Path,
    *,
    fmt: str = "ri",
    unit: str = "hz",
) -> None:
    """Write a :class:`NetworkData` to a Touchstone v1 file."""
    fmt = fmt.lower()
    unit = unit.lower()
    if fmt not in ("ri", "ma", "db"):
        raise ValueError(f"unsupported format {fmt!r}")
    if unit not in _UNIT_SCALE:
        raise ValueError(f"unsupported unit {unit!r}")
    path = Path(path)
    expected_suffix = f".s{data.n_ports}p"
    if path.suffix.lower() not in (expected_suffix, ".snp", ".ts"):
        path = path.with_suffix(expected_suffix)

    scale = _UNIT_SCALE[unit]
    lines = [
        f"! {data.n_ports}-port {data.kind.upper()}-parameter data, "
        f"{data.n_frequencies} points",
        f"# {unit.upper()} {data.kind.upper()} {fmt.upper()} R {data.z0:g}",
    ]
    for k in range(data.n_frequencies):
        matrix = data.samples[k]
        if data.n_ports == 2:
            flat = matrix.T.reshape(-1)  # v1 two-port column-major quirk
        else:
            flat = matrix.reshape(-1)
        pairs = _complex_to_pairs(flat, fmt)
        row_values: list[str] = [f"{data.frequencies[k] / scale:.12g}"]
        for real_part, imag_part in pairs:
            row_values.append(f"{real_part:.12g}")
            row_values.append(f"{imag_part:.12g}")
        # Wrap long rows at 8 values per line for readability.
        head = " ".join(row_values[:9])
        lines.append(head)
        for start in range(9, len(row_values), 8):
            lines.append("  " + " ".join(row_values[start : start + 8]))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
