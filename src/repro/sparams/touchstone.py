"""Touchstone (version 1) file reader and writer.

Supports `.sNp` files with RI / MA / DB formats, Hz/kHz/MHz/GHz units, the
option line, comment lines, and the 4-column-pair wrapping used for
multiport data.  Only S, Y, Z parameter types are handled, with a single
real reference resistance, which covers field-solver PDN exports (the
paper's input data format).

The 2-port convention quirk of Touchstone v1 (data stored as S11 S21 S12
S22, i.e. column-major) is honoured on both read and write.

Robustness notes for field-solver exports:

* **Port-count inference** -- when the file name carries no ``.sNp``
  suffix, the port count is inferred by *validating* candidate reshapes
  (the frequency column of the correct block size is monotone; wrong
  block sizes interleave data values into it), not by picking the
  smallest divisor (which silently misreads every 2-port file as 1-port,
  since 9-value blocks always divide by 3).  A suffix always wins, with a
  warning when the data layout disagrees with it.
* **Duplicate grid points** -- stitched multi-band exports commonly
  repeat the seam frequency; coincident points (relative tolerance) are
  dropped keep-first before the strict-grid validation would reject them.
* **Metadata round-trip** -- port names are written as ``! Port[n] =``
  comments and read back into ``NetworkData.port_names``;
  :func:`read_touchstone_with_info` additionally returns the source
  format/unit so a file can be re-written in its original convention.
"""

from __future__ import annotations

import re
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.sparams.network import NetworkData

_UNIT_SCALE = {"hz": 1.0, "khz": 1e3, "mhz": 1e6, "ghz": 1e9}

#: Two grid points closer than this (relative to the larger one) are
#: considered the same frequency; the first occurrence wins.
_DUPLICATE_RTOL = 1e-9

#: Anchored to the start of the comment: only dedicated '! Port[n] = name'
#: lines (the convention the writer emits) count, not free-text commentary
#: that happens to mention Port[n] somewhere.
_PORT_NAME_RE = re.compile(r"\s*Port\[(\d+)\]\s*=\s*(.+?)\s*$", re.IGNORECASE)


@dataclass(frozen=True)
class TouchstoneInfo:
    """Source-file metadata that does not fit in :class:`NetworkData`.

    Returned by :func:`read_touchstone_with_info` so callers can re-write
    a file in its original convention (format, unit) and audit how the
    reader interpreted it (port-count source, grid repairs).
    """

    fmt: str
    unit: str
    kind: str
    z0: float
    n_ports: int
    ports_source: str  # "suffix" or "inferred"
    n_duplicates_dropped: int = 0
    grid_was_sorted: bool = True


def _parse_option_line(line: str) -> tuple[float, str, str, str, float]:
    """Parse a ``# <unit> <type> <format> R <z0>`` option line."""
    tokens = line[1:].split()
    unit = "ghz"  # Touchstone default unit is GHz
    kind = "s"
    fmt = "ma"  # Touchstone default format
    z0 = 50.0
    i = 0
    while i < len(tokens):
        token = tokens[i].lower()
        if token in _UNIT_SCALE:
            unit = token
        elif token in ("s", "y", "z"):
            kind = token
        elif token in ("g", "h"):
            raise ValueError(f"unsupported Touchstone parameter type {token!r}")
        elif token in ("ri", "ma", "db"):
            fmt = token
        elif token == "r":
            if i + 1 >= len(tokens):
                raise ValueError("option line 'R' without resistance value")
            z0 = float(tokens[i + 1])
            i += 1
        else:
            raise ValueError(f"unrecognized token {token!r} in option line")
        i += 1
    return _UNIT_SCALE[unit], unit, kind, fmt, z0


def _pairs_to_complex(pairs: np.ndarray, fmt: str) -> np.ndarray:
    """Convert (N, 2) value pairs to complex numbers according to ``fmt``."""
    a, b = pairs[:, 0], pairs[:, 1]
    if fmt == "ri":
        return a + 1j * b
    if fmt == "ma":
        return a * np.exp(1j * np.deg2rad(b))
    if fmt == "db":
        return 10.0 ** (a / 20.0) * np.exp(1j * np.deg2rad(b))
    raise ValueError(f"unknown format {fmt!r}")


def _complex_to_pairs(values: np.ndarray, fmt: str) -> np.ndarray:
    """Convert complex array to an (N, 2) pair array according to ``fmt``."""
    if fmt == "ri":
        return np.column_stack([values.real, values.imag])
    if fmt == "ma":
        return np.column_stack([np.abs(values), np.rad2deg(np.angle(values))])
    if fmt == "db":
        magnitude = np.abs(values)
        with np.errstate(divide="ignore"):
            db = 20.0 * np.log10(magnitude)
        db = np.where(magnitude > 0.0, db, -400.0)
        return np.column_stack([db, np.rad2deg(np.angle(values))])
    raise ValueError(f"unknown format {fmt!r}")


def _ports_from_suffix(path: Path) -> int | None:
    match = re.fullmatch(r"\.s(\d+)p", path.suffix, flags=re.IGNORECASE)
    if match:
        return int(match.group(1))
    return None


def _frequency_column_plausible(values: np.ndarray, ports: int) -> bool:
    """True when the candidate reshape's column 0 could hold frequencies.

    Non-negative and finite: a wrong block size interleaves S-parameter
    values, which are negative about half the time.
    """
    block = 1 + 2 * ports * ports
    column = values.reshape(-1, block)[:, 0]
    return bool(np.all(column >= 0.0) and np.all(np.isfinite(column)))


def _frequency_column_valid(values: np.ndarray, ports: int) -> bool:
    """True when the candidate reshape yields a monotone frequency column.

    Duplicate seam points are allowed here -- they are deduplicated
    later.  Unsorted exports fail this test but may still pass
    :func:`_frequency_column_plausible`.
    """
    if not _frequency_column_plausible(values, ports):
        return False
    block = 1 + 2 * ports * ports
    column = values.reshape(-1, block)[:, 0]
    return bool(np.all(np.diff(column) >= 0.0))


def _infer_ports(values: np.ndarray, path: Path) -> int:
    """Infer the port count of a suffix-less file by validating reshapes.

    Candidates are ranked by evidence strength: a monotone frequency
    column over at least two blocks beats a merely non-negative one
    (unsorted export), which beats a single-block reshape (trivially
    monotone, no layout evidence -- only acceptable when nothing larger
    fits, e.g. a genuine single-frequency file).
    """
    divisible = [
        p for p in range(1, 65) if values.size % (1 + 2 * p * p) == 0
    ]
    plausible = [p for p in divisible if _frequency_column_plausible(values, p)]
    multi = [p for p in plausible if values.size // (1 + 2 * p * p) >= 2]
    for tier in (
        [p for p in multi if _frequency_column_valid(values, p)],
        multi,
        plausible,
    ):
        if tier:
            candidates = tier
            break
    else:
        raise ValueError(
            f"{path}: could not infer port count from the data layout; "
            "rename the file with its .sNp suffix"
        )
    # Warn whenever any other plausible reading exists, including ones the
    # tier ranking discarded: a one-frequency P-port file also reshapes
    # into several blocks of a smaller port count, and only the suffix can
    # truly settle that.
    if len(plausible) > 1:
        warnings.warn(
            f"{path}: ambiguous port count (plausible candidates "
            f"{plausible}); assuming {candidates[0]} ports -- rename the "
            "file with its .sNp suffix to disambiguate",
            stacklevel=3,
        )
    return candidates[0]


def _dedupe_grid(
    frequencies: np.ndarray, samples: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int, bool]:
    """Sort the grid and drop coincident points, keeping first occurrences.

    Returns ``(frequencies, samples, n_dropped, was_sorted)``.  The stable
    sort preserves file order among equal frequencies, so "keep first"
    means the first point as written by the exporter.
    """
    # Duplicates are a dedup matter, not a sort-order one: a sorted grid
    # with repeated seam points must not be reported as unsorted.
    was_sorted = bool(np.all(np.diff(frequencies) >= 0.0))
    order = np.argsort(frequencies, kind="stable")
    frequencies = frequencies[order]
    samples = samples[order]
    gaps = np.diff(frequencies)
    tolerance = _DUPLICATE_RTOL * frequencies[1:]
    keep = np.concatenate([[True], gaps > tolerance])
    n_dropped = int(np.count_nonzero(~keep))
    if n_dropped:
        frequencies = frequencies[keep]
        samples = samples[keep]
    return frequencies, samples, n_dropped, was_sorted


def read_touchstone_with_info(
    path: str | Path,
) -> tuple[NetworkData, TouchstoneInfo]:
    """Read a Touchstone v1 file, returning the data and source metadata.

    The port count is taken from the ``.sNp`` suffix when present,
    otherwise inferred by validating candidate block reshapes (see module
    docstring).  Duplicate/unsorted frequency points are repaired and
    reported in the returned :class:`TouchstoneInfo`.
    """
    path = Path(path)
    unit_scale, unit, kind, fmt, z0 = 1e9, "ghz", "s", "ma", 50.0
    numbers: list[float] = []
    port_names: dict[int, str] = {}
    saw_option = False
    with path.open("r", encoding="utf-8", errors="replace") as handle:
        for raw_line in handle:
            data_part, _, comment = raw_line.partition("!")
            name_match = _PORT_NAME_RE.match(comment)
            if name_match:
                port_names[int(name_match.group(1))] = name_match.group(2)
            line = data_part.strip()
            if not line:
                continue
            if line.startswith("#"):
                if not saw_option:  # per spec, only the first option line counts
                    unit_scale, unit, kind, fmt, z0 = _parse_option_line(line)
                    saw_option = True
                continue
            if line.startswith("["):  # Touchstone v2 keyword; not supported
                raise ValueError("Touchstone v2 keywords are not supported")
            numbers.extend(float(token) for token in line.split())

    if not numbers:
        raise ValueError(f"no data found in {path}")

    values = np.asarray(numbers)
    suffix_ports = _ports_from_suffix(path)
    if suffix_ports is not None:
        ports = suffix_ports
        ports_source = "suffix"
        block = 1 + 2 * ports * ports
        if values.size % block != 0:
            raise ValueError(
                f"{path}: file size inconsistent with the .s{ports}p suffix "
                f"({values.size} values, block {block})"
            )
        if not _frequency_column_valid(values, ports):
            # Unsorted grids legitimately fail the monotone test, so only
            # warn when some *other* block size yields a clean layout of
            # at least two blocks (a single block is trivially monotone
            # and carries no layout evidence).
            alternatives = [
                p
                for p in range(1, 65)
                if p != ports
                and values.size % (1 + 2 * p * p) == 0
                and values.size // (1 + 2 * p * p) >= 2
                and _frequency_column_valid(values, p)
            ]
            if alternatives:
                warnings.warn(
                    f"{path}: data layout disagrees with the .s{ports}p "
                    f"suffix (a {alternatives[0]}-port layout would parse "
                    "cleanly); trusting the suffix",
                    stacklevel=2,
                )
    else:
        ports = _infer_ports(values, path)
        ports_source = "inferred"

    block = 1 + 2 * ports * ports
    values = values.reshape(-1, block)
    frequencies = values[:, 0] * unit_scale
    pairs = values[:, 1:].reshape(-1, 2)
    flat = _pairs_to_complex(pairs, fmt).reshape(-1, ports * ports)

    if ports == 2:
        # v1 two-port files store S11 S21 S12 S22.
        samples = flat.reshape(-1, 2, 2).transpose(0, 2, 1)
    else:
        samples = flat.reshape(-1, ports, ports)

    frequencies, samples, n_dropped, was_sorted = _dedupe_grid(
        frequencies, samples
    )
    if n_dropped:
        warnings.warn(
            f"{path}: dropped {n_dropped} duplicate frequency point(s) "
            "(kept the first occurrence of each)",
            stacklevel=2,
        )

    names: tuple[str, ...] = ()
    if port_names and set(port_names) == set(range(1, ports + 1)):
        names = tuple(port_names[p] for p in range(1, ports + 1))

    data = NetworkData(
        frequencies=frequencies,
        samples=samples,
        kind=kind,
        z0=z0,
        port_names=names,
    )
    info = TouchstoneInfo(
        fmt=fmt,
        unit=unit,
        kind=kind,
        z0=z0,
        n_ports=ports,
        ports_source=ports_source,
        n_duplicates_dropped=n_dropped,
        grid_was_sorted=was_sorted,
    )
    return data, info


def read_touchstone(path: str | Path) -> NetworkData:
    """Read a Touchstone v1 file into a :class:`NetworkData`.

    See :func:`read_touchstone_with_info` for the source-metadata variant.
    """
    data, _ = read_touchstone_with_info(path)
    return data


def write_touchstone(
    data: NetworkData,
    path: str | Path,
    *,
    fmt: str = "ri",
    unit: str = "hz",
) -> None:
    """Write a :class:`NetworkData` to a Touchstone v1 file.

    Port names, when present, are written as ``! Port[n] = name`` comment
    lines (the convention used by common field solvers) and read back by
    :func:`read_touchstone`.
    """
    fmt = fmt.lower()
    unit = unit.lower()
    if fmt not in ("ri", "ma", "db"):
        raise ValueError(f"unsupported format {fmt!r}")
    if unit not in _UNIT_SCALE:
        raise ValueError(f"unsupported unit {unit!r}")
    path = Path(path)
    expected_suffix = f".s{data.n_ports}p"
    if path.suffix.lower() not in (expected_suffix, ".snp", ".ts"):
        path = path.with_suffix(expected_suffix)

    scale = _UNIT_SCALE[unit]
    lines = [
        f"! {data.n_ports}-port {data.kind.upper()}-parameter data, "
        f"{data.n_frequencies} points",
    ]
    lines.extend(
        f"! Port[{index + 1}] = {name}"
        for index, name in enumerate(data.port_names)
    )
    lines.append(
        f"# {unit.upper()} {data.kind.upper()} {fmt.upper()} R {data.z0:g}"
    )
    for k in range(data.n_frequencies):
        matrix = data.samples[k]
        if data.n_ports == 2:
            flat = matrix.T.reshape(-1)  # v1 two-port column-major quirk
        else:
            flat = matrix.reshape(-1)
        pairs = _complex_to_pairs(flat, fmt)
        row_values: list[str] = [f"{data.frequencies[k] / scale:.12g}"]
        for real_part, imag_part in pairs:
            row_values.append(f"{real_part:.12g}")
            row_values.append(f"{imag_part:.12g}")
        # Wrap long rows at 8 values per line for readability.
        head = " ".join(row_values[:9])
        lines.append(head)
        for start in range(9, len(row_values), 8):
            lines.append("  " + " ".join(row_values[start : start + 8]))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
