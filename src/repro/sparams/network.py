"""Container for tabulated multiport frequency responses.

The paper's raw input is "a P-port PDN structure known via its scattering
matrix samples S_k at frequencies omega_k for k = 1..K, normalized to a port
resistance R0".  :class:`NetworkData` is exactly that: a frequency grid plus
a (K, P, P) stack of matrices and the reference resistance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.util.validation import check_frequency_grid, check_square_stack

_VALID_KINDS = ("s", "y", "z")


@dataclass(frozen=True)
class NetworkData:
    """Tabulated P-port network parameters on a frequency grid.

    Parameters
    ----------
    frequencies:
        Frequency grid in Hz, strictly increasing, DC allowed as first point.
    samples:
        Complex array of shape (K, P, P); ``samples[k]`` is the parameter
        matrix at ``frequencies[k]``.
    kind:
        One of ``"s"``, ``"y"``, ``"z"``.
    z0:
        Reference (normalization) resistance in ohms; only meaningful for
        scattering data but stored for all kinds so conversions round-trip.
    port_names:
        Optional list of P human-readable port labels.
    """

    frequencies: np.ndarray
    samples: np.ndarray
    kind: str = "s"
    z0: float = 50.0
    port_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        frequencies = check_frequency_grid(self.frequencies)
        samples = check_square_stack(self.samples, "samples")
        if samples.shape[0] != frequencies.size:
            raise ValueError(
                f"got {samples.shape[0]} sample matrices for "
                f"{frequencies.size} frequencies"
            )
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"kind must be one of {_VALID_KINDS}, got {self.kind!r}")
        if self.z0 <= 0.0:
            raise ValueError("z0 must be positive")
        if self.port_names and len(self.port_names) != samples.shape[1]:
            raise ValueError("port_names length must match port count")
        object.__setattr__(self, "frequencies", frequencies)
        object.__setattr__(self, "samples", samples)
        object.__setattr__(self, "port_names", tuple(self.port_names))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n_ports(self) -> int:
        """Number of ports P."""
        return int(self.samples.shape[1])

    @property
    def n_frequencies(self) -> int:
        """Number of frequency samples K."""
        return int(self.frequencies.size)

    @property
    def omega(self) -> np.ndarray:
        """Angular frequency grid in rad/s."""
        return 2.0 * np.pi * self.frequencies

    def element(self, row: int, col: int) -> np.ndarray:
        """Return the length-K trace of matrix entry (row, col)."""
        return self.samples[:, row, col]

    # ------------------------------------------------------------------
    # Derived data sets
    # ------------------------------------------------------------------
    def with_samples(self, samples: np.ndarray, kind: str | None = None) -> "NetworkData":
        """Copy of this data set with replaced sample matrices."""
        return replace(self, samples=samples, kind=kind or self.kind)

    def subset(self, mask: np.ndarray) -> "NetworkData":
        """Restrict to the frequency points selected by boolean ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.frequencies.shape:
            raise ValueError("mask must match the frequency grid")
        if not mask.any():
            raise ValueError("mask selects no frequency points")
        return replace(
            self, frequencies=self.frequencies[mask], samples=self.samples[mask]
        )

    def band(self, f_min: float, f_max: float) -> "NetworkData":
        """Restrict to frequencies within [f_min, f_max] (inclusive)."""
        mask = (self.frequencies >= f_min) & (self.frequencies <= f_max)
        return self.subset(mask)

    def without_dc(self) -> "NetworkData":
        """Drop an f = 0 point if present (some algorithms need omega > 0)."""
        if self.frequencies[0] == 0.0:
            return self.subset(self.frequencies > 0.0)
        return self

    # ------------------------------------------------------------------
    # Sanity checks
    # ------------------------------------------------------------------
    def is_reciprocal(self, tol: float = 1e-8) -> bool:
        """True when every sample matrix is symmetric (reciprocal network)."""
        deviation = np.max(np.abs(self.samples - np.transpose(self.samples, (0, 2, 1))))
        scale = max(float(np.max(np.abs(self.samples))), 1e-30)
        return bool(deviation <= tol * scale)

    def passivity_metric(self) -> np.ndarray:
        """Per-frequency worst singular value (scattering data only).

        Values <= 1 everywhere mean the tabulated data itself is passive.
        """
        if self.kind != "s":
            raise ValueError("passivity_metric is defined for scattering data")
        return np.linalg.svd(self.samples, compute_uv=False)[:, 0]
