"""Network-parameter handling: data containers, conversions, Touchstone I/O."""

from repro.sparams.network import NetworkData
from repro.sparams.conversions import (
    s_to_y,
    s_to_z,
    y_to_s,
    z_to_s,
    y_to_z,
    z_to_y,
    renormalize_s,
)
from repro.sparams.touchstone import (
    TouchstoneInfo,
    read_touchstone,
    read_touchstone_with_info,
    write_touchstone,
)

__all__ = [
    "NetworkData",
    "s_to_y",
    "s_to_z",
    "y_to_s",
    "z_to_s",
    "y_to_z",
    "z_to_y",
    "renormalize_s",
    "TouchstoneInfo",
    "read_touchstone",
    "read_touchstone_with_info",
    "write_touchstone",
]
