"""Render telemetry from a finished run as a human-readable report.

Backs the ``repro trace RUN_DIR`` subcommand.  ``RUN_DIR`` may be:

* a telemetry directory (holds ``run_metrics.json`` and ``events-*.jsonl``),
* an output directory containing a ``telemetry/`` subdirectory,
* a campaign registry directory (``manifest.json`` + ``runs/<id>/
  result.json``) whose records carry worker-session telemetry snapshots,
* a directory with only ``events-*.jsonl`` sidecars, from which span
  totals and convergence trajectories are reconstructed.

The report shows per-iteration solver convergence (vector-fitting pole
relocation residual, passivity-enforcement worst sigma), per-stage and
per-kernel wall-time breakdowns, cache hit/miss counters, and -- for
campaigns -- slowest scenarios, cache hit rates, and BLAS configuration.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.obs.metrics import (
    METRICS_FORMAT,
    build_campaign_metrics,
    cache_hit_rates,
    convergence_from_events,
)
from repro.obs.telemetry import Telemetry

__all__ = ["load_trace_payload", "render_trace"]


# ----------------------------------------------------------------------
# Payload discovery
# ----------------------------------------------------------------------
def load_trace_payload(run_dir: str | Path) -> dict:
    """Locate and load the metrics payload for ``run_dir`` (see module doc)."""
    root = Path(run_dir)
    if root.is_file() and root.name == "run_metrics.json":
        return json.loads(root.read_text(encoding="utf-8"))
    if not root.is_dir():
        raise FileNotFoundError(f"no such run directory: {root}")
    for candidate in (root / "run_metrics.json",
                      root / "telemetry" / "run_metrics.json"):
        if candidate.exists():
            return json.loads(candidate.read_text(encoding="utf-8"))
    if (root / "manifest.json").exists():
        return _payload_from_registry(root)
    events = _read_event_files(root)
    if events:
        return _payload_from_events(events)
    raise FileNotFoundError(
        f"{root} holds no run_metrics.json, manifest.json, or "
        "events-*.jsonl; re-run with --telemetry to record a trace"
    )


def _read_event_files(root: Path) -> list[dict]:
    events: list[dict] = []
    for path in sorted(root.glob("events-*.jsonl")):
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    return events


def _payload_from_events(events: list[dict]) -> dict:
    """Reconstruct span totals and convergence from raw JSONL sidecars."""
    spans: dict[str, dict[str, float]] = {}
    for event in events:
        if event.get("event") != "span.finish":
            continue
        path = event.get("span", "")
        total = spans.setdefault(path, {"count": 0, "seconds": 0.0})
        total["count"] += 1
        total["seconds"] += float(event.get("seconds", 0.0))
    return {
        "format": METRICS_FORMAT,
        "kind": "events",
        "counters": {},
        "gauges": {},
        "spans": {path: spans[path] for path in sorted(spans)},
        "n_events": len(events),
        "convergence": convergence_from_events(events),
    }


def _payload_from_registry(root: Path) -> dict:
    """Merge worker telemetry snapshots out of a campaign registry."""
    runs = []
    failures = []
    for result in sorted(root.glob("runs/*/result.json")):
        record = json.loads(result.read_text(encoding="utf-8"))
        runs.append({
            "run_id": record.get("run_id", result.parent.name),
            "seconds": _record_seconds(record),
            "snapshot": record.get("telemetry"),
        })
        if record.get("status") == "failed":
            failures.append({
                "run_id": record.get("run_id", result.parent.name),
                "error_code": record.get("error_code"),
                "failed_stage": record.get("failed_stage"),
                "attempts": record.get("attempts", 1),
                "error": record.get("error"),
            })
    manifest = json.loads((root / "manifest.json").read_text(encoding="utf-8"))
    telemetry = Telemetry(label="campaign", meta={
        "campaign": manifest.get("campaign"),
        "n_runs": len(runs),
    })
    extra = {"failures": failures} if failures else None
    return build_campaign_metrics(telemetry, runs, extra=extra)


def _record_seconds(record: Mapping) -> float | None:
    timings = record.get("timings") or {}
    if timings:
        return sum(v for v in timings.values() if isinstance(v, (int, float)))
    return record.get("seconds")


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt(value, width: int = 10) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, bool):
        return str(value).rjust(width)
    if isinstance(value, float):
        return f"{value:.3e}".rjust(width)
    return str(value).rjust(width)


def _section(title: str) -> list[str]:
    return ["", title, "-" * len(title)]


def _vf_key(key: str) -> tuple:
    """Numeric sort for ``batch:set`` convergence keys ("10:0" after "2:0")."""
    parts = str(key).split(":")
    return tuple(
        (0, int(part)) if part.isdigit() else (1, part) for part in parts
    )


def _render_convergence(convergence: Mapping) -> list[str]:
    lines: list[str] = []
    vf = convergence.get("vf", {})
    if vf:
        lines += _section("vector fitting: pole relocation")
        for key in sorted(vf, key=_vf_key):
            rows = vf[key]
            lines.append(f"  fit {key} ({len(rows)} iterations)")
            lines.append(
                "    iter   n_poles  pole_change  converged"
            )
            for row in rows:
                lines.append(
                    f"    {row.get('iteration', '?'):>4}"
                    f"  {_fmt(row.get('n_poles'), 8)}"
                    f"  {_fmt(row.get('pole_change'), 11)}"
                    f"  {_fmt(row.get('converged'), 9)}"
                )
    enforcement = convergence.get("enforcement", {})
    if enforcement:
        lines += _section("passivity enforcement: worst sigma")
        for key in sorted(enforcement):
            rows = enforcement[key]
            lines.append(f"  cost {key} ({len(rows)} iterations)")
            lines.append(
                "    iter  worst_sigma  bands  constraints  working_set  mode"
            )
            for row in rows:
                lines.append(
                    f"    {row.get('iteration', '?'):>4}"
                    f"  {_fmt(row.get('worst_sigma'), 11)}"
                    f"  {_fmt(row.get('n_bands'), 5)}"
                    f"  {_fmt(row.get('n_constraints'), 11)}"
                    f"  {_fmt(row.get('working_set'), 11)}"
                    f"  {row.get('mode', '-')}"
                )
    sampling = convergence.get("sampling", [])
    if sampling:
        lines += _section("passivity checker: adaptive sampling")
        lines.append("    seed_grid  final_grid  stages  violations")
        for row in sampling:
            lines.append(
                f"    {_fmt(row.get('seed_grid'), 9)}"
                f"  {_fmt(row.get('final_grid'), 10)}"
                f"  {_fmt(row.get('stages'), 6)}"
                f"  {_fmt(row.get('violations'), 10)}"
            )
    return lines


def _render_spans(spans: Mapping) -> list[str]:
    if not spans:
        return []
    lines = _section("time breakdown (span totals)")
    stage_totals: dict[str, dict] = {}
    kernel_totals: dict[str, dict] = {}
    for path, total in spans.items():
        head = path.split("/", 1)[0]
        leaf = path.rsplit("/", 1)[-1]
        if head.startswith("stage:"):
            agg = stage_totals.setdefault(
                head[len("stage:"):], {"count": 0, "seconds": 0.0}
            )
            if path == head:  # only the stage's own span, not children
                agg["count"] += total.get("count", 0)
                agg["seconds"] += total.get("seconds", 0.0)
        if leaf.startswith("kernel:"):
            agg = kernel_totals.setdefault(
                leaf[len("kernel:"):], {"count": 0, "seconds": 0.0}
            )
            agg["count"] += total.get("count", 0)
            agg["seconds"] += total.get("seconds", 0.0)
    if stage_totals:
        lines.append("  per stage:")
        for name, agg in sorted(
            stage_totals.items(), key=lambda kv: -kv[1]["seconds"]
        ):
            lines.append(
                f"    {name:<24} {agg['seconds']:10.3f}s"
                f"  x{agg['count']}"
            )
    if kernel_totals:
        lines.append("  per kernel:")
        for name, agg in sorted(
            kernel_totals.items(), key=lambda kv: -kv[1]["seconds"]
        ):
            lines.append(
                f"    {name:<24} {agg['seconds']:10.3f}s"
                f"  x{agg['count']}"
            )
    lines.append("  all spans:")
    for path, total in sorted(
        spans.items(), key=lambda kv: -kv[1].get("seconds", 0.0)
    ):
        lines.append(
            f"    {path:<48} {total.get('seconds', 0.0):10.3f}s"
            f"  x{total.get('count', 0)}"
        )
    return lines


def _render_counters(counters: Mapping) -> list[str]:
    if not counters:
        return []
    lines = _section("counters")
    for name in sorted(counters):
        lines.append(f"    {name:<40} {counters[name]:>12g}")
    rates = cache_hit_rates(counters)
    if rates:
        lines.append("  cache hit rates:")
        for base, rate in rates.items():
            pct = (
                f"{100 * rate['hit_rate']:.1f}%"
                if rate["hit_rate"] is not None else "n/a"
            )
            lines.append(
                f"    {base:<28} hits={rate['hits']:<6g} "
                f"misses={rate['misses']:<6g} rate={pct}"
            )
    return lines


def _render_campaign(payload: Mapping) -> list[str]:
    lines: list[str] = []
    slowest = payload.get("slowest_runs") or []
    if slowest:
        lines += _section("slowest scenarios")
        for row in slowest:
            seconds = row.get("seconds")
            shown = f"{seconds:.3f}s" if seconds is not None else "-"
            lines.append(f"    {row.get('run_id'):<40} {shown:>10}")
    failures = payload.get("failures") or []
    if failures:
        lines += _section("failed runs")
        for row in failures:
            code = row.get("error_code") or "exception"
            stage = row.get("failed_stage") or "?"
            attempts = row.get("attempts", 1)
            tries = f", {attempts} attempts" if attempts and attempts > 1 else ""
            lines.append(f"    {row.get('run_id')} [{code} @ {stage}{tries}]")
            if row.get("error"):
                lines.append(f"        {row['error']}")
    meta = payload.get("meta") or {}
    blas = meta.get("blas") or meta.get("environment")
    if blas:
        lines += _section("BLAS configuration")
        if isinstance(blas, Mapping):
            for key in sorted(blas):
                lines.append(f"    {key}: {blas[key]}")
        else:
            lines.append(f"    {blas}")
    backend = meta.get("backend")
    if backend:
        lines += _section("Array backend")
        if isinstance(backend, Mapping):
            for key in sorted(backend):
                value = backend[key]
                if isinstance(value, Mapping):
                    detail = ", ".join(
                        f"{k}={value[k]}" for k in sorted(value)
                    )
                    lines.append(f"    {key}: {detail}")
                else:
                    lines.append(f"    {key}: {value}")
        else:
            lines.append(f"    {backend}")
    return lines


def render_trace(run_dir: str | Path) -> str:
    """The full human-readable trace report for ``run_dir``."""
    payload = load_trace_payload(run_dir)
    kind = payload.get("kind", "flow")
    header = f"repro trace: {run_dir}  (kind={kind}, " \
             f"{payload.get('n_events', 0)} events)"
    lines = [header, "=" * len(header)]
    if payload.get("run_id"):
        lines.append(f"run_id: {payload['run_id']}")
    lines += _render_convergence(payload.get("convergence", {}))
    lines += _render_spans(payload.get("spans", {}))
    lines += _render_counters(payload.get("counters", {}))
    if kind == "campaign":
        lines += _render_campaign(payload)
    return "\n".join(lines) + "\n"
