"""Metrics artifacts built from telemetry sessions.

Turns a :class:`~repro.obs.telemetry.Telemetry` session into the two files
emitted alongside ``flow_summary.json``:

* ``run_metrics.json`` -- a versioned JSON document
  (``"format": "repro.run-metrics/1"``) with counters, gauges, span
  aggregates, and a ``convergence`` section distilled from the structured
  solver events (per-set vector-fitting pole-relocation residuals, per-cost
  passivity-enforcement worst-sigma trajectories, adaptive-sampling grid
  growth);
* ``metrics.prom`` -- a Prometheus text exposition of the same counters,
  gauges, and span totals for scrape-style ingestion.

For campaigns, each worker process records its own session and ships a
:meth:`~repro.obs.telemetry.Telemetry.snapshot` back inside the run record;
:func:`build_campaign_metrics` merges those snapshots with the dispatcher's
session into one campaign-level payload (summed counters, merged span
totals, slowest scenarios, cache hit rates, BLAS configuration).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable, Mapping

from repro.obs.telemetry import Telemetry

__all__ = [
    "METRICS_FORMAT",
    "build_campaign_metrics",
    "build_run_metrics",
    "convergence_from_events",
    "prometheus_exposition",
    "write_metrics_files",
]

METRICS_FORMAT = "repro.run-metrics/1"


# ----------------------------------------------------------------------
# Convergence extraction
# ----------------------------------------------------------------------
def convergence_from_events(events: Iterable[Mapping]) -> dict:
    """Distill solver iteration events into per-solver trajectories."""
    vf: dict[str, list[dict]] = {}
    enforcement: dict[str, list[dict]] = {}
    sampling: list[dict] = []
    for event in events:
        name = event.get("event")
        if name == "vf.iteration":
            batch = event.get("batch")
            key = str(event.get("set", 0))
            if batch is not None:
                key = f"{batch}:{key}"
            vf.setdefault(key, []).append({
                "iteration": event.get("iteration"),
                "pole_change": event.get("pole_change"),
                "n_poles": event.get("n_poles"),
                "converged": event.get("converged"),
            })
        elif name == "enforce.iteration":
            key = str(event.get("cost", "standard"))
            enforcement.setdefault(key, []).append({
                "iteration": event.get("iteration"),
                "worst_sigma": event.get("worst_sigma"),
                "n_bands": event.get("n_bands"),
                "n_constraints": event.get("n_constraints"),
                "working_set": event.get("working_set"),
                "mode": event.get("mode"),
            })
        elif name == "checker.sampling":
            sampling.append({
                "seed_grid": event.get("seed_grid"),
                "final_grid": event.get("final_grid"),
                "stages": event.get("stages"),
                "violations": event.get("violations"),
            })
    return {"vf": vf, "enforcement": enforcement, "sampling": sampling}


# ----------------------------------------------------------------------
# Per-run metrics payload
# ----------------------------------------------------------------------
def build_run_metrics(
    telemetry: Telemetry, *, kind: str = "flow", extra: dict | None = None
) -> dict:
    """The ``run_metrics.json`` payload for one telemetry session."""
    snapshot = telemetry.snapshot()
    payload = {
        "format": METRICS_FORMAT,
        "kind": kind,
        "label": snapshot["label"],
        "run_id": snapshot["run_id"],
        "meta": snapshot["meta"],
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "spans": snapshot["spans"],
        "n_events": snapshot["n_events"],
        "convergence": convergence_from_events(telemetry.events),
    }
    if extra:
        payload.update(extra)
    return payload


# ----------------------------------------------------------------------
# Campaign merge
# ----------------------------------------------------------------------
def _merge_counters(into: dict, counters: Mapping) -> None:
    for name, value in counters.items():
        into[name] = into.get(name, 0) + value


def _merge_spans(into: dict, spans: Mapping) -> None:
    for path, total in spans.items():
        merged = into.setdefault(path, {"count": 0, "seconds": 0.0})
        merged["count"] += total.get("count", 0)
        merged["seconds"] += total.get("seconds", 0.0)


def cache_hit_rates(counters: Mapping) -> dict:
    """Hit rates for each ``<name>.hits``/``<name>.misses`` counter pair."""
    bases = {
        name[: name.rfind(".")]
        for name in counters
        if name.endswith(".hits") or name.endswith(".misses")
    }
    rates = {}
    for base in sorted(bases):
        hits = counters.get(f"{base}.hits", 0)
        misses = counters.get(f"{base}.misses", 0)
        lookups = hits + misses
        rates[base] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else None,
        }
    return rates


def build_campaign_metrics(
    telemetry: Telemetry,
    runs: Iterable[Mapping],
    *,
    extra: dict | None = None,
) -> dict:
    """Campaign-level ``run_metrics.json``: dispatcher + worker snapshots.

    ``runs`` is an iterable of mappings with at least ``run_id``; a
    ``seconds`` entry feeds the slowest-scenario rollup and a ``snapshot``
    entry (a worker-session :meth:`Telemetry.snapshot`) contributes
    counters and span totals to the merged view.
    """
    counters = dict(telemetry.counters)
    spans = {p: dict(t) for p, t in telemetry.span_totals.items()}
    per_run = []
    for run in runs:
        entry = {
            "run_id": run.get("run_id"),
            "seconds": run.get("seconds"),
        }
        snapshot = run.get("snapshot")
        if snapshot:
            _merge_counters(counters, snapshot.get("counters", {}))
            _merge_spans(spans, snapshot.get("spans", {}))
            entry["counters"] = snapshot.get("counters", {})
        per_run.append(entry)
    timed = [r for r in per_run if r.get("seconds") is not None]
    slowest = sorted(timed, key=lambda r: r["seconds"], reverse=True)[:5]
    payload = {
        "format": METRICS_FORMAT,
        "kind": "campaign",
        "label": telemetry.label,
        "run_id": telemetry.run_id,
        "meta": dict(telemetry.meta),
        "counters": counters,
        "gauges": dict(telemetry.gauges),
        "spans": {path: spans[path] for path in sorted(spans)},
        "n_events": len(telemetry.events),
        "convergence": convergence_from_events(telemetry.events),
        "runs": per_run,
        "slowest_runs": [
            {"run_id": r["run_id"], "seconds": r["seconds"]} for r in slowest
        ],
        "cache_hit_rates": cache_hit_rates(counters),
    }
    if extra:
        payload.update(extra)
    return payload


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"')


def prometheus_exposition(payload: Mapping) -> str:
    """Render a metrics payload as Prometheus text format (version 0.0.4)."""
    lines: list[str] = []
    for name in sorted(payload.get("counters", {})):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {payload['counters'][name]}")
    for name in sorted(payload.get("gauges", {})):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {payload['gauges'][name]}")
    spans = payload.get("spans", {})
    if spans:
        lines.append("# TYPE repro_span_seconds_total counter")
        lines.append("# TYPE repro_span_calls_total counter")
        for path in sorted(spans):
            label = _escape_label(path)
            total = spans[path]
            lines.append(
                f'repro_span_seconds_total{{span="{label}"}} '
                f'{total.get("seconds", 0.0)}'
            )
            lines.append(
                f'repro_span_calls_total{{span="{label}"}} '
                f'{total.get("count", 0)}'
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# File emission
# ----------------------------------------------------------------------
def write_metrics_files(
    directory: str | Path,
    telemetry: Telemetry,
    *,
    kind: str = "flow",
    payload: dict | None = None,
) -> Path:
    """Write ``run_metrics.json`` + ``metrics.prom`` into ``directory``.

    Passing ``payload`` overrides the default per-run payload (the campaign
    dispatcher passes a merged :func:`build_campaign_metrics` document).
    Returns the path of ``run_metrics.json``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if payload is None:
        payload = build_run_metrics(telemetry, kind=kind)
    metrics_path = directory / "run_metrics.json"
    metrics_path.write_text(
        json.dumps(payload, indent=2, default=str) + "\n", encoding="utf-8"
    )
    (directory / "metrics.prom").write_text(
        prometheus_exposition(payload), encoding="utf-8"
    )
    return metrics_path
