"""Low-overhead, process-safe telemetry: spans, counters, gauges, events.

The subsystem is built around one module-global *active* :class:`Telemetry`
instance.  Instrumentation sites throughout the package call the free
functions :func:`emit`, :func:`incr`, :func:`gauge`, and :func:`span`; when
no telemetry session is active each of those is a single attribute load and
``None`` check (and :func:`span` returns a shared no-op context manager), so
disabled-by-default instrumentation costs essentially nothing.

Activate a session with :func:`telemetry_session`::

    with telemetry_session("out/telemetry", label="flow") as tel:
        result = run_flow(...)
    # out/telemetry/ now holds events-flow.jsonl, run_metrics.json,
    # metrics.prom

Spans are hierarchical -- ``run -> stage -> iteration -> kernel`` -- and are
recorded as "/"-joined path strings (``stage:enforce/kernel:hamiltonian_eig``)
with aggregate call counts and wall seconds per unique path.  Events are
structured dicts appended to an in-memory list and, when the session has a
directory, streamed line-by-line to a per-process JSONL sink, so campaign
workers in separate processes each write their own sidecar file which the
dispatcher merges afterwards (see :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "Telemetry",
    "active",
    "emit",
    "gauge",
    "incr",
    "next_seq",
    "session",
    "span",
    "telemetry_session",
]

_ACTIVE: "Telemetry | None" = None

#: Events accumulated in memory per session before old ones are dropped.
#: The JSONL sink (when the session has a directory) always gets every
#: event; the in-memory buffer only feeds same-process summaries.
_MAX_BUFFERED_EVENTS = 200_000


class _NullSpan:
    """Reusable no-op context manager handed out when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager pushing one frame on the active span stack."""

    __slots__ = ("_telemetry", "_name", "_attrs", "_started")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict) -> None:
        self._telemetry = telemetry
        self._name = name
        self._attrs = attrs
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._telemetry._push(self._name)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        seconds = time.perf_counter() - self._started
        self._telemetry._pop(self._name, seconds, self._attrs)
        return False


class Telemetry:
    """One telemetry session: events, counters, gauges, span aggregates.

    Usually managed through :func:`telemetry_session`; direct construction
    is useful in tests and for embedders that want in-memory-only capture
    (``directory=None``).
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        label: str = "run",
        run_id: str | None = None,
        meta: dict | None = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.label = label
        self.run_id = run_id
        self.meta = dict(meta or {})
        self.events: list[dict] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: span path -> {"count": int, "seconds": float}
        self.span_totals: dict[str, dict[str, float]] = {}
        self._seqs: dict[str, int] = {}
        self._stack: list[str] = []
        self._dropped_events = 0
        self._sink = None
        self._started = time.time()
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._sink = open(self.sink_path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Sink
    # ------------------------------------------------------------------
    @property
    def sink_path(self) -> Path:
        """Per-process JSONL event file (unique per label/run_id/pid)."""
        if self.directory is None:
            raise ValueError("telemetry session has no directory")
        parts = [self.label]
        if self.run_id:
            parts.append(str(self.run_id))
        parts.append(str(os.getpid()))
        return self.directory / ("events-" + "-".join(parts) + ".jsonl")

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    # ------------------------------------------------------------------
    # Recording primitives
    # ------------------------------------------------------------------
    def emit(self, name: str, **fields: Any) -> None:
        """Record one structured event under the current span path."""
        event = {"event": name, "t": time.time() - self._started}
        if self._stack:
            event["span"] = "/".join(self._stack)
        event.update(fields)
        if len(self.events) < _MAX_BUFFERED_EVENTS:
            self.events.append(event)
        else:
            self._dropped_events += 1
        if self._sink is not None:
            json.dump(event, self._sink, default=_json_default)
            self._sink.write("\n")

    def incr(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def span(self, name: str, **attrs: Any) -> _Span:
        return _Span(self, name, attrs)

    def next_seq(self, name: str) -> int:
        """Monotonic per-session sequence number (0, 1, 2, ...) for ``name``.

        Used to disambiguate repeated solver invocations in one run, e.g.
        each :func:`repro.vectfit.core.fit_many` call gets its own batch
        number so refinement rounds do not collapse into one trajectory.
        """
        value = self._seqs.get(name, 0)
        self._seqs[name] = value + 1
        return value

    # Span-stack internals used by _Span.
    def _push(self, name: str) -> None:
        self._stack.append(name)

    def _pop(self, name: str, seconds: float, attrs: dict) -> None:
        path = "/".join(self._stack)
        if self._stack and self._stack[-1] == name:
            self._stack.pop()
        total = self.span_totals.setdefault(path, {"count": 0, "seconds": 0.0})
        total["count"] += 1
        total["seconds"] += seconds
        event = {"span": path, "seconds": seconds}
        if attrs:
            event.update(attrs)
        self.emit("span.finish", **event)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-compatible summary of this session (no raw event list)."""
        return {
            "label": self.label,
            "run_id": self.run_id,
            "pid": os.getpid(),
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": {
                path: dict(total)
                for path, total in sorted(self.span_totals.items())
            },
            "n_events": len(self.events) + self._dropped_events,
            "dropped_events": self._dropped_events,
        }


def _json_default(value: Any) -> Any:
    """Serialize numpy scalars and other oddballs without importing numpy."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


# ----------------------------------------------------------------------
# Module-global accessors (the near-free instrumentation surface)
# ----------------------------------------------------------------------
def active() -> Telemetry | None:
    """The currently active session, or ``None`` when telemetry is off."""
    return _ACTIVE


def emit(name: str, **fields: Any) -> None:
    """Record an event on the active session; no-op when telemetry is off."""
    t = _ACTIVE
    if t is not None:
        t.emit(name, **fields)


def incr(name: str, value: float = 1) -> None:
    """Bump a counter on the active session; no-op when telemetry is off."""
    t = _ACTIVE
    if t is not None:
        t.incr(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active session; no-op when telemetry is off."""
    t = _ACTIVE
    if t is not None:
        t.gauge(name, value)


def span(name: str, **attrs: Any):
    """Open a span on the active session; shared no-op when telemetry is off."""
    t = _ACTIVE
    if t is None:
        return _NULL_SPAN
    return t.span(name, **attrs)


def next_seq(name: str) -> int | None:
    """Next sequence number for ``name``; ``None`` when telemetry is off."""
    t = _ACTIVE
    if t is None:
        return None
    return t.next_seq(name)


class session:
    """Make ``telemetry`` the active session for the dynamic extent.

    Re-entrant in the nesting sense: the previously active session (if any)
    is restored on exit, so a campaign dispatcher session can wrap per-run
    sessions when scenarios execute serially in-process.
    """

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self._previous: Telemetry | None = None

    def __enter__(self) -> Telemetry:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.telemetry
        return self.telemetry

    def __exit__(self, *exc: object) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


class telemetry_session:
    """Activate a new session and, on exit, write its summary artifacts.

    ``directory=None`` still activates an in-memory session (useful for
    embedders that read :meth:`Telemetry.snapshot` directly); with a
    directory, exit writes ``run_metrics.json`` and ``metrics.prom``
    alongside the per-process ``events-*.jsonl`` sink unless
    ``write_metrics=False`` (campaign workers disable it; the dispatcher
    merges their snapshots into one campaign-level metrics file instead).
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        label: str = "run",
        run_id: str | None = None,
        meta: dict | None = None,
        kind: str = "flow",
        write_metrics: bool = True,
    ) -> None:
        self.telemetry = Telemetry(
            directory, label=label, run_id=run_id, meta=meta
        )
        self.kind = kind
        self.write_metrics = write_metrics
        self._session = session(self.telemetry)

    def __enter__(self) -> Telemetry:
        return self._session.__enter__()

    def __exit__(self, *exc: object) -> bool:
        self._session.__exit__(*exc)
        self.telemetry.close()
        if self.write_metrics and self.telemetry.directory is not None:
            from repro.obs.metrics import write_metrics_files

            write_metrics_files(
                self.telemetry.directory, self.telemetry, kind=self.kind
            )
        return False


def events_of(telemetry: Telemetry, name: str) -> Iterator[dict]:
    """The session's buffered events with the given name, in order."""
    return (e for e in telemetry.events if e.get("event") == name)
