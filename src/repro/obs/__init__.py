"""Telemetry subsystem: hierarchical spans, convergence events, metrics.

See :mod:`repro.obs.telemetry` for the recording surface,
:mod:`repro.obs.metrics` for the ``run_metrics.json`` / Prometheus
artifacts, and :mod:`repro.obs.trace` for the ``repro trace`` renderer.
"""

from repro.obs.metrics import (
    METRICS_FORMAT,
    build_campaign_metrics,
    build_run_metrics,
    prometheus_exposition,
    write_metrics_files,
)
from repro.obs.telemetry import (
    Telemetry,
    active,
    emit,
    gauge,
    incr,
    next_seq,
    session,
    span,
    telemetry_session,
)
from repro.obs.trace import load_trace_payload, render_trace

__all__ = [
    "METRICS_FORMAT",
    "Telemetry",
    "active",
    "build_campaign_metrics",
    "build_run_metrics",
    "emit",
    "gauge",
    "incr",
    "load_trace_payload",
    "next_seq",
    "prometheus_exposition",
    "render_trace",
    "session",
    "span",
    "telemetry_session",
    "write_metrics_files",
]
