"""Default backend: the exact numpy/scipy calls the legacy code made.

Each primitive delegates to the identical library call the pre-backend
code used at its call sites, so routing through ``NumpyBackend`` is
numerically bit-identical to the direct-call code.  The equivalence is
pinned by ``tests/test_backend.py`` against the reference-kernel
oracle.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.linalg

__all__ = ["NumpyBackend"]


class NumpyBackend:
    """Host CPU backend; the numerical reference for every other one."""

    name = "numpy"
    device = "cpu"

    @property
    def xp(self) -> Any:
        return np

    # -- transfer ----------------------------------------------------
    def asarray(self, a: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(a, dtype=dtype)

    def to_device(self, a: Any) -> np.ndarray:
        return np.asarray(a)

    def from_device(self, a: Any) -> np.ndarray:
        return np.asarray(a)

    # -- factorizations ----------------------------------------------
    def qr_r(self, a: Any) -> np.ndarray:
        return np.linalg.qr(a, mode="r")

    def qr_reduced(self, a: Any) -> tuple[np.ndarray, np.ndarray]:
        return np.linalg.qr(a)

    def cholesky(self, a: Any) -> np.ndarray:
        return np.linalg.cholesky(a)

    def cho_solve(self, chol: Any, rhs: Any) -> np.ndarray:
        return scipy.linalg.cho_solve((chol, True), rhs, check_finite=False)

    # -- solves ------------------------------------------------------
    def lstsq(self, a: Any, b: Any) -> np.ndarray:
        return np.linalg.lstsq(a, b, rcond=None)[0]

    def solve(self, a: Any, b: Any) -> np.ndarray:
        return np.linalg.solve(a, b)

    def inv(self, a: Any) -> np.ndarray:
        return np.linalg.inv(a)

    # -- spectral ----------------------------------------------------
    def svd(self, a: Any, *, compute_uv: bool = True) -> Any:
        return np.linalg.svd(a, compute_uv=compute_uv)

    def eigvals(self, a: Any, *, overwrite: bool = False) -> np.ndarray:
        if overwrite:
            # The large-Hamiltonian call site: scipy's driver with the
            # copy elided, exactly as the legacy code called it.
            return scipy.linalg.eigvals(a, check_finite=False,
                                        overwrite_a=True)
        return np.linalg.eigvals(a)

    def eig(self, a: Any) -> tuple[np.ndarray, np.ndarray]:
        return np.linalg.eig(a)

    def eigh(self, a: Any) -> tuple[np.ndarray, np.ndarray]:
        return np.linalg.eigh(a)

    # -- contractions ------------------------------------------------
    def einsum(self, subscripts: str, *operands: Any, **kwargs: Any) -> np.ndarray:
        return np.einsum(subscripts, *operands, **kwargs)

    def kron(self, a: Any, b: Any) -> np.ndarray:
        return np.kron(a, b)
