"""Pluggable array backends for the dense-numerics kernels.

``repro.backend`` decouples the solver stack (vector fitting,
passivity cost/QP, Hamiltonian tests) from the array library executing
it.  The :class:`Backend` protocol names the ~10 linalg primitives the
codebase uses; :class:`NumpyBackend` is the default and is numerically
identical to the pre-backend direct-call code; cupy/jax backends are
opt-in (``pip install 'repro-pdn-passivity[gpu]'`` / ``[jax]``) and
degrade to numpy per-op -- bumping the ``fallback.backend`` counter --
when the device raises or returns non-finite results.

Select a backend with ``backend="..."`` on :class:`~repro.vectfit.
options.VFOptions` / :class:`~repro.passivity.enforce.
EnforcementOptions` / :class:`~repro.api.config.ReproConfig` /
:class:`~repro.campaign.scenario.ScenarioSpec`, with ``--backend`` on
``repro fit/flow/campaign``, or directly::

    from repro.backend import use_backend

    with use_backend("cupy"):
        result = vector_fit(omega, samples, options=options)
"""

from repro.backend.base import Backend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import (
    KNOWN_BACKENDS,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
    use_backend,
    validate_backend_name,
)

__all__ = [
    "Backend",
    "NumpyBackend",
    "KNOWN_BACKENDS",
    "active_backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "use_backend",
    "validate_backend_name",
]
