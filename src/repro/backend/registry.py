"""Backend registry: named factories, auto-detection, active selection.

The active backend is process-/context-local (a ``contextvars``
variable) and defaults to numpy; solver entry points wrap their bodies
in :func:`use_backend` with the name carried by their options object,
so the selection plumbs end-to-end (``VFOptions.backend``,
``EnforcementOptions.backend``, ``ScenarioSpec.backend``,
``--backend`` on the CLI) without any global mutable state leaking
across campaign workers.

``"auto"`` resolves to the first *importable* accelerator library in
preference order (cupy, then jax) and otherwise numpy, so machines
without a device silently keep today's exact behavior.  Device
backends are wrapped in
:class:`~repro.backend.device.ResilientBackend` at construction: a
raising or non-finite device primitive re-runs on numpy and bumps the
``fallback.backend`` counter.
"""

from __future__ import annotations

import contextlib
import contextvars
import importlib.util
from typing import Any, Callable, Iterator

from repro.backend.numpy_backend import NumpyBackend

__all__ = [
    "KNOWN_BACKENDS", "register_backend", "available_backends",
    "get_backend", "active_backend", "use_backend", "resolve_backend_name",
    "validate_backend_name",
]

#: Names accepted by every ``backend=`` option (besides "auto").
KNOWN_BACKENDS = ("numpy", "cupy", "jax", "array_api_strict")

#: Auto-detection preference order for "auto".
_AUTO_ORDER = ("cupy", "jax")


def _make_numpy() -> Any:
    return NumpyBackend()


def _make_cupy() -> Any:
    from repro.backend.device import CupyBackend, ResilientBackend
    return ResilientBackend(CupyBackend())


def _make_jax() -> Any:
    from repro.backend.device import JaxBackend, ResilientBackend
    return ResilientBackend(JaxBackend())


def _make_array_api_strict() -> Any:
    from repro.backend.device import ArrayApiStrictBackend
    return ArrayApiStrictBackend()


_FACTORIES: dict[str, Callable[[], Any]] = {
    "numpy": _make_numpy,
    "cupy": _make_cupy,
    "jax": _make_jax,
    "array_api_strict": _make_array_api_strict,
}
_INSTANCES: dict[str, Any] = {}


def register_backend(name: str, factory: Callable[[], Any]) -> None:
    """Register (or replace) a named backend factory."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered names whose library is importable right now."""
    names = []
    for name in _FACTORIES:
        module = {"numpy": "numpy", "cupy": "cupy", "jax": "jax",
                  "array_api_strict": "array_api_strict"}.get(name)
        if module is None or importlib.util.find_spec(module) is not None:
            names.append(name)
    return tuple(names)


def resolve_backend_name(name: str | None) -> str:
    """Concrete backend name for ``name`` (``None``/"auto" detect)."""
    if name in (None, "auto"):
        for candidate in _AUTO_ORDER:
            if importlib.util.find_spec(candidate) is not None:
                return candidate
        return "numpy"
    return name


def validate_backend_name(name: str) -> str:
    """``name`` when legal for an options field; raise otherwise."""
    legal = ("auto",) + tuple(_FACTORIES)
    if name not in legal:
        raise ValueError(
            f"backend must be one of {legal}, got {name!r}")
    return name


def get_backend(name: str | None = "auto") -> Any:
    """The (cached) backend instance for ``name``.

    Raises an ``ImportError`` naming the pyproject extra when the
    resolved backend's library is not installed.
    """
    resolved = resolve_backend_name(name)
    if resolved not in _FACTORIES:
        raise ValueError(
            f"unknown backend {resolved!r}; registered: "
            f"{tuple(_FACTORIES)}")
    instance = _INSTANCES.get(resolved)
    if instance is None:
        instance = _FACTORIES[resolved]()
        _INSTANCES[resolved] = instance
    return instance


_ACTIVE: contextvars.ContextVar[Any | None] = contextvars.ContextVar(
    "repro_backend_active", default=None)
_DEFAULT = NumpyBackend()


def active_backend() -> Any:
    """The backend the current context routes dense numerics through."""
    backend = _ACTIVE.get()
    return _DEFAULT if backend is None else backend


@contextlib.contextmanager
def use_backend(name: str | Any | None = "auto") -> Iterator[Any]:
    """Run the enclosed block with ``name`` as the active backend.

    Accepts a registered name, "auto", ``None`` (keep the current
    selection), or a backend instance.  Activating a non-numpy backend
    emits a ``backend.active`` telemetry event and gauges its
    selection, so traces record which device ran the kernels.
    """
    if name is None:
        yield active_backend()
        return
    backend = name if not isinstance(name, str) else get_backend(name)
    if backend.name != "numpy":
        # Late import: the backend layer must stay import-time
        # independent of repro.obs (telemetry-hook pattern), and
        # non-numpy activation is rare enough that the lookup is free.
        from repro.obs import telemetry as obs

        obs.emit("backend.active", backend=backend.name,
                 device=backend.device)
        obs.gauge(f"backend.active.{backend.name}", 1)
    token = _ACTIVE.set(backend)
    try:
        yield backend
    finally:
        _ACTIVE.reset(token)
