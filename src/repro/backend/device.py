"""Accelerator backends (cupy, jax) and the numpy-fallback wrapper.

Both device backends are optional: the classes import their library
lazily and raise an ``ImportError`` naming the ``pyproject`` extra
(``repro-pdn-passivity[gpu]`` / ``[jax]``) when it is missing.  At
runtime every device backend is wrapped in :class:`ResilientBackend`,
which retries any primitive that raises -- or that returns non-finite
values where the inputs were finite -- on the host
:class:`~repro.backend.numpy_backend.NumpyBackend`, bumping the
``fallback.backend`` telemetry counter so degraded runs are visible in
``repro trace``.
"""

from __future__ import annotations

import importlib
from typing import Any

import numpy as np

from repro.backend.numpy_backend import NumpyBackend

__all__ = ["CupyBackend", "JaxBackend", "ArrayApiStrictBackend",
           "ResilientBackend", "missing_backend_error"]


def missing_backend_error(name: str, module: str, extra: str) -> ImportError:
    """The error raised when an optional backend's library is absent."""
    return ImportError(
        f"backend '{name}' requires the optional dependency '{module}'; "
        f"install it with: pip install 'repro-pdn-passivity[{extra}]'"
    )


def _import_or_raise(name: str, module: str, extra: str) -> Any:
    try:
        return importlib.import_module(module)
    except ImportError as exc:
        raise missing_backend_error(name, module, extra) from exc


class CupyBackend:
    """CUDA backend via cupy; install with the ``gpu`` extra.

    All primitives run on the device except the general nonsymmetric
    eigenproblem (``eigvals``/``eig``), which cuSOLVER does not
    provide -- those round-trip through the host LAPACK deliberately
    (no fallback counter: it is the documented path, not a failure).
    """

    name = "cupy"

    def __init__(self) -> None:
        cp = _import_or_raise("cupy", "cupy", "gpu")
        self._cp = cp
        self._host = NumpyBackend()
        self.device = f"cuda:{cp.cuda.runtime.getDevice()}"

    @property
    def xp(self) -> Any:
        return self._cp

    def asarray(self, a: Any, dtype: Any = None) -> Any:
        return self._cp.asarray(a, dtype=dtype)

    def to_device(self, a: Any) -> Any:
        return self._cp.asarray(a)

    def from_device(self, a: Any) -> np.ndarray:
        return self._cp.asnumpy(a)

    def qr_r(self, a: Any) -> Any:
        return self._cp.linalg.qr(a, mode="r")

    def qr_reduced(self, a: Any) -> Any:
        return self._cp.linalg.qr(a)

    def cholesky(self, a: Any) -> Any:
        return self._cp.linalg.cholesky(a)

    def cho_solve(self, chol: Any, rhs: Any) -> Any:
        cp = self._cp
        y = cp.linalg.solve(chol, cp.asarray(rhs))
        return cp.linalg.solve(cp.conj(chol.T), y)

    def lstsq(self, a: Any, b: Any) -> Any:
        return self._cp.linalg.lstsq(a, b, rcond=None)[0]

    def solve(self, a: Any, b: Any) -> Any:
        return self._cp.linalg.solve(a, b)

    def inv(self, a: Any) -> Any:
        return self._cp.linalg.inv(a)

    def svd(self, a: Any, *, compute_uv: bool = True) -> Any:
        return self._cp.linalg.svd(a, compute_uv=compute_uv)

    def eigvals(self, a: Any, *, overwrite: bool = False) -> Any:
        del overwrite  # the host copy is unavoidable here
        values = self._host.eigvals(self.from_device(a))
        return self._cp.asarray(values)

    def eig(self, a: Any) -> Any:
        values, vectors = self._host.eig(self.from_device(a))
        return self._cp.asarray(values), self._cp.asarray(vectors)

    def eigh(self, a: Any) -> Any:
        return self._cp.linalg.eigh(a)

    def einsum(self, subscripts: str, *operands: Any, **kwargs: Any) -> Any:
        return self._cp.einsum(subscripts, *operands, **kwargs)

    def kron(self, a: Any, b: Any) -> Any:
        return self._cp.kron(a, b)


class JaxBackend:
    """XLA backend via jax; install with the ``jax`` extra.

    64-bit mode is enabled on construction (the solvers are double
    precision throughout); the general eigenproblem runs wherever
    ``jnp.linalg.eig`` is supported and otherwise falls back through
    :class:`ResilientBackend`.
    """

    name = "jax"

    def __init__(self) -> None:
        jax = _import_or_raise("jax", "jax", "jax")
        jax.config.update("jax_enable_x64", True)
        self._jax = jax
        self._jnp = jax.numpy
        device = jax.devices()[0]
        self.device = f"{device.platform}:{getattr(device, 'id', 0)}"

    @property
    def xp(self) -> Any:
        return self._jnp

    def asarray(self, a: Any, dtype: Any = None) -> Any:
        return self._jnp.asarray(a, dtype=dtype)

    def to_device(self, a: Any) -> Any:
        return self._jnp.asarray(a)

    def from_device(self, a: Any) -> np.ndarray:
        return np.asarray(a)

    def qr_r(self, a: Any) -> Any:
        return self._jnp.linalg.qr(a, mode="r")

    def qr_reduced(self, a: Any) -> Any:
        return self._jnp.linalg.qr(a)

    def cholesky(self, a: Any) -> Any:
        return self._jnp.linalg.cholesky(a)

    def cho_solve(self, chol: Any, rhs: Any) -> Any:
        return self._jax.scipy.linalg.cho_solve(
            (chol, True), self._jnp.asarray(rhs))

    def lstsq(self, a: Any, b: Any) -> Any:
        return self._jnp.linalg.lstsq(a, b, rcond=None)[0]

    def solve(self, a: Any, b: Any) -> Any:
        return self._jnp.linalg.solve(a, b)

    def inv(self, a: Any) -> Any:
        return self._jnp.linalg.inv(a)

    def svd(self, a: Any, *, compute_uv: bool = True) -> Any:
        return self._jnp.linalg.svd(a, compute_uv=compute_uv)

    def eigvals(self, a: Any, *, overwrite: bool = False) -> Any:
        del overwrite
        return self._jnp.linalg.eigvals(a)

    def eig(self, a: Any) -> Any:
        return self._jnp.linalg.eig(a)

    def eigh(self, a: Any) -> Any:
        return self._jnp.linalg.eigh(a)

    def einsum(self, subscripts: str, *operands: Any, **kwargs: Any) -> Any:
        return self._jnp.einsum(subscripts, *operands, **kwargs)

    def kron(self, a: Any, b: Any) -> Any:
        return self._jnp.kron(a, b)


class ArrayApiStrictBackend:
    """Compatibility backend over ``array_api_strict``.

    Exercises the protocol surface against the standard array-API
    namespace: everything the standard's linalg extension covers runs
    through it; the few primitives outside the standard (``lstsq``,
    general ``eig``, ``cho_solve``) round-trip through the host
    reference implementation, which is exactly what a minimal
    array-API device library would have to do.
    """

    name = "array_api_strict"
    device = "cpu"

    def __init__(self) -> None:
        self._xp = _import_or_raise(
            "array_api_strict", "array_api_strict", "dev")
        self._host = NumpyBackend()

    @property
    def xp(self) -> Any:
        return self._xp

    def asarray(self, a: Any, dtype: Any = None) -> Any:
        if dtype is not None:
            return self._xp.asarray(np.asarray(a, dtype=dtype))
        return self._xp.asarray(np.asarray(a))

    def to_device(self, a: Any) -> Any:
        return self.asarray(a)

    def from_device(self, a: Any) -> np.ndarray:
        return np.asarray(a)

    def qr_r(self, a: Any) -> Any:
        return self._xp.linalg.qr(a, mode="reduced").R

    def qr_reduced(self, a: Any) -> Any:
        q, r = self._xp.linalg.qr(a, mode="reduced")
        return q, r

    def cholesky(self, a: Any) -> Any:
        return self._xp.linalg.cholesky(a)

    def cho_solve(self, chol: Any, rhs: Any) -> Any:
        return self.asarray(self._host.cho_solve(
            self.from_device(chol), np.asarray(rhs)))

    def lstsq(self, a: Any, b: Any) -> Any:
        return self.asarray(self._host.lstsq(
            self.from_device(a), self.from_device(b)))

    def solve(self, a: Any, b: Any) -> Any:
        return self._xp.linalg.solve(a, b)

    def inv(self, a: Any) -> Any:
        return self._xp.linalg.inv(a)

    def svd(self, a: Any, *, compute_uv: bool = True) -> Any:
        if compute_uv:
            u, s, vh = self._xp.linalg.svd(a)
            return u, s, vh
        return self._xp.linalg.svdvals(a)

    def eigvals(self, a: Any, *, overwrite: bool = False) -> Any:
        del overwrite
        return self.asarray(self._host.eigvals(self.from_device(a)))

    def eig(self, a: Any) -> Any:
        values, vectors = self._host.eig(self.from_device(a))
        return self.asarray(values), self.asarray(vectors)

    def eigh(self, a: Any) -> Any:
        result = self._xp.linalg.eigh(a)
        return result.eigenvalues, result.eigenvectors

    def einsum(self, subscripts: str, *operands: Any, **kwargs: Any) -> Any:
        host = self._host.einsum(
            subscripts, *[self.from_device(op) for op in operands], **kwargs)
        return self.asarray(host)

    def kron(self, a: Any, b: Any) -> Any:
        return self.asarray(self._host.kron(
            self.from_device(a), self.from_device(b)))


_WRAPPED_OPS = (
    "qr_r", "qr_reduced", "cholesky", "cho_solve", "lstsq", "solve",
    "inv", "svd", "eigvals", "eig", "eigh", "einsum", "kron",
)


def _all_finite(xp: Any, result: Any) -> bool:
    parts = result if isinstance(result, tuple) else (result,)
    for part in parts:
        dtype = getattr(part, "dtype", None)
        if dtype is None or getattr(dtype, "kind", "f") not in "fc":
            continue
        if not bool(xp.all(xp.isfinite(part))):
            return False
    return True


class ResilientBackend:
    """Device backend with a per-op numpy safety net.

    Every linalg primitive of ``inner`` is retried on the host
    :class:`NumpyBackend` when it raises or returns non-finite values;
    each rescue bumps the ``fallback.backend`` counter and emits a
    ``backend.fallback`` event naming the op, so accelerator trouble
    degrades a run to CPU speed instead of failing it -- and is
    visible in the trace.
    """

    def __init__(self, inner: Any, host: NumpyBackend | None = None) -> None:
        self._inner = inner
        self._host = host or NumpyBackend()
        self.name = inner.name
        self.device = inner.device

    @property
    def xp(self) -> Any:
        return self._inner.xp

    def asarray(self, a: Any, dtype: Any = None) -> Any:
        return self._inner.asarray(a, dtype=dtype)

    def to_device(self, a: Any) -> Any:
        return self._inner.to_device(a)

    def from_device(self, a: Any) -> np.ndarray:
        return self._inner.from_device(a)

    def _host_args(self, args: tuple) -> tuple:
        return tuple(
            self._inner.from_device(arg)
            if not isinstance(arg, (str, int, float, bool, type(None)))
            else arg
            for arg in args
        )

    def _rescue(self, op: str, reason: str, args: tuple, kwargs: dict) -> Any:
        # Late import keeps the backend layer import-time independent of
        # repro.obs (telemetry-hook pattern, cf. repro.util.linalg); the
        # rescue path is already the slow path, so the lookup is free.
        from repro.obs import telemetry as obs

        obs.incr("fallback.backend")
        obs.emit("backend.fallback", backend=self.name, op=op,
                 reason=reason)
        return getattr(self._host, op)(*self._host_args(args), **kwargs)

    def __getattr__(self, op: str) -> Any:
        if op not in _WRAPPED_OPS:
            raise AttributeError(op)
        inner_op = getattr(self._inner, op)

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            try:
                result = inner_op(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 -- any device failure
                return self._rescue(op, type(exc).__name__, args, kwargs)
            if not _all_finite(self._inner.xp, result):
                return self._rescue(op, "non-finite", args, kwargs)
            return result

        return wrapped
