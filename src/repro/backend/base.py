"""The array-backend protocol: the linalg surface the solvers consume.

Every dense-numerics call site in the repository (vector-fitting
kernels, passivity cost factorization, QP assembly, Hamiltonian
eigensolves) routes through an object satisfying :class:`Backend`
instead of calling ``numpy``/``scipy.linalg`` directly.  The protocol
is deliberately small -- the ~10 primitives the codebase actually
uses -- so a new accelerator backend is a single class, not a sweep
through a dozen modules:

``xp``
    The array namespace (``numpy``, ``cupy``, ``jax.numpy``, ...) for
    element-wise work that needs no special routing.
``qr_r`` / ``qr_reduced``
    Batched triangular-only and thin QR (the VF relocation
    compression).
``lstsq``
    Minimum-norm multi-RHS least squares, ``rcond=None`` semantics
    (the equilibrated residue/sigma solves).
``svd`` / ``eigvals`` / ``eig`` / ``eigh``
    Batched spectral primitives (constraint selection, sigma zeros,
    Hamiltonian test, cost repair).
``cholesky`` / ``cho_solve`` / ``solve`` / ``inv``
    The factorization set of the QP cost operator.
``einsum`` / ``kron``
    The structured contractions of the QP fast path and the
    state-space embedding.
``to_device`` / ``from_device``
    Host <-> accelerator transfer; both are identity for numpy.

The default :class:`~repro.backend.numpy_backend.NumpyBackend`
delegates each primitive to the *exact* call the legacy code made
(``np.linalg.lstsq(..., rcond=None)``, ``scipy.linalg.cho_solve(...,
check_finite=False)``, ...), so the numpy path is bit-identical to the
pre-backend code and stays pinned by the reference-kernel oracle
tests.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = ["Backend"]


@runtime_checkable
class Backend(Protocol):
    """Protocol of the array/linalg surface the solver stack consumes."""

    name: str
    device: str

    @property
    def xp(self) -> Any:
        """The array namespace of this backend."""

    # -- transfer ----------------------------------------------------
    def asarray(self, a: Any, dtype: Any = None) -> Any:
        """``a`` as a backend-native array."""

    def to_device(self, a: Any) -> Any:
        """Move a host array onto this backend's device."""

    def from_device(self, a: Any) -> Any:
        """Move a backend array back to a host numpy array."""

    # -- factorizations ----------------------------------------------
    def qr_r(self, a: Any) -> Any:
        """Triangular factor(s) of a (batched) QR, ``mode='r'``."""

    def qr_reduced(self, a: Any) -> Any:
        """Thin QR ``(q, r)`` of a (batched) matrix."""

    def cholesky(self, a: Any) -> Any:
        """Lower-triangular (batched) Cholesky factor."""

    def cho_solve(self, chol: Any, rhs: Any) -> Any:
        """Solve ``A x = rhs`` from a lower Cholesky factor of ``A``."""

    # -- solves ------------------------------------------------------
    def lstsq(self, a: Any, b: Any) -> Any:
        """Minimum-norm least-squares solution (``rcond=None``)."""

    def solve(self, a: Any, b: Any) -> Any:
        """Solution of the (batched) square system ``A x = b``."""

    def inv(self, a: Any) -> Any:
        """Matrix inverse."""

    # -- spectral ----------------------------------------------------
    def svd(self, a: Any, *, compute_uv: bool = True) -> Any:
        """(Batched) singular value decomposition."""

    def eigvals(self, a: Any, *, overwrite: bool = False) -> Any:
        """Eigenvalues of a general matrix.

        ``overwrite=True`` permits destroying ``a`` (the large
        Hamiltonian call site).
        """

    def eig(self, a: Any) -> Any:
        """Eigenvalues and right eigenvectors of a general matrix."""

    def eigh(self, a: Any) -> Any:
        """Eigendecomposition of a Hermitian (batched) matrix."""

    # -- contractions ------------------------------------------------
    def einsum(self, subscripts: str, *operands: Any, **kwargs: Any) -> Any:
        """Einstein summation."""

    def kron(self, a: Any, b: Any) -> Any:
        """Kronecker product."""
