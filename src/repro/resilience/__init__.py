"""Resilient execution layer: typed failures, fault injection, retries.

Three pillars, consumed across the solver and campaign layers:

* :mod:`repro.resilience.errors` -- the structured :class:`ReproError`
  taxonomy whose ``error_code`` strings land in run records, manifests
  and telemetry;
* :mod:`repro.resilience.retry` -- the campaign
  :class:`RetryPolicy` (max retries, deterministic exponential backoff,
  retry budget, per-scenario timeout);
* :mod:`repro.resilience.faultinject` -- the deterministic
  fault-injection harness that proves the solver fallback ladders and
  retry paths end-to-end (activated via the ``REPRO_FAULT_PLAN``
  environment variable so it crosses process boundaries into campaign
  workers).

The solver fallback ladders themselves live next to the solvers they
guard (batched VF kernel -> reference kernel in
:mod:`repro.vectfit.core`, sampling -> exact Hamiltonian check in
:mod:`repro.passivity.engine` / :mod:`repro.passivity.enforce`,
structured QP -> Tikhonov rungs -> dense dual in
:mod:`repro.passivity.qp`); each attempt increments a ``fallback.*``
telemetry counter.
"""

from repro.resilience.errors import (
    CheckerError,
    FitDivergedError,
    IngestError,
    QPInfeasibleError,
    ReproError,
    StageOutputError,
    StageTimeoutError,
    WorkerCrashError,
    error_code_of,
    stage_of,
)
from repro.resilience.faultinject import FaultSpec, InjectedFault, fault_plan
from repro.resilience.guards import ensure_finite_outputs, nonfinite_in
from repro.resilience.retry import RetryPolicy, jitter_fraction

__all__ = [
    "CheckerError",
    "FaultSpec",
    "FitDivergedError",
    "IngestError",
    "InjectedFault",
    "QPInfeasibleError",
    "ReproError",
    "RetryPolicy",
    "StageOutputError",
    "StageTimeoutError",
    "WorkerCrashError",
    "ensure_finite_outputs",
    "error_code_of",
    "fault_plan",
    "jitter_fraction",
    "nonfinite_in",
    "stage_of",
]
