"""NaN/Inf guards at pipeline stage boundaries.

A stage that silently emits non-finite arrays poisons every downstream
LAPACK call, and the eventual failure (an eigensolver non-convergence
three stages later, or a quietly wrong table) is far harder to read than
the cause.  :func:`ensure_finite_outputs` walks a stage's declared output
artifacts -- float/complex ndarrays, pole-residue models, and the
model-bearing result dataclasses -- and raises a typed
:class:`~repro.resilience.errors.StageOutputError` naming the stage and
artifact at the boundary instead.

The walk is shallow and cheap (``np.isfinite`` over arrays the stage
just produced anyway); on the clean path it is a negligible fraction of
any stage's own linear algebra.
"""

from __future__ import annotations

import numpy as np

from repro.resilience.errors import StageOutputError

__all__ = ["ensure_finite_outputs", "nonfinite_in"]


def _array_ok(value: np.ndarray) -> bool:
    if value.dtype.kind not in "fc":
        return True  # int/bool/str arrays cannot hold NaN/Inf
    return bool(np.isfinite(value).all())


def _model_offender(model) -> str | None:
    """First non-finite defining array of a pole-residue model."""
    for attr in ("poles", "residues", "const"):
        part = getattr(model, attr, None)
        if part is not None and not _array_ok(np.asarray(part)):
            return attr
    return None


def nonfinite_in(name: str, value) -> str | None:
    """Description of the first non-finite part of one artifact.

    Returns ``None`` when the artifact is clean (or of a type the guard
    does not inspect).  Covered: ndarrays, pole-residue models (via
    their defining arrays), and any object exposing a ``model``
    attribute that is itself guarded (fit results, enforcement results).
    """
    if isinstance(value, np.ndarray):
        if not _array_ok(value):
            return f"{name}: array contains NaN/Inf"
        return None
    # Pole-residue models and NetworkData-like containers.
    if hasattr(value, "poles") and hasattr(value, "residues"):
        offender = _model_offender(value)
        if offender is not None:
            return f"{name}: model {offender} contain NaN/Inf"
        return None
    if hasattr(value, "omega") and hasattr(value, "samples"):
        for attr in ("omega", "samples"):
            part = np.asarray(getattr(value, attr))
            if not _array_ok(part):
                return f"{name}: network {attr} contain NaN/Inf"
        return None
    inner = getattr(value, "model", None)
    if inner is not None and hasattr(inner, "poles"):
        offender = _model_offender(inner)
        if offender is not None:
            return f"{name}: model {offender} contain NaN/Inf"
    return None


def ensure_finite_outputs(stage: str, values: dict) -> None:
    """Raise :class:`StageOutputError` when any output is non-finite."""
    for name, value in values.items():
        offender = nonfinite_in(name, value)
        if offender is not None:
            raise StageOutputError(
                f"stage {stage!r} produced a non-finite artifact "
                f"({offender})",
                stage=stage,
            )
