"""Structured error taxonomy for the resilient execution layer.

Every failure the engine knows how to recover from (or at least to
report precisely) is a :class:`ReproError` subclass carrying three pieces
of machine-readable context:

* ``error_code`` -- a stable short string (``"qp_infeasible"``,
  ``"worker_crash"``, ...) that lands in campaign run records, the
  manifest, and telemetry counters, so failures can be queried and
  aggregated without parsing messages;
* ``stage`` -- the pipeline stage (or solver site) that raised;
* ``scenario`` -- the campaign run id, when known.

Subclasses double-inherit from the builtin exception their call sites
historically raised (``IngestError`` is a ``ValueError``,
``StageTimeoutError`` a ``TimeoutError``), so pre-existing ``except``
clauses keep working while new code can catch the whole taxonomy with
``except ReproError``.

For exceptions from *outside* the taxonomy (a LAPACK convergence error,
a pickling failure), :func:`error_code_of` classifies by type and
:func:`stage_of` recovers the failing stage from the ``repro_stage``
attribute the pipeline engine attaches while unwinding.
"""

from __future__ import annotations

__all__ = [
    "CheckerError",
    "FitDivergedError",
    "IngestError",
    "QPInfeasibleError",
    "ReproError",
    "StageOutputError",
    "StageTimeoutError",
    "WorkerCrashError",
    "error_code_of",
    "stage_of",
]


class ReproError(Exception):
    """Base of the structured failure taxonomy.

    ``stage`` and ``scenario`` are optional context attached at raise
    time (or later, by the layer that knows them); ``error_code`` is a
    class-level constant identifying the failure kind.
    """

    error_code = "error"

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        scenario: str | None = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.scenario = scenario

    def to_dict(self) -> dict:
        """JSON-compatible summary for run records and telemetry."""
        return {
            "error_code": self.error_code,
            "stage": self.stage,
            "scenario": self.scenario,
            "message": str(self),
        }


class IngestError(ReproError, ValueError):
    """Touchstone/termination ingest failed (bad file, bad spec).

    Also a ``ValueError`` because that is what the ingest layer raised
    before the taxonomy existed -- CLI handlers catching
    ``(OSError, ValueError)`` keep working.
    """

    error_code = "ingest"


class FitDivergedError(ReproError):
    """Vector fitting produced non-finite poles or residues even after
    falling back to the reference kernel."""

    error_code = "fit_diverged"


class QPInfeasibleError(ReproError):
    """The enforcement QP could not be solved: the structured ladder and
    the dense dual route both failed or returned non-finite steps."""

    error_code = "qp_infeasible"


class CheckerError(ReproError):
    """A passivity check degraded irrecoverably (non-finite singular
    values, Hamiltonian eigensolve failure)."""

    error_code = "checker"


class StageOutputError(ReproError, ValueError):
    """A pipeline stage emitted NaN/Inf arrays or a malformed model.

    Raised at the stage boundary so the poisoned artifact never reaches
    downstream LAPACK calls (whose failure modes are far less readable).
    Also a ``ValueError``, like ``IngestError``: the in-stage validation
    sites that now raise it (degenerate weights, non-finite
    sensitivities) historically raised ``ValueError``, and callers
    catching that keep working.
    """

    error_code = "stage_output"


class WorkerCrashError(ReproError):
    """A campaign worker process died (segfault, OOM kill, hard exit)."""

    error_code = "worker_crash"


class StageTimeoutError(ReproError, TimeoutError):
    """A scenario exceeded its per-scenario wall-clock budget."""

    error_code = "stage_timeout"


def error_code_of(exc: BaseException) -> str:
    """Stable machine-readable code for any exception.

    Taxonomy members report their own ``error_code``; foreign exceptions
    are classified by type so run records never carry a bare
    ``"exception"`` for the handful of failure kinds worth querying.
    """
    code = getattr(exc, "error_code", None)
    if isinstance(code, str) and code:
        return code
    if isinstance(exc, MemoryError):
        return "out_of_memory"
    if isinstance(exc, TimeoutError):
        return "stage_timeout"
    if isinstance(exc, OSError):
        return "os_error"
    if isinstance(exc, ValueError):
        return "value_error"
    if isinstance(exc, ArithmeticError):
        return "arithmetic_error"
    return "exception"


def stage_of(exc: BaseException) -> str | None:
    """The failing stage, from taxonomy context or the pipeline tag.

    The pipeline engine attaches ``repro_stage`` to any exception that
    unwinds through a stage; taxonomy members may carry an explicit
    ``stage`` set closer to the failure.
    """
    stage = getattr(exc, "stage", None)
    if isinstance(stage, str) and stage:
        return stage
    tagged = getattr(exc, "repro_stage", None)
    if isinstance(tagged, str) and tagged:
        return tagged
    return None
