"""Campaign retry/timeout policy with deterministic backoff.

The campaign executor consults one :class:`RetryPolicy` per run: how many
times a failed scenario may be re-attempted, how long to back off between
attempts, how many retries the whole campaign may spend, and the
per-scenario wall-clock budget enforced through the process pool.

Backoff is exponential with *deterministic* jitter: the jitter fraction
is derived from a SHA-256 of ``(run_id, attempt)``, not from wall clock
or a random generator, so a re-run of the same campaign schedules the
same delays and nothing time- or RNG-dependent leaks into digests or
records.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass

__all__ = ["RetryPolicy", "jitter_fraction"]


def jitter_fraction(run_id: str, attempt: int) -> float:
    """Deterministic jitter in ``[0, 1)`` from the run id and attempt."""
    digest = hashlib.sha256(f"{run_id}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout configuration of one campaign run.

    Parameters
    ----------
    max_retries:
        Extra attempts granted to a failed scenario (0 disables retry;
        worker crashes and timeouts still get one requeue each -- see
        the executor).
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff: retry ``a`` (1-based) waits
        ``base * factor**(a-1)``, scaled by the deterministic jitter and
        capped at ``backoff_max_s``.
    jitter:
        Relative jitter amplitude: the delay is multiplied by
        ``1 + jitter * jitter_fraction(run_id, attempt)``.
    retry_budget:
        Campaign-wide cap on retries across all scenarios (``None`` =
        unlimited); keeps a systematically-failing sweep from doubling
        its own wall time.
    timeout_s:
        Per-scenario wall-clock budget, enforced by the dispatcher for
        pooled runs (a serial run cannot preempt itself).
    """

    max_retries: int = 0
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.25
    retry_budget: int | None = None
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0.0 or self.backoff_max_s < 0.0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError("timeout_s must be positive")

    def backoff_s(self, run_id: str, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based) of ``run_id``."""
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        scaled = base * (1.0 + self.jitter * jitter_fraction(run_id, attempt))
        return min(self.backoff_max_s, scaled)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RetryPolicy":
        return cls(**payload)
