"""Deterministic fault injection for resilience testing.

A *fault plan* is a list of :class:`FaultSpec` entries, each arming one
named instrumentation site (``"qp.structured"``, ``"checker.sampling"``,
``"scenario.run"``, ...) to misbehave on its k-th call: raise, poison the
payload with NaNs, scale it, stall, hang, or kill the process.  Sites are
instrumented with :func:`check` (count the call, return the armed action)
and :func:`corrupt` (apply array-poisoning actions in place of the clean
value).

Activation crosses process boundaries: :func:`activate` (or the
:class:`fault_plan` context manager) stores the plan both in this module
and in the ``REPRO_FAULT_PLAN`` environment variable as JSON, so campaign
worker processes -- forked or spawned after activation -- replay the same
plan.  Call counts are per-process and per-site, which keeps plans
deterministic under the process pool: a respawned worker starts counting
from zero again, so specs that must fire only on the first *scenario
attempt* pin ``attempt=0`` (the executor publishes the current attempt
via :func:`set_attempt`) and specs that must hit one scenario of a
campaign pin ``scenario`` to a run-id substring (published via
:func:`set_scenario`).

When no plan is active every hook is a module attribute load plus a
``None`` check -- the production hot paths pay essentially nothing.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.resilience.errors import ReproError

__all__ = [
    "ENV_PLAN",
    "FaultSpec",
    "InjectedFault",
    "activate",
    "check",
    "corrupt",
    "fault_plan",
    "plan_active",
    "reset_counters",
    "set_attempt",
    "set_scenario",
]

#: Environment variable carrying the JSON-encoded plan into workers.
ENV_PLAN = "REPRO_FAULT_PLAN"

_ACTIONS = ("raise", "nan", "scale", "stall", "hang", "exit")

#: Exit status of ``action="exit"`` workers; distinct from common codes
#: so a crash test can assert the kill was the injected one.
_EXIT_STATUS = 23


class InjectedFault(ReproError):
    """The exception raised by ``action="raise"`` faults."""

    error_code = "injected_fault"


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault.

    Parameters
    ----------
    site:
        Instrumentation site name the fault applies to.
    action:
        ``"raise"`` (raise :class:`InjectedFault`), ``"nan"`` (poison
        the site's payload array), ``"scale"`` (multiply the payload by
        ``factor``), ``"stall"`` (report a solver stall: the site
        returns its no-solution sentinel), ``"hang"`` (sleep
        ``seconds``), ``"exit"`` (kill the process with ``os._exit``).
    index / count:
        Fire on calls ``index .. index+count-1`` at the site (per
        process, 0-based).
    attempt:
        When set, fire only while the executor-published scenario
        attempt equals this value (lets retries succeed).
    scenario:
        When set, fire only while the executor-published run id
        contains this substring (targets one scenario of a campaign).
    seconds:
        Sleep duration of ``"hang"``.
    factor:
        Multiplier of ``"scale"``.
    """

    site: str
    action: str = "raise"
    index: int = 0
    count: int = 1
    attempt: int | None = None
    scenario: str | None = None
    seconds: float = 3600.0
    factor: float = 8.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.index < 0 or self.count < 1:
            raise ValueError("index must be >= 0 and count >= 1")

    def to_dict(self) -> dict:
        return {k: v for k, v in asdict(self).items() if v is not None}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        return cls(**payload)


_UNSET = object()
#: The resolved plan: _UNSET until first use, then list[FaultSpec] | None.
_PLAN = _UNSET
_CALLS: dict[str, int] = {}
_ATTEMPT = 0
_SCENARIO: str | None = None


def _resolve_plan():
    """Resolve the plan from the environment on first use (workers under
    a ``spawn`` start method import this module fresh)."""
    global _PLAN
    if _PLAN is _UNSET:
        raw = os.environ.get(ENV_PLAN)
        if raw:
            _PLAN = [FaultSpec.from_dict(d) for d in json.loads(raw)]
        else:
            _PLAN = None
    return _PLAN


def plan_active() -> bool:
    """Whether any fault plan is armed in this process."""
    return bool(_resolve_plan())


def activate(specs=None) -> None:
    """Arm ``specs`` (an iterable of :class:`FaultSpec`), or disarm with
    ``None``.  The plan is mirrored into :data:`ENV_PLAN` so processes
    started afterwards inherit it."""
    global _PLAN
    _CALLS.clear()
    if specs is None:
        _PLAN = None
        os.environ.pop(ENV_PLAN, None)
        return
    plan = [
        spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
        for spec in specs
    ]
    _PLAN = plan
    os.environ[ENV_PLAN] = json.dumps([spec.to_dict() for spec in plan])


def reset_counters() -> None:
    """Zero the per-site call counters (between test phases)."""
    _CALLS.clear()


def set_attempt(attempt: int) -> None:
    """Publish the current scenario attempt (see :attr:`FaultSpec.attempt`)."""
    global _ATTEMPT
    _ATTEMPT = int(attempt)


def set_scenario(run_id: str | None) -> None:
    """Publish the current run id (see :attr:`FaultSpec.scenario`)."""
    global _SCENARIO
    _SCENARIO = run_id


class fault_plan:
    """Context manager arming a plan for the dynamic extent (tests)."""

    def __init__(self, *specs: FaultSpec) -> None:
        self.specs = specs
        self._saved_env: str | None = None

    def __enter__(self) -> "fault_plan":
        self._saved_env = os.environ.get(ENV_PLAN)
        activate(self.specs)
        return self

    def __exit__(self, *exc: object) -> bool:
        activate(None)
        if self._saved_env is not None:
            os.environ[ENV_PLAN] = self._saved_env
            reset_counters()
            global _PLAN
            _PLAN = _UNSET
        return False


def check(site: str) -> str | None:
    """Count one call at ``site``; apply and report the armed action.

    Returns ``None`` (no fault), or the action string for actions the
    call site must apply itself (``"nan"``, ``"scale"``, ``"stall"``).
    ``"raise"`` raises :class:`InjectedFault` here; ``"hang"`` sleeps
    here; ``"exit"`` never returns.
    """
    plan = _PLAN
    if plan is _UNSET:
        plan = _resolve_plan()
    if plan is None:
        return None
    k = _CALLS.get(site, 0)
    _CALLS[site] = k + 1
    for spec in plan:
        if spec.site != site:
            continue
        if spec.attempt is not None and spec.attempt != _ATTEMPT:
            continue
        if spec.scenario is not None and (
            _SCENARIO is None or spec.scenario not in _SCENARIO
        ):
            continue
        if not (spec.index <= k < spec.index + spec.count):
            continue
        if spec.action == "raise":
            raise InjectedFault(
                f"injected fault at {site} (call {k})", stage=site
            )
        if spec.action == "hang":
            time.sleep(spec.seconds)
            return None
        if spec.action == "exit":
            os._exit(_EXIT_STATUS)
        return spec.action
    return None


def corrupt(site: str, value: np.ndarray) -> np.ndarray:
    """``value``, or a poisoned copy when an array fault is armed.

    ``"nan"`` replaces every entry with NaN; ``"scale"`` multiplies by
    the spec's ``factor``.  Non-array actions raised/applied inside
    :func:`check` behave as there.
    """
    action = check(site)
    if action == "nan":
        return np.full_like(np.asarray(value), np.nan)
    if action == "scale":
        plan = _PLAN if _PLAN is not _UNSET else _resolve_plan()
        factor = next(
            (s.factor for s in plan or () if s.site == site), 8.0
        )
        return np.asarray(value) * factor
    return value
