"""repro.ingest: external-data conditioning and generic terminations.

Opens the sensitivity-weighted flow to arbitrary multiport networks (the
paper's "P-port structure known via its scattering matrix samples"):

* :mod:`repro.ingest.conditioning` -- repair/conditioning pipeline over
  :class:`~repro.sparams.network.NetworkData` (grid dedup, DC policy,
  band selection, decimation, reciprocity symmetrization, reference-
  impedance renormalization, raw-data passivity pre-check) with a
  structured :class:`IngestReport`;
* :mod:`repro.ingest.termination` -- :class:`TerminationNetwork`
  construction from compact inline specs, JSON files or dicts for
  networks that are not the built-in PDN cases.
"""

from repro.ingest.conditioning import (
    ConditioningOptions,
    IngestAction,
    IngestReport,
    condition_network,
    load_network,
)
from repro.ingest.termination import (
    build_termination,
    ensure_excitation,
    parse_termination_spec,
)

__all__ = [
    "ConditioningOptions",
    "IngestAction",
    "IngestReport",
    "condition_network",
    "load_network",
    "build_termination",
    "ensure_excitation",
    "parse_termination_spec",
]
