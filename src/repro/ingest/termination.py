"""Generic termination construction for arbitrary multiport networks.

The synthetic PDN test cases know their own nominal termination scheme;
an external ``.sNp`` file does not.  This module builds a
:class:`~repro.pdn.termination.TerminationNetwork` for *any* port count
from a compact spec that fits on a command line, a JSON file in the
existing :mod:`repro.pdn.spec` format, or an in-memory dict.

Compact spec grammar (entries separated by ``;``, applied in order, later
entries override earlier ones for the same ports)::

    spec      := entry (';' entry)*
    entry     := target '=' component | component      # bare => all ports
    target    := '*' | INDEX | INDEX '-' INDEX          # 0-based, inclusive
    component := name [ '(' param (',' param)* ')' ]
    param     := key '=' value | value                  # positional by field

Component names and their parameter fields (positional order):

    open                --
    short(resistance)   near-ideal short (default 1e-6 ohm)
    r(resistance)       resistor to ground  [aliases: res, resistor]
    rlc(r, l, c)        generic series R+L+C; omit c for R/L/RL branches
    vrm(r, l)           VRM output model (series R + L)
    decap(c, esr, esl)  decoupling capacitor
    die(r, c)           die block series RC  [alias: die_rc]

Any entry also accepts ``j=<amps>`` to place a current excitation at the
targeted port(s).  Examples::

    *=r(50)
    0=rlc(r=0.2,c=2e-9,j=1);1=short(1e-4);2-3=open
    default JSON files keep working: --termination case/termination.json

If the finished network has no excitation anywhere,
:func:`build_termination` places the nominal 1 A at the observation port
(the target-impedance definition of eq. 2 needs a nonzero J).
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from repro.circuits.components import (
    DecouplingCapacitor,
    DieBlock,
    OpenTermination,
    PortTermination,
    ResistiveTermination,
    SeriesRLC,
    ShortTermination,
    VRMModel,
)
from repro.pdn.spec import load_termination, termination_from_dict
from repro.resilience.errors import IngestError
from repro.pdn.termination import TerminationNetwork
from repro.util.logging import get_logger

_LOG = get_logger(__name__)

#: component name -> (constructor, positional field order, key aliases)
_COMPONENTS: dict[str, tuple[type, tuple[str, ...], dict[str, str]]] = {
    "open": (OpenTermination, (), {}),
    "short": (ShortTermination, ("resistance",), {"r": "resistance"}),
    "r": (ResistiveTermination, ("resistance",), {"r": "resistance"}),
    "rlc": (
        SeriesRLC,
        ("resistance", "inductance", "capacitance"),
        {"r": "resistance", "l": "inductance", "c": "capacitance"},
    ),
    "vrm": (
        VRMModel,
        ("resistance", "inductance"),
        {"r": "resistance", "l": "inductance"},
    ),
    "decap": (
        DecouplingCapacitor,
        ("capacitance", "esr", "esl"),
        {"c": "capacitance"},
    ),
    "die": (
        DieBlock,
        ("resistance", "capacitance"),
        {"r": "resistance", "c": "capacitance"},
    ),
}
_COMPONENTS["res"] = _COMPONENTS["r"]
_COMPONENTS["resistor"] = _COMPONENTS["r"]
_COMPONENTS["die_rc"] = _COMPONENTS["die"]

_ENTRY_RE = re.compile(
    r"^(?:(?P<target>[^=()]+)=)?(?P<name>[a-zA-Z_]+)"
    r"(?:\((?P<params>[^()]*)\))?$"
)


def _parse_target(text: str | None, n_ports: int, entry: str) -> list[int]:
    """Resolve an entry target to a list of 0-based port indices."""
    if text is None or text.strip() == "*":
        return list(range(n_ports))
    text = text.strip()
    match = re.fullmatch(r"(\d+)(?:-(\d+))?", text)
    if not match:
        raise IngestError(
            f"bad port target {text!r} in termination entry {entry!r} "
            "(use '*', an index, or 'a-b')"
        )
    lo = int(match.group(1))
    hi = int(match.group(2)) if match.group(2) else lo
    if lo > hi:
        raise IngestError(f"empty port range {text!r} in entry {entry!r}")
    if hi >= n_ports:
        raise IngestError(
            f"port {hi} out of range in entry {entry!r} "
            f"(network has {n_ports} ports, 0-based)"
        )
    return list(range(lo, hi + 1))


def _parse_params(
    text: str | None, positional: tuple[str, ...], aliases: dict[str, str],
    entry: str,
) -> tuple[dict[str, float], float | None]:
    """Parse the parenthesized parameter list; returns (kwargs, excitation)."""
    kwargs: dict[str, float] = {}
    excitation: float | None = None
    if not text or not text.strip():
        return kwargs, excitation
    position = 0
    saw_keyword = False
    for raw in text.split(","):
        raw = raw.strip()
        if not raw:
            continue
        if "=" in raw:
            key, _, value = raw.partition("=")
            key = key.strip().lower()
            if key == "j":
                excitation = float(value)
                continue
            key = aliases.get(key, key)
            if key not in positional:
                raise IngestError(
                    f"unknown parameter {key!r} in termination entry "
                    f"{entry!r} (expects {list(positional) or 'none'})"
                )
            kwargs[key] = float(value)
            saw_keyword = True
        else:
            if saw_keyword:
                raise IngestError(
                    f"positional parameter {raw!r} after a keyword "
                    f"parameter in termination entry {entry!r}"
                )
            if position >= len(positional):
                raise IngestError(
                    f"too many positional parameters in termination entry "
                    f"{entry!r} (expects at most {len(positional)})"
                )
            kwargs[positional[position]] = float(raw)
            position += 1
    return kwargs, excitation


def parse_termination_spec(text: str, n_ports: int) -> TerminationNetwork:
    """Build a termination network from a compact inline spec string.

    Unspecified ports are left open.  See the module docstring for the
    grammar.
    """
    if not text.strip():
        raise IngestError("empty termination spec")
    terminations: list[PortTermination] = [
        OpenTermination() for _ in range(n_ports)
    ]
    excitations = np.zeros(n_ports)
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        match = _ENTRY_RE.match(entry)
        if not match:
            raise IngestError(
                f"cannot parse termination entry {entry!r} "
                "(expected [target=]name[(params)])"
            )
        name = match.group("name").lower()
        spec = _COMPONENTS.get(name)
        if spec is None:
            raise IngestError(
                f"unknown termination component {name!r} in entry {entry!r} "
                f"(known: {sorted(set(_COMPONENTS))})"
            )
        constructor, positional, aliases = spec
        kwargs, excitation = _parse_params(
            match.group("params"), positional, aliases, entry
        )
        try:
            component = constructor(**kwargs)
        except (TypeError, ValueError) as exc:
            raise IngestError(
                f"bad parameters in termination entry {entry!r}: {exc}"
            ) from exc
        for port in _parse_target(match.group("target"), n_ports, entry):
            terminations[port] = component
            # Later entries fully override earlier ones, excitation
            # included: an entry without j= clears any earlier source.
            excitations[port] = excitation if excitation is not None else 0.0
    return TerminationNetwork(terminations=terminations, excitations=excitations)


def ensure_excitation(
    network: TerminationNetwork, observe_port: int
) -> TerminationNetwork:
    """Guarantee a nonzero excitation vector (eq. 2 needs J != 0).

    When the spec placed no current source anywhere, the nominal 1 A is
    injected at the observation port -- the target impedance then reduces
    to the loaded transfer impedance Z(observe, observe).
    """
    if np.any(network.excitations):
        return network
    if not 0 <= observe_port < network.n_ports:
        raise IngestError(
            f"observe_port {observe_port} out of range for "
            f"{network.n_ports}-port network"
        )
    excitations = np.zeros(network.n_ports)
    excitations[observe_port] = 1.0
    _LOG.info(
        "termination spec has no excitation; injecting 1 A at port %d",
        observe_port,
    )
    return TerminationNetwork(
        terminations=list(network.terminations), excitations=excitations
    )


def build_termination(
    spec: str | Path | dict | TerminationNetwork | None,
    n_ports: int,
    *,
    observe_port: int = 0,
    default_z0: float = 50.0,
) -> TerminationNetwork:
    """Resolve any supported termination description to a network.

    ``spec`` may be a :class:`TerminationNetwork` (validated and passed
    through), a dict in the :mod:`repro.pdn.spec` JSON schema, a path to
    such a JSON file (recognized by its ``.json`` suffix, so inline specs
    never depend on what happens to exist in the cwd), a compact inline
    spec string, or ``None`` --
    which terminates every port with a matched ``default_z0`` resistor
    (the conventional loading for a generic multiport).  The result is
    always given a nonzero excitation via :func:`ensure_excitation`.
    """
    if spec is None:
        network = parse_termination_spec(f"*=r({default_z0:g})", n_ports)
    elif isinstance(spec, TerminationNetwork):
        network = spec
    elif isinstance(spec, dict):
        network = termination_from_dict(spec)
    else:
        text = str(spec)
        if text.lower().endswith(".json"):
            network = load_termination(text)
        else:
            network = parse_termination_spec(text, n_ports)
    if network.n_ports != n_ports:
        raise IngestError(
            f"termination has {network.n_ports} ports, data has {n_ports}"
        )
    return ensure_excitation(network, observe_port)
