"""Data conditioning for externally-sourced multiport networks.

Field-solver and VNA Touchstone exports rarely arrive in the pristine form
the macromodeling flow expects: grids are stitched from multiple bands
(duplicate seam points, occasionally unsorted), the reference impedance is
not the 50 ohm the paper's equations are normalized to, reciprocity holds
only to solver tolerance (which disables the vector-fitting reciprocal
fast path), and the raw data itself may be slightly non-passive.

:func:`condition_network` runs a configurable repair pipeline over a
:class:`~repro.sparams.network.NetworkData` and returns the conditioned
data plus a structured :class:`IngestReport` of every action taken, so a
campaign record (or a user) can audit exactly what was done to the data
before fitting.  :func:`load_network` is the one-call entry point from a
Touchstone file, folding the reader's own repairs (port-count inference,
duplicate-point dedup) into the same report.

Pipeline order (each step optional):

1. DC-point policy (``keep`` / ``drop``);
2. band selection [f_min, f_max];
3. grid decimation down to ``max_points`` (endpoints always kept);
4. reciprocity symmetrization (``auto`` symmetrizes only data that is
   already reciprocal to ``reciprocity_tol``);
5. reference-impedance renormalization to ``z0`` via
   :func:`repro.sparams.conversions.renormalize_s`;
6. raw-data passivity pre-check (scattering data only; recorded, never
   fatal -- enforcement handles the model, not the data).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.resilience.errors import IngestError
from repro.sparams.conversions import renormalize_s
from repro.sparams.network import NetworkData
from repro.sparams.touchstone import TouchstoneInfo, read_touchstone_with_info
from repro.util.logging import get_logger

_LOG = get_logger(__name__)

_SYMMETRIZE_MODES = ("auto", "always", "never")
_DC_POLICIES = ("keep", "drop")


@dataclass(frozen=True)
class ConditioningOptions:
    """Configuration of the ingest conditioning pipeline.

    Parameters
    ----------
    z0:
        Target reference resistance; ``None`` keeps the file's reference.
        Renormalization uses the exact real-reference identity (Z-domain
        round trip), so scattering data stays consistent with eq. (2).
    dc_policy:
        ``"keep"`` retains an f = 0 point, ``"drop"`` removes it (some
        fitting configurations want a strictly positive grid).
    f_min / f_max:
        Inclusive band selection in Hz; ``None`` leaves that side open.
        A kept DC point survives ``f_min`` (the DC policy owns it).
    max_points:
        Decimate the grid down to at most this many points (uniform in
        index, endpoints always kept); ``None`` disables.
    symmetrize:
        ``"auto"`` enforces exact S = S^T only when the data is already
        reciprocal to ``reciprocity_tol`` (removing solver noise so the
        reciprocal vector-fitting fast path engages); ``"always"``
        averages unconditionally; ``"never"`` leaves the data alone.
    reciprocity_tol:
        Relative asymmetry threshold of the ``auto`` mode.
    passivity_margin:
        Tolerated singular-value excess over 1 in the raw-data passivity
        pre-check before a point counts as a violation.
    """

    z0: float | None = None
    dc_policy: str = "keep"
    f_min: float | None = None
    f_max: float | None = None
    max_points: int | None = None
    symmetrize: str = "auto"
    reciprocity_tol: float = 1e-6
    passivity_margin: float = 1e-6

    def __post_init__(self) -> None:
        if self.z0 is not None and self.z0 <= 0.0:
            raise ValueError("z0 must be positive")
        if self.dc_policy not in _DC_POLICIES:
            raise ValueError(f"dc_policy must be one of {_DC_POLICIES}")
        if self.symmetrize not in _SYMMETRIZE_MODES:
            raise ValueError(f"symmetrize must be one of {_SYMMETRIZE_MODES}")
        if self.max_points is not None and self.max_points < 2:
            raise ValueError("max_points must be at least 2")
        if (
            self.f_min is not None
            and self.f_max is not None
            and self.f_min > self.f_max
        ):
            raise ValueError("f_min must not exceed f_max")
        if self.reciprocity_tol <= 0.0:
            raise ValueError("reciprocity_tol must be positive")
        if self.passivity_margin < 0.0:
            raise ValueError("passivity_margin must be non-negative")


@dataclass(frozen=True)
class IngestAction:
    """One pipeline step: what ran, what it found, whether it changed data."""

    step: str
    detail: str
    changed: bool

    def to_dict(self) -> dict:
        return {"step": self.step, "detail": self.detail, "changed": self.changed}


@dataclass(frozen=True)
class IngestReport:
    """Structured record of everything the conditioning pipeline did.

    ``actions`` lists the steps in execution order; the scalar fields
    summarize the headline facts a campaign record wants to keep.
    """

    source: str
    n_ports: int
    n_points_in: int
    n_points_out: int
    f_min_hz: float
    f_max_hz: float
    z0: float
    kind: str
    actions: tuple[IngestAction, ...] = ()
    worst_sigma: float | None = None
    n_passivity_violations: int | None = None
    data_is_passive: bool | None = None
    reciprocal: bool | None = None

    def to_dict(self) -> dict:
        """JSON-compatible form (campaign records, report files)."""
        return {
            "source": self.source,
            "n_ports": self.n_ports,
            "n_points_in": self.n_points_in,
            "n_points_out": self.n_points_out,
            "f_min_hz": self.f_min_hz,
            "f_max_hz": self.f_max_hz,
            "z0": self.z0,
            "kind": self.kind,
            "actions": [action.to_dict() for action in self.actions],
            "worst_sigma": self.worst_sigma,
            "n_passivity_violations": self.n_passivity_violations,
            "data_is_passive": self.data_is_passive,
            "reciprocal": self.reciprocal,
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=1) + "\n", encoding="utf-8"
        )

    def summary(self) -> str:
        """Human-readable multi-line report for CLI output."""
        lines = [
            f"ingest: {self.source} -- {self.n_ports} ports, "
            f"{self.n_points_in} -> {self.n_points_out} points, "
            f"{self.f_min_hz:g}-{self.f_max_hz:g} Hz, "
            f"{self.kind.upper()}-parameters, z0={self.z0:g} ohm",
        ]
        for action in self.actions:
            marker = "*" if action.changed else "-"
            lines.append(f"  {marker} {action.step}: {action.detail}")
        if self.data_is_passive is not None:
            verdict = "passive" if self.data_is_passive else "NOT passive"
            lines.append(
                f"  - raw data {verdict} (worst sigma "
                f"{self.worst_sigma:.6f}, {self.n_passivity_violations} "
                "violating point(s))"
            )
        return "\n".join(lines)


def _decimation_mask(n_points: int, max_points: int) -> np.ndarray:
    """Boolean keep-mask selecting ~max_points indices incl. both endpoints."""
    keep_indices = np.unique(
        np.round(np.linspace(0, n_points - 1, max_points)).astype(int)
    )
    mask = np.zeros(n_points, dtype=bool)
    mask[keep_indices] = True
    return mask


def condition_network(
    data: NetworkData,
    options: ConditioningOptions | None = None,
    *,
    source: str = "<memory>",
    reader_actions: tuple[IngestAction, ...] = (),
) -> tuple[NetworkData, IngestReport]:
    """Run the conditioning pipeline; returns (conditioned data, report).

    ``reader_actions`` lets :func:`load_network` prepend the Touchstone
    reader's own repairs so one report covers the whole ingest path.
    """
    options = options or ConditioningOptions()
    actions: list[IngestAction] = list(reader_actions)
    n_in = data.n_frequencies

    # 1. DC-point policy.
    has_dc = data.frequencies[0] == 0.0
    if options.dc_policy == "drop" and has_dc:
        data = data.without_dc()
        actions.append(IngestAction("dc_policy", "dropped the f = 0 point", True))
    elif options.dc_policy == "drop":
        actions.append(IngestAction("dc_policy", "no DC point present", False))

    # 2. Band selection (a kept DC point is owned by the DC policy).
    if options.f_min is not None or options.f_max is not None:
        lo = options.f_min if options.f_min is not None else -np.inf
        hi = options.f_max if options.f_max is not None else np.inf
        mask = (data.frequencies >= lo) & (data.frequencies <= hi)
        if options.dc_policy == "keep" and data.frequencies[0] == 0.0:
            mask[0] = True
        if not mask.any():
            raise IngestError(
                f"band [{lo:g}, {hi:g}] Hz selects no frequency points",
                stage="ingest",
            )
        dropped = int(np.count_nonzero(~mask))
        if dropped:
            data = data.subset(mask)
        actions.append(
            IngestAction(
                "band_selection",
                f"[{lo:g}, {hi:g}] Hz kept {data.n_frequencies} points "
                f"(dropped {dropped})",
                dropped > 0,
            )
        )

    # 3. Grid decimation.
    if options.max_points is not None and data.n_frequencies > options.max_points:
        before = data.n_frequencies
        data = data.subset(_decimation_mask(before, options.max_points))
        actions.append(
            IngestAction(
                "decimation",
                f"{before} -> {data.n_frequencies} points "
                f"(max_points={options.max_points})",
                True,
            )
        )

    # 4. Reciprocity symmetrization.
    reciprocal: bool | None = None
    if data.n_ports > 1 and options.symmetrize != "never":
        transposed = np.transpose(data.samples, (0, 2, 1))
        scale = max(float(np.max(np.abs(data.samples))), 1e-30)
        asymmetry = float(np.max(np.abs(data.samples - transposed))) / scale
        nearly = asymmetry <= options.reciprocity_tol
        if asymmetry == 0.0:
            reciprocal = True
            actions.append(
                IngestAction("symmetrize", "data already exactly reciprocal", False)
            )
        elif options.symmetrize == "always" or nearly:
            data = data.with_samples(0.5 * (data.samples + transposed))
            reciprocal = True
            actions.append(
                IngestAction(
                    "symmetrize",
                    f"enforced S = S^T (relative asymmetry {asymmetry:.3e})",
                    True,
                )
            )
        else:
            reciprocal = False
            actions.append(
                IngestAction(
                    "symmetrize",
                    f"left non-reciprocal data alone (relative asymmetry "
                    f"{asymmetry:.3e} > tol {options.reciprocity_tol:g})",
                    False,
                )
            )
    elif data.n_ports > 1:
        reciprocal = data.is_reciprocal(options.reciprocity_tol)

    # 5. Reference-impedance renormalization.
    if options.z0 is not None and options.z0 != data.z0:
        if data.kind != "s":
            raise IngestError(
                "z0 renormalization applies to scattering data only "
                f"(got kind {data.kind!r})",
                stage="ingest",
            )
        old_z0 = data.z0
        data = replace(
            data,
            samples=renormalize_s(data.samples, old_z0, options.z0),
            z0=options.z0,
        )
        actions.append(
            IngestAction(
                "renormalize",
                f"reference impedance {old_z0:g} -> {options.z0:g} ohm",
                True,
            )
        )

    # 6. Raw-data passivity pre-check (recorded, never fatal).
    worst_sigma = None
    n_violations = None
    is_passive = None
    if data.kind == "s":
        metric = data.passivity_metric()
        worst_sigma = float(np.max(metric))
        n_violations = int(np.count_nonzero(metric > 1.0 + options.passivity_margin))
        is_passive = n_violations == 0
        if not is_passive:
            _LOG.warning(
                "%s: raw data is not passive (worst sigma %.6f at %d "
                "point(s)); the enforced macromodel will deviate there",
                source,
                worst_sigma,
                n_violations,
            )

    report = IngestReport(
        source=source,
        n_ports=data.n_ports,
        n_points_in=n_in,
        n_points_out=data.n_frequencies,
        f_min_hz=float(data.frequencies[0]),
        f_max_hz=float(data.frequencies[-1]),
        z0=float(data.z0),
        kind=data.kind,
        actions=tuple(actions),
        worst_sigma=worst_sigma,
        n_passivity_violations=n_violations,
        data_is_passive=is_passive,
        reciprocal=reciprocal,
    )
    return data, report


def _reader_actions(info: TouchstoneInfo) -> tuple[IngestAction, ...]:
    """Translate the Touchstone reader's repairs into report actions."""
    actions = [
        IngestAction(
            "port_count",
            f"{info.n_ports} ports ({info.ports_source})",
            False,
        )
    ]
    if not info.grid_was_sorted:
        actions.append(
            IngestAction("sort_grid", "sorted an unsorted frequency grid", True)
        )
    if info.n_duplicates_dropped:
        actions.append(
            IngestAction(
                "dedupe_grid",
                f"dropped {info.n_duplicates_dropped} coincident frequency "
                "point(s), keeping first occurrences",
                True,
            )
        )
    return tuple(actions)


def load_network(
    path: str | Path,
    options: ConditioningOptions | None = None,
) -> tuple[NetworkData, IngestReport]:
    """Read a Touchstone file and condition it in one call.

    Returns the conditioned :class:`NetworkData` and an
    :class:`IngestReport` covering both the reader's repairs and the
    conditioning pipeline's.
    """
    data, info = read_touchstone_with_info(path)
    return condition_network(
        data,
        options,
        source=str(path),
        reader_actions=_reader_actions(info),
    )
