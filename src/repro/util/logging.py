"""Package-wide logging configuration.

All algorithmic modules log through ``get_logger(__name__)`` so that library
users can control verbosity with the standard :mod:`logging` machinery;
nothing is printed by default.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a child logger of the package root for module ``name``."""
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple console handler to the package root logger.

    Convenience for examples and benchmarks; safe to call repeatedly.
    """
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
