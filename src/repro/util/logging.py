"""Package-wide logging configuration.

All algorithmic modules log through ``get_logger(__name__)`` so that library
users can control verbosity with the standard :mod:`logging` machinery;
nothing is printed by default.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a child logger of the package root for module ``name``."""
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


#: Attribute tag marking the handler this module installed.  Deduping on
#: the tag (not ``isinstance(h, logging.StreamHandler)``) matters because
#: ``FileHandler`` subclasses ``StreamHandler``: an isinstance check would
#: treat a user's file handler as "console already attached" and silently
#: never add one.
_CONSOLE_TAG = "_repro_console_handler"


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple console handler to the package root logger.

    Convenience for examples and benchmarks; safe to call repeatedly --
    repeated calls update the level of the existing handler instead of
    stacking duplicates, and handlers installed by the embedding
    application (file handlers included) are left alone.
    """
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    for handler in root.handlers:
        if getattr(handler, _CONSOLE_TAG, False):
            handler.setLevel(level)
            return
    handler = logging.StreamHandler()
    handler.setLevel(level)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    setattr(handler, _CONSOLE_TAG, True)
    root.addHandler(handler)
