"""Small linear-algebra helpers used across the package.

These are deliberately thin wrappers around numpy/scipy with explicit
conventions (column-stacking ``vec``, Hermitian solves) so that the
algorithmic modules read close to the paper's notation.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg


def vec_columns(matrix: np.ndarray) -> np.ndarray:
    """Stack the columns of ``matrix`` into a single vector.

    This is the ``vec()`` operator of the paper (eq. 9): for an m-by-n
    matrix the result has length m*n with ``vec(M)[j*m + i] = M[i, j]``.
    """
    matrix = np.asarray(matrix)
    return matrix.reshape(matrix.shape[0] * matrix.shape[1], order="F")


def unvec_columns(vector: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Inverse of :func:`vec_columns` for a ``rows``-by-``cols`` matrix."""
    vector = np.asarray(vector)
    if vector.size != rows * cols:
        raise ValueError(
            f"cannot reshape vector of size {vector.size} into {rows}x{cols}"
        )
    return vector.reshape((rows, cols), order="F")


def hermitian_part(matrix: np.ndarray) -> np.ndarray:
    """Return the Hermitian part ``(M + M^H) / 2``."""
    matrix = np.asarray(matrix)
    return 0.5 * (matrix + matrix.conj().T)


def solve_hermitian_psd(
    matrix: np.ndarray, rhs: np.ndarray, *, regularization: float = 0.0
) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` for Hermitian positive (semi)definite input.

    Tries a Cholesky factorization first; on failure (semidefinite or
    slightly indefinite input from roundoff) retries with a scaled identity
    shift.  ``regularization`` adds ``reg * trace/n`` to the diagonal up
    front, which the passivity-enforcement cost uses to keep ill-conditioned
    Gramians solvable.
    """
    matrix = np.asarray(matrix)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    scale = max(float(np.trace(matrix).real) / max(n, 1), 1.0)
    shifted = matrix
    if regularization > 0.0:
        shifted = matrix + (regularization * scale) * np.eye(n)
    for attempt in range(4):
        try:
            cho = scipy.linalg.cho_factor(shifted, check_finite=False)
            return scipy.linalg.cho_solve(cho, rhs, check_finite=False)
        except scipy.linalg.LinAlgError:
            bump = scale * 10.0 ** (-12 + 3 * attempt)
            shifted = matrix + bump * np.eye(n)
    # Last resort: least-squares pseudo-solve.  Counted so near-singular
    # cost matrices show up in traces instead of degrading silently.
    from repro.obs import telemetry as obs

    obs.incr("fallback.psd_lstsq")
    solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
    return solution


def is_stable_poles(poles: np.ndarray, *, tol: float = 0.0) -> bool:
    """True when every pole has a strictly negative real part (up to tol)."""
    poles = np.asarray(poles)
    return bool(np.all(poles.real < tol))


def log_spaced_frequencies(
    f_min: float, f_max: float, count: int, *, include_dc: bool = False
) -> np.ndarray:
    """Logarithmically spaced frequency grid in Hz, optionally with a DC point.

    Mirrors the paper's data format: "tabulated from 1 kHz to 2 GHz with
    logarithmic sampling and including the DC point".
    """
    if f_min <= 0.0 or f_max <= f_min:
        raise ValueError("need 0 < f_min < f_max")
    if count < 2:
        raise ValueError("need at least two frequency points")
    grid = np.logspace(np.log10(f_min), np.log10(f_max), count)
    # Guard against roundoff drifting the endpoints.
    grid[0] = f_min
    grid[-1] = f_max
    if include_dc:
        grid = np.concatenate(([0.0], grid))
    return grid


def real_block_of_conjugate_pair(value: complex) -> np.ndarray:
    """2x2 real block representing multiplication by a complex number pair.

    Used when realifying complex-conjugate pole pairs: the complex pole
    ``p = a + jb`` maps to ``[[a, b], [-b, a]]`` acting on the real/imag
    state pair.
    """
    return np.array([[value.real, value.imag], [-value.imag, value.real]])
