"""Shared utilities: linear algebra helpers, validation, logging."""

from repro.util.linalg import (
    hermitian_part,
    is_stable_poles,
    log_spaced_frequencies,
    solve_hermitian_psd,
    vec_columns,
    unvec_columns,
)
from repro.util.validation import (
    check_finite,
    check_frequency_grid,
    check_square_stack,
    ShapeError,
)

__all__ = [
    "hermitian_part",
    "is_stable_poles",
    "log_spaced_frequencies",
    "solve_hermitian_psd",
    "vec_columns",
    "unvec_columns",
    "check_finite",
    "check_frequency_grid",
    "check_square_stack",
    "ShapeError",
]
