"""Input validation helpers with descriptive error messages."""

from __future__ import annotations

import numpy as np


class ShapeError(ValueError):
    """Raised when an array argument has an incompatible shape."""


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Return ``array`` as ndarray, raising if it contains NaN/Inf."""
    array = np.asarray(array)
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite entries")
    return array


def check_frequency_grid(frequencies: np.ndarray) -> np.ndarray:
    """Validate a frequency grid: 1-D, real, non-negative, strictly increasing."""
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.ndim != 1:
        raise ShapeError("frequency grid must be one-dimensional")
    if frequencies.size == 0:
        raise ShapeError("frequency grid is empty")
    if np.any(frequencies < 0.0):
        raise ValueError("frequencies must be non-negative")
    if np.any(np.diff(frequencies) <= 0.0):
        raise ValueError("frequencies must be strictly increasing")
    return frequencies


def check_square_stack(samples: np.ndarray, name: str) -> np.ndarray:
    """Validate a (K, P, P) stack of square matrices, return as complex array."""
    samples = np.asarray(samples)
    if samples.ndim != 3:
        raise ShapeError(f"{name} must have shape (K, P, P), got {samples.shape}")
    if samples.shape[1] != samples.shape[2]:
        raise ShapeError(
            f"{name} matrices must be square, got {samples.shape[1]}x{samples.shape[2]}"
        )
    return samples.astype(complex, copy=False)
