"""Command-line interface.

Four subcommands cover the practical workflow:

``testcase``
    Generate the canonical synthetic PDN: Touchstone data + termination
    spec, ready for the other commands.

``fit``
    Vector fit of any Touchstone file (external solver/VNA exports
    included): data is conditioned through :mod:`repro.ingest` first
    (grid repair, band selection, renormalization, ...), then plain-fit;
    with ``--termination`` the full sensitivity-weighted flow runs
    instead, so ``repro fit board.s4p --termination "*=r(50)"`` takes an
    arbitrary multiport straight to a passive weighted macromodel.

``flow``
    The full paper pipeline on a Touchstone file + termination spec
    (JSON file or compact inline spec): sensitivity, weighted fit, both
    passivity enforcements, accuracy report, passive model JSON, CSV
    series for plotting, and a ``flow_summary.json`` with per-stage wall
    times and cache provenance.

``campaign``
    Batch engine: expand a campaign spec (JSON) into a scenario grid, run
    the flow on every scenario in parallel with content-addressed caching,
    and write a result registry plus summary report.

``trace``
    Render the telemetry of a completed run (``--telemetry DIR`` on
    ``fit``/``flow``/``campaign`` records it): solver convergence
    trajectories, per-stage/per-kernel time breakdowns, cache hit/miss
    counters, and campaign rollups.

Every subcommand executes through the composable pipeline engine of
:mod:`repro.api`; the ingest/termination flags are registered once on
shared parent parsers, so ``fit``, ``flow`` and ``campaign`` can never
drift apart on a flag name or default (``campaign`` applies them as
overrides to its external-data scenarios).

Global ``--verbose``/``--quiet`` flags control the package-wide structured
logging (workers included); primary results still go to stdout.

Examples
--------
::

    python -m repro testcase --size small --output-dir case/
    python -m repro fit case/pdn.s9p --poles 12 --output-dir fit/
    python -m repro flow case/pdn.s9p --termination case/termination.json \\
        --observe-port 0 --output-dir flow/
    python -m repro -v campaign sweep.json --jobs 4 --output-dir campaigns/
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path

import numpy as np

from repro.api import (
    ConsoleObserver,
    Pipeline,
    ReproConfig,
    StandardFitStage,
    ValidationOptions,
)
from repro.flow.macromodel import FlowOptions, run_flow
from repro.flow.metrics import impedance_error_report
from repro.ingest import ConditioningOptions, build_termination, load_network
from repro.passivity.check import check_passivity
from repro.passivity.enforce import EnforcementOptions, EnforcementResult
from repro.pdn.spec import save_termination
from repro.pdn.testcase import make_paper_testcase
from repro.sensitivity.zpdn import target_impedance_of_model
from repro.sparams.touchstone import write_touchstone
from repro.statespace.serialization import save_model
from repro.util.logging import enable_console_logging
from repro.vectfit.options import VFOptions


def _cmd_testcase(args: argparse.Namespace) -> int:
    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    testcase = make_paper_testcase(size=args.size)
    data_path = out / f"pdn.s{testcase.data.n_ports}p"
    write_touchstone(testcase.data, data_path)
    save_termination(testcase.termination, out / "termination.json")
    (out / "README.txt").write_text(testcase.summary() + "\n", encoding="utf-8")
    print(f"wrote {data_path}")
    print(f"wrote {out / 'termination.json'}")
    print(f"observation port: {testcase.observe_port}")
    return 0


def _conditioning_options(args: argparse.Namespace) -> ConditioningOptions:
    """Map the shared ingest flags to a conditioning configuration."""
    return ConditioningOptions(
        z0=args.z0,
        dc_policy="drop" if args.drop_dc else "keep",
        f_min=args.f_min,
        f_max=args.f_max,
        max_points=args.max_points,
        symmetrize=args.symmetrize if args.symmetrize is not None else "auto",
    )


def _flow_options(args: argparse.Namespace) -> FlowOptions:
    """Flow configuration from CLI flags.

    Both the ``fit`` and ``flow`` subcommands register the full flag set
    through :func:`_flow_parent`, so argparse owns every default exactly
    once.
    """
    return FlowOptions(
        vf=VFOptions(
            n_poles=args.poles,
            dc_exact=args.dc_exact,
            kernel=args.kernel,
            backend=args.backend,
        ),
        weight_mode=args.weight_mode,
        refinement_rounds=args.refinement_rounds,
        weight_model_order=args.weight_order,
        enforcement=EnforcementOptions(
            checker_strategy=_checker_strategy(args),
            exact_every=args.exact_every,
            backend=args.backend,
        ),
    )


def _repro_config(args: argparse.Namespace) -> ReproConfig:
    """The unified pipeline configuration described by the parsed flags."""
    return ReproConfig(
        flow=_flow_options(args),
        ingest=_conditioning_options(args),
        validation=ValidationOptions(low_band_hz=args.low_band_hz),
        backend=args.backend,
    )


def _observers(args: argparse.Namespace) -> list:
    """Pipeline event observers implied by the flags (``--profile``)."""
    # Stream explicitly to stdout: the observer's logger default is for
    # library embedders; --profile output must not need logging setup.
    return (
        [ConsoleObserver(sys.stdout)] if getattr(args, "profile", False)
        else []
    )


def _with_telemetry(args: argparse.Namespace, label: str, func) -> int:
    """Run ``func(args)`` inside a telemetry session when --telemetry is set."""
    directory = getattr(args, "telemetry", None)
    if directory is None:
        return func(args)
    from repro.obs import telemetry_session

    with telemetry_session(directory, label=label, kind="flow"):
        code = func(args)
    print(f"telemetry     : {Path(directory) / 'run_metrics.json'}")
    return code


def _observe_port(args: argparse.Namespace) -> int:
    """Shared --observe-port flag with the fit/flow default of port 0."""
    return args.observe_port if args.observe_port is not None else 0


def _run_flow_outputs(args: argparse.Namespace, data, termination, out: Path) -> int:
    """Run the full pipeline and write the flow artifact set to ``out``."""
    observe_port = _observe_port(args)
    result = run_flow(
        data, termination, observe_port, _repro_config(args),
        observers=_observers(args),
    )

    if args.profile:
        print(_enforcement_profile("standard cost", result.standard_enforced))
        print(_enforcement_profile("weighted cost", result.weighted_enforced))

    save_model(result.weighted_enforced.model, out / "passive_model.json")
    omega = data.omega
    report = impedance_error_report(list(result.accuracy_rows))
    (out / "flow_report.txt").write_text(report + "\n", encoding="utf-8")
    print(report)
    (out / "flow_summary.json").write_text(
        json.dumps(result.summary_dict(), indent=1) + "\n", encoding="utf-8"
    )

    z_final = target_impedance_of_model(
        result.weighted_enforced.model, omega, termination, observe_port,
        z0=data.z0,
    )
    table = np.column_stack(
        [
            data.frequencies,
            np.abs(result.reference_impedance),
            np.abs(z_final),
            result.xi,
            result.final_weights,
        ]
    )
    np.savetxt(
        out / "flow_series.csv",
        table,
        delimiter=",",
        header="frequency_hz,z_nominal_ohm,z_passive_ohm,xi,weight",
        comments="",
    )
    print(f"passive model : {out / 'passive_model.json'}")
    print(f"series        : {out / 'flow_series.csv'}")
    print(f"summary       : {out / 'flow_summary.json'}")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    return _with_telemetry(args, "fit", _cmd_fit_impl)


def _cmd_fit_impl(args: argparse.Namespace) -> int:
    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    try:
        data, ingest_report = load_network(args.data, _conditioning_options(args))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(ingest_report.summary())
    ingest_report.save(out / "ingest_report.json")

    if args.termination is not None:
        try:
            termination = build_termination(
                args.termination, data.n_ports, observe_port=_observe_port(args)
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _run_flow_outputs(args, data, termination, out)

    # Plain fit: a one-stage pipeline seeded with the conditioned data.
    pipeline = Pipeline([StandardFitStage()], observers=_observers(args))
    run = pipeline.run(_repro_config(args), seed={"network": data})
    result = run["standard_fit"]
    save_model(result.model, out / "model.json")
    report = check_passivity(result.model)
    lines = [
        f"input          : {args.data} ({data.n_ports} ports, "
        f"{data.n_frequencies} points)",
        f"model order    : {args.poles}",
        f"rms error      : {result.rms_error:.4e}",
        f"converged      : {result.converged} ({result.iterations} iterations)",
        f"passive        : {report.is_passive} "
        f"(worst sigma {report.worst_sigma:.6f})",
    ]
    (out / "fit_report.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    print("\n".join(lines))
    print(f"model written to {out / 'model.json'}")
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    """``flow`` is ``fit`` with --termination mandatory (argparse enforces
    the flag, so the shared implementation always takes the full-flow
    branch)."""
    return _with_telemetry(args, "flow", _cmd_fit_impl)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import render_trace

    try:
        print(render_trace(args.run_dir), end="")
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _find_repo_root(start: Path | None = None) -> Path | None:
    """Nearest ancestor holding the in-repo dev tools (tools/reprolint)."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "tools" / "reprolint" / "__init__.py").is_file():
            return candidate
    return None


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the in-repo static-analysis pass (tools/reprolint).

    ``reprolint`` lives in the repository's ``tools/`` tree, not in the
    installed package: it checks *this codebase's* conventions (backend
    routing, telemetry grammar, error taxonomy, ...), so running it only
    makes sense inside a checkout.
    """
    root = _find_repo_root()
    if root is None:
        print(
            "error: repro lint must run inside the repository "
            "(tools/reprolint not found in any parent directory)",
            file=sys.stderr,
        )
        return 2
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from tools.reprolint.cli import main as reprolint_main

    forwarded = list(args.paths)
    if args.json:
        forwarded.append("--json")
    if args.rules:
        forwarded.extend(["--rules", args.rules])
    if args.update_registry:
        forwarded.append("--update-registry")
    if args.list_rules:
        forwarded.append("--list-rules")
    return reprolint_main(forwarded, root=root)


def _external_overrides(args: argparse.Namespace) -> dict:
    """Scenario-field overrides implied by the shared ingest/termination
    flags (``campaign`` applies them to external-data scenarios).

    ``--observe-port`` is *not* in here: it is a general scenario field
    (synthetic cases observe ports too) and is applied to every scenario.
    """
    overrides: dict = {}
    if args.termination is not None:
        overrides["termination_spec"] = args.termination
    if args.z0 is not None:
        overrides["data_z0"] = args.z0
    if args.drop_dc:
        overrides["data_dc_policy"] = "drop"
    if args.f_min is not None:
        overrides["data_f_min"] = args.f_min
    if args.f_max is not None:
        overrides["data_f_max"] = args.f_max
    if args.max_points is not None:
        overrides["data_max_points"] = args.max_points
    if args.symmetrize is not None:
        overrides["data_symmetrize"] = args.symmetrize
    return overrides


def _cmd_campaign(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.campaign import (
        CampaignRegistry,
        FlowCache,
        campaign_report,
        default_jobs,
        filter_scenarios,
        load_campaign,
        run_campaign,
        slugify,
    )
    from repro.resilience import RetryPolicy

    try:
        spec = load_campaign(args.spec)
    except (OSError, ValueError) as exc:
        # ValueError covers bad schema/axes and json.JSONDecodeError.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    scenarios = filter_scenarios(spec.expand(), args.filter)
    if args.fast or args.exact:
        strategy = _checker_strategy(args)
        scenarios = [
            replace(s, checker_strategy=strategy) for s in scenarios
        ]
    if args.observe_port is not None:
        scenarios = [
            replace(s, observe_port=args.observe_port) for s in scenarios
        ]
    if args.backend is not None:
        scenarios = [
            replace(s, backend=args.backend) for s in scenarios
        ]
    overrides = _external_overrides(args)
    if overrides:
        # Ingest/termination flags override the spec's external-data
        # knobs; synthetic scenarios have no data file to condition.
        external = [s for s in scenarios if s.data_file is not None]
        if not external:
            print(
                "error: ingest/termination overrides "
                f"{sorted(overrides)} apply to external-data scenarios "
                "only, and this campaign has none",
                file=sys.stderr,
            )
            return 2
        scenarios = [
            replace(s, **overrides) if s.data_file is not None else s
            for s in scenarios
        ]
    if not scenarios:
        print(
            f"campaign {spec.name!r}: no scenarios"
            + (f" match filter {args.filter!r}" if args.filter else
               " (empty grid)")
        )
        return 0

    if args.dry_run:
        print(f"campaign {spec.name!r}: {len(scenarios)} scenario(s)")
        for scenario in scenarios:
            print(f"  {scenario.run_id}  {scenario.name}")
        return 0

    out = Path(args.output_dir) / slugify(spec.name)
    registry = CampaignRegistry(out)
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or (Path(args.output_dir) / "cache")
        cache = FlowCache(cache_dir)

    jobs = args.jobs if args.jobs is not None else default_jobs()
    try:
        retry = RetryPolicy(
            max_retries=args.max_retries,
            backoff_base_s=args.retry_backoff,
            retry_budget=args.retry_budget,
            timeout_s=args.timeout,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_campaign(
        spec,
        scenarios=scenarios,
        registry=registry,
        cache=cache,
        jobs=jobs,
        resume=args.resume,
        worker_log_level=_log_level(args),
        share_fits=not args.no_shared_fits,
        blas_threads=args.blas_threads,
        telemetry_dir=args.telemetry,
        retry=retry,
        retry_failed=args.retry_failed,
    )
    report = campaign_report(result)
    (out / "report.txt").write_text(report + "\n", encoding="utf-8")
    print(report)
    if args.profile:
        for record in result.records:
            timings = record.get("timings") or {}
            stages = timings.get("stages")
            if stages:
                print(f"{record['run_id']} stages:")
                for stage in stages:
                    print(
                        f"  {stage['stage']}: {stage['status']} "
                        f"in {stage['seconds']:.3f}s"
                    )
            profile = timings.get("enforcement_profile")
            if not profile:
                continue
            print(f"{record['run_id']}:")
            for label, p in profile.items():
                print(
                    f"  {label}: check {p['check_seconds']:.3f}s, "
                    f"constraints {p['constraint_seconds']:.3f}s, "
                    f"qp {p['qp_seconds']:.3f}s, "
                    f"rebuild {p['rebuild_seconds']:.3f}s"
                )
    print(f"registry      : {out}")
    if cache is not None:
        print(f"cache         : {cache.root} ({len(cache)} entries)")
    if args.telemetry is not None:
        print(
            f"telemetry     : {Path(args.telemetry) / 'run_metrics.json'}"
        )
    return 0 if result.n_failed == 0 else 3


def _checker_strategy(args: argparse.Namespace) -> str:
    """Map the --fast/--exact flag pair to a checker strategy name."""
    return "exact" if getattr(args, "exact", False) else "fast"


def _enforcement_profile(label: str, enforced: EnforcementResult) -> str:
    """Per-iteration timing breakdown table for ``--profile``."""
    lines = [
        f"enforcement profile ({label}): {enforced.iterations} iteration(s), "
        f"converged={enforced.converged}",
        "  iter  mode              worst sigma   n_con   check_s  constr_s"
        "    qp_s  rebuild_s",
    ]
    for rec in enforced.history:
        lines.append(
            f"  {rec.iteration:>4d}  {rec.check_mode:<16s}  "
            f"{rec.worst_sigma:>11.6f}  {rec.n_constraints:>6d}  "
            f"{rec.check_seconds:>8.3f}  {rec.constraint_seconds:>8.3f}  "
            f"{rec.qp_seconds:>6.3f}  {rec.rebuild_seconds:>9.3f}"
        )
    totals = enforced.profile()
    lines.append(
        "  totals: check {check_seconds:.3f}s, constraints "
        "{constraint_seconds:.3f}s, qp {qp_seconds:.3f}s, model rebuild "
        "{rebuild_seconds:.3f}s".format(**totals)
    )
    return "\n".join(lines)


def _log_level(args: argparse.Namespace) -> int | None:
    if getattr(args, "quiet", False):
        return logging.ERROR
    verbose = getattr(args, "verbose", 0)
    if verbose >= 2:
        return logging.DEBUG
    if verbose == 1:
        return logging.INFO
    return None


def _ingest_parent() -> argparse.ArgumentParser:
    """Shared parent parser: the repro.ingest data-conditioning flags.

    Consumed (via ``parents=``) by ``fit``, ``flow`` and ``campaign``, so
    the three subcommands expose identical flags with identical defaults;
    ``campaign`` treats them as overrides of its external-data scenarios,
    hence the "unset" defaults (``None``/``False``) everywhere.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group(
        "data conditioning",
        "repro.ingest pipeline applied to the input file; every action "
        "is recorded in <output-dir>/ingest_report.json (for campaigns "
        "these flags override the external-data scenarios' data_* knobs)",
    )
    group.add_argument(
        "--z0", type=float, default=None,
        help="renormalize scattering data to this reference resistance "
        "(ohm; default keeps the file's reference)",
    )
    group.add_argument(
        "--drop-dc", action="store_true",
        help="drop an f = 0 point instead of keeping it",
    )
    group.add_argument(
        "--f-min", type=float, default=None,
        help="low edge of the fitting band (Hz; a kept DC point survives)",
    )
    group.add_argument(
        "--f-max", type=float, default=None,
        help="high edge of the fitting band (Hz)",
    )
    group.add_argument(
        "--max-points", type=int, default=None,
        help="decimate the grid to at most this many points "
        "(endpoints always kept)",
    )
    group.add_argument(
        "--symmetrize", choices=["auto", "always", "never"], default=None,
        help="reciprocity symmetrization: 'auto' (default) enforces "
        "S = S^T only on data already reciprocal to solver tolerance",
    )
    return parent


def _termination_parent(*, required: bool) -> argparse.ArgumentParser:
    """Shared parent parser: termination spec + observation port.

    ``fit`` takes the spec optionally (plain fit without), ``flow``
    requires it, ``campaign`` applies it as an external-scenario
    override.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--termination", required=required, default=None,
        help="termination spec: JSON file or compact inline spec "
        "(e.g. '*=r(50)' or '0=rlc(r=0.2,c=2e-9);1=short(1e-4)')",
    )
    parent.add_argument(
        "--observe-port", type=int, default=None,
        help="observation port (0-based) of the full-flow path (default "
        "0); also receives the nominal 1 A excitation when the spec sets "
        "none",
    )
    return parent


def _telemetry_parent() -> argparse.ArgumentParser:
    """Shared parent parser: the --telemetry flag of fit/flow/campaign."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="record telemetry (structured solver/cache events) into DIR: "
        "per-process events-*.jsonl streams plus run_metrics.json and a "
        "Prometheus-style metrics.prom; render with 'repro trace DIR'",
    )
    return parent


def _flow_parent() -> argparse.ArgumentParser:
    """Shared parent parser: pipeline-configuration flags of fit/flow."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--poles", type=int, default=12)
    parent.add_argument("--dc-exact", action="store_true")
    parent.add_argument(
        "--kernel", choices=["batched", "reference"], default="batched",
        help="vector-fitting kernel: stacked batched LAPACK (default) or "
        "the per-column reference loops",
    )
    parent.add_argument(
        "--backend",
        choices=["auto", "numpy", "cupy", "jax", "array_api_strict"],
        default="auto",
        help="array backend for the dense kernels: auto (default; prefers "
        "an installed accelerator backend), numpy, cupy, jax or "
        "array_api_strict",
    )
    parent.add_argument("--weight-mode", choices=["relative", "absolute"],
                        default="relative")
    parent.add_argument("--refinement-rounds", type=int, default=3)
    parent.add_argument("--weight-order", type=int, default=8)
    parent.add_argument("--low-band-hz", type=float, default=1e6)
    _add_checker_flags(parent)
    parent.add_argument(
        "--exact-every", type=int, default=5,
        help="cadence of interleaved exact Hamiltonian checks in fast "
        "mode (0 disables interleaving)",
    )
    parent.add_argument(
        "--profile", action="store_true",
        help="print per-stage pipeline timings plus a per-iteration "
        "breakdown of both passivity-enforcement runs",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sensitivity-weighted passivity enforcement for PDN "
        "macromodels (Ubolli et al., DATE 2014)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="enable structured progress logging (-vv for debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only log errors",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_case = sub.add_parser("testcase", help="generate the synthetic PDN test case")
    p_case.add_argument("--size", choices=["small", "medium", "large"],
                        default="small")
    p_case.add_argument("--output-dir", default="testcase")
    p_case.set_defaults(func=_cmd_testcase)

    ingest_parent = _ingest_parent()
    flow_parent = _flow_parent()
    telemetry_parent = _telemetry_parent()

    p_fit = sub.add_parser(
        "fit",
        help="fit a Touchstone file (any multiport; full flow with "
        "--termination)",
        description="Condition a Touchstone file through repro.ingest and "
        "vector-fit it.  Without --termination this is a plain fit; with "
        "--termination (JSON file or compact inline spec, e.g. "
        "'0=rlc(r=0.2,c=2e-9);1=short(1e-4)' or '*=r(50)') the full "
        "sensitivity-weighted passivity-enforcement flow runs on the "
        "external data.",
        parents=[ingest_parent, _termination_parent(required=False),
                 flow_parent, telemetry_parent],
    )
    p_fit.add_argument("data", help="input .sNp file")
    p_fit.add_argument("--output-dir", default="fit")
    p_fit.set_defaults(func=_cmd_fit)

    p_flow = sub.add_parser(
        "flow",
        help="run the full paper pipeline",
        parents=[ingest_parent, _termination_parent(required=True),
                 flow_parent, telemetry_parent],
    )
    p_flow.add_argument("data", help="input .sNp file")
    p_flow.add_argument("--output-dir", default="flow")
    p_flow.set_defaults(func=_cmd_flow)

    p_camp = sub.add_parser(
        "campaign",
        help="run a parameter-sweep campaign of flow runs",
        description="Expand a campaign spec (JSON: base scenario + sweep "
        "axes) into a scenario grid and run the full pipeline on every "
        "scenario, in parallel, with content-addressed caching and an "
        "on-disk result registry.  The shared ingest/termination flags "
        "override the data_* knobs of external-data scenarios.",
        parents=[ingest_parent, _termination_parent(required=False),
                 telemetry_parent],
    )
    p_camp.add_argument("spec", help="campaign spec JSON file")
    p_camp.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: CPU count, capped at 8; "
        "1 = serial in-process)",
    )
    p_camp.add_argument(
        "--resume", action="store_true",
        help="skip scenarios already completed in the registry",
    )
    p_camp.add_argument(
        "--filter", default=None,
        help="only run scenarios whose name matches (substring or glob)",
    )
    p_camp.add_argument(
        "--dry-run", action="store_true",
        help="list the expanded scenarios without running anything",
    )
    p_camp.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed flow and stage caches",
    )
    p_camp.add_argument(
        "--cache-dir", default=None,
        help="cache location (default: <output-dir>/cache, shared "
        "across campaigns; per-stage artifacts live in its stages/ "
        "subdirectory)",
    )
    p_camp.add_argument("--output-dir", default="campaigns")
    p_camp.add_argument(
        "--no-shared-fits", action="store_true",
        help="disable precomputing one shared standard vector fit per "
        "group of scenarios reusing the same scattering data",
    )
    p_camp.add_argument(
        "--blas-threads", type=int, default=None,
        help="per-worker BLAS/OpenMP thread budget (default: CPU count "
        "divided by the worker count; prevents oversubscription)",
    )
    _add_checker_flags(p_camp, override=True)
    p_camp.add_argument(
        "--backend",
        choices=["auto", "numpy", "cupy", "jax", "array_api_strict"],
        default=None,
        help="array backend for every scenario's dense kernels "
        "(overrides the campaign spec; default: leave spec values)",
    )
    p_camp.add_argument(
        "--profile", action="store_true",
        help="print each run's per-stage pipeline timings and enforcement "
        "breakdown (check vs. QP vs. model rebuild)",
    )
    p_camp.add_argument(
        "--max-retries", type=int, default=0,
        help="re-run a failed scenario up to N extra attempts with "
        "exponential backoff (default: 0, fail fast)",
    )
    p_camp.add_argument(
        "--retry-backoff", type=float, default=0.1,
        help="base backoff in seconds before the first retry; doubles "
        "per attempt with deterministic per-run jitter (default: 0.1)",
    )
    p_camp.add_argument(
        "--retry-budget", type=int, default=None,
        help="campaign-wide cap on total retry attempts across all "
        "scenarios (default: unlimited)",
    )
    p_camp.add_argument(
        "--timeout", type=float, default=None,
        help="per-scenario wall-clock timeout in seconds; a timed-out "
        "scenario is killed and requeued (pooled runs only)",
    )
    p_camp.add_argument(
        "--retry-failed", action="store_true",
        help="re-run only the scenarios whose stored registry record "
        "failed, keeping completed results",
    )
    p_camp.set_defaults(func=_cmd_campaign)

    p_trace = sub.add_parser(
        "trace",
        help="render a recorded run's telemetry (convergence, timings)",
        description="Render the telemetry recorded by --telemetry DIR: "
        "per-iteration solver convergence trajectories, per-stage and "
        "per-kernel wall-time breakdowns, cache hit/miss counters, and "
        "campaign-level rollups.  RUN_DIR may be the telemetry directory "
        "itself, an output directory containing telemetry/, or a campaign "
        "registry directory.",
    )
    p_trace.add_argument(
        "run_dir", metavar="RUN_DIR",
        help="telemetry directory, output directory, or campaign registry",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo's static-analysis pass (tools/reprolint)",
        description="AST-based invariant checks over the checkout: "
        "backend routing, telemetry hygiene, error taxonomy, fingerprint "
        "safety, import hygiene.  Exit 0 clean, 1 findings, 2 usage "
        "error.  Requires running inside the repository.",
    )
    p_lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to scan (default: src tests)",
    )
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    p_lint.add_argument("--rules", default=None,
                        help="comma-separated subset of rules")
    p_lint.add_argument("--update-registry", action="store_true",
                        help="rewrite the telemetry counter registry")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def _add_checker_flags(
    parser: argparse.ArgumentParser, *, override: bool = False
) -> None:
    """--fast/--exact passivity-checker strategy flags.

    With ``override=True`` (campaign) the pair overrides every scenario's
    ``checker_strategy``; unset leaves the spec values untouched.
    """
    group = parser.add_mutually_exclusive_group()
    suffix = " (overrides the campaign spec)" if override else " (default)"
    group.add_argument(
        "--fast", dest="fast", action="store_true",
        help="sampling-first passivity checker with exact Hamiltonian "
        "certification" + suffix,
    )
    group.add_argument(
        "--exact", dest="exact", action="store_true",
        help="exact Hamiltonian passivity check every enforcement "
        "iteration",
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    level = _log_level(args)
    if level is not None:
        enable_console_logging(level)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
