"""Linear circuit substrate: elements, netlists, AC nodal analysis.

This package replaces the commercial field solver of the paper's flow: it
produces tabulated scattering data for synthetic PDN structures, and it
provides the termination component models (decoupling capacitors, VRM,
active die blocks) used to load the macromodel.
"""

from repro.circuits.elements import (
    Branch,
    Capacitor,
    Conductance,
    Inductor,
    Resistor,
    SeriesRL,
    SeriesRLC,
)
from repro.circuits.netlist import Circuit, Port
from repro.circuits.mna import ACAnalysis
from repro.circuits.components import (
    DecouplingCapacitor,
    DieBlock,
    OpenTermination,
    PortTermination,
    ResistiveTermination,
    ShortTermination,
    VRMModel,
)

__all__ = [
    "Branch",
    "Resistor",
    "Inductor",
    "Capacitor",
    "Conductance",
    "SeriesRL",
    "SeriesRLC",
    "Circuit",
    "Port",
    "ACAnalysis",
    "PortTermination",
    "DecouplingCapacitor",
    "VRMModel",
    "DieBlock",
    "OpenTermination",
    "ShortTermination",
    "ResistiveTermination",
]
