"""AC nodal analysis with internal-node reduction.

Every element in :mod:`repro.circuits.elements` is a two-terminal admittance
branch, so plain nodal analysis (the admittance sub-case of MNA) suffices:

    Y(j omega) v = i

with ground eliminated.  Ports are single-ended node-to-ground pairs; the
port-level admittance matrix is the Schur complement of the internal nodes

    Y_ports = Y_pp - Y_pi Y_ii^{-1} Y_ip

which is exactly what a field solver exports before scattering conversion.
Internal solves use sparse LU for grids of any practical size.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.circuits.netlist import Circuit
from repro.sparams.conversions import y_to_s
from repro.sparams.network import NetworkData
from repro.util.validation import check_frequency_grid


class ACAnalysis:
    """Frequency-sweep analyser for a :class:`Circuit`.

    Parameters
    ----------
    circuit:
        Validated netlist with at least one port.
    """

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self._circuit = circuit
        nodes = circuit.nodes  # ports first by construction of Circuit.nodes
        self._index = {node: i for i, node in enumerate(nodes)}
        self._n_nodes = len(nodes)
        self._n_ports = circuit.n_ports
        # Precompute the stamp pattern: (row, col, branch_index, sign)
        rows: list[int] = []
        cols: list[int] = []
        branch_ids: list[int] = []
        signs: list[float] = []
        for b_idx, branch in enumerate(circuit.branches):
            ia = self._index.get(branch.node_a, -1)
            ib = self._index.get(branch.node_b, -1)
            if ia >= 0:
                rows.append(ia)
                cols.append(ia)
                branch_ids.append(b_idx)
                signs.append(1.0)
            if ib >= 0:
                rows.append(ib)
                cols.append(ib)
                branch_ids.append(b_idx)
                signs.append(1.0)
            if ia >= 0 and ib >= 0:
                rows.extend((ia, ib))
                cols.extend((ib, ia))
                branch_ids.extend((b_idx, b_idx))
                signs.extend((-1.0, -1.0))
        self._rows = np.asarray(rows)
        self._cols = np.asarray(cols)
        self._branch_ids = np.asarray(branch_ids)
        self._signs = np.asarray(signs)

    @property
    def n_ports(self) -> int:
        return self._n_ports

    # ------------------------------------------------------------------
    # Core sweeps
    # ------------------------------------------------------------------
    def _branch_admittances(self, omega: np.ndarray) -> np.ndarray:
        """(K, n_branches) complex admittance table."""
        table = np.empty((omega.size, len(self._circuit.branches)), dtype=complex)
        for b_idx, branch in enumerate(self._circuit.branches):
            table[:, b_idx] = branch.admittance(omega)
        return table

    def _nodal_matrix(self, admittances_k: np.ndarray) -> scipy.sparse.csc_matrix:
        data = self._signs * admittances_k[self._branch_ids]
        matrix = scipy.sparse.coo_matrix(
            (data, (self._rows, self._cols)),
            shape=(self._n_nodes, self._n_nodes),
            dtype=complex,
        )
        return matrix.tocsc()

    def port_admittance(self, frequencies: np.ndarray) -> np.ndarray:
        """Port-level admittance matrices, shape (K, P, P)."""
        frequencies = check_frequency_grid(np.asarray(frequencies, dtype=float))
        omega = 2.0 * np.pi * frequencies
        table = self._branch_admittances(omega)
        n_p = self._n_ports
        n_i = self._n_nodes - n_p
        result = np.empty((omega.size, n_p, n_p), dtype=complex)
        for k in range(omega.size):
            y_full = self._nodal_matrix(table[k])
            y_pp = y_full[:n_p, :n_p].toarray()
            if n_i == 0:
                result[k] = y_pp
                continue
            y_pi = y_full[:n_p, n_p:].toarray()
            y_ip = y_full[n_p:, :n_p].toarray()
            y_ii = y_full[n_p:, n_p:]
            try:
                lu = scipy.sparse.linalg.splu(y_ii.tocsc())
                x = lu.solve(y_ip)
            except RuntimeError as exc:
                raise np.linalg.LinAlgError(
                    f"internal nodal matrix singular at f={frequencies[k]:g} Hz; "
                    "check for floating internal nodes"
                ) from exc
            result[k] = y_pp - y_pi @ x
        return result

    def scattering(self, frequencies: np.ndarray, z0: float = 50.0) -> NetworkData:
        """Scattering data at the circuit ports, normalized to ``z0``."""
        y_ports = self.port_admittance(frequencies)
        samples = y_to_s(y_ports, z0)
        return NetworkData(
            frequencies=np.asarray(frequencies, dtype=float),
            samples=samples,
            kind="s",
            z0=z0,
            port_names=tuple(port.name for port in self._circuit.ports),
        )

    def input_impedance(
        self, frequencies: np.ndarray, port: int = 0
    ) -> np.ndarray:
        """Driving-point impedance Z_in(j omega) at a single port.

        All other ports are left open (no termination), matching the raw
        characterization setup.
        """
        y_ports = self.port_admittance(frequencies)
        z = np.linalg.inv(y_ports)
        return z[:, port, port]
