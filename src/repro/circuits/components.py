"""Termination component models for PDN ports.

These are the "appropriate models for active device blocks, decoupling
capacitors, voltage regulators" of the paper's nominal termination scheme
(Sec. IV):

* VRM port: short circuit (modelled as a small resistance, optionally with
  a series inductance);
* board ports: vendor decoupling-capacitor models C + ESR + ESL;
* die ports: series RC equivalents of the active device blocks;
* remaining ports: open.

Every termination exposes its one-port admittance ``y(omega)`` (for the
frequency-domain loading of eq. 1/2) and a real state-space realization
``(A, B, C, D)`` of the admittance ``i = Y(s) v`` (for time-domain
closed-loop simulation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PortTermination:
    """Base class for one-port termination models."""

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        """Complex admittance Y(j omega) for angular frequency array."""
        raise NotImplementedError

    def state_space(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Real realization (A, B, C, D) of i = Y(s) v; A may be 0x0."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-line description."""
        return type(self).__name__


def _empty_states() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    return (
        np.zeros((0, 0)),
        np.zeros((0, 1)),
        np.zeros((1, 0)),
    )


@dataclass(frozen=True)
class OpenTermination(PortTermination):
    """Open circuit: draws no current."""

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        return np.zeros(omega.shape, dtype=complex)

    def state_space(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        a, b, c = _empty_states()
        return a, b, c, 0.0

    def describe(self) -> str:
        return "open"


@dataclass(frozen=True)
class ResistiveTermination(PortTermination):
    """Pure resistor to ground."""

    resistance: float = 50.0

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ValueError("resistance must be positive")

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        return np.full(omega.shape, 1.0 / self.resistance, dtype=complex)

    def state_space(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        a, b, c = _empty_states()
        return a, b, c, 1.0 / self.resistance

    def describe(self) -> str:
        return f"R={self.resistance:g} ohm"


@dataclass(frozen=True)
class ShortTermination(PortTermination):
    """Near-ideal short: small resistance to keep the loaded system regular."""

    resistance: float = 1e-6

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ValueError("resistance must be positive")

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        return np.full(omega.shape, 1.0 / self.resistance, dtype=complex)

    def state_space(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        a, b, c = _empty_states()
        return a, b, c, 1.0 / self.resistance

    def describe(self) -> str:
        return f"short (R={self.resistance:g} ohm)"


@dataclass(frozen=True)
class VRMModel(PortTermination):
    """Voltage Regulator Module output model: series R + L to ground.

    With the default tiny inductance this behaves as the paper's VRM short
    at all frequencies of interest, while remaining a proper dynamical
    one-port for time-domain simulation.
    """

    resistance: float = 1e-3
    inductance: float = 1e-10

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ValueError("resistance must be positive")
        if self.inductance <= 0.0:
            raise ValueError("inductance must be positive")

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        return 1.0 / (self.resistance + 1j * omega * self.inductance)

    def state_space(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        # State: inductor current iL. diL/dt = (v - R iL)/L, i = iL.
        a = np.array([[-self.resistance / self.inductance]])
        b = np.array([[1.0 / self.inductance]])
        c = np.array([[1.0]])
        return a, b, c, 0.0

    def describe(self) -> str:
        return f"VRM R={self.resistance:g} L={self.inductance:g}"


@dataclass(frozen=True)
class DecouplingCapacitor(PortTermination):
    """Vendor decap model: series C + ESR + ESL to ground."""

    capacitance: float = 1e-6
    esr: float = 5e-3
    esl: float = 1e-9

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ValueError("capacitance must be positive")
        if self.esr <= 0.0:
            raise ValueError("ESR must be positive")
        if self.esl <= 0.0:
            raise ValueError("ESL must be positive")

    @property
    def resonance_hz(self) -> float:
        """Series resonance frequency where the decap is most effective."""
        return 1.0 / (2.0 * np.pi * np.sqrt(self.esl * self.capacitance))

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        out = np.zeros(omega.shape, dtype=complex)
        nonzero = omega != 0.0
        w = omega[nonzero]
        z = self.esr + 1j * w * self.esl + 1.0 / (1j * w * self.capacitance)
        out[nonzero] = 1.0 / z
        return out

    def state_space(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        # States: [iL, vC]. L diL/dt = v - ESR iL - vC ; C dvC/dt = iL.
        a = np.array(
            [
                [-self.esr / self.esl, -1.0 / self.esl],
                [1.0 / self.capacitance, 0.0],
            ]
        )
        b = np.array([[1.0 / self.esl], [0.0]])
        c = np.array([[1.0, 0.0]])
        return a, b, c, 0.0

    def describe(self) -> str:
        return (
            f"decap C={self.capacitance:g} ESR={self.esr:g} ESL={self.esl:g} "
            f"(f_res={self.resonance_hz:.3g} Hz)"
        )


@dataclass(frozen=True)
class SeriesRLC(PortTermination):
    """Generic one-port: series R + L + C to ground, any element optional.

    The workhorse of external-data terminations: with ``capacitance=None``
    (no series capacitor) it degenerates to R, L or R+L; with a
    capacitance it covers R+C (die-style), C+ESR+ESL (decap-style) and
    everything in between.  ``resistance`` must be positive when there is
    no series capacitor, otherwise the port would be a DC short and the
    loaded admittance of eq. (1) singular.
    """

    resistance: float = 0.0
    inductance: float = 0.0
    capacitance: float | None = None

    def __post_init__(self) -> None:
        if self.resistance < 0.0:
            raise ValueError("resistance must be non-negative")
        if self.inductance < 0.0:
            raise ValueError("inductance must be non-negative")
        if self.capacitance is not None and self.capacitance <= 0.0:
            raise ValueError("capacitance must be positive when given")
        if self.capacitance is None and self.resistance == 0.0:
            raise ValueError(
                "series RLC without a capacitor needs a positive resistance "
                "(an R = 0 branch is a DC short; use a small resistance)"
            )

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        out = np.zeros(omega.shape, dtype=complex)
        if self.capacitance is None:
            z = self.resistance + 1j * omega * self.inductance
            return 1.0 / z
        nonzero = omega != 0.0
        w = omega[nonzero]
        z = (
            self.resistance
            + 1j * w * self.inductance
            + 1.0 / (1j * w * self.capacitance)
        )
        out[nonzero] = 1.0 / z
        return out

    def state_space(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        r, ell, cap = self.resistance, self.inductance, self.capacitance
        if cap is None:
            if ell == 0.0:
                a, b, c = _empty_states()
                return a, b, c, 1.0 / r
            # State: iL. L diL/dt = v - R iL, i = iL.
            return (
                np.array([[-r / ell]]),
                np.array([[1.0 / ell]]),
                np.array([[1.0]]),
                0.0,
            )
        if ell > 0.0:
            # States: [iL, vC]. L diL/dt = v - R iL - vC ; C dvC/dt = iL.
            a = np.array([[-r / ell, -1.0 / ell], [1.0 / cap, 0.0]])
            b = np.array([[1.0 / ell], [0.0]])
            c = np.array([[1.0, 0.0]])
            return a, b, c, 0.0
        if r == 0.0:
            raise ValueError(
                "a pure series capacitor (i = C dv/dt) has no proper "
                "state-space realization; add a small series resistance"
            )
        # State: vC. C dvC/dt = (v - vC)/R, i = (v - vC)/R.
        tau = r * cap
        a = np.array([[-1.0 / tau]])
        b = np.array([[1.0 / tau]])
        c = np.array([[-1.0 / r]])
        return a, b, c, 1.0 / r

    def describe(self) -> str:
        parts = []
        if self.resistance:
            parts.append(f"R={self.resistance:g}")
        if self.inductance:
            parts.append(f"L={self.inductance:g}")
        if self.capacitance is not None:
            parts.append(f"C={self.capacitance:g}")
        return f"series {' '.join(parts) or 'R=0'}"


@dataclass(frozen=True)
class DieBlock(PortTermination):
    """Active die block equivalent: series R + C to ground (paper Sec. IV)."""

    resistance: float = 0.1
    capacitance: float = 1e-9

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ValueError("resistance must be positive")
        if self.capacitance <= 0.0:
            raise ValueError("capacitance must be positive")

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        out = np.zeros(omega.shape, dtype=complex)
        nonzero = omega != 0.0
        w = omega[nonzero]
        z = self.resistance + 1.0 / (1j * w * self.capacitance)
        out[nonzero] = 1.0 / z
        return out

    def state_space(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        # State: vC. C dvC/dt = i = (v - vC)/R, i = (v - vC)/R.
        tau = self.resistance * self.capacitance
        a = np.array([[-1.0 / tau]])
        b = np.array([[1.0 / tau]])
        c = np.array([[-1.0 / self.resistance]])
        return a, b, c, 1.0 / self.resistance

    def describe(self) -> str:
        return f"die block R={self.resistance:g} C={self.capacitance:g}"
