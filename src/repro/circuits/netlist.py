"""Netlist container: nodes, branches and port definitions.

A :class:`Circuit` is a collection of two-terminal branches between named
nodes plus an ordered list of :class:`Port` definitions.  The ground node is
``"0"`` (SPICE convention).  The circuit is purely topological; all solving
lives in :mod:`repro.circuits.mna`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.circuits.elements import Branch, Node

GROUND: Node = "0"


@dataclass(frozen=True)
class Port:
    """A single-ended port between ``node`` and ground with a label."""

    node: Node
    name: str = ""

    def __post_init__(self) -> None:
        if self.node == GROUND:
            raise ValueError("a port cannot be attached to the ground node")


@dataclass
class Circuit:
    """Mutable netlist of branches and ports."""

    branches: list[Branch] = field(default_factory=list)
    ports: list[Port] = field(default_factory=list)

    def add(self, branch: Branch) -> None:
        """Append a branch to the netlist."""
        if not isinstance(branch, Branch):
            raise TypeError(f"expected a Branch, got {type(branch).__name__}")
        self.branches.append(branch)

    def add_port(self, node: Node, name: str = "") -> int:
        """Declare a port at ``node``; returns the port index."""
        port = Port(node=node, name=name or f"port{len(self.ports) + 1}")
        for existing in self.ports:
            if existing.node == node:
                raise ValueError(f"node {node!r} already carries port {existing.name!r}")
        self.ports.append(port)
        return len(self.ports) - 1

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        """All distinct non-ground nodes, ports first, in deterministic order."""
        seen: dict[Node, None] = {}
        for port in self.ports:
            seen.setdefault(port.node, None)
        for branch in self.branches:
            for node in (branch.node_a, branch.node_b):
                if node != GROUND:
                    seen.setdefault(node, None)
        return list(seen)

    @property
    def n_ports(self) -> int:
        return len(self.ports)

    def graph(self) -> "nx.MultiGraph":
        """Connectivity graph over all nodes (including ground)."""
        graph = nx.MultiGraph()
        graph.add_nodes_from(self.nodes)
        graph.add_node(GROUND)
        for branch in self.branches:
            graph.add_edge(branch.node_a, branch.node_b, element=branch)
        return graph

    def validate(self) -> None:
        """Raise if the netlist cannot be analysed.

        Checks: at least one port; every port node appears in some branch;
        every non-ground node is connected (possibly through other nodes) to
        a port or to ground, so the reduced nodal matrix is invertible.
        """
        if not self.ports:
            raise ValueError("circuit has no ports")
        if not self.branches:
            raise ValueError("circuit has no branches")
        graph = self.graph()
        port_nodes = {port.node for port in self.ports}
        branch_nodes = {b.node_a for b in self.branches} | {
            b.node_b for b in self.branches
        }
        missing = port_nodes - branch_nodes
        if missing:
            raise ValueError(f"port nodes {sorted(missing)} appear in no branch")
        anchors = port_nodes | {GROUND}
        for component in nx.connected_components(graph):
            if not (component & anchors):
                raise ValueError(
                    f"floating subcircuit with nodes {sorted(component)[:5]}..."
                )
