"""Two-terminal branch elements with frequency-dependent admittance.

All elements are represented as branches between two named nodes with a
complex admittance ``y(omega)``.  Composite branches (series RL, series RLC)
are first-class elements so that PDN grids need no internal nodes for the
ubiquitous R+L spreading branches and C+ESR+ESL decap paths; this keeps the
nodal matrices small and, crucially, finite at DC (a pure inductor has
infinite DC admittance, a series RL with R > 0 does not).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

Node = str


@dataclass(frozen=True)
class Branch:
    """Base class for a two-terminal element between ``node_a`` and ``node_b``."""

    node_a: Node
    node_b: Node

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        """Complex admittance at angular frequencies ``omega`` (rad/s)."""
        raise NotImplementedError

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise ValueError(f"branch terminals coincide on node {self.node_a!r}")


@dataclass(frozen=True)
class Resistor(Branch):
    """Ideal resistor of ``resistance`` ohms."""

    resistance: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance <= 0.0:
            raise ValueError("resistance must be positive")

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        return np.full(omega.shape, 1.0 / self.resistance, dtype=complex)


@dataclass(frozen=True)
class Conductance(Branch):
    """Ideal conductance of ``conductance`` siemens (zero allowed)."""

    conductance: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.conductance < 0.0:
            raise ValueError("conductance must be non-negative")

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        return np.full(omega.shape, self.conductance, dtype=complex)


@dataclass(frozen=True)
class Inductor(Branch):
    """Ideal inductor; infinite admittance at DC, so omega must be > 0.

    Prefer :class:`SeriesRL` inside PDN grids so the DC point stays solvable.
    """

    inductance: float = 1e-9

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inductance <= 0.0:
            raise ValueError("inductance must be positive")

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        if np.any(omega == 0.0):
            raise ValueError(
                "ideal inductor admittance diverges at DC; use SeriesRL instead"
            )
        return 1.0 / (1j * omega * self.inductance)


@dataclass(frozen=True)
class Capacitor(Branch):
    """Capacitor with dielectric losses.

    ``leakage`` is a constant parallel conductance; ``loss_tangent`` models
    the frequency-proportional dielectric loss of real laminates
    (G(omega) = omega * C * tan_delta), which is what damps power-plane
    resonances in practice.
    """

    capacitance: float = 1e-12
    leakage: float = 0.0
    loss_tangent: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacitance <= 0.0:
            raise ValueError("capacitance must be positive")
        if self.leakage < 0.0:
            raise ValueError("leakage must be non-negative")
        if self.loss_tangent < 0.0:
            raise ValueError("loss_tangent must be non-negative")

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        conductance = self.leakage + omega * self.capacitance * self.loss_tangent
        return conductance + 1j * omega * self.capacitance


@dataclass(frozen=True)
class SeriesRL(Branch):
    """Series resistor + inductor branch: ``y = 1 / (R + j omega L)``.

    The standard unit-cell spreading branch of a power plane model.  Skin
    effect is modelled with a corner frequency:

        R(omega) = R * sqrt(1 + omega / omega_skin),

    constant below the corner (skin depth exceeds the conductor thickness,
    so the DC resistance applies -- essential for the milliohm path
    resistances that set the loaded PDN impedance) and growing like
    sqrt(omega) above it, which damps GHz plane resonances.
    ``skin_corner_hz = 0`` disables the effect.
    """

    resistance: float = 1e-3
    inductance: float = 1e-10
    skin_corner_hz: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance <= 0.0:
            raise ValueError("resistance must be positive (keeps DC solvable)")
        if self.inductance < 0.0:
            raise ValueError("inductance must be non-negative")
        if self.skin_corner_hz < 0.0:
            raise ValueError("skin_corner_hz must be non-negative")

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        resistance = np.full(omega.shape, self.resistance)
        if self.skin_corner_hz > 0.0:
            omega_skin = 2.0 * np.pi * self.skin_corner_hz
            resistance = self.resistance * np.sqrt(1.0 + np.abs(omega) / omega_skin)
        return 1.0 / (resistance + 1j * omega * self.inductance)


@dataclass(frozen=True)
class SeriesRLC(Branch):
    """Series R-L-C branch: the canonical decoupling-capacitor mounting path.

    ``y = 1 / (R + j omega L + 1/(j omega C))``; the admittance vanishes at
    DC (series capacitor blocks), which keeps DC analysis meaningful.
    """

    resistance: float = 1e-3
    inductance: float = 1e-9
    capacitance: float = 1e-6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance <= 0.0:
            raise ValueError("resistance (ESR) must be positive")
        if self.inductance < 0.0:
            raise ValueError("inductance (ESL) must be non-negative")
        if self.capacitance <= 0.0:
            raise ValueError("capacitance must be positive")

    def admittance(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float)
        out = np.zeros(omega.shape, dtype=complex)
        nonzero = omega != 0.0
        w = omega[nonzero]
        impedance = (
            self.resistance
            + 1j * w * self.inductance
            + 1.0 / (1j * w * self.capacitance)
        )
        out[nonzero] = 1.0 / impedance
        # DC: series capacitor is an open circuit.
        return out
