"""Magnitude Vector Fitting (paper refs. [24]-[25], used for eq. 17).

Given magnitude-only samples m_k = |H(j omega_k)| the algorithm fits the
*squared* magnitude with a rational function that is symmetric in s <-> -s,

    G(s) = H(s) H(-s) = sum_m r_m / (q_m^2 - s^2) + d ,        (paper eq. 17)

and then extracts the stable, minimum-phase spectral factor H(s).

Implementation: substitute x = omega^2 (so s^2 = -x on the imaginary axis).
Each term r/(q^2 - s^2) becomes r/(q^2 + x): a real rational function of x
with a real pole at x = -q^2 < 0.  Fitting G is therefore ordinary vector
fitting with *real* poles on real non-negative data, with relocated poles
projected back onto the negative real x-axis.  The spectral factor's poles
are -q_m = -sqrt(-x_m) and its zeros come from the numerator roots of the
fitted G mapped through zeta = sqrt(-z_x) into the left half plane.

Numerically delicate points handled here:

* relocated x-poles can turn complex or positive -> projected to -|x|;
* the asymptotic constant d must be positive for sqrt(d) to exist -> if
  the unconstrained fit gives d <= 0 the residue step is repeated with d
  clamped to a small positive value;
* numerator roots with positive real x (zeros at real frequencies, where
  G would change sign) are reflected to the negative axis, which perturbs
  the response only locally -- the paper likewise tolerates local mismatch
  ("we did not care of matching the spike around 0.5-1 GHz").

All least-squares solves go through the shared equilibrated kernels of
:mod:`repro.vectfit.kernels` (the same ones driving the batched matrix-VF
hot path), so the eq. 17 weight-model fit inherits their conditioning
behaviour and stays off bespoke per-call LAPACK dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import active_backend
from repro.statespace.system import StateSpaceModel
from repro.util.logging import get_logger
from repro.util.validation import check_frequency_grid
from repro.vectfit import kernels

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class MagnitudeFitResult:
    """Outcome of :func:`fit_magnitude`.

    Attributes
    ----------
    model:
        Stable minimum-phase SISO state-space model H(s) with
        |H(j omega_k)| approximating the magnitude samples.
    poles:
        Poles of H (negative real).
    zeros:
        Zeros of H (left half plane).
    gain:
        Asymptotic gain sqrt(d) = |H(j inf)|.
    rms_db_error:
        RMS magnitude error in dB over the (positive-magnitude) samples.
    max_db_error:
        Maximum magnitude error in dB.
    iterations:
        Pole-relocation iterations performed.
    """

    model: StateSpaceModel
    poles: np.ndarray
    zeros: np.ndarray
    gain: float
    rms_db_error: float
    max_db_error: float
    iterations: int


def _initial_x_poles(x: np.ndarray, n_poles: int) -> np.ndarray:
    positive = x[x > 0.0]
    lo, hi = float(positive.min()), float(positive.max())
    return -np.logspace(np.log10(lo), np.log10(hi), n_poles)


def _x_basis(x: np.ndarray, poles_x: np.ndarray) -> np.ndarray:
    return 1.0 / (x[:, None] - poles_x[None, :])


def _relocate_real(
    x: np.ndarray,
    g: np.ndarray,
    w: np.ndarray,
    poles_x: np.ndarray,
    *,
    min_sigma_d: float = 1e-8,
) -> np.ndarray:
    """One relaxed-VF pole relocation in the real x-domain."""
    n = poles_x.size
    phi = _x_basis(x, poles_x)
    # Unknowns: [c (n), d (1), c_sigma (n), d_sigma (1)]
    a = np.empty((x.size, 2 * n + 2))
    a[:, :n] = phi * w[:, None]
    a[:, n] = w
    a[:, n + 1 : 2 * n + 1] = -(g * w)[:, None] * phi
    a[:, 2 * n + 1] = -(g * w)
    rhs = np.zeros(x.size)
    # Relaxation row: average sigma value pinned to 1.
    scale = float(np.linalg.norm(g * w)) / max(x.size, 1)
    relax = np.zeros(2 * n + 2)
    relax[n + 1 : 2 * n + 1] = np.sum(phi, axis=0)
    relax[2 * n + 1] = x.size
    a = np.vstack([a, scale * relax])
    rhs = np.concatenate([rhs, [scale * x.size]])

    solution = kernels.scaled_lstsq(a, rhs)
    c_sigma = solution[n + 1 : 2 * n + 1]
    d_sigma = float(solution[2 * n + 1])
    if abs(d_sigma) < min_sigma_d:
        d_sigma = min_sigma_d if d_sigma >= 0.0 else -min_sigma_d
    backend = active_backend()
    zeros = backend.from_device(
        backend.eigvals(
            backend.asarray(
                np.diag(poles_x) - np.outer(np.ones(n), c_sigma) / d_sigma
            )
        )
    )
    # Project onto the negative real x-axis (poles of a magnitude-squared
    # function must sit at x = -q^2).
    projected = -np.abs(zeros)
    projected = np.where(projected == 0.0, -np.min(np.abs(x[x > 0])), projected)
    return _separate_close(np.sort(projected.real))


def _separate_close(poles_x: np.ndarray, rel_gap: float = 1e-6) -> np.ndarray:
    """Nudge apart (near-)coincident negative real poles to keep bases full rank."""
    out = np.sort(np.asarray(poles_x, dtype=float))  # ascending: most negative first
    for i in range(1, out.size):
        min_sep = rel_gap * max(abs(out[i - 1]), 1e-300)
        if out[i] - out[i - 1] < min_sep:
            out[i] = out[i - 1] + min_sep
        if out[i] >= 0.0:
            out[i] = -min_sep
    return out


def _fit_residues_real(
    x: np.ndarray,
    g: np.ndarray,
    w: np.ndarray,
    poles_x: np.ndarray,
    *,
    d_floor: float,
) -> tuple[np.ndarray, float]:
    """Weighted LS for residues and constant; re-solves with d clamped if d <= 0."""
    phi = _x_basis(x, poles_x)
    a = np.column_stack([phi * w[:, None], w])
    rhs = g * w
    solution = kernels.scaled_lstsq(a, rhs)
    residues, d = solution[:-1], float(solution[-1])
    if d <= 0.0:
        d = d_floor
        residues = kernels.scaled_lstsq(phi * w[:, None], rhs - d * w)
        _LOG.debug("magnitude fit: constant term clamped to %.3e", d)
    return residues, d


def _numerator_roots(poles_x: np.ndarray, residues: np.ndarray, d: float) -> np.ndarray:
    """Roots (in x) of the numerator of g(x) = sum r/(x - x_m) + d."""
    numerator = d * np.poly(poles_x)
    for m in range(poles_x.size):
        others = np.delete(poles_x, m)
        numerator = np.polyadd(numerator, residues[m] * np.poly(others))
    return np.roots(numerator)


def _spectral_zeros(roots_x: np.ndarray) -> np.ndarray:
    """Map numerator roots z_x to minimum-phase s-domain zeros -zeta.

    zeta = sqrt(-z_x) with Re zeta >= 0; positive-real roots (which would
    put zeros on the imaginary axis) are reflected to the negative axis.
    """
    zeros = []
    for z in roots_x:
        if abs(z.imag) <= 1e-9 * max(abs(z), 1e-300):
            value = z.real
            if value > 0.0:
                value = -value  # reflect: G dipped through zero locally
            zeros.append(-np.sqrt(-value))
        else:
            zeta = np.sqrt(-z)
            if zeta.real < 0.0:
                zeta = -zeta
            zeros.append(-zeta)
    return np.asarray(zeros, dtype=complex)


def _partial_fractions(
    zeros: np.ndarray, poles: np.ndarray, gain: float
) -> tuple[np.ndarray, float]:
    """Residues of gain * prod(s - zeros)/prod(s - poles) at simple real poles."""
    numerators = gain * np.prod(poles[:, None] - zeros[None, :], axis=1)
    gaps = poles[:, None] - poles[None, :]
    np.fill_diagonal(gaps, 1.0)
    denominators = np.prod(gaps, axis=1)
    return (numerators / denominators).real, gain


def fit_magnitude(
    omega: np.ndarray,
    magnitude: np.ndarray,
    n_poles: int = 8,
    *,
    n_iterations: int = 30,
    weighting: str = "relative",
    relative_floor: float = 1e-12,
) -> MagnitudeFitResult:
    """Fit a stable minimum-phase SISO model to magnitude-only samples.

    Parameters
    ----------
    omega:
        Angular frequencies (rad/s); a DC point is allowed.
    magnitude:
        Non-negative magnitude samples |H(j omega_k)| (the paper's Xi_k).
    n_poles:
        Order of the spectral factor (the paper uses n_w = 8).
    n_iterations:
        Pole-relocation iterations in the x-domain.
    weighting:
        "relative" (default; balances the fit across decades, i.e. a dB
        fit, which the sensitivity's 80 dB dynamic range requires) or
        "unit" for plain least squares on |H|^2.
    relative_floor:
        Relative magnitude floor used to bound relative weights.
    """
    omega = check_frequency_grid(np.asarray(omega, dtype=float))
    magnitude = np.asarray(magnitude, dtype=float)
    if magnitude.shape != omega.shape:
        raise ValueError("magnitude and omega must have the same shape")
    if np.any(magnitude < 0.0) or not np.all(np.isfinite(magnitude)):
        raise ValueError("magnitude samples must be finite and non-negative")
    if n_poles < 1:
        raise ValueError("n_poles must be at least 1")
    if omega[omega > 0.0].size < 2 * n_poles:
        raise ValueError("too few positive-frequency samples for the order")

    # Work in a normalized x-domain (x scaled to [~0, 1]): the raw x = omega^2
    # spans up to ~20 decades for GHz data, which wrecks the least-squares
    # conditioning; normalization makes pole relocation reliable.
    x_ref = float(np.max(omega)) ** 2
    x = (omega * omega) / x_ref
    g = magnitude * magnitude
    g_max = float(g.max())
    if g_max <= 0.0:
        raise ValueError("all magnitude samples are zero")
    if weighting == "relative":
        w = 1.0 / np.maximum(g, relative_floor * g_max)
    elif weighting == "unit":
        w = np.ones_like(g)
    else:
        raise ValueError(f"unknown weighting {weighting!r}")

    poles_x = _initial_x_poles(x, n_poles)
    iterations = 0
    for iteration in range(n_iterations):
        new_poles = _relocate_real(x, g, w, poles_x)
        change = float(
            np.max(np.abs(new_poles - poles_x) / np.maximum(np.abs(poles_x), 1e-30))
        )
        poles_x = new_poles
        iterations = iteration + 1
        if change < 1e-9:
            break

    residues_x, d = _fit_residues_real(x, g, w, poles_x, d_floor=1e-9 * g_max)
    roots_x = _numerator_roots(poles_x, residues_x, d)
    # Undo the x normalization before mapping into the s-domain.
    zeros = _spectral_zeros(roots_x * x_ref)
    s_poles = -np.sqrt(-poles_x * x_ref)  # negative real
    s_poles = _separate_close(np.sort(s_poles))
    gain = float(np.sqrt(d))

    residues_s, direct = _partial_fractions(zeros, s_poles, gain)
    model = StateSpaceModel(
        a=np.diag(s_poles),
        b=np.ones((s_poles.size, 1)),
        c=residues_s.reshape(1, -1),
        d=np.array([[direct]]),
    )

    response = np.abs(model.frequency_response(omega)[:, 0, 0])
    mask = magnitude > relative_floor * float(magnitude.max())
    ratio = response[mask] / magnitude[mask]
    db_error = 20.0 * np.log10(np.maximum(ratio, 1e-300))
    rms_db = float(np.sqrt(np.mean(db_error**2))) if db_error.size else np.inf
    max_db = float(np.max(np.abs(db_error))) if db_error.size else np.inf
    return MagnitudeFitResult(
        model=model,
        poles=s_poles.astype(complex),
        zeros=zeros,
        gain=gain,
        rms_db_error=rms_db,
        max_db_error=max_db,
        iterations=iterations,
    )
