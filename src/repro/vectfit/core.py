"""Weighted relaxed Vector Fitting (paper refs. [8]-[12]).

Identifies the pole-residue macromodel of paper eq. (3)

    S(s) = sum_n R_n / (s - p_n) + D

from samples S_k on a frequency grid by minimizing the weighted error
metric of eq. (6)

    E_w^2 = sum_k w_k^2 || S(j omega_k) - S_k ||_F^2 .

The implementation follows the classical two-step scheme: a pole-relocation
("sigma") iteration with the relaxed non-triviality constraint of
Gustavsen (2006), using the per-response QR compression of Deschrijver et
al. (2008) so all matrix entries share a common pole set at modest cost,
followed by a weighted linear least-squares residue identification.

Real-coefficient bases are used throughout: a real pole contributes the
basis function 1/(s-p); a conjugate pair (p, conj p) contributes
1/(s-p) + 1/(s-conj p) and j/(s-p) - j/(s-conj p), so all least-squares
unknowns are real and the fitted model is exactly conjugate-symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.statespace.poleresidue import PoleResidueModel, _analyse_pole_structure
from repro.util.logging import get_logger
from repro.util.validation import check_frequency_grid, check_square_stack
from repro.vectfit.options import VFOptions
from repro.vectfit.starting_poles import initial_poles

_LOG = get_logger(__name__)


# ----------------------------------------------------------------------
# Pole bookkeeping
# ----------------------------------------------------------------------
def canonicalize_poles(raw: np.ndarray, *, imag_tol: float = 1e-8) -> np.ndarray:
    """Normalize a raw pole set into pair-grouped canonical form.

    Eigenvalues of real matrices arrive as unordered conjugate pairs with
    roundoff asymmetry; this groups them as (real poles..., pairs with the
    +imag member first followed by its exact conjugate), sorted by
    magnitude so successive iterations are comparable.
    """
    raw = np.asarray(raw, dtype=complex)
    reals: list[float] = []
    positives: list[complex] = []
    negatives: list[complex] = []
    for pole in raw:
        if abs(pole.imag) <= imag_tol * max(abs(pole), 1e-300):
            reals.append(pole.real)
        elif pole.imag > 0.0:
            positives.append(pole)
        else:
            negatives.append(pole)
    # Pair each +imag pole with its nearest conjugate candidate; leftovers
    # (numerically unpaired) are demoted to real poles.
    unmatched = list(negatives)
    pairs: list[complex] = []
    for pole in positives:
        if unmatched:
            distances = [abs(np.conj(pole) - q) for q in unmatched]
            best = int(np.argmin(distances))
            unmatched.pop(best)
            pairs.append(pole)
        else:
            reals.append(pole.real)
    for pole in unmatched:
        reals.append(pole.real)

    reals.sort(key=abs)
    pairs.sort(key=abs)
    out: list[complex] = [complex(r, 0.0) for r in reals]
    for pole in pairs:
        out.append(pole)
        out.append(np.conj(pole))
    return np.asarray(out, dtype=complex)


def flip_unstable_poles(poles: np.ndarray, *, floor: float = 0.0) -> np.ndarray:
    """Reflect right-half-plane poles into the LHP (standard VF safeguard)."""
    poles = np.asarray(poles, dtype=complex).copy()
    for n, pole in enumerate(poles):
        re = pole.real
        if re > 0.0:
            re = -re
        if re == 0.0:
            re = -max(abs(pole) * 1e-6, floor)
        poles[n] = complex(re, pole.imag)
    return poles


def _basis(omega: np.ndarray, poles: np.ndarray) -> np.ndarray:
    """Real-coefficient partial-fraction basis, shape (K, N) complex."""
    blocks = _analyse_pole_structure(poles, 1e-9)
    s = 1j * omega
    phi = np.empty((omega.size, poles.size), dtype=complex)
    for block in blocks:
        pole = poles[block.index]
        if block.kind == "real":
            phi[:, block.offset] = 1.0 / (s - pole.real)
        else:
            f_pos = 1.0 / (s - pole)
            f_neg = 1.0 / (s - np.conj(pole))
            phi[:, block.offset] = f_pos + f_neg
            phi[:, block.offset + 1] = 1j * (f_pos - f_neg)
    return phi


def _sigma_dynamics(poles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Real (A, b) of the sigma rational function for the zero computation."""
    blocks = _analyse_pole_structure(poles, 1e-9)
    n = poles.size
    a = np.zeros((n, n))
    b = np.zeros(n)
    for block in blocks:
        pole = poles[block.index]
        if block.kind == "real":
            a[block.offset, block.offset] = pole.real
            b[block.offset] = 1.0
        else:
            a[block.offset, block.offset] = pole.real
            a[block.offset, block.offset + 1] = pole.imag
            a[block.offset + 1, block.offset] = -pole.imag
            a[block.offset + 1, block.offset + 1] = pole.real
            b[block.offset] = 2.0
    return a, b


def _coefficients_to_residues(
    poles: np.ndarray, coefficients: np.ndarray
) -> np.ndarray:
    """Map real basis coefficients (M, N) to complex residues (M, N)."""
    blocks = _analyse_pole_structure(poles, 1e-9)
    m = coefficients.shape[0]
    residues = np.zeros((m, poles.size), dtype=complex)
    for block in blocks:
        if block.kind == "real":
            residues[:, block.index] = coefficients[:, block.offset]
        else:
            value = (
                coefficients[:, block.offset]
                + 1j * coefficients[:, block.offset + 1]
            )
            residues[:, block.index] = value
            residues[:, block.index + 1] = np.conj(value)
    return residues


def _realify(matrix: np.ndarray) -> np.ndarray:
    """Stack real and imaginary parts of rows: (K, n) complex -> (2K, n) real."""
    return np.vstack([matrix.real, matrix.imag])


def _scaled_lstsq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Least squares with column equilibration.

    Partial-fraction bases spanning many frequency decades have column
    norms differing by ~1e9, which caps the attainable LS accuracy at
    cond * eps ~ 1e-4 -- fatal for sensitivity weighting, which needs the
    low-frequency residual driven far below that.  Normalizing columns to
    unit norm reduces the condition number to O(10) here.
    """
    norms = np.linalg.norm(a, axis=0)
    norms = np.where(norms > 0.0, norms, 1.0)
    solution, *_ = np.linalg.lstsq(a / norms, b, rcond=None)
    return solution / norms


# ----------------------------------------------------------------------
# Main algorithm
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VFResult:
    """Outcome of a vector-fitting run.

    Attributes
    ----------
    model:
        Fitted pole-residue macromodel.
    rms_error:
        Unweighted RMS error over all entries and frequencies (eq. 4 scale).
    weighted_rms_error:
        Weighted RMS error actually minimized (eq. 6 scale).
    iterations:
        Pole-relocation iterations performed.
    converged:
        Whether the pole set converged before the iteration cap.
    pole_history:
        Per-iteration pole sets (including the final one).
    """

    model: PoleResidueModel
    rms_error: float
    weighted_rms_error: float
    iterations: int
    converged: bool
    pole_history: list = field(default_factory=list, repr=False)


def _normalize_weights(
    weights: np.ndarray | None, shape_kpp: tuple[int, int, int]
) -> np.ndarray:
    """Broadcast user weights to per-entry (K, P*P) positive weights."""
    k, p, _ = shape_kpp
    if weights is None:
        return np.ones((k, p * p))
    weights = np.asarray(weights, dtype=float)
    if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
        raise ValueError("weights must be finite and non-negative")
    if weights.shape == (k,):
        return np.repeat(weights[:, None], p * p, axis=1)
    if weights.shape == (k, p, p):
        return weights.reshape(k, p * p)
    raise ValueError(
        f"weights must have shape ({k},) or ({k},{p},{p}), got {weights.shape}"
    )


def _relocate(
    omega: np.ndarray,
    responses: np.ndarray,
    weights: np.ndarray,
    poles: np.ndarray,
    options: VFOptions,
) -> np.ndarray:
    """One pole-relocation step; returns the new canonical pole set."""
    k, m = responses.shape
    n = poles.size
    phi = _basis(omega, poles)
    cols_model = n + (1 if options.fit_const else 0)
    cols_sigma = n + (1 if options.relaxed else 0)

    # Shared column equilibration: the sigma columns must be scaled
    # identically across responses (they are pooled), and equilibration is
    # what keeps the 7-decade basis solvable to ~1e-8 instead of ~1e-4.
    phi_scale = np.linalg.norm(_realify(phi), axis=0)
    phi_scale = np.where(phi_scale > 0.0, phi_scale, 1.0)
    sigma_scale = np.empty(cols_sigma)
    sigma_scale[:n] = phi_scale
    if options.relaxed:
        sigma_scale[n] = np.sqrt(float(k))

    pooled_rows: list[np.ndarray] = []
    pooled_rhs: list[np.ndarray] = []
    for col in range(m):
        w = weights[:, col]
        h = responses[:, col]
        block = np.empty((k, cols_model + cols_sigma), dtype=complex)
        block[:, :n] = (phi / phi_scale[None, :]) * w[:, None]
        if options.fit_const:
            block[:, n] = w
        block[:, cols_model : cols_model + n] = (
            -(h * w)[:, None] * phi / phi_scale[None, :]
        )
        if options.relaxed:
            block[:, cols_model + n] = -(h * w) / sigma_scale[n]
            rhs = np.zeros(k, dtype=complex)
        else:
            rhs = h * w
        a_real = _realify(block)
        rhs_real = _realify(rhs.reshape(-1, 1))[:, 0]
        # QR-compress: only the rows coupling to the shared sigma unknowns
        # survive into the pooled system.
        q, r = np.linalg.qr(np.column_stack([a_real, rhs_real]))
        r_sigma = r[cols_model : cols_model + cols_sigma, cols_model:-1]
        rhs_sigma = r[cols_model : cols_model + cols_sigma, -1]
        pooled_rows.append(r_sigma)
        pooled_rhs.append(rhs_sigma)

    g = np.vstack(pooled_rows)
    rhs = np.concatenate(pooled_rhs)
    if options.relaxed:
        # Non-triviality: sum_k Re sigma(j omega_k) = K, weighted to the
        # scale of the data so it neither dominates nor vanishes.
        scale = float(np.linalg.norm(weights * np.abs(responses))) / max(k, 1)
        row = np.empty(cols_sigma)
        row[:n] = np.sum(phi.real, axis=0) / phi_scale
        row[n] = k / sigma_scale[n]
        g = np.vstack([g, scale * row])
        rhs = np.concatenate([rhs, [scale * k]])

    solution, *_ = np.linalg.lstsq(g, rhs, rcond=None)
    solution = solution / sigma_scale
    if options.relaxed:
        c_sigma, d_sigma = solution[:n], float(solution[n])
        if abs(d_sigma) < options.min_sigma_d:
            d_sigma = options.min_sigma_d if d_sigma >= 0.0 else -options.min_sigma_d
    else:
        c_sigma, d_sigma = solution[:n], 1.0

    a_sig, b_sig = _sigma_dynamics(poles)
    zeros = np.linalg.eigvals(a_sig - np.outer(b_sig, c_sigma) / d_sigma)
    if options.stable:
        positive = omega[omega > 0.0]
        floor = float(positive.min()) * 1e-6 if positive.size else 1e-6
        zeros = flip_unstable_poles(zeros, floor=floor)
    return canonicalize_poles(zeros)


def _identify_residues(
    omega: np.ndarray,
    responses: np.ndarray,
    weights: np.ndarray,
    poles: np.ndarray,
    options: VFOptions,
    fixed_const: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Final weighted LS for residues and constant term.

    With ``fixed_const`` (length M), the constant term is pinned (used by
    the asymptotic-passivity projection) and only residues are solved.
    With ``options.dc_exact`` the DC sample is interpolated exactly by
    eliminating the constant: fit the shifted data on the shifted basis
    phi(omega) - phi(0), then back out d = S(0) - sum c_n phi_n(0).
    Returns (residues (M, N) complex, const (M,) real).
    """
    k, m = responses.shape
    n = poles.size
    phi = _basis(omega, poles)
    dc_exact = options.dc_exact and fixed_const is None
    if dc_exact:
        if omega[0] != 0.0:
            raise ValueError("dc_exact requires a DC sample (omega[0] == 0)")
        phi_dc = phi[0].real  # basis at s = 0 is real by construction
        dc_values = responses[0].real
    solve_const = options.fit_const and fixed_const is None and not dc_exact
    cols = n + (1 if solve_const else 0)
    coefficients = np.empty((m, n))
    const = np.zeros(m) if fixed_const is None else np.asarray(fixed_const, float)
    for col in range(m):
        w = weights[:, col]
        block = np.empty((k, cols), dtype=complex)
        if dc_exact:
            block[:, :n] = (phi - phi_dc[None, :]) * w[:, None]
            target = responses[:, col] - dc_values[col]
        else:
            block[:, :n] = phi * w[:, None]
            target = responses[:, col]
            if fixed_const is not None:
                target = target - const[col]
        if solve_const:
            block[:, n] = w
        a_real = _realify(block)
        rhs_real = _realify((target * w).reshape(-1, 1))[:, 0]
        solution = _scaled_lstsq(a_real, rhs_real)
        coefficients[col] = solution[:n]
        if solve_const:
            const[col] = solution[n]
        elif dc_exact:
            const[col] = dc_values[col] - float(phi_dc @ solution[:n])
    residues = _coefficients_to_residues(poles, coefficients)
    return residues, const


def _pole_change(old: np.ndarray, new: np.ndarray) -> float:
    """Relative movement between two canonical pole sets."""
    if old.size != new.size:
        return np.inf
    order_old = np.lexsort((old.imag, old.real, np.abs(old)))
    order_new = np.lexsort((new.imag, new.real, np.abs(new)))
    diff = np.abs(old[order_old] - new[order_new])
    scale = np.maximum(np.abs(old[order_old]), 1e-30)
    return float(np.max(diff / scale))


def vector_fit(
    omega: np.ndarray,
    samples: np.ndarray,
    weights: np.ndarray | None = None,
    options: VFOptions | None = None,
) -> VFResult:
    """Fit a common-pole matrix pole-residue model to sampled data.

    Parameters
    ----------
    omega:
        Angular frequency grid (rad/s), strictly increasing, may include 0.
    samples:
        Complex data stack, shape (K, P, P).
    weights:
        Optional least-squares weights: per-frequency shape (K,) -- the
        paper's sensitivity weights w_k = Xi_k -- or per-entry (K, P, P).
    options:
        Algorithm options; defaults to :class:`VFOptions()`.
    """
    options = options or VFOptions()
    omega = check_frequency_grid(np.asarray(omega, dtype=float))
    samples = check_square_stack(samples, "samples")
    if samples.shape[0] != omega.size:
        raise ValueError("samples and omega must agree on K")
    k, p, _ = samples.shape
    if omega[omega > 0.0].size < 2:
        raise ValueError("need at least two positive frequencies")
    if options.n_poles >= 2 * k:
        raise ValueError(
            f"model order {options.n_poles} too high for {k} frequency samples"
        )

    responses = samples.reshape(k, p * p)
    weight_table = _normalize_weights(weights, samples.shape)

    if options.initial_poles is not None:
        poles = canonicalize_poles(np.asarray(options.initial_poles, dtype=complex))
        if poles.size != options.n_poles:
            raise ValueError(
                f"initial_poles has {poles.size} poles, options request "
                f"{options.n_poles}"
            )
    else:
        poles = initial_poles(omega, options.n_poles)

    history = [poles.copy()]
    converged = False
    iterations = 0
    for iteration in range(options.n_iterations):
        new_poles = _relocate(omega, responses, weight_table, poles, options)
        change = _pole_change(poles, new_poles)
        poles = new_poles
        history.append(poles.copy())
        iterations = iteration + 1
        if change < options.pole_convergence_tol:
            converged = True
            break
    _LOG.debug("vector_fit: %d iterations, converged=%s", iterations, converged)

    residues, const_flat = _identify_residues(
        omega, responses, weight_table, poles, options
    )
    const = const_flat.reshape(p, p)
    margin = options.asymptotic_passivity_margin
    if options.fit_const and margin > 0.0 and not options.dc_exact:
        u, sigma, vh = np.linalg.svd(const)
        limit = 1.0 - margin
        if sigma[0] > limit:
            # Band-limited data leaves D unconstrained above the last
            # sample; clip its gain and refit the residues around it.
            const = u @ np.diag(np.minimum(sigma, limit)) @ vh
            _LOG.debug(
                "vector_fit: projected sigma_max(D) from %.6f to %.6f",
                sigma[0],
                limit,
            )
            residues, const_flat = _identify_residues(
                omega,
                responses,
                weight_table,
                poles,
                options,
                fixed_const=const.reshape(-1),
            )
            const = const_flat.reshape(p, p)
    residue_matrices = residues.T.reshape(poles.size, p, p)
    model = PoleResidueModel(poles, residue_matrices, const)

    fit = model.frequency_response(omega)
    diff = fit - samples
    rms = float(np.sqrt(np.mean(np.abs(diff) ** 2)))
    wdiff = weight_table.reshape(k, p, p) * diff
    wrms = float(np.sqrt(np.mean(np.abs(wdiff) ** 2)))
    return VFResult(
        model=model,
        rms_error=rms,
        weighted_rms_error=wrms,
        iterations=iterations,
        converged=converged,
        pole_history=history,
    )
