"""Weighted relaxed Vector Fitting (paper refs. [8]-[12]).

Identifies the pole-residue macromodel of paper eq. (3)

    S(s) = sum_n R_n / (s - p_n) + D

from samples S_k on a frequency grid by minimizing the weighted error
metric of eq. (6)

    E_w^2 = sum_k w_k^2 || S(j omega_k) - S_k ||_F^2 .

The implementation follows the classical two-step scheme: a pole-relocation
("sigma") iteration with the relaxed non-triviality constraint of
Gustavsen (2006), using the per-response QR compression of Deschrijver et
al. (2008) so all matrix entries share a common pole set at modest cost,
followed by a weighted linear least-squares residue identification.

Real-coefficient bases are used throughout: a real pole contributes the
basis function 1/(s-p); a conjugate pair (p, conj p) contributes
1/(s-p) + 1/(s-conj p) and j/(s-p) - j/(s-conj p), so all least-squares
unknowns are real and the fitted model is exactly conjugate-symmetric.

Two interchangeable kernels drive the linear algebra
(``VFOptions.kernel``):

* ``"batched"`` (default) -- all M = P^2 column blocks of the relocation
  stage are assembled as one ``(M, 2K, cols)`` tensor and QR-compressed by
  a single batched LAPACK call; the residue stage solves all columns
  against one factorization when the weights are shared across columns
  (the common case) and falls back to a batched per-column QR solve for
  column-dependent weights.  No Python-level per-column work remains.
* ``"reference"`` -- the original per-column loops, kept as the
  equivalence oracle for tests and benchmarks.

Both kernels run the same math on the same operands, so their results
agree to roundoff; see ``tests/test_vectfit_batched.py``.

:func:`fit_many` extends the same machinery to several response sets
sharing a frequency grid: identical sets collapse to one fit, and sets
whose pole sets coincide at an iteration (always true at iteration 0)
share the basis assembly and column equilibration; each set then runs
its own batched compression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import active_backend, use_backend
from repro.obs import telemetry as obs
from repro.resilience import faultinject
from repro.resilience.errors import FitDivergedError
from repro.statespace.poleresidue import PoleResidueModel, _analyse_pole_structure
from repro.util.logging import get_logger
from repro.util.validation import check_frequency_grid, check_square_stack
from repro.vectfit import kernels
from repro.vectfit.options import VFOptions
from repro.vectfit.starting_poles import initial_poles

_LOG = get_logger(__name__)


# ----------------------------------------------------------------------
# Pole bookkeeping
# ----------------------------------------------------------------------
def canonicalize_poles(raw: np.ndarray, *, imag_tol: float = 1e-8) -> np.ndarray:
    """Normalize a raw pole set into pair-grouped canonical form.

    Eigenvalues of real matrices arrive as unordered conjugate pairs with
    roundoff asymmetry; this groups them as (real poles..., pairs with the
    +imag member first followed by its exact conjugate), sorted by
    magnitude so successive iterations are comparable.
    """
    raw = np.asarray(raw, dtype=complex)
    reals: list[float] = []
    positives: list[complex] = []
    negatives: list[complex] = []
    for pole in raw:
        if abs(pole.imag) <= imag_tol * max(abs(pole), 1e-300):
            reals.append(pole.real)
        elif pole.imag > 0.0:
            positives.append(pole)
        else:
            negatives.append(pole)
    # Pair each +imag pole with its nearest conjugate candidate; leftovers
    # (numerically unpaired) are demoted to real poles.
    unmatched = list(negatives)
    pairs: list[complex] = []
    for pole in positives:
        if unmatched:
            distances = [abs(np.conj(pole) - q) for q in unmatched]
            best = int(np.argmin(distances))
            unmatched.pop(best)
            pairs.append(pole)
        else:
            reals.append(pole.real)
    for pole in unmatched:
        reals.append(pole.real)

    reals.sort(key=abs)
    pairs.sort(key=abs)
    out: list[complex] = [complex(r, 0.0) for r in reals]
    for pole in pairs:
        out.append(pole)
        out.append(np.conj(pole))
    return np.asarray(out, dtype=complex)


def flip_unstable_poles(poles: np.ndarray, *, floor: float = 0.0) -> np.ndarray:
    """Reflect right-half-plane poles into the LHP (standard VF safeguard)."""
    poles = np.asarray(poles, dtype=complex).copy()
    for n, pole in enumerate(poles):
        re = pole.real
        if re > 0.0:
            re = -re
        if re == 0.0:
            re = -max(abs(pole) * 1e-6, floor)
        poles[n] = complex(re, pole.imag)
    return poles


def _basis(omega: np.ndarray, poles: np.ndarray) -> np.ndarray:
    """Real-coefficient partial-fraction basis, shape (K, N) complex."""
    blocks = _analyse_pole_structure(poles, 1e-9)
    s = 1j * omega
    phi = np.empty((omega.size, poles.size), dtype=complex)
    for block in blocks:
        pole = poles[block.index]
        if block.kind == "real":
            phi[:, block.offset] = 1.0 / (s - pole.real)
        else:
            f_pos = 1.0 / (s - pole)
            f_neg = 1.0 / (s - np.conj(pole))
            phi[:, block.offset] = f_pos + f_neg
            phi[:, block.offset + 1] = 1j * (f_pos - f_neg)
    return phi


def _sigma_dynamics(poles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Real (A, b) of the sigma rational function for the zero computation."""
    blocks = _analyse_pole_structure(poles, 1e-9)
    n = poles.size
    a = np.zeros((n, n))
    b = np.zeros(n)
    for block in blocks:
        pole = poles[block.index]
        if block.kind == "real":
            a[block.offset, block.offset] = pole.real
            b[block.offset] = 1.0
        else:
            a[block.offset, block.offset] = pole.real
            a[block.offset, block.offset + 1] = pole.imag
            a[block.offset + 1, block.offset] = -pole.imag
            a[block.offset + 1, block.offset + 1] = pole.real
            b[block.offset] = 2.0
    return a, b


def _coefficients_to_residues(
    poles: np.ndarray, coefficients: np.ndarray
) -> np.ndarray:
    """Map real basis coefficients (M, N) to complex residues (M, N)."""
    blocks = _analyse_pole_structure(poles, 1e-9)
    m = coefficients.shape[0]
    residues = np.zeros((m, poles.size), dtype=complex)
    for block in blocks:
        if block.kind == "real":
            residues[:, block.index] = coefficients[:, block.offset]
        else:
            value = (
                coefficients[:, block.offset]
                + 1j * coefficients[:, block.offset + 1]
            )
            residues[:, block.index] = value
            residues[:, block.index + 1] = np.conj(value)
    return residues


def _realify(matrix: np.ndarray) -> np.ndarray:
    """Stack real and imaginary parts of rows: (K, n) complex -> (2K, n) real."""
    return kernels.realify_rows(matrix)


def _scaled_lstsq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Least squares with column equilibration (see kernels.scaled_lstsq)."""
    return kernels.scaled_lstsq(a, b)


# ----------------------------------------------------------------------
# Main algorithm
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VFResult:
    """Outcome of a vector-fitting run.

    Attributes
    ----------
    model:
        Fitted pole-residue macromodel.
    rms_error:
        Unweighted RMS error over all entries and frequencies (eq. 4 scale).
    weighted_rms_error:
        Weighted RMS error actually minimized (eq. 6 scale).
    iterations:
        Pole-relocation iterations performed.
    converged:
        Whether the pole set converged before the iteration cap.
    pole_history:
        Per-iteration pole sets (including the final one).
    """

    model: PoleResidueModel
    rms_error: float
    weighted_rms_error: float
    iterations: int
    converged: bool
    pole_history: list = field(default_factory=list, repr=False)


def _normalize_weights(
    weights: np.ndarray | None, shape_kpp: tuple[int, int, int]
) -> np.ndarray:
    """Broadcast user weights to per-entry (K, P*P) positive weights."""
    k, p, _ = shape_kpp
    if weights is None:
        return np.ones((k, p * p))
    weights = np.asarray(weights, dtype=float)
    if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
        raise ValueError("weights must be finite and non-negative")
    if weights.shape == (k,):
        return np.repeat(weights[:, None], p * p, axis=1)
    if weights.shape == (k, p, p):
        return weights.reshape(k, p * p)
    raise ValueError(
        f"weights must have shape ({k},) or ({k},{p},{p}), got {weights.shape}"
    )


# ----------------------------------------------------------------------
# Pole relocation
# ----------------------------------------------------------------------
def _sigma_scales(
    phi: np.ndarray, k: int, options: VFOptions
) -> tuple[np.ndarray, np.ndarray]:
    """Shared column equilibration of the relocation stage.

    The sigma columns must be scaled identically across responses (they
    are pooled), and equilibration is what keeps the 7-decade basis
    solvable to ~1e-8 instead of ~1e-4.
    """
    n = phi.shape[1]
    phi_scale = np.linalg.norm(_realify(phi), axis=0)
    phi_scale = np.where(phi_scale > 0.0, phi_scale, 1.0)
    cols_sigma = n + (1 if options.relaxed else 0)
    sigma_scale = np.empty(cols_sigma)
    sigma_scale[:n] = phi_scale
    if options.relaxed:
        sigma_scale[n] = np.sqrt(float(k))
    return phi_scale, sigma_scale


def _sigma_compress_reference(
    responses: np.ndarray,
    weights: np.ndarray,
    phi_scaled: np.ndarray,
    sigma_scale: np.ndarray,
    options: VFOptions,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-column QR compression (original loop); returns stacked rows.

    The result is ``(M, ms, cols_sigma)`` rows and ``(M, ms)`` right-hand
    sides, where only the rows coupling to the shared sigma unknowns
    survive into the pooled system.
    """
    k, m = responses.shape
    n = phi_scaled.shape[1]
    cols_model = n + (1 if options.fit_const else 0)
    cols_sigma = sigma_scale.size
    rows_list = []
    rhs_list = []
    for col in range(m):
        w = weights[:, col]
        h = responses[:, col]
        block = np.empty((k, cols_model + cols_sigma), dtype=complex)
        block[:, :n] = phi_scaled * w[:, None]
        if options.fit_const:
            block[:, n] = w
        block[:, cols_model : cols_model + n] = -(h * w)[:, None] * phi_scaled
        if options.relaxed:
            block[:, cols_model + n] = -(h * w) / sigma_scale[n]
            rhs = np.zeros(k, dtype=complex)
        else:
            rhs = h * w
        a_real = _realify(block)
        rhs_real = _realify(rhs.reshape(-1, 1))[:, 0]
        _, r = np.linalg.qr(np.column_stack([a_real, rhs_real]))  # reprolint: disable=backend-routing -- reference oracle kernel, pinned byte-stable for equivalence tests
        rows_list.append(r[cols_model : cols_model + cols_sigma, cols_model:-1])
        rhs_list.append(r[cols_model : cols_model + cols_sigma, -1])
    return np.stack(rows_list), np.stack(rhs_list)


def _sigma_compress_batched(
    responses: np.ndarray,
    weights: np.ndarray,
    phi_scaled: np.ndarray,
    sigma_scale: np.ndarray,
    options: VFOptions,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched QR compression: all column blocks in one LAPACK call.

    Two structural facts cut the work far below the reference loop:

    * In relaxed mode the per-column right-hand side is identically zero,
      so its column never needs to enter the factorization -- the
      compressed right-hand side is zero by construction.
    * With weights shared across columns (per-frequency user weights, the
      common case) the model block ``[W phi, w]`` is *identical* for
      every column.  It is eliminated once with a single thin QR, the
      sigma blocks are projected onto its orthogonal complement with two
      batched GEMMs, and only the projected ``(M, 2K, cols_sigma)``
      stack -- a third of the reference column count -- goes through the
      batched QR.  No reorthogonalization pass follows the one-sided
      projection; see the comment at the QR site for why the pooled
      normal equations make it unnecessary.

    Column-dependent weights fall back to factorizing the full stacked
    ``(M, 2K, cols_model + cols_sigma (+1))`` tensor, still as one
    batched ``np.linalg.qr(mode="r")`` with no Python per-column work.
    In every case the returned ``(M, ms, cols_sigma)`` rows and
    ``(M, ms)`` right-hand sides satisfy the same pooled normal
    equations as the reference path's, so the pooled sigma solve is
    unchanged up to roundoff.
    """
    k, m = responses.shape
    n = phi_scaled.shape[1]
    cols_model = n + (1 if options.fit_const else 0)
    cols_sigma = sigma_scale.size
    hw = (responses * weights).T  # (M, K)
    extra = 0 if options.relaxed else 1

    if kernels.shared_weights(weights):
        w = weights[:, 0]
        a1 = np.empty((k, cols_model), dtype=complex)
        a1[:, :n] = phi_scaled * w[:, None]
        if options.fit_const:
            a1[:, n] = w
        backend = active_backend()
        q1, _ = (
            backend.from_device(part)
            for part in backend.qr_reduced(
                backend.asarray(kernels.realify_rows(a1))
            )
        )
        a2 = np.empty((m, k, cols_sigma + extra), dtype=complex)
        a2[:, :, :n] = -hw[:, :, None] * phi_scaled[None, :, :]
        if options.relaxed:
            a2[:, :, n] = -hw / sigma_scale[n]
        else:
            a2[:, :, -1] = hw
        a2r = kernels.realify_rows(a2)  # (M, 2K, cols_sigma + extra)
        z = np.matmul(q1.T, a2r)
        a2p = a2r - np.matmul(q1, z)
        r = backend.from_device(backend.qr_r(backend.asarray(a2p)))
        # One-sided block Gram-Schmidt loses *relative* accuracy on
        # columns nearly inside span(A1) (flat scattering entries put
        # whole sigma blocks there), but the pooled normal equations sum
        # absolute contributions across all M slices: the projection
        # error stays at eps * ||a2r||, the same order as the Gram's own
        # roundoff, so no reorthogonalization pass is needed -- measured
        # agreement with the reference path is ~1e-12 relative with or
        # without one, and the second pass would re-fire every iteration
        # on the degenerate-by-construction columns.
        rows = faultinject.corrupt(
            "vf.relocate_batched", r[:, :cols_sigma, :cols_sigma]
        )
        if options.relaxed:
            rhs = np.zeros(rows.shape[:2])
        else:
            rhs = r[:, :cols_sigma, -1]
        return rows, rhs

    wt = weights.T  # (M, K)
    block = np.empty(
        (m, k, cols_model + cols_sigma + extra), dtype=complex
    )
    block[:, :, :n] = phi_scaled[None, :, :] * wt[:, :, None]
    if options.fit_const:
        block[:, :, n] = wt
    block[:, :, cols_model : cols_model + n] = (
        -hw[:, :, None] * phi_scaled[None, :, :]
    )
    if options.relaxed:
        block[:, :, cols_model + n] = -hw / sigma_scale[n]
    else:
        block[:, :, -1] = hw
    stacked = kernels.realify_rows(block)  # (M, 2K, C)
    backend = active_backend()
    r = backend.from_device(backend.qr_r(backend.asarray(stacked)))
    rows = faultinject.corrupt(
        "vf.relocate_batched",
        r[:, cols_model : cols_model + cols_sigma,
          cols_model : cols_model + cols_sigma],
    )
    if options.relaxed:
        rhs = np.zeros(rows.shape[:2])
    else:
        rhs = r[:, cols_model : cols_model + cols_sigma, -1]
    return rows, rhs


def _solve_sigma_poles(
    rows: np.ndarray,
    rhs_rows: np.ndarray,
    phi: np.ndarray,
    phi_scale: np.ndarray,
    sigma_scale: np.ndarray,
    responses: np.ndarray,
    weights: np.ndarray,
    poles: np.ndarray,
    omega: np.ndarray,
    options: VFOptions,
) -> np.ndarray:
    """Pooled sigma solve + zero computation; returns the new pole set."""
    k = responses.shape[0]
    n = poles.size
    cols_sigma = sigma_scale.size
    g = rows.reshape(-1, cols_sigma)
    rhs = rhs_rows.reshape(-1)
    if options.relaxed:
        # Non-triviality: sum_k Re sigma(j omega_k) = K, weighted to the
        # scale of the data so it neither dominates nor vanishes.
        scale = float(np.linalg.norm(weights * np.abs(responses))) / max(k, 1)
        row = np.empty(cols_sigma)
        row[:n] = np.sum(phi.real, axis=0) / phi_scale
        row[n] = k / sigma_scale[n]
        g = np.vstack([g, scale * row])
        rhs = np.concatenate([rhs, [scale * k]])

    backend = active_backend()
    solution = backend.from_device(
        backend.lstsq(backend.asarray(g), backend.asarray(rhs))
    )
    solution = solution / sigma_scale
    if options.relaxed:
        c_sigma, d_sigma = solution[:n], float(solution[n])
        if abs(d_sigma) < options.min_sigma_d:
            d_sigma = options.min_sigma_d if d_sigma >= 0.0 else -options.min_sigma_d
    else:
        c_sigma, d_sigma = solution[:n], 1.0

    a_sig, b_sig = _sigma_dynamics(poles)
    zeros = backend.from_device(
        backend.eigvals(
            backend.asarray(a_sig - np.outer(b_sig, c_sigma) / d_sigma)
        )
    )
    if options.stable:
        positive = omega[omega > 0.0]
        floor = float(positive.min()) * 1e-6 if positive.size else 1e-6
        zeros = flip_unstable_poles(zeros, floor=floor)
    return canonicalize_poles(zeros)


def _relocate_poles(
    omega: np.ndarray,
    compress_responses: np.ndarray,
    compress_weights: np.ndarray,
    responses: np.ndarray,
    weight_table: np.ndarray,
    poles: np.ndarray,
    phi: np.ndarray,
    phi_scale: np.ndarray,
    sigma_scale: np.ndarray,
    options: VFOptions,
) -> np.ndarray:
    """Compression + pooled sigma solve, with the kernel fallback ladder.

    A batched compression whose output drives the pooled solve into
    NaN/Inf or a failed SVD (rank collapse, poisoned input) is retried
    once with the reference per-column kernel on the *full* column
    tables -- the equivalence oracle.  Each fallback increments the
    ``fallback.vf_kernel`` counter; a reference-path failure (or a
    failed fallback) raises :class:`FitDivergedError`.
    """
    phi_scaled = phi / phi_scale
    compress = (
        _sigma_compress_batched
        if options.kernel == "batched"
        else _sigma_compress_reference
    )
    new_poles = None
    try:
        rows, rhs_rows = compress(
            compress_responses, compress_weights, phi_scaled, sigma_scale,
            options,
        )
        new_poles = _solve_sigma_poles(
            rows, rhs_rows, phi, phi_scale, sigma_scale,
            responses, weight_table, poles, omega, options,
        )
    except np.linalg.LinAlgError:
        pass
    if new_poles is not None and np.isfinite(new_poles).all():
        return new_poles
    if options.kernel != "batched":
        raise FitDivergedError(
            "pole relocation produced non-finite poles",
            stage="standard_fit",
        )
    obs.incr("fallback.vf_kernel")
    _LOG.warning(
        "vector_fit: batched relocation failed; retrying with the "
        "reference kernel"
    )
    try:
        rows, rhs_rows = _sigma_compress_reference(
            responses, weight_table, phi_scaled, sigma_scale, options
        )
        new_poles = _solve_sigma_poles(
            rows, rhs_rows, phi, phi_scale, sigma_scale,
            responses, weight_table, poles, omega, options,
        )
    except np.linalg.LinAlgError as exc:
        raise FitDivergedError(
            "pole relocation failed on both kernels",
            stage="standard_fit",
        ) from exc
    if not np.isfinite(new_poles).all():
        raise FitDivergedError(
            "pole relocation produced non-finite poles on both kernels",
            stage="standard_fit",
        )
    return new_poles


def _relocate(
    omega: np.ndarray,
    responses: np.ndarray,
    weights: np.ndarray,
    poles: np.ndarray,
    options: VFOptions,
) -> np.ndarray:
    """One pole-relocation step; returns the new canonical pole set."""
    phi = _basis(omega, poles)
    phi_scale, sigma_scale = _sigma_scales(phi, omega.size, options)
    return _relocate_poles(
        omega, responses, weights, responses, weights, poles,
        phi, phi_scale, sigma_scale, options,
    )


# ----------------------------------------------------------------------
# Residue identification
# ----------------------------------------------------------------------
def _identify_residues_reference(
    omega: np.ndarray,
    responses: np.ndarray,
    weights: np.ndarray,
    poles: np.ndarray,
    options: VFOptions,
    fixed_const: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-column weighted LS loop (original implementation)."""
    k, m = responses.shape
    n = poles.size
    phi = _basis(omega, poles)
    dc_exact = options.dc_exact and fixed_const is None
    if dc_exact:
        if omega[0] != 0.0:
            raise ValueError("dc_exact requires a DC sample (omega[0] == 0)")
        phi_dc = phi[0].real  # basis at s = 0 is real by construction
        dc_values = responses[0].real
    solve_const = options.fit_const and fixed_const is None and not dc_exact
    cols = n + (1 if solve_const else 0)
    coefficients = np.empty((m, n))
    const = np.zeros(m) if fixed_const is None else np.asarray(fixed_const, float)
    for col in range(m):
        w = weights[:, col]
        block = np.empty((k, cols), dtype=complex)
        if dc_exact:
            block[:, :n] = (phi - phi_dc[None, :]) * w[:, None]
            target = responses[:, col] - dc_values[col]
        else:
            block[:, :n] = phi * w[:, None]
            target = responses[:, col]
            if fixed_const is not None:
                target = target - const[col]
        if solve_const:
            block[:, n] = w
        a_real = _realify(block)
        rhs_real = _realify((target * w).reshape(-1, 1))[:, 0]
        solution = kernels.scaled_lstsq(a_real, rhs_real)
        coefficients[col] = solution[:n]
        if solve_const:
            const[col] = solution[n]
        elif dc_exact:
            const[col] = dc_values[col] - float(phi_dc @ solution[:n])
    residues = _coefficients_to_residues(poles, coefficients)
    return residues, const


def _identify_residues_batched(
    omega: np.ndarray,
    responses: np.ndarray,
    weights: np.ndarray,
    poles: np.ndarray,
    options: VFOptions,
    fixed_const: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Grouped residue solve: one factorization for shared weights.

    When all columns share one weight vector (per-frequency user weights,
    the common case), the design matrix is identical for every column and
    a single equilibrated multi-RHS ``lstsq`` solves all M right-hand
    sides at once.  Column-dependent weights fall back to a batched
    per-column QR solve (:func:`kernels.batched_qr_solve`).  Both paths
    cover the ``dc_exact``, ``fixed_const`` and plain/relaxed variants.
    """
    k, m = responses.shape
    n = poles.size
    phi = _basis(omega, poles)
    dc_exact = options.dc_exact and fixed_const is None
    if dc_exact:
        if omega[0] != 0.0:
            raise ValueError("dc_exact requires a DC sample (omega[0] == 0)")
        phi_dc = phi[0].real
        dc_values = responses[0].real
        base = phi - phi_dc[None, :]
        targets = responses - dc_values[None, :]
    else:
        base = phi
        targets = responses
    solve_const = options.fit_const and fixed_const is None and not dc_exact
    const = np.zeros(m) if fixed_const is None else np.asarray(fixed_const, float)
    if fixed_const is not None:
        targets = responses - const[None, :]

    if kernels.shared_weights(weights):
        w = weights[:, 0]
        cols = n + (1 if solve_const else 0)
        block = np.empty((k, cols), dtype=complex)
        block[:, :n] = base * w[:, None]
        if solve_const:
            block[:, n] = w
        a_real = _realify(block)
        rhs_real = _realify(targets * w[:, None])  # (2K, M)
        solution = kernels.scaled_lstsq(a_real, rhs_real)  # (cols, M)
        coefficients = solution[:n].T
        if solve_const:
            const = solution[n].copy()
    else:
        wt = weights.T  # (M, K)
        stack = base[None, :, :] * wt[:, :, None]  # (M, K, N)
        if solve_const:
            stack = np.concatenate([stack, wt[:, :, None]], axis=2)
        a_real = kernels.realify_rows(stack)
        rhs = targets.T * wt  # (M, K)
        rhs_real = kernels.realify_rows(rhs[:, :, None])[:, :, 0]
        solution = kernels.batched_qr_solve(a_real, rhs_real)  # (M, cols)
        coefficients = solution[:, :n]
        if solve_const:
            const = solution[:, n].copy()
    coefficients = faultinject.corrupt("vf.residues_batched", coefficients)
    if dc_exact:
        const = dc_values - coefficients @ phi_dc
    residues = _coefficients_to_residues(poles, coefficients)
    return residues, const


def _identify_residues(
    omega: np.ndarray,
    responses: np.ndarray,
    weights: np.ndarray,
    poles: np.ndarray,
    options: VFOptions,
    fixed_const: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Final weighted LS for residues and constant term.

    With ``fixed_const`` (length M), the constant term is pinned (used by
    the asymptotic-passivity projection) and only residues are solved.
    With ``options.dc_exact`` the DC sample is interpolated exactly by
    eliminating the constant: fit the shifted data on the shifted basis
    phi(omega) - phi(0), then back out d = S(0) - sum c_n phi_n(0).
    Returns (residues (M, N) complex, const (M,) real).
    """
    identify = (
        _identify_residues_batched
        if options.kernel == "batched"
        else _identify_residues_reference
    )
    return identify(omega, responses, weights, poles, options, fixed_const)


def _identify_with_fallback(
    omega: np.ndarray,
    responses: np.ndarray,
    weights: np.ndarray,
    poles: np.ndarray,
    options: VFOptions,
    fixed_const: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Residue identification with the batched->reference ladder.

    Mirrors :func:`_relocate_poles`: a batched solve that errors or
    produces non-finite residues is retried once with the reference
    per-column loop (``fallback.vf_kernel`` counter); a failure on the
    reference path raises :class:`FitDivergedError`.
    """
    residues = const = None
    try:
        residues, const = _identify_residues(
            omega, responses, weights, poles, options, fixed_const
        )
    except np.linalg.LinAlgError:
        pass
    if (
        residues is not None
        and np.isfinite(residues).all()
        and np.isfinite(const).all()
    ):
        return residues, const
    if options.kernel != "batched":
        raise FitDivergedError(
            "residue identification produced non-finite results",
            stage="standard_fit",
        )
    obs.incr("fallback.vf_kernel")
    _LOG.warning(
        "vector_fit: batched residue identification failed; retrying "
        "with the reference kernel"
    )
    try:
        residues, const = _identify_residues_reference(
            omega, responses, weights, poles, options, fixed_const
        )
    except np.linalg.LinAlgError as exc:
        raise FitDivergedError(
            "residue identification failed on both kernels",
            stage="standard_fit",
        ) from exc
    if not (np.isfinite(residues).all() and np.isfinite(const).all()):
        raise FitDivergedError(
            "residue identification produced non-finite results on "
            "both kernels",
            stage="standard_fit",
        )
    return residues, const


def _symmetric_reduction(
    samples: np.ndarray,
    weight_table: np.ndarray,
    *,
    rel_tol: float = 1e-9,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Reduced relocation columns for reciprocal (symmetric) data.

    Scattering data of reciprocal networks satisfies S_ij = S_ji, so the
    (i, j) and (j, i) relocation blocks coincide and only the P(P+1)/2
    upper-triangle columns need to be assembled and factorized.  A
    duplicated block contributes twice to the pooled normal equations,
    which is exactly a sqrt(2) row scaling of the unique block -- and
    every column of a block is linear in the (weighted) response, so the
    scaling folds into the response values.  Solver roundoff leaves the
    tabulated data symmetric only to ~1e-12, so each pair is *averaged*:
    the pooled-Gram error of the averaged pair is second order in the
    asymmetry (||S - S^T||^2, ~1e-23 here), far below the first-order
    error that picking one triangle would commit.  Returns the reduced
    ``(K, P(P+1)/2)`` response and weight tables (upper-triangle columns,
    off-diagonal responses scaled by sqrt(2)), or ``None`` when the data
    or weights are not symmetric to within ``rel_tol``.
    """
    k, p, _ = samples.shape
    if p == 1:
        return None
    scale = float(np.abs(samples).max())
    if scale <= 0.0:
        return None
    if float(np.abs(samples - samples.transpose(0, 2, 1)).max()) > rel_tol * scale:
        return None
    table = weight_table.reshape(k, p, p)
    if not np.array_equal(table, table.transpose(0, 2, 1)):
        return None
    iu, ju = np.triu_indices(p)
    reduced = (
        0.5 * (samples[:, iu, ju] + samples[:, ju, iu])
        * np.where(iu == ju, 1.0, np.sqrt(2.0))
    )
    return reduced, table[:, iu, ju]


def _pole_change(old: np.ndarray, new: np.ndarray) -> float:
    """Relative movement between two canonical pole sets."""
    if old.size != new.size:
        return np.inf
    order_old = np.lexsort((old.imag, old.real, np.abs(old)))
    order_new = np.lexsort((new.imag, new.real, np.abs(new)))
    diff = np.abs(old[order_old] - new[order_new])
    scale = np.maximum(np.abs(old[order_old]), 1e-30)
    return float(np.max(diff / scale))


def _characterize(
    omega: np.ndarray,
    samples: np.ndarray,
    responses: np.ndarray,
    weight_table: np.ndarray,
    poles: np.ndarray,
    options: VFOptions,
    iterations: int,
    converged: bool,
    history: list,
) -> VFResult:
    """Residue identification, asymptotic projection and error metrics."""
    k, p, _ = samples.shape
    residues, const_flat = _identify_with_fallback(
        omega, responses, weight_table, poles, options
    )
    const = const_flat.reshape(p, p)
    margin = options.asymptotic_passivity_margin
    if options.fit_const and margin > 0.0 and not options.dc_exact:
        backend = active_backend()
        u, sigma, vh = (
            backend.from_device(part)
            for part in backend.svd(backend.asarray(const))
        )
        limit = 1.0 - margin
        if sigma[0] > limit:
            # Band-limited data leaves D unconstrained above the last
            # sample; clip its gain and refit the residues around it.
            const = u @ np.diag(np.minimum(sigma, limit)) @ vh
            _LOG.debug(
                "vector_fit: projected sigma_max(D) from %.6f to %.6f",
                sigma[0],
                limit,
            )
            residues, const_flat = _identify_with_fallback(
                omega,
                responses,
                weight_table,
                poles,
                options,
                fixed_const=const.reshape(-1),
            )
            const = const_flat.reshape(p, p)
    residue_matrices = residues.T.reshape(poles.size, p, p)
    model = PoleResidueModel(poles, residue_matrices, const)

    fit = model.frequency_response(omega)
    diff = fit - samples
    rms = float(np.sqrt(np.mean(np.abs(diff) ** 2)))
    wdiff = weight_table.reshape(k, p, p) * diff
    wrms = float(np.sqrt(np.mean(np.abs(wdiff) ** 2)))
    return VFResult(
        model=model,
        rms_error=rms,
        weighted_rms_error=wrms,
        iterations=iterations,
        converged=converged,
        pole_history=history,
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
@dataclass
class _FitState:
    """Per-set iteration state of :func:`fit_many`.

    ``compress_responses`` / ``compress_weights`` are the column tables
    fed to the relocation compression -- the symmetric upper-triangle
    reduction when the data allows it, the full tables otherwise.  The
    full tables always drive the relaxation row and the residue stage.
    """

    responses: np.ndarray
    weight_table: np.ndarray
    samples: np.ndarray
    poles: np.ndarray
    history: list
    compress_responses: np.ndarray
    compress_weights: np.ndarray
    iterations: int = 0
    converged: bool = False
    index: int = 0

    @property
    def active(self) -> bool:
        return not self.converged


def fit_many(
    omega: np.ndarray,
    samples: list[np.ndarray],
    weights: list[np.ndarray | None] | None = None,
    options: VFOptions | None = None,
) -> list[VFResult]:
    """Fit several response sets sharing one frequency grid in one call.

    Each entry of ``samples`` is an independent (K, P_i, P_i) data stack
    fitted exactly as :func:`vector_fit` would fit it (same starting
    poles, same relocation and identification steps, same results); the
    batch entry point amortizes the shared work: the grid is validated
    once, the starting poles are built once, and at every relocation
    iteration all sets whose current pole sets coincide share one basis
    assembly and column equilibration.  All sets start from the same
    poles, so iteration 0 always shares this work; sets only fall out of
    the shared group once their pole trajectories diverge (identical
    inputs never diverge).

    Sets with *identical* samples and weights additionally collapse to
    one fit whose result is returned at every matching position -- a
    scenario sweep requesting the same standard fit N times pays for it
    once.

    Parameters
    ----------
    omega:
        Shared angular frequency grid (rad/s), strictly increasing.
    samples:
        Sequence of complex data stacks, each of shape (K, P_i, P_i).
    weights:
        Optional per-set weights aligned with ``samples``; each entry is
        accepted in the same forms as :func:`vector_fit` (``None``,
        per-frequency (K,), or per-entry (K, P_i, P_i)).
    options:
        Shared algorithm options (one model order for all sets).
    """
    options = options or VFOptions()
    with use_backend(options.backend):
        return _fit_many_resolved(omega, samples, weights, options)


def _fit_many_resolved(
    omega: np.ndarray,
    samples: list[np.ndarray],
    weights: list[np.ndarray | None] | None,
    options: VFOptions,
) -> list[VFResult]:
    """Body of :func:`fit_many`, run with the selected backend active."""
    omega = check_frequency_grid(np.asarray(omega, dtype=float))
    if not samples:
        return []
    if weights is None:
        weights = [None] * len(samples)
    if len(weights) != len(samples):
        raise ValueError("weights must align with samples")
    k = omega.size
    if omega[omega > 0.0].size < 2:
        raise ValueError("need at least two positive frequencies")
    if options.n_poles >= 2 * k:
        raise ValueError(
            f"model order {options.n_poles} too high for {k} frequency samples"
        )

    if options.initial_poles is not None:
        poles0 = canonicalize_poles(
            np.asarray(options.initial_poles, dtype=complex)
        )
        if poles0.size != options.n_poles:
            raise ValueError(
                f"initial_poles has {poles0.size} poles, options request "
                f"{options.n_poles}"
            )
    else:
        poles0 = initial_poles(omega, options.n_poles)

    states: list[_FitState] = []
    alias: list[int] = []  # input position -> unique-state index
    seen: dict[tuple[bytes, bytes], int] = {}
    for stack, weight in zip(samples, weights):
        stack = check_square_stack(stack, "samples")
        if stack.shape[0] != k:
            raise ValueError("samples and omega must agree on K")
        p = stack.shape[1]
        responses = stack.reshape(k, p * p)
        weight_table = _normalize_weights(weight, stack.shape)
        key = (responses.tobytes(), weight_table.tobytes())
        known = seen.get(key)
        if known is not None:
            alias.append(known)
            continue
        seen[key] = len(states)
        alias.append(len(states))
        compress_responses, compress_weights = responses, weight_table
        if options.kernel == "batched":
            reduction = _symmetric_reduction(stack, weight_table)
            if reduction is not None:
                compress_responses, compress_weights = reduction
        states.append(
            _FitState(
                responses=responses,
                weight_table=weight_table,
                samples=stack,
                poles=poles0.copy(),
                history=[poles0.copy()],
                compress_responses=compress_responses,
                compress_weights=compress_weights,
                index=len(states),
            )
        )
    if len(states) < len(alias):
        _LOG.debug(
            "fit_many: %d set(s), %d unique", len(alias), len(states)
        )
    # Telemetry batch number: distinguishes this fit_many call's
    # trajectories from other calls in the same run (refinement rounds).
    batch = obs.next_seq("vf.batch")

    for iteration in range(options.n_iterations):
        active = [state for state in states if state.active]
        if not active:
            break
        # Sets whose pole sets coincide share one basis and one batched
        # QR over the union of their columns.
        groups: dict[bytes, list[_FitState]] = {}
        for state in active:
            groups.setdefault(state.poles.tobytes(), []).append(state)
        for members in groups.values():
            with obs.span("kernel:vf.relocate", n_sets=len(members)):
                poles = members[0].poles
                phi = _basis(omega, poles)
                phi_scale, sigma_scale = _sigma_scales(phi, k, options)
                for state in members:
                    new_poles = _relocate_poles(
                        omega, state.compress_responses,
                        state.compress_weights, state.responses,
                        state.weight_table, state.poles,
                        phi, phi_scale, sigma_scale, options,
                    )
                    change = _pole_change(state.poles, new_poles)
                    state.poles = new_poles
                    state.history.append(new_poles.copy())
                    state.iterations = iteration + 1
                    if change < options.pole_convergence_tol:
                        state.converged = True
                    obs.incr("vf.iterations")
                    obs.emit(
                        "vf.iteration",
                        batch=batch,
                        set=state.index,
                        iteration=state.iterations,
                        n_poles=int(state.poles.size),
                        pole_change=change,
                        converged=state.converged,
                    )

    results = []
    for state in states:
        _LOG.debug(
            "vector_fit: %d iterations, converged=%s",
            state.iterations,
            state.converged,
        )
        with obs.span("kernel:vf.residues", set=state.index):
            result = _characterize(
                omega, state.samples, state.responses, state.weight_table,
                state.poles, options, state.iterations, state.converged,
                state.history,
            )
        obs.incr("vf.fits")
        obs.emit(
            "vf.fit",
            batch=batch,
            set=state.index,
            iterations=state.iterations,
            converged=state.converged,
            rms_error=result.rms_error,
            weighted_rms_error=result.weighted_rms_error,
        )
        results.append(result)
    # Duplicated inputs share one (immutable) result object.
    return [results[index] for index in alias]


def vector_fit(
    omega: np.ndarray,
    samples: np.ndarray,
    weights: np.ndarray | None = None,
    options: VFOptions | None = None,
) -> VFResult:
    """Fit a common-pole matrix pole-residue model to sampled data.

    Parameters
    ----------
    omega:
        Angular frequency grid (rad/s), strictly increasing, may include 0.
    samples:
        Complex data stack, shape (K, P, P).
    weights:
        Optional least-squares weights: per-frequency shape (K,) -- the
        paper's sensitivity weights w_k = Xi_k -- or per-entry (K, P, P).
    options:
        Algorithm options; defaults to :class:`VFOptions()`.
    """
    return fit_many(omega, [samples], [weights], options)[0]
