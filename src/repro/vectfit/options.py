"""Configuration for the vector-fitting algorithms."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import validate_backend_name


@dataclass(frozen=True)
class VFOptions:
    """Options for :func:`repro.vectfit.core.vector_fit`.

    Parameters
    ----------
    n_poles:
        Model order N (conjugate pairs count as two).  The paper uses
        n = 12 common poles for the PDN macromodel.
    n_iterations:
        Maximum pole-relocation iterations.
    stable:
        Flip relocated poles into the left half plane (always on for
        macromodeling; exposed for experiments).
    relaxed:
        Use the relaxed non-triviality constraint of Gustavsen (2006)
        instead of fixing sigma's constant term to 1.
    fit_const:
        Include the constant term D in the model (paper eq. 3 includes R0).
    fit_proportional:
        Include a proportional term s*E (not used by the paper's flow).
    pole_convergence_tol:
        Relative pole-movement threshold declaring convergence.
    initial_poles:
        Optional explicit starting poles (pair-grouped); overrides the
        automatic log-spaced choice.
    min_sigma_d:
        Lower clamp for sigma's constant term in the relaxed iteration,
        relative to its LS scale; guards against degenerate relocations.
    asymptotic_passivity_margin:
        When positive (default), the identified constant term D is
        projected so sigma_max(D) <= 1 - margin and the residues are
        re-identified with D fixed.  Band-limited scattering data gives VF
        no information above the last sample, so the unconstrained D often
        lands slightly above 1; residue perturbation cannot repair a
        violation at infinite frequency, hence this projection.  Set to 0
        to disable (e.g. for non-scattering data).
    dc_exact:
        Interpolate the DC sample exactly: the constant term is eliminated
        through d = S(0) - sum_n c_n phi_n(0), so model(0) == data(0) to
        machine precision.  Requires omega[0] == 0 and ``fit_const``.
        Useful for PDN models whose DC loaded impedance must be exact;
        mutually exclusive with the asymptotic D projection (the implied
        D is whatever DC interpolation requires).
    kernel:
        Linear-algebra kernel selection.  ``"batched"`` (default)
        assembles all response columns as stacked tensors and runs
        batched LAPACK QR / multi-RHS solves with no Python per-column
        work; ``"reference"`` runs the original per-column loops.  Both
        compute the same math on the same operands and agree to roundoff
        (``reference`` is kept as the equivalence oracle for tests and
        benchmarks).
    backend:
        Array backend used for the dense kernels: ``"auto"`` (default;
        prefers an installed accelerator backend, falling back to numpy),
        ``"numpy"``, ``"cupy"``, ``"jax"`` or ``"array_api_strict"``.
        All backends compute the same math; non-numpy backends fall back
        to numpy per-operation on device failure (see
        :mod:`repro.backend`).
    """

    n_poles: int = 12
    n_iterations: int = 20
    stable: bool = True
    relaxed: bool = True
    fit_const: bool = True
    fit_proportional: bool = False
    pole_convergence_tol: float = 1e-8
    initial_poles: np.ndarray | None = None
    min_sigma_d: float = 1e-8
    asymptotic_passivity_margin: float = 1e-4
    dc_exact: bool = False
    kernel: str = "batched"
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n_poles < 1:
            raise ValueError("n_poles must be at least 1")
        if self.n_iterations < 0:
            raise ValueError("n_iterations must be non-negative")
        if self.pole_convergence_tol <= 0.0:
            raise ValueError("pole_convergence_tol must be positive")
        if self.min_sigma_d <= 0.0:
            raise ValueError("min_sigma_d must be positive")
        if not (0.0 <= self.asymptotic_passivity_margin < 1.0):
            raise ValueError("asymptotic_passivity_margin must be in [0, 1)")
        if self.dc_exact and not self.fit_const:
            raise ValueError("dc_exact requires fit_const")
        if self.kernel not in ("batched", "reference"):
            raise ValueError(
                f"kernel must be 'batched' or 'reference', got {self.kernel!r}"
            )
        validate_backend_name(self.backend)
