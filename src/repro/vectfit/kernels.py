"""Batched least-squares kernels shared by the vector-fitting variants.

The VF hot path consists of many small, structurally identical dense
least-squares problems: one (2K, N+cols) block per response column in the
pole-relocation stage and one right-hand side per column in the residue
identification.  Solving them one by one from Python pays the interpreter
and LAPACK-dispatch overhead M = P^2 times per iteration, which dominates
the wall time for realistic port counts.  The kernels here express the
same math as stacked ndarray operations so NumPy's batched LAPACK
wrappers (``np.linalg.qr`` / ``np.linalg.solve`` on leading-axis stacks)
do all per-column work inside one C-level loop.

Every kernel applies the column equilibration documented in
:func:`scaled_lstsq`: partial-fraction bases spanning many frequency
decades have column norms differing by ~1e9, and normalizing columns to
unit norm is what keeps the LS residual at ~1e-8 instead of ~1e-4.
"""

from __future__ import annotations

import numpy as np

from repro.backend import active_backend
from repro.obs import telemetry as obs

#: Relative diagonal threshold below which a QR-compressed slice is
#: treated as rank deficient and re-solved with the SVD-based fallback.
_RANK_TOL = 1e3 * np.finfo(float).eps


def realify_rows(stack: np.ndarray) -> np.ndarray:
    """Stack real and imaginary parts along the row axis.

    Maps ``(..., K, C)`` complex to ``(..., 2K, C)`` real, turning a
    complex LS problem with real unknowns into an equivalent real one.
    """
    return np.concatenate([stack.real, stack.imag], axis=-2)


def column_scales(a: np.ndarray) -> np.ndarray:
    """Per-column Euclidean norms with zero columns mapped to 1.

    For a stacked ``(..., R, C)`` input the result is ``(..., C)``.
    """
    norms = np.linalg.norm(a, axis=-2)
    return np.where(norms > 0.0, norms, 1.0)


def scaled_lstsq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Least squares with column equilibration; ``b`` may be multi-RHS.

    Column norms of partial-fraction bases spanning many frequency
    decades differ by ~1e9, which caps the attainable LS accuracy at
    cond * eps ~ 1e-4 -- fatal for sensitivity weighting, which needs the
    low-frequency residual driven far below that.  Normalizing columns to
    unit norm reduces the condition number to O(10) here.

    With a 2-D ``b`` of shape ``(R, M)`` all M right-hand sides are
    solved against one factorization (the grouped multi-RHS path of the
    residue identification); the result is then ``(C, M)``.
    """
    norms = column_scales(a)
    backend = active_backend()
    solution = backend.from_device(
        backend.lstsq(backend.asarray(a / norms), backend.asarray(b))
    )
    if solution.ndim == 1:
        return solution / norms
    return solution / norms[:, None]


def batched_qr_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve M independent equilibrated LS problems with one batched QR.

    ``a`` has shape ``(M, R, C)`` and ``b`` shape ``(M, R)``; the result
    is ``(M, C)``, slice ``i`` minimizing ``||a[i] x - b[i]||``.  Each
    slice is QR-factorized jointly with its right-hand side (one
    ``np.linalg.qr(mode="r")`` over the stack, no Q formed), and the
    triangular systems are solved batched.  Slices whose compressed
    triangle is numerically rank deficient fall back to the SVD-based
    :func:`scaled_lstsq` (minimum-norm solution), so the kernel agrees
    with the per-column reference path on degenerate inputs too.
    """
    m, rows, cols = a.shape
    if b.shape != (m, rows):
        raise ValueError(f"b must have shape ({m},{rows}), got {b.shape}")
    if rows < cols:
        # Underdetermined slices need the minimum-norm solution; rare
        # (never hit by the VF call sites) so no batching effort.
        return np.stack([scaled_lstsq(a[i], b[i]) for i in range(m)])
    norms = column_scales(a)
    backend = active_backend()
    scaled = a / norms[:, None, :]
    r = backend.from_device(
        backend.qr_r(
            backend.asarray(np.concatenate([scaled, b[:, :, None]], axis=2))
        )
    )
    r11 = r[:, :cols, :cols]
    rhs = r[:, :cols, cols]
    diag = np.abs(np.diagonal(r11, axis1=1, axis2=2))
    ok = diag.min(axis=1) > _RANK_TOL * np.maximum(diag.max(axis=1), 1e-300)
    solution = np.empty((m, cols))
    if np.any(ok):
        solution[ok] = backend.from_device(
            backend.solve(
                backend.asarray(r11[ok]), backend.asarray(rhs[ok, :, None])
            )
        )[:, :, 0]
    for index in np.flatnonzero(~ok):
        solution[index], *_ = np.linalg.lstsq(  # reprolint: disable=backend-routing -- per-column host rescue ladder below the batched backend solve
            scaled[index], b[index], rcond=None
        )
    # Last rung of the per-slice ladder: a triangular solve that passed
    # the rank test can still go non-finite on pathological scaling; such
    # slices are re-solved with the SVD route before anything downstream
    # sees a NaN.
    bad = ~np.isfinite(solution).all(axis=1)
    if np.any(bad):
        obs.incr("fallback.kernel_lstsq", int(bad.sum()))
        for index in np.flatnonzero(bad):
            solution[index], *_ = np.linalg.lstsq(  # reprolint: disable=backend-routing -- per-column host rescue ladder below the batched backend solve
                scaled[index], b[index], rcond=None
            )
    return solution / norms


def shared_weights(weights: np.ndarray) -> bool:
    """True when every column of a (K, M) weight table is identical.

    Per-frequency user weights -- the common case throughout the flow --
    are broadcast to all P^2 response columns, so the residue stage can
    solve all columns against a single factorization.
    """
    if weights.shape[1] <= 1:
        return True
    return bool(np.all(weights == weights[:, :1]))
