"""Vector Fitting: rational approximation of tabulated frequency responses.

Implements the weighted, relaxed vector-fitting algorithm (refs. [8]-[12]
of the paper) used to extract the pole-residue macromodel of eq. (3) by
minimizing the (optionally weighted) error metric of eqs. (4)/(6), plus the
Magnitude Vector Fitting variant (refs. [24]-[25]) used to build the
minimum-phase sensitivity weighting subsystem of eq. (17).
"""

from repro.vectfit.options import VFOptions
from repro.vectfit.starting_poles import initial_poles
from repro.vectfit.core import VFResult, fit_many, vector_fit
from repro.vectfit.magnitude import MagnitudeFitResult, fit_magnitude
from repro.vectfit.order_selection import (
    OrderCandidate,
    OrderSelectionResult,
    select_model_order,
)

__all__ = [
    "VFOptions",
    "initial_poles",
    "VFResult",
    "fit_many",
    "vector_fit",
    "MagnitudeFitResult",
    "fit_magnitude",
    "OrderCandidate",
    "OrderSelectionResult",
    "select_model_order",
]
