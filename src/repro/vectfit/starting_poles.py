"""Starting-pole heuristics for vector fitting.

The classical recipe: complex-conjugate pairs with imaginary parts spread
logarithmically over the data band and small negative real parts
(Re = -Im/100), which keeps the initial least-squares problems well
conditioned on smooth data.
"""

from __future__ import annotations

import numpy as np


def initial_poles(
    omega: np.ndarray,
    n_poles: int,
    *,
    real_ratio: float = 0.01,
    spacing: str = "log",
) -> np.ndarray:
    """Generate ``n_poles`` pair-grouped starting poles for the band of ``omega``.

    Parameters
    ----------
    omega:
        Angular frequency samples (rad/s); only min/max of the positive part
        are used.  A DC point is ignored for band selection.
    n_poles:
        Total pole count; if odd, one real pole at the geometric band centre
        is added.
    real_ratio:
        Ratio -Re(p)/Im(p) of the complex starting poles.
    spacing:
        "log" (default) or "linear" distribution of imaginary parts.
    """
    omega = np.asarray(omega, dtype=float)
    positive = omega[omega > 0.0]
    if positive.size < 2:
        raise ValueError("need at least two positive frequencies")
    w_low, w_high = float(positive.min()), float(positive.max())
    if n_poles < 1:
        raise ValueError("n_poles must be at least 1")

    n_pairs = n_poles // 2
    poles: list[complex] = []
    if n_pairs > 0:
        if spacing == "log":
            betas = np.logspace(np.log10(w_low), np.log10(w_high), n_pairs)
        elif spacing == "linear":
            betas = np.linspace(w_low, w_high, n_pairs)
        else:
            raise ValueError(f"unknown spacing {spacing!r}")
        for beta in betas:
            pole = complex(-real_ratio * beta, beta)
            poles.append(pole)
            poles.append(pole.conjugate())
    if n_poles % 2 == 1:
        poles.append(complex(-np.sqrt(w_low * w_high), 0.0))
    return np.asarray(poles, dtype=complex)
