"""Automatic model-order selection for vector fitting.

The paper picks n = 12 by expertise; this module automates the choice:
fit with increasing order until the (weighted) RMS error drops below a
target, or until the error stops improving -- the standard incremental
strategy of production macromodeling tools.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.logging import get_logger
from repro.vectfit.core import VFResult, vector_fit
from repro.vectfit.options import VFOptions

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class OrderCandidate:
    """One explored model order."""

    n_poles: int
    rms_error: float
    weighted_rms_error: float
    converged: bool


@dataclass(frozen=True)
class OrderSelectionResult:
    """Outcome of the order sweep.

    ``best`` is the selected fit; ``candidates`` records every explored
    order for reporting (derived Table E).
    """

    best: VFResult
    candidates: list[OrderCandidate] = field(repr=False)

    @property
    def selected_order(self) -> int:
        return self.best.model.n_poles


def select_model_order(
    omega: np.ndarray,
    samples: np.ndarray,
    weights: np.ndarray | None = None,
    *,
    orders: list[int] | None = None,
    target_rms: float = 1e-4,
    stagnation_ratio: float = 0.7,
    base_options: VFOptions | None = None,
) -> OrderSelectionResult:
    """Sweep model orders until the fit reaches ``target_rms``.

    Parameters
    ----------
    omega, samples, weights:
        As for :func:`repro.vectfit.core.vector_fit`.
    orders:
        Candidate orders, ascending; default 4, 6, ..., 24.
    target_rms:
        Stop as soon as the unweighted RMS error falls below this.
    stagnation_ratio:
        Also stop when an order improves the error by less than this
        factor versus the previous order (diminishing returns), keeping
        the *previous* (smaller) model in that case.  0 disables the
        stagnation stop (the sweep explores every order).
    base_options:
        Template options; ``n_poles`` is overridden per candidate.
    """
    if orders is None:
        orders = list(range(4, 25, 2))
    if not orders or sorted(orders) != list(orders):
        raise ValueError("orders must be a non-empty ascending list")
    if target_rms <= 0.0:
        raise ValueError("target_rms must be positive")
    base = base_options or VFOptions()

    candidates: list[OrderCandidate] = []
    best: VFResult | None = None
    previous_error = np.inf
    for order in orders:
        options = VFOptions(
            n_poles=order,
            n_iterations=base.n_iterations,
            stable=base.stable,
            relaxed=base.relaxed,
            fit_const=base.fit_const,
            pole_convergence_tol=base.pole_convergence_tol,
            min_sigma_d=base.min_sigma_d,
            asymptotic_passivity_margin=base.asymptotic_passivity_margin,
        )
        result = vector_fit(omega, samples, weights, options)
        candidates.append(
            OrderCandidate(
                n_poles=order,
                rms_error=result.rms_error,
                weighted_rms_error=result.weighted_rms_error,
                converged=result.converged,
            )
        )
        _LOG.info("order %d: rms %.3e", order, result.rms_error)
        if result.rms_error <= target_rms:
            best = result
            break
        if (
            best is not None
            and stagnation_ratio > 0.0
            and result.rms_error > stagnation_ratio * previous_error
        ):
            # Diminishing returns: keep the smaller model.
            break
        best = result
        previous_error = result.rms_error

    assert best is not None  # orders is non-empty
    return OrderSelectionResult(best=best, candidates=candidates)
