"""Automatic model-order selection for vector fitting.

The paper picks n = 12 by expertise; this module automates the choice:
fit with increasing order until the (weighted) RMS error drops below a
target, or until the error stops improving -- the standard incremental
strategy of production macromodeling tools.

Order sweeps are warm-started by default: each candidate order reuses the
previous order's converged poles, padded with fresh log-spaced starting
poles for the added order.  A warm-started candidate begins near a fixed
point of the relocation map, so it typically converges in a fraction of
the iterations a cold start needs -- the sweep stops paying the full
relocation budget at every rung.  Pass ``warm_start=False`` for
independent cold fits per order (ablation studies, Table E).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.util.logging import get_logger
from repro.vectfit.core import VFResult, canonicalize_poles, vector_fit
from repro.vectfit.options import VFOptions
from repro.vectfit.starting_poles import initial_poles

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class OrderCandidate:
    """One explored model order.

    ``warm_started`` records whether the fit reused the previous order's
    converged poles; ``iterations`` the relocation iterations it spent
    (warm starts typically need far fewer).
    """

    n_poles: int
    rms_error: float
    weighted_rms_error: float
    converged: bool
    warm_started: bool = False
    iterations: int = 0


@dataclass(frozen=True)
class OrderSelectionResult:
    """Outcome of the order sweep.

    ``best`` is the selected fit; ``candidates`` records every explored
    order for reporting (derived Table E); ``skipped_orders`` records
    candidate orders that were *not* re-evaluated because an identical
    order appeared earlier in the sweep (duplicate entries in ``orders``).
    """

    best: VFResult
    candidates: list[OrderCandidate] = field(repr=False)
    skipped_orders: list[int] = field(default_factory=list)

    @property
    def selected_order(self) -> int:
        return self.best.model.n_poles


def _warm_poles(
    omega: np.ndarray, previous: np.ndarray, order: int
) -> np.ndarray:
    """Pad the previous order's poles with fresh log-spaced starters."""
    extra = initial_poles(omega, order - previous.size)
    return canonicalize_poles(np.concatenate([previous, extra]))


def select_model_order(
    omega: np.ndarray,
    samples: np.ndarray,
    weights: np.ndarray | None = None,
    *,
    orders: list[int] | None = None,
    target_rms: float = 1e-4,
    stagnation_ratio: float = 0.7,
    stagnation_runs: int = 2,
    warm_start: bool = True,
    base_options: VFOptions | None = None,
) -> OrderSelectionResult:
    """Sweep model orders until the fit reaches ``target_rms``.

    Parameters
    ----------
    omega, samples, weights:
        As for :func:`repro.vectfit.core.vector_fit`.
    orders:
        Candidate orders, ascending; default 4, 6, ..., 24.  Duplicate
        entries are evaluated once and recorded in
        :attr:`OrderSelectionResult.skipped_orders`.
    target_rms:
        Stop as soon as the unweighted RMS error falls below this.
    stagnation_ratio:
        A candidate *stagnates* when it improves the error by less than
        this factor versus the best accepted fit (diminishing returns).
        Stagnant candidates never replace the smaller accepted model.
        0 disables the stagnation stop (the sweep explores every order).
    stagnation_runs:
        Stop the sweep after this many *consecutive* stagnant candidates
        (default 2: one flat rung may be a plateau before a resonance is
        captured, two in a row is a trend).
    warm_start:
        Start each candidate from the previous order's converged poles
        (padded with fresh log-spaced poles) instead of refitting from
        scratch; the shared frequency-grid work is reused across rungs.
    base_options:
        Template options; ``n_poles`` and ``initial_poles`` are
        overridden per candidate, everything else (weighting, relaxation,
        ``dc_exact``, kernel selection, ...) is inherited.
    """
    if orders is None:
        orders = list(range(4, 25, 2))
    if not orders or sorted(orders) != list(orders):
        raise ValueError("orders must be a non-empty ascending list")
    if target_rms <= 0.0:
        raise ValueError("target_rms must be positive")
    if stagnation_runs < 1:
        raise ValueError("stagnation_runs must be at least 1")
    base = base_options or VFOptions()

    candidates: list[OrderCandidate] = []
    skipped: list[int] = []
    evaluated: set[int] = set()
    best: VFResult | None = None
    previous_poles: np.ndarray | None = None
    stagnant_streak = 0
    for order in orders:
        if order in evaluated:
            skipped.append(order)
            _LOG.debug("order %d: duplicate candidate skipped", order)
            continue
        evaluated.add(order)
        warm = (
            warm_start
            and previous_poles is not None
            and previous_poles.size < order
        )
        options = replace(
            base,
            n_poles=order,
            initial_poles=(
                _warm_poles(omega, previous_poles, order) if warm else None
            ),
        )
        result = vector_fit(omega, samples, weights, options)
        previous_poles = result.model.poles
        candidates.append(
            OrderCandidate(
                n_poles=order,
                rms_error=result.rms_error,
                weighted_rms_error=result.weighted_rms_error,
                converged=result.converged,
                warm_started=warm,
                iterations=result.iterations,
            )
        )
        _LOG.info(
            "order %d: rms %.3e (%s, %d iterations)",
            order,
            result.rms_error,
            "warm" if warm else "cold",
            result.iterations,
        )
        if result.rms_error <= target_rms:
            best = result
            break
        if (
            best is not None
            and stagnation_ratio > 0.0
            and result.rms_error > stagnation_ratio * best.rms_error
        ):
            # Diminishing returns: keep the smaller accepted model.
            stagnant_streak += 1
            if stagnant_streak >= stagnation_runs:
                break
            continue
        best = result
        stagnant_streak = 0

    assert best is not None  # orders is non-empty
    return OrderSelectionResult(
        best=best, candidates=candidates, skipped_orders=skipped
    )
