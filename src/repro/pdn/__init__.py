"""Synthetic Power Distribution Network generator and termination schemes.

Substitute for the paper's proprietary Intel test case: builds board +
package power-plane grids with vias, solves them with the in-house MNA
engine, and exports tabulated scattering data in the paper's format
(1 kHz - 2 GHz, logarithmic sampling, DC point, R0 = 50 ohm).
"""

from repro.pdn.geometry import ConnectionSpec, PDNGeometry, PlaneSpec, PortSpec
from repro.pdn.builder import build_circuit
from repro.pdn.spec import load_termination, save_termination
from repro.pdn.termination import TerminationNetwork
from repro.pdn.testcase import PDNTestCase, make_paper_testcase

__all__ = [
    "PlaneSpec",
    "ConnectionSpec",
    "PortSpec",
    "PDNGeometry",
    "build_circuit",
    "load_termination",
    "save_termination",
    "TerminationNetwork",
    "PDNTestCase",
    "make_paper_testcase",
]
