"""Translate a :class:`PDNGeometry` into a solvable :class:`Circuit`.

Each plane becomes a rectangular grid graph (built with networkx) whose
edges are SeriesRL spreading branches and whose nodes carry shunt plane
capacitance; vertical connections become SeriesRL branches between planes;
ports are registered in geometry order so that the scattering data port
ordering matches the PortSpec list.
"""

from __future__ import annotations

import networkx as nx

from repro.circuits.elements import Capacitor, SeriesRL
from repro.circuits.netlist import GROUND, Circuit
from repro.pdn.geometry import PDNGeometry, PlaneSpec


def _add_plane(circuit: Circuit, plane: PlaneSpec) -> None:
    """Stamp one plane's grid branches and shunt capacitances."""
    grid = nx.grid_2d_graph(plane.nx, plane.ny)
    for (ax, ay), (bx, by) in grid.edges():
        circuit.add(
            SeriesRL(
                node_a=plane.node_name(ax, ay),
                node_b=plane.node_name(bx, by),
                resistance=plane.cell_resistance,
                inductance=plane.cell_inductance,
                skin_corner_hz=plane.skin_corner_hz,
            )
        )
    for ix, iy in grid.nodes():
        circuit.add(
            Capacitor(
                node_a=plane.node_name(ix, iy),
                node_b=GROUND,
                capacitance=plane.node_capacitance,
                leakage=plane.node_leakage,
                loss_tangent=plane.loss_tangent,
            )
        )


def build_circuit(geometry: PDNGeometry) -> Circuit:
    """Build the full PDN circuit from its geometric description."""
    geometry.validate()
    circuit = Circuit()
    # Register ports first so that Circuit.nodes orders port nodes first.
    for port in geometry.ports:
        plane = geometry.plane(port.plane)
        circuit.add_port(plane.node_name(*port.coord), name=port.name)
    for plane in geometry.planes:
        _add_plane(circuit, plane)
    for conn in geometry.connections:
        circuit.add(
            SeriesRL(
                node_a=geometry.plane(conn.plane_a).node_name(*conn.coord_a),
                node_b=geometry.plane(conn.plane_b).node_name(*conn.coord_b),
                resistance=conn.resistance,
                inductance=conn.inductance,
            )
        )
    circuit.validate()
    return circuit
