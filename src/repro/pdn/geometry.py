"""Declarative description of a multi-plane PDN structure.

A PDN is described as a set of rectangular power/ground plane pairs, each
discretized into a unit-cell grid (series R+L spreading branches between
neighbouring cells, shunt C+G plane capacitance per cell), plus vertical
connections (vias, BGA balls, bumps) between planes, and port locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PlaneSpec:
    """A discretized power/ground plane pair.

    Parameters
    ----------
    name:
        Unique plane identifier, used to build node names.
    nx, ny:
        Grid cell counts along x and y (nodes: nx*ny).
    cell_resistance:
        Series resistance of one inter-node spreading branch, ohms.
    cell_inductance:
        Series inductance of one spreading branch, henries.
    node_capacitance:
        Plane-pair capacitance lumped at each node, farads.
    node_leakage:
        Constant dielectric-leakage conductance lumped at each node, siemens.
    loss_tangent:
        Dielectric loss tangent of the plane capacitance (FR4 ~ 0.02); the
        dominant damping of plane resonances.
    skin_corner_hz:
        Skin-effect corner frequency of the spreading branches (Hz);
        resistance is constant below it and grows like sqrt(f) above.
        0 disables the effect.
    """

    name: str
    nx: int
    ny: int
    cell_resistance: float
    cell_inductance: float
    node_capacitance: float
    node_leakage: float = 0.0
    loss_tangent: float = 0.0
    skin_corner_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError("grid must have at least one node per axis")
        if self.cell_resistance <= 0.0:
            raise ValueError("cell_resistance must be positive")
        if self.cell_inductance < 0.0:
            raise ValueError("cell_inductance must be non-negative")
        if self.node_capacitance <= 0.0:
            raise ValueError("node_capacitance must be positive")
        if self.node_leakage < 0.0:
            raise ValueError("node_leakage must be non-negative")

    def node_name(self, ix: int, iy: int) -> str:
        """Canonical node name for grid coordinate (ix, iy)."""
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise ValueError(
                f"coordinate ({ix},{iy}) outside {self.nx}x{self.ny} plane {self.name!r}"
            )
        return f"{self.name}_{ix}_{iy}"


@dataclass(frozen=True)
class ConnectionSpec:
    """Vertical connection (via / BGA ball / bump) between two plane nodes."""

    plane_a: str
    coord_a: tuple[int, int]
    plane_b: str
    coord_b: tuple[int, int]
    resistance: float
    inductance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ValueError("connection resistance must be positive")
        if self.inductance < 0.0:
            raise ValueError("connection inductance must be non-negative")


@dataclass(frozen=True)
class PortSpec:
    """Port located at a plane grid node."""

    plane: str
    coord: tuple[int, int]
    name: str
    role: str = "generic"  # one of: die, decap, vrm, open, generic

    _ROLES = ("die", "decap", "vrm", "open", "generic")

    def __post_init__(self) -> None:
        if self.role not in self._ROLES:
            raise ValueError(f"role must be one of {self._ROLES}, got {self.role!r}")


@dataclass
class PDNGeometry:
    """Full PDN description: planes, vertical connections, ports."""

    planes: list[PlaneSpec] = field(default_factory=list)
    connections: list[ConnectionSpec] = field(default_factory=list)
    ports: list[PortSpec] = field(default_factory=list)

    def plane(self, name: str) -> PlaneSpec:
        """Look up a plane by name."""
        for spec in self.planes:
            if spec.name == name:
                return spec
        raise KeyError(f"no plane named {name!r}")

    def validate(self) -> None:
        """Check name uniqueness and that references resolve."""
        names = [p.name for p in self.planes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate plane names")
        if not self.ports:
            raise ValueError("geometry defines no ports")
        port_names = [p.name for p in self.ports]
        if len(set(port_names)) != len(port_names):
            raise ValueError("duplicate port names")
        for conn in self.connections:
            self.plane(conn.plane_a).node_name(*conn.coord_a)
            self.plane(conn.plane_b).node_name(*conn.coord_b)
        for port in self.ports:
            self.plane(port.plane).node_name(*port.coord)

    def ports_with_role(self, role: str) -> list[int]:
        """Indices of ports having the given role."""
        return [i for i, p in enumerate(self.ports) if p.role == role]
