"""Canonical synthetic PDN test cases.

The paper evaluates on a proprietary Intel package ("single power domain at
small form factor, few layers package", 45 ports: 24 die, 12 decap, 1 VRM,
rest open).  We reproduce the *structure* of that test case with a synthetic
board+package plane-pair PDN whose loaded target impedance exhibits the same
qualitative features: milliohm-level low-frequency impedance dominated by
the VRM short, decap anti-resonances at mid frequencies, plane resonances
near 0.3-1 GHz, and -- crucially -- a target-impedance sensitivity that is
orders of magnitude larger at low frequency than at high frequency, because
the near-ideal port-to-port through connection of the power net makes
(I + S) almost singular there.

Three sizes are provided:

* ``"small"`` (default): 9 ports (4 die, 3 decap, 1 VRM, 1 open) on an
  8x8 board grid + 4x4 package grid; the full macromodeling pipeline runs
  in seconds.
* ``"medium"``: 13 ports (6 die, 4 decap, 1 VRM, 2 open) on a 9x9 board
  + 5x5 package, a middle rung for sweep campaigns.
* ``"large"``: 20 ports (10 die, 6 decap, 1 VRM, 3 open) on a 12x12 board
  + 6x6 package, for scaling studies.

Beyond the fixed sizes, :func:`make_variant_testcase` produces parameterized
variants (scaled decaps, different VRM output resistance, rescaled switching
current) so campaign sweeps can explore a family of PDN loading scenarios
from the same plane geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.ingest.conditioning import IngestReport

from repro.circuits.components import (
    DecouplingCapacitor,
    DieBlock,
    OpenTermination,
    ShortTermination,
)
from repro.circuits.mna import ACAnalysis
from repro.circuits.netlist import Circuit
from repro.pdn.builder import build_circuit
from repro.pdn.geometry import ConnectionSpec, PDNGeometry, PlaneSpec, PortSpec
from repro.pdn.termination import TerminationNetwork
from repro.sparams.network import NetworkData
from repro.util.linalg import log_spaced_frequencies

_TOTAL_SWITCHING_CURRENT = 1.0  # amperes, as in the paper (Sec. IV)


@dataclass
class PDNTestCase:
    """Bundle of everything needed to run the paper's experiments.

    ``geometry`` and ``circuit`` are ``None`` for test cases built from
    external tabulated data (:mod:`repro.ingest`): the flow only needs
    the scattering samples, the termination and the observation port.
    """

    name: str
    geometry: PDNGeometry | None
    circuit: Circuit | None
    data: NetworkData
    termination: TerminationNetwork
    observe_port: int
    #: Conditioning report when the data came through repro.ingest.
    ingest: "IngestReport | None" = None

    @property
    def die_ports(self) -> list[int]:
        return self.geometry.ports_with_role("die") if self.geometry else []

    @property
    def decap_ports(self) -> list[int]:
        return self.geometry.ports_with_role("decap") if self.geometry else []

    @property
    def vrm_ports(self) -> list[int]:
        return self.geometry.ports_with_role("vrm") if self.geometry else []

    def summary(self) -> str:
        """Human-readable description of the test case."""
        if self.geometry is None:
            head = [
                f"test case {self.name!r}: {self.data.n_ports} ports "
                "(external data)",
                f"frequency grid: {self.data.n_frequencies} points, "
                f"{self.data.frequencies[0]:g} Hz - "
                f"{self.data.frequencies[-1]:g} Hz",
                f"observation port: {self.observe_port}",
            ]
            return "\n".join(head + self.termination.describe())
        g = self.geometry
        lines = [
            f"test case {self.name!r}: {len(g.ports)} ports "
            f"({len(self.die_ports)} die, {len(self.decap_ports)} decap, "
            f"{len(self.vrm_ports)} VRM)",
            f"frequency grid: {self.data.n_frequencies} points, "
            f"{self.data.frequencies[0]:g} Hz - {self.data.frequencies[-1]:g} Hz",
            f"observation port: {self.observe_port} "
            f"({g.ports[self.observe_port].name})",
        ]
        lines.extend(self.termination.describe())
        return "\n".join(lines)


def _small_geometry() -> PDNGeometry:
    # Tuned so that a 12-pole common-pole macromodel (the paper's order)
    # fits the scattering data to ~1e-3 RMS, as in paper Fig. 1.
    board = PlaneSpec(
        name="board",
        nx=6,
        ny=6,
        cell_resistance=0.8e-3,
        cell_inductance=0.20e-9,
        node_capacitance=30e-12,
        node_leakage=1e-7,
        loss_tangent=0.05,
        skin_corner_hz=2e7,
    )
    package = PlaneSpec(
        name="pkg",
        nx=4,
        ny=4,
        cell_resistance=1.2e-3,
        cell_inductance=0.035e-9,
        node_capacitance=1.2e-12,
        node_leakage=1e-8,
        loss_tangent=0.05,
        skin_corner_hz=5e7,
    )
    # BGA balls: package corners down to the central board region.
    balls = [
        ConnectionSpec("pkg", (0, 0), "board", (2, 2), 3e-3, 0.30e-9),
        ConnectionSpec("pkg", (3, 0), "board", (3, 2), 3e-3, 0.30e-9),
        ConnectionSpec("pkg", (0, 3), "board", (2, 3), 3e-3, 0.30e-9),
        ConnectionSpec("pkg", (3, 3), "board", (3, 3), 3e-3, 0.30e-9),
        ConnectionSpec("pkg", (1, 1), "board", (2, 2), 4e-3, 0.35e-9),
        ConnectionSpec("pkg", (2, 2), "board", (3, 3), 4e-3, 0.35e-9),
    ]
    ports = [
        PortSpec("pkg", (1, 1), "die1", role="die"),
        PortSpec("pkg", (2, 1), "die2", role="die"),
        PortSpec("pkg", (1, 2), "die3", role="die"),
        PortSpec("pkg", (2, 2), "die4", role="die"),
        PortSpec("board", (1, 1), "cap1", role="decap"),
        PortSpec("board", (4, 2), "cap2", role="decap"),
        PortSpec("board", (2, 4), "cap3", role="decap"),
        PortSpec("board", (0, 5), "vrm", role="vrm"),
        PortSpec("board", (4, 4), "spare", role="open"),
    ]
    return PDNGeometry(planes=[board, package], connections=balls, ports=ports)


def _medium_geometry() -> PDNGeometry:
    board = PlaneSpec(
        name="board",
        nx=9,
        ny=9,
        cell_resistance=0.6e-3,
        cell_inductance=0.24e-9,
        node_capacitance=35e-12,
        node_leakage=1e-7,
        loss_tangent=0.045,
        skin_corner_hz=2e7,
    )
    package = PlaneSpec(
        name="pkg",
        nx=5,
        ny=5,
        cell_resistance=1.1e-3,
        cell_inductance=0.032e-9,
        node_capacitance=1.1e-12,
        node_leakage=1e-8,
        loss_tangent=0.045,
        skin_corner_hz=5e7,
    )
    balls = [
        ConnectionSpec("pkg", (0, 0), "board", (3, 3), 3e-3, 0.30e-9),
        ConnectionSpec("pkg", (4, 0), "board", (5, 3), 3e-3, 0.30e-9),
        ConnectionSpec("pkg", (0, 4), "board", (3, 5), 3e-3, 0.30e-9),
        ConnectionSpec("pkg", (4, 4), "board", (5, 5), 3e-3, 0.30e-9),
        ConnectionSpec("pkg", (2, 2), "board", (4, 4), 4e-3, 0.35e-9),
    ]
    die_coords = [(1, 1), (2, 1), (3, 1), (1, 3), (2, 3), (3, 3)]
    decap_coords = [(1, 1), (7, 2), (2, 7), (7, 7)]
    ports = [
        PortSpec("pkg", coord, f"die{i + 1}", role="die")
        for i, coord in enumerate(die_coords)
    ]
    ports += [
        PortSpec("board", coord, f"cap{i + 1}", role="decap")
        for i, coord in enumerate(decap_coords)
    ]
    ports.append(PortSpec("board", (0, 8), "vrm", role="vrm"))
    ports += [
        PortSpec("board", coord, f"spare{i + 1}", role="open")
        for i, coord in enumerate([(8, 0), (6, 6)])
    ]
    return PDNGeometry(planes=[board, package], connections=balls, ports=ports)


def _large_geometry() -> PDNGeometry:
    board = PlaneSpec(
        name="board",
        nx=12,
        ny=12,
        cell_resistance=0.5e-3,
        cell_inductance=0.28e-9,
        node_capacitance=40e-12,
        node_leakage=1e-7,
        loss_tangent=0.04,
        skin_corner_hz=2e7,
    )
    package = PlaneSpec(
        name="pkg",
        nx=6,
        ny=6,
        cell_resistance=1.0e-3,
        cell_inductance=0.030e-9,
        node_capacitance=1.0e-12,
        node_leakage=1e-8,
        loss_tangent=0.04,
        skin_corner_hz=5e7,
    )
    balls = [
        ConnectionSpec("pkg", (x, y), "board", (5 + x // 3, 5 + y // 3), 3e-3, 0.3e-9)
        for x in (0, 2, 3, 5)
        for y in (0, 2, 3, 5)
    ]
    die_coords = [(1, 1), (2, 1), (3, 1), (4, 1), (1, 3), (2, 3), (3, 3), (4, 3),
                  (2, 4), (3, 4)]
    decap_coords = [(1, 1), (10, 2), (2, 9), (9, 9), (5, 1), (1, 6)]
    ports = [
        PortSpec("pkg", coord, f"die{i + 1}", role="die")
        for i, coord in enumerate(die_coords)
    ]
    ports += [
        PortSpec("board", coord, f"cap{i + 1}", role="decap")
        for i, coord in enumerate(decap_coords)
    ]
    ports.append(PortSpec("board", (0, 11), "vrm", role="vrm"))
    ports += [
        PortSpec("board", coord, f"spare{i + 1}", role="open")
        for i, coord in enumerate([(11, 0), (6, 6), (11, 11)])
    ]
    return PDNGeometry(planes=[board, package], connections=balls, ports=ports)


def _nominal_termination(geometry: PDNGeometry) -> TerminationNetwork:
    """Paper Sec. IV nominal scheme: shorted VRM, vendor decaps, die RCs."""
    decap_menu = [
        DecouplingCapacitor(capacitance=10e-6, esr=5e-3, esl=2.0e-9),
        DecouplingCapacitor(capacitance=1e-6, esr=8e-3, esl=1.0e-9),
        DecouplingCapacitor(capacitance=100e-9, esr=15e-3, esl=0.6e-9),
    ]
    terminations: list = []
    excitations = np.zeros(len(geometry.ports))
    die_ports = geometry.ports_with_role("die")
    per_port_current = _TOTAL_SWITCHING_CURRENT / max(len(die_ports), 1)
    decap_counter = 0
    for index, port in enumerate(geometry.ports):
        if port.role == "die":
            terminations.append(DieBlock(resistance=0.2, capacitance=2e-9))
            excitations[index] = per_port_current
        elif port.role == "decap":
            terminations.append(decap_menu[decap_counter % len(decap_menu)])
            decap_counter += 1
        elif port.role == "vrm":
            terminations.append(ShortTermination(resistance=1e-4))
        else:
            terminations.append(OpenTermination())
    return TerminationNetwork(terminations=terminations, excitations=excitations)


def make_paper_testcase(
    size: str = "small",
    n_frequencies: int = 201,
    f_min: float = 1e3,
    f_max: float = 2e9,
    include_dc: bool = True,
    z0: float = 50.0,
) -> PDNTestCase:
    """Build the canonical synthetic PDN test case.

    Returns scattering data tabulated exactly like the paper's input
    ("from 1 kHz to 2 GHz with logarithmic sampling and including the DC
    point", normalized to R0 = 50 ohm), the nominal termination network,
    and the observation port (first die port, where the voltage droop is
    monitored).
    """
    if size == "small":
        geometry = _small_geometry()
    elif size == "medium":
        geometry = _medium_geometry()
    elif size == "large":
        geometry = _large_geometry()
    else:
        raise ValueError(
            f"unknown size {size!r}; use 'small', 'medium' or 'large'"
        )

    circuit = build_circuit(geometry)
    frequencies = log_spaced_frequencies(
        f_min, f_max, n_frequencies, include_dc=include_dc
    )
    data = ACAnalysis(circuit).scattering(frequencies, z0=z0)
    termination = _nominal_termination(geometry)
    observe_port = geometry.ports_with_role("die")[0]
    return PDNTestCase(
        name=size,
        geometry=geometry,
        circuit=circuit,
        data=data,
        termination=termination,
        observe_port=observe_port,
    )


def perturb_termination(
    termination: TerminationNetwork,
    *,
    decap_c_scale: float = 1.0,
    decap_esr_scale: float = 1.0,
    vrm_resistance: float | None = None,
    total_die_current: float | None = None,
) -> TerminationNetwork:
    """Return a perturbed copy of a nominal termination network.

    The perturbation knobs mirror what a power-integrity engineer sweeps in
    practice: decap vendor/stuffing changes (capacitance and ESR scaling),
    the VRM output resistance (regulation state), and the total switching
    current drawn by the die ports (workload intensity).
    """
    if decap_c_scale <= 0.0 or decap_esr_scale <= 0.0:
        raise ValueError("decap scale factors must be positive")
    terminations: list = []
    for term in termination.terminations:
        if isinstance(term, DecouplingCapacitor):
            term = _dc_replace(
                term,
                capacitance=term.capacitance * decap_c_scale,
                esr=term.esr * decap_esr_scale,
            )
        elif vrm_resistance is not None and isinstance(term, ShortTermination):
            term = _dc_replace(term, resistance=vrm_resistance)
        terminations.append(term)
    excitations = termination.excitations.copy()
    if total_die_current is not None:
        if total_die_current < 0.0:
            raise ValueError("total_die_current must be non-negative")
        current = float(np.sum(np.abs(excitations)))
        if current > 0.0:
            excitations = excitations * (total_die_current / current)
    return TerminationNetwork(terminations=terminations, excitations=excitations)


def make_variant_testcase(
    size: str = "small",
    *,
    n_frequencies: int = 201,
    f_min: float = 1e3,
    f_max: float = 2e9,
    include_dc: bool = True,
    z0: float = 50.0,
    decap_c_scale: float = 1.0,
    decap_esr_scale: float = 1.0,
    vrm_resistance: float | None = None,
    total_die_current: float | None = None,
) -> PDNTestCase:
    """Parameterized test-case variant: a fixed size plus termination knobs.

    The plane geometry and scattering data depend only on ``size`` and the
    frequency grid; the termination network is the nominal scheme of
    :func:`make_paper_testcase` perturbed by :func:`perturb_termination`.
    Campaign sweeps use this to expand one geometry into a family of
    loading scenarios.
    """
    base = make_paper_testcase(
        size=size,
        n_frequencies=n_frequencies,
        f_min=f_min,
        f_max=f_max,
        include_dc=include_dc,
        z0=z0,
    )
    termination = perturb_termination(
        base.termination,
        decap_c_scale=decap_c_scale,
        decap_esr_scale=decap_esr_scale,
        vrm_resistance=vrm_resistance,
        total_die_current=total_die_current,
    )
    tags = []
    if decap_c_scale != 1.0:
        tags.append(f"decapC x{decap_c_scale:g}")
    if decap_esr_scale != 1.0:
        tags.append(f"decapESR x{decap_esr_scale:g}")
    if vrm_resistance is not None:
        tags.append(f"vrmR {vrm_resistance:g}")
    if total_die_current is not None:
        tags.append(f"Idie {total_die_current:g}")
    name = base.name if not tags else f"{base.name} ({', '.join(tags)})"
    return _dc_replace(base, name=name, termination=termination)
