"""JSON termination-network specifications.

Lets the CLI (and users) describe the nominal termination scheme of paper
eq. (1) in a plain file:

```json
{"ports": [
  {"type": "die_rc", "resistance": 0.2, "capacitance": 2e-9, "excitation": 0.25},
  {"type": "decap", "capacitance": 1e-5, "esr": 5e-3, "esl": 2e-9},
  {"type": "short", "resistance": 1e-4},
  {"type": "vrm", "resistance": 1e-3, "inductance": 1e-10},
  {"type": "resistor", "resistance": 50.0},
  {"type": "open"}
]}
```
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.circuits.components import (
    DecouplingCapacitor,
    DieBlock,
    OpenTermination,
    PortTermination,
    ResistiveTermination,
    SeriesRLC,
    ShortTermination,
    VRMModel,
)
from repro.pdn.termination import TerminationNetwork


def _build_component(entry: dict) -> PortTermination:
    kind = entry.get("type")
    params = {k: v for k, v in entry.items() if k not in ("type", "excitation")}
    try:
        if kind == "open":
            return OpenTermination(**params)
        if kind == "resistor":
            return ResistiveTermination(**params)
        if kind == "short":
            return ShortTermination(**params)
        if kind == "vrm":
            return VRMModel(**params)
        if kind == "decap":
            return DecouplingCapacitor(**params)
        if kind == "die_rc":
            return DieBlock(**params)
        if kind == "series_rlc":
            return SeriesRLC(**params)
    except TypeError as exc:
        raise ValueError(f"bad parameters for termination {kind!r}: {exc}") from exc
    raise ValueError(f"unknown termination type {kind!r}")


_COMPONENT_NAMES = {
    OpenTermination: "open",
    ResistiveTermination: "resistor",
    ShortTermination: "short",
    VRMModel: "vrm",
    DecouplingCapacitor: "decap",
    DieBlock: "die_rc",
    SeriesRLC: "series_rlc",
}

_COMPONENT_FIELDS = {
    "open": (),
    "resistor": ("resistance",),
    "short": ("resistance",),
    "vrm": ("resistance", "inductance"),
    "decap": ("capacitance", "esr", "esl"),
    "die_rc": ("resistance", "capacitance"),
    "series_rlc": ("resistance", "inductance", "capacitance"),
}


def termination_to_dict(network: TerminationNetwork) -> dict:
    """JSON-compatible dict form of a termination network.

    The canonical interchange form: file persistence and content-addressed
    cache fingerprints both go through this codec so the two can never
    disagree about what a termination "is".
    """
    entries = []
    for port, term in enumerate(network.terminations):
        kind = _COMPONENT_NAMES.get(type(term))
        if kind is None:
            raise ValueError(
                f"cannot serialize termination of type {type(term).__name__}"
            )
        entry: dict = {"type": kind}
        for field_name in _COMPONENT_FIELDS[kind]:
            entry[field_name] = getattr(term, field_name)
        excitation = float(network.excitations[port])
        if excitation:
            entry["excitation"] = excitation
        entries.append(entry)
    return {"ports": entries}


def termination_from_dict(payload: dict) -> TerminationNetwork:
    """Inverse of :func:`termination_to_dict`."""
    entries = payload.get("ports")
    if not isinstance(entries, list) or not entries:
        raise ValueError("spec must contain a non-empty 'ports' list")
    terminations = [_build_component(entry) for entry in entries]
    excitations = np.array([float(entry.get("excitation", 0.0)) for entry in entries])
    return TerminationNetwork(terminations=terminations, excitations=excitations)


def load_termination(path: str | Path) -> TerminationNetwork:
    """Read a termination network from a JSON spec file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        return termination_from_dict(payload)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


def save_termination(network: TerminationNetwork, path: str | Path) -> None:
    """Write a termination network as a JSON spec file."""
    Path(path).write_text(
        json.dumps(termination_to_dict(network), indent=1), encoding="utf-8"
    )
