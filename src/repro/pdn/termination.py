"""Generalized Norton termination network (paper eq. 1).

    -I(s) = Y_L(s) V(s) - J(s)

``Y_L`` is the (diagonal, in the paper's nominal scheme) short-circuit load
admittance built from per-port termination components, and ``J`` collects
the independent current excitations.  The paper's nominal excitation is a
total of 1 A split equally over the active-die ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.components import OpenTermination, PortTermination


@dataclass
class TerminationNetwork:
    """Per-port termination components plus current excitation vector.

    Parameters
    ----------
    terminations:
        One :class:`PortTermination` per port, in port order.
    excitations:
        Real current-source amplitudes per port (A); defaults to all zero.
    """

    terminations: list[PortTermination]
    excitations: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.terminations:
            raise ValueError("termination network needs at least one port")
        for term in self.terminations:
            if not isinstance(term, PortTermination):
                raise TypeError(
                    f"expected PortTermination, got {type(term).__name__}"
                )
        if self.excitations is None:
            self.excitations = np.zeros(len(self.terminations))
        self.excitations = np.asarray(self.excitations, dtype=float)
        if self.excitations.shape != (len(self.terminations),):
            raise ValueError(
                f"excitations must have shape ({len(self.terminations)},)"
            )

    @property
    def n_ports(self) -> int:
        return len(self.terminations)

    def admittance_matrices(self, omega: np.ndarray) -> np.ndarray:
        """Diagonal load admittance stack Y_L(j omega), shape (K, P, P)."""
        omega = np.asarray(omega, dtype=float)
        diag = np.empty((omega.size, self.n_ports), dtype=complex)
        for p, term in enumerate(self.terminations):
            diag[:, p] = term.admittance(omega)
        out = np.zeros((omega.size, self.n_ports, self.n_ports), dtype=complex)
        idx = np.arange(self.n_ports)
        out[:, idx, idx] = diag
        return out

    def source_vector(self) -> np.ndarray:
        """Current excitation vector J (frequency independent, real)."""
        return self.excitations.copy()

    def describe(self) -> list[str]:
        """One line per port: index, component description, excitation."""
        lines = []
        for p, term in enumerate(self.terminations):
            j = self.excitations[p]
            suffix = f", J={j:g} A" if j else ""
            lines.append(f"port {p}: {term.describe()}{suffix}")
        return lines

    @classmethod
    def all_open(cls, n_ports: int) -> "TerminationNetwork":
        """Convenience: every port open, no excitation."""
        return cls(terminations=[OpenTermination() for _ in range(n_ports)])
