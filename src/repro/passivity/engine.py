"""Fast passivity engine: a stateful checker with cached invariants.

Passivity enforcement (paper eq. 9) calls the passivity checker once per
iteration, but only the residues (the C matrix of the Gilbert realization)
change between calls -- poles, D, and therefore A, B and the R/S blocks of
the Hamiltonian matrix are invariant across the whole run.
:class:`PassivityChecker` is constructed once per enforcement run and
caches all of that, so each exact check is reduced to three small matrix
products plus the unavoidable eigendecomposition.

On top of the cached exact test the checker offers a *sampling* mode in
the spirit of the multi-stage adaptive-sampling scheme of De Stefano et
al. (arXiv:2011.02789) and the band-tracking perturbation scheme of
Grivet-Talocia (arXiv:1706.06395): a frequency grid warm-started from the
previous check's crossings and violation bands is swept and locally
refined where sigma_max approaches 1.  Sampling is cheap but *not
conclusive* (violations strictly between grid points can be missed), so
the enforcement loop uses it only for intermediate iterations and always
finishes with an exact Hamiltonian certificate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import telemetry as obs
from repro.passivity.check import (
    PassivityReport,
    _sigma_max,
    asymptotic_violation_report,
    bands_from_sigma_samples,
    default_omega_cap,
    report_from_crossings,
)
from repro.resilience import faultinject
from repro.resilience.errors import CheckerError, ReproError
from repro.statespace.hamiltonian import (
    half_size_crossings,
    half_size_from_invariants,
    half_size_invariants,
    hamiltonian_from_invariants,
    hamiltonian_invariants,
    imaginary_crossings,
)
from repro.statespace.poleresidue import PoleResidueModel

_KNOWN_POINTS_CAP = 256

#: Relative symmetry defect below which a model counts as reciprocal --
#: the half-size test's sigma error is O(defect), far inside the 1e-4
#: crossing-verification tolerance.
_RECIPROCAL_RTOL = 1e-8


def _symmetry_defect(matrix: np.ndarray) -> float:
    """Relative distance of (each slice of) ``matrix`` from symmetry."""
    scale = float(np.max(np.abs(matrix))) if matrix.size else 0.0
    if scale == 0.0:
        return 0.0
    if matrix.ndim == 2:
        defect = float(np.max(np.abs(matrix - matrix.T)))
    else:
        defect = float(np.max(np.abs(matrix - matrix.transpose(0, 2, 1))))
    return defect / scale


def is_reciprocal(model: PoleResidueModel, *, rtol: float = _RECIPROCAL_RTOL) -> bool:
    """Whether the model's response matrix is symmetric (S = S^T)."""
    return (
        _symmetry_defect(model._const) <= rtol
        and _symmetry_defect(model._residues) <= rtol
    )


@dataclass(frozen=True)
class CheckerOptions:
    """Configuration of the fast passivity engine.

    Parameters
    ----------
    strategy:
        ``"fast"`` runs the cheap sampling check for intermediate
        enforcement iterations (exact Hamiltonian test at iteration 0,
        every ``exact_every``-th iteration, and for the final
        certificate); ``"exact"`` runs the Hamiltonian test every
        iteration (the pre-engine behavior, still with cached
        invariants).
    exact_every:
        Cadence of interleaved exact checks in fast mode; ``0`` disables
        interleaving (exact only at iteration 0 and for certification).
    base_grid_points:
        Log-spaced backbone of the sampling grid.
    refine_stages / refine_points:
        Multi-stage local refinement: per stage, up to ``refine_points``
        extra samples are inserted into each interval that brackets or
        approaches a violation.
    max_grid_points:
        Hard cap on the sampling grid size.
    """

    strategy: str = "fast"
    exact_every: int = 5
    base_grid_points: int = 192
    refine_stages: int = 3
    refine_points: int = 24
    max_grid_points: int = 4096

    def __post_init__(self) -> None:
        if self.strategy not in ("fast", "exact"):
            raise ValueError("strategy must be 'fast' or 'exact'")
        if self.exact_every < 0:
            raise ValueError("exact_every must be non-negative")
        if self.base_grid_points < 16:
            raise ValueError("base_grid_points must be at least 16")
        if self.refine_stages < 1:
            raise ValueError("refine_stages must be at least 1")
        if self.refine_points < 4:
            raise ValueError("refine_points must be at least 4")
        if self.max_grid_points < self.base_grid_points:
            raise ValueError("max_grid_points must cover the base grid")


class PassivityChecker:
    """Stateful passivity checker for one enforcement run.

    Construction caches everything invariant under residue perturbation:
    the Gilbert realization scaffolding (A, B; only C changes per
    iteration), the R/S-derived Hamiltonian blocks, ``omega_cap``, and an
    adaptive sampling grid warm-started from each check's crossings and
    violation bands.  All subsequent checks must be called with models
    sharing the constructor model's poles and constant term.
    """

    def __init__(
        self,
        model: PoleResidueModel,
        *,
        band_samples: int = 50,
        omega_cap: float | None = None,
        options: CheckerOptions | None = None,
    ) -> None:
        if not model.is_stable():
            raise ValueError("passivity checking requires a stable model")
        self.options = options or CheckerOptions()
        self.band_samples = band_samples
        self._poles = model.poles
        self._const = model.const
        self._asymptotic = float(np.linalg.norm(self._const, 2))
        self.omega_cap = (
            omega_cap if omega_cap is not None else default_omega_cap(model)
        )
        pole_mags = np.abs(self._poles)
        pole_mags = pole_mags[pole_mags > 0.0]
        floor = (
            1e-2 * float(np.min(pole_mags))
            if pole_mags.size
            else 1e-9 * self.omega_cap
        )
        self._omega_floor = min(max(floor, 1e-300), self.omega_cap * 1e-3)

        self._invariants = None
        self._half_invariants = None
        if self._asymptotic < 1.0:
            a_e, b_e = model.element_dynamics()
            eye = np.eye(model.n_ports)
            a = np.kron(a_e, eye)
            b = np.kron(b_e[:, None], eye)
            self._invariants = hamiltonian_invariants(
                a, b, self._const, gamma=1.0,
            )
            if _symmetry_defect(self._const) <= _RECIPROCAL_RTOL:
                # Reciprocal family (symmetric D): cache the half-size
                # factors too; whether a given iterate may use them is
                # re-decided per check from its residue symmetry.
                try:
                    self._half_invariants = half_size_invariants(
                        a, b, self._const, gamma=1.0,
                    )
                except ValueError:
                    self._half_invariants = None
        self._known_points = np.zeros(0)
        self.n_exact_checks = 0
        self.n_sampling_checks = 0
        self.n_half_size_checks = 0

    # ------------------------------------------------------------------
    # Strategy
    # ------------------------------------------------------------------
    def use_exact(self, iteration: int | None) -> bool:
        """Whether enforcement iteration ``iteration`` gets an exact check."""
        if self.options.strategy == "exact" or iteration is None:
            return True
        if iteration == 0:
            return True
        every = self.options.exact_every
        return every > 0 and iteration % every == 0

    def check(
        self, model: PoleResidueModel, *, iteration: int | None = None
    ) -> PassivityReport:
        """Strategy-dispatched check whose verdict is always certified.

        Dispatches to the exact or sampling check per :meth:`use_exact`;
        a *passing* sampling sweep is never trusted on its own -- it is
        immediately confirmed (or refuted) by the exact Hamiltonian
        test, so an ``is_passive=True`` report from this method is
        always an exact certificate.  A sampling sweep that fails
        outright (non-finite sigma, poisoned grid) escalates to the
        exact check as well -- the fast path is an accelerator, never a
        correctness dependency; each escalation increments the
        ``fallback.checker_exact`` counter.
        """
        if self.use_exact(iteration):
            return self.check_exact(model)
        try:
            report = self.check_sampling(model)
        except ReproError:
            obs.incr("fallback.checker_exact")
            return self.check_exact(model)
        if report.is_passive or report.worst_sigma <= 1.0:
            exact = self.check_exact(model)
            if report.is_passive and not exact.is_passive:
                # Sampling-grid disagreement: the sweep missed a
                # violation strictly between grid points.
                obs.incr("fallback.checker_exact")
            report = exact
        return report

    # ------------------------------------------------------------------
    # Exact (certifying) mode
    # ------------------------------------------------------------------
    def check_exact(self, model: PoleResidueModel) -> PassivityReport:
        """Exact Hamiltonian test using the cached invariant blocks.

        Equivalent to :func:`repro.passivity.check.check_passivity` (same
        crossings, bands and worst singular value) at a fraction of the
        per-call setup cost.  Reciprocal iterates (symmetric residues and
        constant term, the physical PDN case) take the half-size
        structured test -- an n x n eigensolve instead of 2n x 2n; any
        iterate that drifted off symmetry falls back to the full
        Hamiltonian, so the certificate never depends on reciprocity.
        """
        self._validate(model)
        self.n_exact_checks += 1
        obs.incr("checker.exact_checks")
        if self._asymptotic >= 1.0:
            return asymptotic_violation_report(model, self._asymptotic)
        use_half = (
            self._half_invariants is not None
            and _symmetry_defect(model._residues) <= _RECIPROCAL_RTOL
        )
        if use_half:
            self.n_half_size_checks += 1
            m = half_size_from_invariants(
                self._half_invariants, model.full_output_matrix()
            )
        else:
            m = hamiltonian_from_invariants(
                self._invariants, model.full_output_matrix()
            )
        with obs.span(
            "kernel:hamiltonian_eig", n=int(m.shape[0]),
            half_size=bool(use_half),
        ):
            try:
                if use_half:
                    crossings = half_size_crossings(
                        m, model.frequency_response, 1.0
                    )
                else:
                    crossings = imaginary_crossings(
                        m, model.frequency_response, 1.0
                    )
            except np.linalg.LinAlgError as exc:
                raise CheckerError(
                    f"Hamiltonian eigendecomposition failed: {exc}",
                    stage="enforcement",
                ) from exc
        report = report_from_crossings(
            model,
            crossings,
            omega_cap=self.omega_cap,
            band_samples=self.band_samples,
            asymptotic=self._asymptotic,
        )
        self._remember(report)
        return report

    # ------------------------------------------------------------------
    # Sampling (fast, non-certifying) mode
    # ------------------------------------------------------------------
    def check_sampling(self, model: PoleResidueModel) -> PassivityReport:
        """Adaptive sampling sweep seeded by previously-seen violations.

        Multi-stage: a log-spaced backbone grid, augmented with clusters
        around every crossing/band remembered from earlier checks, is
        swept and then locally refined wherever sigma_max brackets or
        approaches 1.  Not conclusive on its own -- the enforcement loop
        certifies with :meth:`check_exact` before declaring success.
        """
        self._validate(model)
        self.n_sampling_checks += 1
        obs.incr("checker.sampling_checks")
        if self._asymptotic >= 1.0:
            return asymptotic_violation_report(model, self._asymptotic)
        omega = self.seed_grid()
        seed_size = int(omega.size)
        stages_run = 0
        sigma = faultinject.corrupt(
            "checker.sampling", _sigma_max(model, omega)
        )
        for _ in range(self.options.refine_stages):
            if omega.size >= self.options.max_grid_points:
                break
            fresh = self._refinement_points(omega, sigma)
            if fresh.size == 0:
                break
            stages_run += 1
            sigma_fresh = _sigma_max(model, fresh)
            omega = np.concatenate([omega, fresh])
            sigma = np.concatenate([sigma, sigma_fresh])
            order = np.argsort(omega)
            omega, sigma = omega[order], sigma[order]
        if not np.isfinite(sigma).all():
            raise CheckerError(
                "sampling sweep produced non-finite singular values",
                stage="enforcement",
            )
        worst = int(np.argmax(sigma))
        bands = bands_from_sigma_samples(omega, sigma)
        obs.emit(
            "checker.sampling",
            seed_grid=seed_size,
            final_grid=int(omega.size),
            stages=stages_run,
            violations=len(bands),
        )
        report = PassivityReport(
            is_passive=not bands and float(sigma[worst]) <= 1.0,
            worst_sigma=float(sigma[worst]),
            worst_omega=float(omega[worst]),
            crossings=np.zeros(0),
            bands=bands,
            asymptotic_gain=self._asymptotic,
        )
        self._remember(report)
        return report

    # ------------------------------------------------------------------
    # Grid management
    # ------------------------------------------------------------------
    def seed_grid(self) -> np.ndarray:
        """Sampling grid: log backbone + clusters at remembered violations.

        Every remembered point (crossing, band edge, band peak) gets a
        tight relative cluster, and geometric midpoints of consecutive
        remembered points are added so a band delimited by two crossings
        always has an interior sample.
        """
        base = np.geomspace(
            self._omega_floor, self.omega_cap, self.options.base_grid_points
        )
        parts = [base]
        known = self._known_points
        known = known[(known > 0.0) & np.isfinite(known)]
        if known.size:
            known = np.clip(known, self._omega_floor, self.omega_cap)
            spread = np.geomspace(1.0 / 1.06, 1.06, 7)
            parts.append((known[:, None] * spread[None, :]).reshape(-1))
            ordered = np.unique(known)
            if ordered.size > 1:
                parts.append(np.sqrt(ordered[:-1] * ordered[1:]))
        omega = np.unique(np.concatenate(parts))
        omega = omega[(omega > 0.0) & (omega <= self.omega_cap)]
        if omega.size > self.options.max_grid_points:
            stride = int(np.ceil(omega.size / self.options.max_grid_points))
            omega = omega[::stride]
        return omega

    def _refinement_points(
        self, omega: np.ndarray, sigma: np.ndarray
    ) -> np.ndarray:
        """Interior points for intervals that bracket or approach sigma=1."""
        hot = sigma > 1.0
        near = sigma > 0.97
        # Refine an interval when either endpoint violates (band interior
        # or edge) -- catches crossings strictly between samples too.
        flagged = hot[:-1] | hot[1:]
        # Sharpen the global peak even when still below 1.
        peak = int(np.argmax(sigma))
        if near[peak]:
            if peak > 0:
                flagged[peak - 1] = True
            if peak < flagged.size:
                flagged[min(peak, flagged.size - 1)] = True
        ratio = omega[1:] / np.maximum(omega[:-1], 1e-300)
        flagged &= ratio > 1.0 + 1e-9  # already converged intervals
        idx = np.nonzero(flagged)[0]
        if idx.size == 0:
            return np.zeros(0)
        lows, highs = omega[idx], omega[idx + 1]
        k = self.options.refine_points
        interior = np.geomspace(lows, highs, k + 2, axis=1)[:, 1:-1]
        fresh = np.unique(interior.reshape(-1))
        budget = self.options.max_grid_points - omega.size
        if fresh.size > budget:
            stride = int(np.ceil(fresh.size / max(budget, 1)))
            fresh = fresh[::stride]
        return fresh

    def seed(self, report: PassivityReport) -> None:
        """Warm-start the sampling grid from an externally computed report
        (e.g. a :func:`repro.passivity.check.check_passivity` result the
        caller already paid for)."""
        self._remember(report)

    def _remember(self, report: PassivityReport) -> None:
        """Warm-start state: keep this report's crossings/bands (plus the
        previous generation, capped) for the next sampling grid."""
        parts = [np.asarray(report.crossings, float)]
        for band in report.bands:
            parts.append(
                np.array([band.omega_low, band.omega_high, band.omega_peak])
            )
        if np.isfinite(report.worst_omega) and report.worst_omega > 0.0:
            parts.append(np.array([report.worst_omega]))
        fresh = np.unique(np.concatenate(parts)) if parts else np.zeros(0)
        merged = np.unique(np.concatenate([fresh, self._known_points]))
        self._known_points = merged if merged.size <= _KNOWN_POINTS_CAP else fresh

    # ------------------------------------------------------------------
    def _validate(self, model: PoleResidueModel) -> None:
        if not np.array_equal(model._poles, self._poles) or not np.array_equal(
            model._const, self._const
        ):
            raise ValueError(
                "PassivityChecker invariants were built for a different "
                "model family (poles or constant term changed); construct "
                "a new checker"
            )
