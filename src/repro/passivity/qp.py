"""Convex QP solver for the passivity-enforcement subproblem (paper eq. 9).

The subproblem is

    minimize   1/2 x^T H x     subject to   F x <= g ,

with H block-diagonal SPD (a :class:`BlockDiagonalCost`) and few
constraints.  Strong duality holds, and the dual is a small non-negative
quadratic program

    minimize_{lambda >= 0}  1/2 lambda^T (F H^-1 F^T) lambda + g^T lambda

whose exact solution is obtained with the Lawson-Hanson NNLS active-set
algorithm after a Cholesky rewrite:

    M = F H^-1 F^T = R^T R   =>   lambda = argmin ||R lambda + R^-T g||^2, lambda>=0

and the primal recovers as x = -H^-1 F^T lambda.  This replaces the
commercial SOCP solver used by the paper (no external optimizers are
available offline); for this problem class the two are equivalent since
the SOCP's conic objective is exactly the quadratic form minimized here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.optimize

from repro.passivity.cost import BlockDiagonalCost
from repro.passivity.perturbation import ConstraintSet


@dataclass(frozen=True)
class QPSolution:
    """Solution of the enforcement QP.

    ``delta_c`` has shape (P, P, N); ``cost`` is the achieved quadratic
    value; ``max_violation`` is the worst remaining linearized constraint
    violation (should be ~0 for a feasible solve).
    """

    delta_c: np.ndarray
    cost: float
    max_violation: float
    dual: np.ndarray


def _solve_h_inv_ft(
    cost: BlockDiagonalCost, constraints: ConstraintSet
) -> np.ndarray:
    """Compute Y = H^-1 F^T exploiting the block structure; (P*P*N, n_c)."""
    p, n = cost.n_ports, cost.n_states
    n_c = constraints.n_constraints
    f = constraints.matrix  # (n_c, P*P*N)
    y = np.empty((p * p * n, n_c))
    for a in range(p):
        for b in range(p):
            start = ((a * p) + b) * n
            block_ft = f[:, start : start + n].T  # (N, n_c)
            y[start : start + n] = cost.solve(a, b, block_ft)
    return y


def solve_block_qp(
    cost: BlockDiagonalCost,
    constraints: ConstraintSet,
    *,
    dual_ridge: float = 1e-12,
) -> QPSolution:
    """Solve min 1/2 x^T H x s.t. F x <= g via the dual NNLS route."""
    p, n = cost.n_ports, cost.n_states
    if constraints.n_constraints == 0:
        return QPSolution(
            delta_c=np.zeros((p, p, n)),
            cost=0.0,
            max_violation=0.0,
            dual=np.zeros(0),
        )
    f = constraints.matrix
    g = constraints.bounds
    y = _solve_h_inv_ft(cost, constraints)
    m = f @ y  # F H^-1 F^T, (n_c, n_c), PSD
    m = 0.5 * (m + m.T)
    scale = max(float(np.trace(m)) / m.shape[0], 1e-300)
    m_reg = m + dual_ridge * scale * np.eye(m.shape[0])
    r = scipy.linalg.cholesky(m_reg, lower=False, check_finite=False)
    # min_lambda>=0 1/2 l^T M l + g^T l  ==  min ||R l + R^-T g||^2 / 2
    rhs = scipy.linalg.solve_triangular(
        r, -g, trans="T", lower=False, check_finite=False
    )
    lam, _ = scipy.optimize.nnls(r, rhs)
    x = -(y @ lam)
    delta_c = x.reshape(p, p, n)
    value = 0.5 * cost.quadratic_value(delta_c)
    violation = float(np.max(constraints.matrix @ x - g)) if g.size else 0.0
    return QPSolution(
        delta_c=delta_c,
        cost=value,
        max_violation=max(violation, 0.0),
        dual=lam,
    )
