"""Convex QP solver for the passivity-enforcement subproblem (paper eq. 9).

The subproblem is

    minimize   1/2 x^T H x     subject to   F x <= g ,

with H block-diagonal SPD (a :class:`BlockDiagonalCost`) and usually far
fewer *active* constraints than total constraints.  Strong duality holds,
and the dual is a non-negative quadratic program

    minimize_{lambda >= 0}  1/2 lambda^T (F H^-1 F^T) lambda + g^T lambda

whose exact solution recovers the primal as x = -H^-1 F^T lambda.  This
replaces the commercial SOCP solver used by the paper (no external
optimizers are available offline); for this problem class the two are
equivalent since the SOCP's conic objective is exactly the quadratic form
minimized here.

On realistic port counts the constraint count n_c reaches thousands while
the active set stays small, and forming the dense dual Gram
M = F H^-1 F^T (n_c^2 entries, each a length-P^2*N dot product) used to
dominate the entire enforcement run.  The fast path exploits two
structures instead:

* every linearized row of eq. (8) is a rank-2 tensor
  ``f_i = Re(w_i (x) k_i) = Re(w_i) (x) Re(k_i) - Im(w_i) (x) Im(k_i)``
  with ``w_i = conj(u_i) outer conj(v_i)`` in C^(P^2) and the shared
  element kernel ``k_i = k(omega_i)`` in C^N, so Gram entries, primal
  slacks and H^-1 F^T products all collapse to P^2- and N-dimensional
  contractions (:class:`_StructuredOps`) -- the (n_c x P^2 N) matrix is
  never swept;
* the dual is solved on a small working set of constraints (seeded with
  the rows violated at x = 0) by a Lawson-Hanson active-set iteration on
  the explicitly-formed working Gram, then a single structured pass over
  all rows verifies global feasibility and pulls any violated
  constraints into the working set.  On exit every constraint outside
  the set is satisfied with zero multiplier, so the restricted KKT point
  is the global optimum.

The dense route (explicit M + scipy NNLS, the pre-engine code path)
remains both as the fallback and as the solver for per-element
(non-shared) costs, whose H^-1 does not factor over the tensor structure.

Backend note: the QP's heavy dense work -- every ``H^-1`` application,
i.e. the Cholesky solves behind :class:`_StructuredOps`'s kernel tables
and the primal recovery -- runs on the active array backend through
:meth:`BlockDiagonalCost.solve` (see :mod:`repro.backend`).  The
active-set bookkeeping and the tiny working-set NNLS solves stay on host
LAPACK deliberately: they operate on working sets of at most a few dozen
rows, where device dispatch overhead dwarfs the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.optimize

from repro.obs import telemetry as obs
from repro.passivity.cost import BlockDiagonalCost
from repro.passivity.perturbation import ConstraintSet
from repro.resilience import faultinject
from repro.resilience.errors import QPInfeasibleError
from repro.util.logging import get_logger

_LOG = get_logger(__name__)

#: Ladder of structured-solver retunings tried before the dense route:
#: (ridge multiplier, seed_cap, grow_cap, max_rounds).  A Lawson-Hanson
#: stall is almost always conditioning -- a stiffer Tikhonov ridge on the
#: dual Gram plus a smaller working set converges where the well-
#: conditioned tuning cycles.
_STRUCTURED_RUNGS = (
    (1.0, 512, 1024, 32),
    (1e4, 256, 512, 24),
    (1e8, 128, 256, 16),
)


@dataclass(frozen=True)
class QPSolution:
    """Solution of the enforcement QP.

    ``delta_c`` has shape (P, P, N); ``cost`` is the achieved quadratic
    value; ``max_violation`` is the worst remaining linearized constraint
    violation (should be ~0 for a feasible solve).
    """

    delta_c: np.ndarray
    cost: float
    max_violation: float
    dual: np.ndarray


def _solve_h_inv_ft(
    cost: BlockDiagonalCost, constraints: ConstraintSet
) -> np.ndarray:
    """Compute Y = H^-1 F^T exploiting the block structure; (P*P*N, n_c).

    One batched solve over all constraints and blocks at once (a single
    Cholesky solve in the shared-block case).
    """
    return cost.solve_flat(constraints.dense_matrix().T)


def _dual_nnls_dense(
    f: np.ndarray, y: np.ndarray, g: np.ndarray, ridge: float
) -> np.ndarray:
    """Dense route: form M = F Y, Cholesky-rewrite, scipy NNLS."""
    m = f @ y
    m = 0.5 * (m + m.T)
    m_reg = m + ridge * np.eye(m.shape[0])
    r = scipy.linalg.cholesky(m_reg, lower=False, check_finite=False)  # reprolint: disable=backend-routing -- dense NNLS dual route is a documented host-LAPACK path (see module docstring)
    # min_lambda>=0 1/2 l^T M l + g^T l  ==  min ||R l + R^-T g||^2 / 2
    rhs = scipy.linalg.solve_triangular(
        r, -g, trans="T", lower=False, check_finite=False
    )
    lam, _ = scipy.optimize.nnls(r, rhs)
    return lam


def _nnls_gram(
    m: np.ndarray, q: np.ndarray, warm: np.ndarray | None = None
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Lawson-Hanson NNLS for min 1/2 l^T M l + q^T l, l >= 0, with an
    explicit (small, possibly very ill-conditioned) PSD Gram ``m``.

    The enforcement dual is massively degenerate -- thousands of nearly
    parallel constraint rows make M numerically rank-deficient -- which the
    classic single-addition active-set rule with feasibility line searches
    tolerates (unlike block-pivoting schemes, which need a P-matrix).
    Returns ``(lam, active_mask)`` or ``(None, None)`` on iteration-cap
    overflow.  ``warm`` optionally seeds the active set.
    """
    n = q.size
    gtol = 1e-10 * max(1.0, float(np.max(np.abs(q))) if n else 1.0)
    lam = np.zeros(n)
    active: list[int] = []
    in_active = np.zeros(n, dtype=bool)
    lam_active = np.zeros(0)
    grad = q.copy()

    def _solve_active() -> np.ndarray:
        sub = m[np.ix_(active, active)]
        try:
            return scipy.linalg.solve(
                sub, -q[active], assume_a="pos", check_finite=False
            )
        except (scipy.linalg.LinAlgError, ValueError):
            return np.linalg.lstsq(sub, -q[active], rcond=None)[0]  # reprolint: disable=backend-routing -- active-set rescue inside the host-LAPACK NNLS solver (see module docstring)

    max_iter = 5 * n + 100
    outer = 0
    pending_inner = False
    if warm is not None and warm.size == n and warm.any():
        active = [int(i) for i in np.nonzero(warm)[0]]
        in_active[active] = True
        lam_active = np.zeros(len(active))
        pending_inner = True  # clean the warm set before trusting it

    while outer < max_iter:
        outer += 1
        if not pending_inner:
            w = -grad
            w[in_active] = -np.inf
            j = int(np.argmax(w)) if n else 0
            if n == 0 or w[j] <= gtol:
                return lam, in_active  # KKT satisfied: optimal
            active.append(j)
            in_active[j] = True
            lam_active = np.append(lam_active, 0.0)
        pending_inner = False

        for _inner in range(max_iter):
            z = _solve_active()
            if z.size and np.min(z) > 0.0:
                lam_active = z
                break
            # Feasibility line search toward z, then drop zeroed indices.
            mask = z <= 0.0
            denom = lam_active[mask] - z[mask]
            with np.errstate(divide="ignore", invalid="ignore"):
                steps = np.where(denom > 0.0, lam_active[mask] / denom, 0.0)
            alpha = float(np.min(steps)) if steps.size else 0.0
            lam_active = lam_active + alpha * (z - lam_active)
            keep = lam_active > 1e-14 * max(
                1.0, float(np.max(lam_active)) if lam_active.size else 1.0
            )
            if not np.any(keep) and keep.size:
                keep[-1] = True  # never empty the set entirely
                lam_active[-1] = max(lam_active[-1], 0.0)
            if np.all(keep):
                lam_active = np.maximum(z, 0.0)  # roundoff: accept clipped
                break
            for i, flag in enumerate(keep):
                if not flag:
                    in_active[active[i]] = False
            active = [a for a, flag in zip(active, keep) if flag]
            lam_active = lam_active[keep]
        else:
            return None, None

        lam[:] = 0.0
        lam[active] = lam_active
        grad = m[:, active] @ lam_active + q
    return None, None


class _StructuredOps:
    """Factor-space contractions for structured constraint sets.

    Valid only for shared-block costs, where ``H^-1 = I_{P^2} (x) G^-1``
    factors over the ``w (x) k`` tensor structure of the constraint rows:

        f_i^T H^-1 f_j =   (wr_i . wr_j) (kr_i^T G^-1 kr_j)
                         - (wr_i . wi_j) (kr_i^T G^-1 ki_j)
                         - (wi_i . wr_j) (ki_i^T G^-1 kr_j)
                         + (wi_i . wi_j) (ki_i^T G^-1 ki_j)

    with the kernel tables precomputed once per QP over the (few hundred)
    distinct frequencies.
    """

    def __init__(
        self, cost: BlockDiagonalCost, constraints: ConstraintSet
    ) -> None:
        self._cost = cost
        self.bounds = constraints.bounds
        self.wr = constraints.w_re
        self.wi = constraints.w_im
        self.fi = constraints.freq_index
        kr = constraints.kernels.real  # (K, N)
        ki = constraints.kernels.imag
        self._kr = kr
        self._ki = ki
        k = kr.shape[0]
        solved = cost.solve(0, 0, np.vstack([kr, ki]).T)  # (N, 2K)
        self.t_rr = kr @ solved[:, :k]
        self.t_ri = kr @ solved[:, k:]
        self.t_ir = ki @ solved[:, :k]
        self.t_ii = ki @ solved[:, k:]

    def gram(self, rows_a: np.ndarray, rows_b: np.ndarray) -> np.ndarray:
        """Dual Gram submatrix M[rows_a, rows_b] (without ridge)."""
        wr_a, wi_a = self.wr[rows_a], self.wi[rows_a]
        wr_b, wi_b = self.wr[rows_b], self.wi[rows_b]
        sel = np.ix_(self.fi[rows_a], self.fi[rows_b])
        return (
            (wr_a @ wr_b.T) * self.t_rr[sel]
            - (wr_a @ wi_b.T) * self.t_ri[sel]
            - (wi_a @ wr_b.T) * self.t_ir[sel]
            + (wi_a @ wi_b.T) * self.t_ii[sel]
        )

    def gram_diag(self) -> np.ndarray:
        """diag(M) over all rows (for the relative ridge scale)."""
        f = self.fi
        return (
            np.einsum("ij,ij->i", self.wr, self.wr) * self.t_rr[f, f]
            - 2.0 * np.einsum("ij,ij->i", self.wr, self.wi) * self.t_ri[f, f]
            + np.einsum("ij,ij->i", self.wi, self.wi) * self.t_ii[f, f]
        )

    def primal(self, rows: np.ndarray, lam: np.ndarray) -> np.ndarray:
        """x = -H^-1 F[rows]^T lam on the flattened (P*P*N,) layout."""
        k = self._kr.shape[0]
        p2 = self.wr.shape[1]
        acc_r = np.zeros((k, p2))
        acc_i = np.zeros((k, p2))
        np.add.at(acc_r, self.fi[rows], lam[:, None] * self.wr[rows])
        np.add.at(acc_i, self.fi[rows], lam[:, None] * self.wi[rows])
        ft = acc_r.T @ self._kr - acc_i.T @ self._ki  # (P^2, N)
        return -self._cost.solve_flat(ft.reshape(-1))

    def slacks(self, x: np.ndarray) -> np.ndarray:
        """F x - g over *all* rows in one factor-space pass."""
        p2 = self.wr.shape[1]
        x2 = x.reshape(p2, -1)
        v_r = (x2 @ self._kr.T).T[self.fi]  # (n_c, P^2)
        v_i = (x2 @ self._ki.T).T[self.fi]
        fx = np.einsum("ij,ij->i", self.wr, v_r) - np.einsum(
            "ij,ij->i", self.wi, v_i
        )
        return fx - self.bounds


def _solve_structured(
    cost: BlockDiagonalCost,
    constraints: ConstraintSet,
    dual_ridge: float,
    *,
    seed_cap: int = 512,
    grow_cap: int = 1024,
    max_rounds: int = 32,
) -> tuple[np.ndarray, np.ndarray, float] | None:
    """Working-set dual solve in factor space.

    Returns ``(lam, x, max_violation)`` or ``None`` when the round/pivot
    caps are hit (the caller falls back to the dense route).
    """
    if faultinject.check("qp.structured") == "stall":
        return None
    ops = _StructuredOps(cost, constraints)
    g = constraints.bounds
    n_c = g.size
    ridge = dual_ridge * max(float(np.mean(ops.gram_diag())), 1e-300)
    # Constraints violated by less than this are considered satisfied;
    # far below the enforcement margin, so the verdict is unaffected.
    tol = 1e-8 * max(1.0, float(np.max(np.abs(g))))
    lam = np.zeros(n_c)
    seed = np.nonzero(g < 0.0)[0]
    if seed.size == 0:
        # x = 0 is feasible and optimal.
        dim = ops.wr.shape[1] * ops._kr.shape[1]
        return lam, np.zeros(dim), 0.0
    if seed.size > seed_cap:
        seed = seed[np.argsort(g[seed])[:seed_cap]]
    work = seed
    m_w = ops.gram(work, work)
    m_w = 0.5 * (m_w + m_w.T)
    m_w[np.arange(work.size), np.arange(work.size)] += ridge
    warm: np.ndarray | None = None
    for _ in range(max_rounds):
        lam_w, free = _nnls_gram(m_w, g[work], warm)
        if lam_w is None and warm is not None:
            # Warm starts occasionally stall the active set; retry cold.
            lam_w, free = _nnls_gram(m_w, g[work], None)
        if lam_w is None:
            return None
        x = ops.primal(work, lam_w)
        slack = ops.slacks(x)
        violation = float(np.max(slack))
        slack[work] = -np.inf  # handled exactly by the subproblem
        fresh = np.nonzero(slack > tol)[0]
        if fresh.size == 0:
            lam[:] = 0.0
            lam[work] = lam_w
            return lam, x, max(violation, 0.0)
        if fresh.size > grow_cap:
            fresh = fresh[np.argsort(-slack[fresh])[:grow_cap]]
        # Extend the working-set Gram incrementally.
        cross = ops.gram(work, fresh)
        corner = ops.gram(fresh, fresh)
        corner = 0.5 * (corner + corner.T)
        corner[np.arange(fresh.size), np.arange(fresh.size)] += ridge
        m_w = np.block([[m_w, cross], [cross.T, corner]])
        work = np.concatenate([work, fresh])
        warm = np.concatenate([free, np.zeros(fresh.size, dtype=bool)])
    return None


def solve_block_qp(
    cost: BlockDiagonalCost,
    constraints: ConstraintSet,
    *,
    dual_ridge: float = 1e-12,
) -> QPSolution:
    """Solve min 1/2 x^T H x s.t. F x <= g via the dual NNLS route."""
    p, n = cost.n_ports, cost.n_states
    if constraints.n_constraints == 0:
        return QPSolution(
            delta_c=np.zeros((p, p, n)),
            cost=0.0,
            max_violation=0.0,
            dual=np.zeros(0),
        )
    if cost.shared and constraints.structured:
        # Fallback ladder: the nominal tuning first, then progressively
        # stiffer Tikhonov ridges on shrinking working sets before
        # conceding to the dense route.
        for rung, (ridge_mult, seed_cap, grow_cap, max_rounds) in enumerate(
            _STRUCTURED_RUNGS
        ):
            if rung > 0:
                obs.incr("fallback.qp_regularized")
                _LOG.warning(
                    "solve_block_qp: structured solve stalled; retrying "
                    "with ridge x%g", ridge_mult,
                )
            structured = _solve_structured(
                cost,
                constraints,
                max(dual_ridge * ridge_mult, 1e-12),
                seed_cap=seed_cap,
                grow_cap=grow_cap,
                max_rounds=max_rounds,
            )
            if structured is None:
                continue
            lam, x, violation = structured
            if not np.isfinite(x).all():
                continue
            delta_c = x.reshape(p, p, n)
            return QPSolution(
                delta_c=delta_c,
                cost=0.5 * cost.quadratic_value(delta_c),
                max_violation=violation,
                dual=lam,
            )
        obs.incr("fallback.qp_dense")
        _LOG.warning(
            "solve_block_qp: structured ladder exhausted; using the "
            "dense dual route"
        )
    try:
        f = constraints.dense_matrix()
        g = constraints.bounds
        y = _solve_h_inv_ft(cost, constraints)
        # dual_ridge is relative to the mean diagonal of M.
        diag = np.einsum("ij,ji->i", f, y)
        scale = max(float(np.mean(diag)), 1e-300)
        lam = _dual_nnls_dense(f, y, g, dual_ridge * scale)
    except (np.linalg.LinAlgError, scipy.linalg.LinAlgError, ValueError) as exc:
        raise QPInfeasibleError(
            f"dense dual QP solve failed: {exc}", stage="enforcement"
        ) from exc
    x = -(y @ lam)
    if not np.isfinite(x).all():
        raise QPInfeasibleError(
            "dense dual QP produced a non-finite perturbation",
            stage="enforcement",
        )
    delta_c = x.reshape(p, p, n)
    violation = float(np.max(f @ x - g)) if g.size else 0.0
    return QPSolution(
        delta_c=delta_c,
        cost=0.5 * cost.quadratic_value(delta_c),
        max_violation=max(violation, 0.0),
        dual=lam,
    )
