"""Quadratic cost functions for the passivity-enforcement QP.

All supported perturbation norms are block-diagonal quadratic forms over
the per-element residue-coefficient perturbations delta_c_ij in R^N
(paper eqs. 10, 13, 20-21):

    ||delta S||^2 = sum_ij delta_c_ij^T G_ij delta_c_ij .

For the paper's costs the block G_ij is the *same* matrix G for every
entry (i, j):

* standard L2 norm (eq. 10): G = controllability Gramian of the shared
  element dynamics (A_e, b_e) -- this follows from
  tr(delta C (P_e (x) I_P) delta C^T) = sum_ij delta_c_ij^T P_e delta_c_ij;
* sampled discrete norm (eq. 13, "option 1" of Sec. III): G built from
  quadrature over the data grid with arbitrary frequency weights;
* sensitivity-weighted norm (eqs. 18-21, "option 2"): G = the (1,1) block
  of the cascade Gramian, built in :mod:`repro.sensitivity.weighted_norm`.

Per-element blocks (a different G_ij per entry) are supported as an
extension for per-element weighting schemes.
"""

from __future__ import annotations

import numpy as np

from repro.backend import active_backend
from repro.statespace.gramians import controllability_gramian
from repro.statespace.poleresidue import PoleResidueModel


class BlockDiagonalCost:
    """Block-diagonal SPD quadratic form over element perturbations.

    Parameters
    ----------
    blocks:
        Either a single (N, N) SPD matrix shared by all P*P elements, or a
        (P, P, N, N) array of per-element blocks.
    n_ports:
        Port count P (needed to size the shared-block case).
    ridge:
        Relative diagonal regularization added before factorization, as a
        fraction of mean(trace)/N; keeps near-singular Gramians usable.
    """

    def __init__(
        self,
        blocks: np.ndarray,
        n_ports: int,
        *,
        ridge: float = 1e-10,
    ) -> None:
        blocks = np.array(blocks, dtype=float)  # copy: repair may rewrite
        if blocks.ndim == 2:
            self._shared = True
            n = blocks.shape[0]
            if blocks.shape != (n, n):
                raise ValueError("shared block must be square")
            self._blocks = blocks[None, None, :, :]
        elif blocks.ndim == 4:
            self._shared = False
            if blocks.shape[0] != n_ports or blocks.shape[1] != n_ports:
                raise ValueError(
                    f"per-element blocks must be ({n_ports},{n_ports},N,N)"
                )
            n = blocks.shape[2]
            if blocks.shape[3] != n:
                raise ValueError("element blocks must be square")
            self._blocks = blocks
        else:
            raise ValueError("blocks must be (N,N) or (P,P,N,N)")
        self._n_ports = n_ports
        self._n = n
        self._ridge = ridge
        self._factorize()

    def _factorize(self) -> None:
        """Cholesky-factor every block in one batched call.

        The common case (all blocks SPD after the relative ridge) is a
        single batched :func:`numpy.linalg.cholesky`; only when that fails
        does the per-block eigenvalue-repair path run.  Gramians of systems
        spanning many frequency decades can lose definiteness to roundoff,
        hence the repair by eigenvalue clipping relative to the dominant
        eigenvalue.
        """
        eye = np.eye(self._n)
        scale = np.maximum(
            np.einsum("abii->ab", self._blocks) / self._n, 1e-300
        )
        shifted = self._blocks + (self._ridge * scale)[:, :, None, None] * eye
        backend = active_backend()
        try:
            self._chol = backend.from_device(
                backend.cholesky(backend.asarray(shifted))
            )
            return
        except np.linalg.LinAlgError:
            pass
        shape = shifted.shape[:2]
        self._chol = np.empty_like(shifted)
        for a in range(shape[0]):
            for b in range(shape[1]):
                try:
                    self._chol[a, b] = np.linalg.cholesky(shifted[a, b])  # reprolint: disable=backend-routing -- per-block host repair ladder after the batched backend cholesky
                    continue
                except np.linalg.LinAlgError:
                    pass
                block = self._blocks[a, b]
                eigenvalues, vectors = np.linalg.eigh(0.5 * (block + block.T))  # reprolint: disable=backend-routing -- eigenvalue floor repair of one indefinite block; host-only rescue path
                top = max(float(eigenvalues[-1]), 1e-300)
                floor = max(self._ridge, 1e-14) * top
                clipped = np.maximum(eigenvalues, floor)
                repaired = (vectors * clipped) @ vectors.T
                self._blocks[a, b] = repaired
                try:
                    self._chol[a, b] = np.linalg.cholesky(  # reprolint: disable=backend-routing -- last rung of the per-block repair ladder; host-only rescue path
                        repaired + floor * eye
                    )
                except np.linalg.LinAlgError as exc:
                    raise ValueError(
                        f"cost block ({a},{b}) is not positive definite even "
                        "after eigenvalue repair; increase ridge"
                    ) from exc

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Per-element coefficient dimension N."""
        return self._n

    @property
    def n_ports(self) -> int:
        return self._n_ports

    def block(self, a: int, b: int) -> np.ndarray:
        """Cost block G_ab."""
        if self._shared:
            return self._blocks[0, 0]
        return self._blocks[a, b]

    @property
    def shared(self) -> bool:
        """True when one block G is shared by all P*P elements."""
        return self._shared

    def solve(self, a: int, b: int, rhs: np.ndarray) -> np.ndarray:
        """Solve G_ab x = rhs (rhs may have multiple columns)."""
        key = (0, 0) if self._shared else (a, b)
        backend = active_backend()
        return backend.from_device(
            backend.cho_solve(backend.asarray(self._chol[key]), rhs)
        )

    def solve_all(self, rhs: np.ndarray) -> np.ndarray:
        """Solve G_ab x_ab = rhs[a, b] for every element at once.

        ``rhs`` has shape (P, P, N) or (P, P, N, K).  The shared-block case
        (the paper's L2 and sensitivity-weighted costs) collapses to a
        single Cholesky solve with all P*P*K right-hand sides stacked; the
        per-element case batches one solve per block.
        """
        rhs = np.asarray(rhs, dtype=float)
        squeeze = rhs.ndim == 3
        if squeeze:
            rhs = rhs[..., None]
        p, n = self._n_ports, self._n
        if rhs.shape[:3] != (p, p, n):
            raise ValueError(f"rhs must have shape ({p},{p},{n}[,K])")
        k = rhs.shape[3]
        backend = active_backend()
        if self._shared:
            stacked = rhs.transpose(2, 0, 1, 3).reshape(n, p * p * k)
            out = backend.from_device(
                backend.cho_solve(backend.asarray(self._chol[0, 0]), stacked)
            )
            out = out.reshape(n, p, p, k).transpose(1, 2, 0, 3)
        else:
            out = np.empty_like(rhs)
            for a in range(p):
                for b in range(p):
                    out[a, b] = backend.from_device(
                        backend.cho_solve(
                            backend.asarray(self._chol[a, b]), rhs[a, b]
                        )
                    )
        return out[..., 0] if squeeze else out

    def solve_flat(self, x: np.ndarray) -> np.ndarray:
        """Solve H y = x on the flattened (P*P*N,) or (P*P*N, K) layout.

        ``H = blkdiag(G_ab)`` in the row-major element order used by the
        enforcement QP (:mod:`repro.passivity.perturbation`).
        """
        x = np.asarray(x, dtype=float)
        p, n = self._n_ports, self._n
        vector = x.ndim == 1
        k = 1 if vector else x.shape[1]
        out = self.solve_all(x.reshape(p, p, n, k))
        flat = out.reshape(p * p * n, k)
        return flat[:, 0] if vector else flat

    def quadratic_value(self, delta_c: np.ndarray) -> float:
        """Evaluate sum_ab delta_c[a,b]^T G_ab delta_c[a,b] for (P,P,N) input."""
        delta_c = np.asarray(delta_c, dtype=float)
        expected = (self._n_ports, self._n_ports, self._n)
        if delta_c.shape != expected:
            raise ValueError(f"delta_c must have shape {expected}")
        if self._shared:
            return float(
                np.einsum(
                    "abm,mn,abn->",
                    delta_c,
                    self._blocks[0, 0],
                    delta_c,
                    optimize=True,
                )
            )
        return float(
            np.einsum(
                "abm,abmn,abn->", delta_c, self._blocks, delta_c,
                optimize=True,
            )
        )


def l2_gramian_cost(model: PoleResidueModel, *, ridge: float = 1e-10) -> BlockDiagonalCost:
    """Standard L2 impulse-response norm cost (paper eq. 10).

    The shared block is the controllability Gramian of the element
    dynamics (A_e, b_e); summed over elements this equals
    tr(delta_C P delta_C^T) for the full realization.
    """
    a_e, b_e = model.element_dynamics()
    gramian = controllability_gramian(a_e, b_e.reshape(-1, 1))
    return BlockDiagonalCost(gramian, model.n_ports, ridge=ridge)


def relative_error_cost(
    model: PoleResidueModel,
    samples: np.ndarray,
    *,
    floor_ratio: float = 1e-2,
    ridge: float = 1e-10,
) -> BlockDiagonalCost:
    """Relative-error-controlled cost (paper ref. [18], Grivet-Talocia &
    Ubolli 2007).

    Each entry's perturbation is weighted by the inverse RMS magnitude of
    its data trace, so small scattering entries (e.g. far-coupling terms)
    are preserved in *relative* terms instead of being sacrificed to the
    large ones.  This is a static per-element special case of the general
    weighted norm: G_ab = P_e / rms(|S_ab|)^2.

    Parameters
    ----------
    model:
        Macromodel to be perturbed.
    samples:
        Data stack (K, P, P) the model was fitted to.
    floor_ratio:
        Entries quieter than ``floor_ratio * max_rms`` are clamped so the
        weights stay bounded.
    """
    samples = np.asarray(samples)
    p = model.n_ports
    if samples.ndim != 3 or samples.shape[1:] != (p, p):
        raise ValueError(f"samples must have shape (K, {p}, {p})")
    a_e, b_e = model.element_dynamics()
    gramian = controllability_gramian(a_e, b_e.reshape(-1, 1))
    rms = np.sqrt(np.mean(np.abs(samples) ** 2, axis=0))
    rms = np.maximum(rms, floor_ratio * float(rms.max()))
    blocks = gramian[None, None, :, :] / (rms**2)[:, :, None, None]
    return BlockDiagonalCost(blocks, p, ridge=ridge)


def sampled_norm_cost(
    model: PoleResidueModel,
    omega: np.ndarray,
    weights: np.ndarray | None = None,
    *,
    ridge: float = 1e-10,
) -> BlockDiagonalCost:
    """Discrete sampled weighted norm (paper eq. 13, Sec. III option 1).

    Approximates (1/2pi) integral of w(omega)^2 tr(dS dS^H) by trapezoidal
    quadrature over the sample grid.  Supports arbitrary frequency weights
    at the price the paper mentions (a full K-term sum instead of one
    Lyapunov solve); kept as the ablation baseline for the Gramian route.
    """
    omega = np.asarray(omega, dtype=float)
    if weights is None:
        weights = np.ones_like(omega)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != omega.shape:
        raise ValueError("weights must match omega")
    a_e, b_e = model.element_dynamics()
    n = a_e.shape[0]
    eye = np.eye(n)
    # Trapezoidal quadrature weights over omega.
    theta = np.zeros_like(omega)
    if omega.size > 1:
        theta[:-1] += 0.5 * np.diff(omega)
        theta[1:] += 0.5 * np.diff(omega)
    else:
        theta[:] = 1.0
    # Batched kernels k(omega) = (j omega I - A_e)^-1 b_e, then one
    # weighted sum of rank-1 terms.
    backend = active_backend()
    systems = 1j * omega[:, None, None] * eye - a_e
    kernels = backend.from_device(
        backend.solve(
            backend.asarray(systems),
            backend.asarray(b_e.astype(complex)[None, :, None]),
        )
    )[..., 0]
    coeff = (theta / (2.0 * np.pi)) * weights**2
    block = np.real(
        backend.from_device(
            backend.einsum(
                "k,km,kn->mn",
                backend.asarray(coeff),
                backend.asarray(np.conj(kernels)),
                backend.asarray(kernels),
            )
        )
    )
    return BlockDiagonalCost(block, model.n_ports, ridge=ridge)
