"""Iterative passivity enforcement by residue perturbation (paper Sec. III).

The loop of paper eq. (9): check passivity, place linearized constraints at
the violation peaks, solve the minimum-perturbation QP under the chosen
norm (standard L2 or sensitivity-weighted), accumulate the perturbation
into the model's residues, repeat until the Hamiltonian test certifies
passivity.  Poles and the constant term D stay fixed.

The per-iteration checks run through the fast passivity engine
(:class:`repro.passivity.engine.PassivityChecker`): invariants of the
Hamiltonian test are cached across the run, and with the default ``"fast"``
strategy intermediate iterations use the cheap warm-started sampling check
while the exact Hamiltonian eigenvalue test runs at iteration 0, every
``exact_every``-th iteration, and for the final certificate.  Whatever the
strategy, ``report_after`` (and hence ``converged``) always comes from an
exact Hamiltonian certificate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.backend import use_backend, validate_backend_name
from repro.obs import telemetry as obs
from repro.passivity.check import PassivityReport
from repro.passivity.cost import BlockDiagonalCost
from repro.passivity.engine import CheckerOptions, PassivityChecker, is_reciprocal
from repro.passivity.perturbation import build_constraints
from repro.passivity.qp import solve_block_qp
from repro.resilience import faultinject
from repro.resilience.errors import ReproError
from repro.statespace.poleresidue import PoleResidueModel
from repro.util.logging import get_logger

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class EnforcementOptions:
    """Options for :func:`enforce_passivity`.

    Parameters
    ----------
    max_iterations:
        Iteration cap for the outer perturbation loop (the paper's example
        converges in 9 iterations).
    margin:
        Asymptotic margin: constraints push singular values to
        ``1 - margin`` so roundoff cannot re-violate; also used as the
        pass/fail tolerance of the final check.
    include_threshold:
        Singular values above this are constrained even when below 1,
        preventing the perturbation from lifting safe directions over the
        limit.
    band_samples:
        Dense samples per violation band in the checker.
    dual_ridge:
        Regularization of the dual QP Gram matrix.
    max_relative_step:
        Trust region: each iteration's residue perturbation is scaled down
        so ||delta_c|| <= max_relative_step * ||c||.  The linearization of
        eq. (8) is only locally valid; ill-conditioned weighted costs can
        otherwise request destabilizing steps along nearly-free directions.
    checker_strategy:
        ``"fast"`` (default) drives intermediate iterations with the
        engine's sampling check; ``"exact"`` runs the Hamiltonian test
        every iteration.  Either way the final verdict is certified by an
        exact check.
    exact_every:
        In fast mode, cadence of interleaved exact Hamiltonian checks
        (``0`` disables interleaving).
    divergence_patience:
        Consecutive non-improving iterations (relative to the best
        certified worst-sigma so far) tolerated before the loop stops
        early and falls back to the best iterate.  Catches diverging and
        oscillating runs without waiting out the iteration cap.
    backend:
        Array backend the dense kernels of this run execute on
        (``"auto"``/``"numpy"``/``"cupy"``/``"jax"``; see
        :mod:`repro.backend`).  ``"auto"`` picks the first available
        accelerator and otherwise numpy.
    """

    max_iterations: int = 30
    margin: float = 1e-5
    include_threshold: float = 0.999
    band_samples: int = 50
    dual_ridge: float = 1e-12
    max_relative_step: float = 0.3
    checker_strategy: str = "fast"
    exact_every: int = 5
    divergence_patience: int = 3
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.divergence_patience < 1:
            raise ValueError("divergence_patience must be at least 1")
        if not (0.0 < self.margin < 0.1):
            raise ValueError("margin must be in (0, 0.1)")
        if not (0.0 < self.include_threshold <= 1.0):
            raise ValueError("include_threshold must be in (0, 1]")
        if self.checker_strategy not in ("fast", "exact"):
            raise ValueError("checker_strategy must be 'fast' or 'exact'")
        if self.exact_every < 0:
            raise ValueError("exact_every must be non-negative")
        validate_backend_name(self.backend)

    def checker_options(self) -> CheckerOptions:
        """Engine configuration implied by these options."""
        return CheckerOptions(
            strategy=self.checker_strategy, exact_every=self.exact_every
        )


@dataclass(frozen=True)
class IterationRecord:
    """Diagnostics of one enforcement iteration.

    The ``*_seconds`` fields are the per-stage wall-time breakdown used by
    the CLI ``--profile`` flag; ``check_mode`` records whether this
    iteration's verdict came from the exact Hamiltonian test or the
    sampling sweep (``"sampling+certify"`` when a passing sampling check
    was immediately confirmed by an exact certificate).
    """

    iteration: int
    worst_sigma: float
    worst_omega: float
    n_bands: int
    n_constraints: int
    perturbation_cost: float
    check_mode: str = "exact"
    check_seconds: float = 0.0
    constraint_seconds: float = 0.0
    qp_seconds: float = 0.0
    rebuild_seconds: float = 0.0


@dataclass(frozen=True)
class EnforcementResult:
    """Outcome of a passivity-enforcement run.

    ``model`` is the final (hopefully passive) macromodel; ``converged``
    reports whether the Hamiltonian test certified passivity within the
    iteration cap; ``history`` records per-iteration diagnostics;
    ``report_before``/``report_after`` are the initial and final passivity
    reports (both from exact Hamiltonian checks); ``total_delta_c`` is the
    accumulated residue-coefficient perturbation (P, P, N).

    ``recovery`` is ``None`` on a normal run.  When a run fails to
    converge and a *better* certified iterate was seen along the way
    (divergence, oscillation, or an iteration-cap exit past the best
    point), the loop returns that best iterate instead of the last one
    and documents the roll-back here: ``{"mode": "best_iterate",
    "reason": "divergence" | "iteration_cap", "best_iteration": ...,
    "best_worst_sigma": ..., "final_worst_sigma": ...,
    "iterations_run": ...}``.
    """

    model: PoleResidueModel
    converged: bool
    iterations: int
    history: list[IterationRecord] = field(repr=False)
    report_before: PassivityReport = field(repr=False)
    report_after: PassivityReport = field(repr=False)
    total_delta_c: np.ndarray = field(repr=False)
    recovery: dict | None = None

    def profile(self) -> dict[str, float]:
        """Aggregate wall-time breakdown over all iterations (seconds)."""
        keys = (
            "check_seconds",
            "constraint_seconds",
            "qp_seconds",
            "rebuild_seconds",
        )
        return {
            key: float(sum(getattr(rec, key) for rec in self.history))
            for key in keys
        }


def enforce_passivity(
    model: PoleResidueModel,
    cost: BlockDiagonalCost,
    options: EnforcementOptions | None = None,
    *,
    initial_report: PassivityReport | None = None,
    cost_label: str = "standard",
) -> EnforcementResult:
    """Perturb residues until the scattering model is passive.

    Parameters
    ----------
    model:
        Stable scattering macromodel, possibly with passivity violations.
        Its asymptotic gain sigma_max(D) must be < 1 (residue perturbation
        cannot repair violations at infinite frequency).
    cost:
        Quadratic norm minimized by each perturbation step: the standard
        L2-Gramian cost (:func:`repro.passivity.cost.l2_gramian_cost`) or
        the sensitivity-weighted cost of
        :func:`repro.sensitivity.weighted_norm.sensitivity_weighted_cost`.
    options:
        Loop controls; defaults to :class:`EnforcementOptions()`.
    initial_report:
        Optional precomputed *exact* passivity report of ``model`` (from
        :func:`repro.passivity.check.check_passivity` with the same
        ``band_samples``); skips the redundant iteration-0 check when the
        caller already ran one.
    cost_label:
        Tag identifying which cost this run minimizes (``"standard"`` /
        ``"weighted"``) in telemetry convergence events.
    """
    options = options or EnforcementOptions()
    with use_backend(options.backend):
        return _run_enforcement(
            model, cost, options,
            initial_report=initial_report, cost_label=cost_label,
        )


def _run_enforcement(
    model: PoleResidueModel,
    cost: BlockDiagonalCost,
    options: EnforcementOptions,
    *,
    initial_report: PassivityReport | None,
    cost_label: str,
) -> EnforcementResult:
    if cost.n_ports != model.n_ports:
        raise ValueError("cost and model disagree on port count")
    if cost.n_states != model.element_state_dimension():
        raise ValueError("cost and model disagree on element state dimension")
    asymptotic = float(np.linalg.norm(model.const, 2))
    if asymptotic >= 1.0:
        raise ValueError(
            f"sigma_max(D) = {asymptotic:.6f} >= 1: residue perturbation "
            "cannot enforce passivity at infinite frequency"
        )

    checker = PassivityChecker(
        model,
        band_samples=options.band_samples,
        options=options.checker_options(),
    )
    if initial_report is None:
        report_before = checker.check_exact(model)
    else:
        report_before = initial_report
        checker.seed(report_before)  # warm-start the sampling grid
    report = report_before
    report_is_exact = True
    # Iteration 0 of the worst-sigma trajectory: the unperturbed model.
    obs.emit(
        "enforce.iteration",
        cost=cost_label,
        iteration=0,
        worst_sigma=report_before.worst_sigma,
        n_bands=len(report_before.bands),
        n_constraints=0,
        working_set=0,
        mode="initial",
    )
    current = model
    # Reciprocal input (the physical PDN case): symmetrized constraint
    # rows make every QP step exactly symmetry-preserving, so all
    # iterates stay eligible for the checker's half-size Hamiltonian
    # test.  First-order constraint semantics are unchanged (the
    # antisymmetric part of a row is orthogonal to symmetric steps).
    reciprocal = is_reciprocal(model)
    total_delta = np.zeros(
        (model.n_ports, model.n_ports, model.element_state_dimension())
    )
    history: list[IterationRecord] = []
    iterations = 0
    # Best-so-far certified iterate (the unperturbed model to begin
    # with): rolled back to when the run ends without converging.
    best_sigma = report_before.worst_sigma
    best_iteration = 0
    best_model = model
    best_delta = total_delta.copy()
    best_report = report_before
    bad_streak = 0
    stop_reason: str | None = None
    while iterations < options.max_iterations and not _is_passive(report, options):
        tic = time.perf_counter()
        frequencies = report.constraint_frequencies()
        constraints = build_constraints(
            current,
            frequencies,
            margin=options.margin,
            include_threshold=options.include_threshold,
            symmetric=reciprocal,
        )
        constraint_s = time.perf_counter() - tic

        tic = time.perf_counter()
        with obs.span("kernel:qp_solve", n_constraints=constraints.n_constraints):
            solution = solve_block_qp(
                cost, constraints, dual_ridge=options.dual_ridge
            )
        qp_s = time.perf_counter() - tic

        tic = time.perf_counter()
        base_c = current.element_output_vectors()
        delta_c = solution.delta_c
        step_norm = float(np.linalg.norm(delta_c))
        base_norm = max(float(np.linalg.norm(base_c)), 1e-300)
        if step_norm > options.max_relative_step * base_norm:
            delta_c = delta_c * (options.max_relative_step * base_norm / step_norm)
            _LOG.info(
                "enforcement: step clipped from %.3e to %.3e (trust region)",
                step_norm,
                float(np.linalg.norm(delta_c)),
            )
        delta_c = faultinject.corrupt("enforce.step", delta_c)
        total_delta += delta_c
        current = current.with_element_output_vectors(base_c + delta_c)
        rebuild_s = time.perf_counter() - tic

        iterations += 1
        tic = time.perf_counter()
        use_exact = checker.use_exact(iterations)
        if use_exact:
            report = checker.check_exact(current)
            mode = "exact"
        else:
            try:
                report = checker.check_sampling(current)
                mode = "sampling"
            except ReproError:
                # Sampling sweep failed outright (non-finite sigma):
                # escalate to the exact Hamiltonian test -- the fast
                # path is an accelerator, never a dependency.
                obs.incr("fallback.checker_exact")
                report = checker.check_exact(current)
                mode = "sampling>exact"
            if mode == "sampling" and _is_passive(report, options):
                # Sampling is not conclusive: certify before declaring
                # success.  A failed certificate re-enters the loop with
                # the exact report's bands.
                report = checker.check_exact(current)
                if not _is_passive(report, options):
                    # The sweep missed a violation strictly between
                    # grid points.
                    obs.incr("fallback.checker_exact")
                mode = "sampling+certify"
        report_is_exact = mode != "sampling"
        check_s = time.perf_counter() - tic

        # Best-iterate bookkeeping.  Exact reports below the best
        # certified sigma advance the best iterate; a sampling sigma is
        # a certified *lower* bound, so exceeding the best sigma counts
        # as a non-improving iteration from either mode.
        if report_is_exact and report.worst_sigma < best_sigma:
            best_sigma = report.worst_sigma
            best_iteration = iterations
            best_model = current
            best_delta = total_delta.copy()
            best_report = report
            bad_streak = 0
        elif report.worst_sigma >= best_sigma:
            bad_streak += 1

        record = IterationRecord(
            iteration=iterations,
            worst_sigma=report.worst_sigma,
            worst_omega=report.worst_omega,
            n_bands=len(report.bands),
            n_constraints=constraints.n_constraints,
            perturbation_cost=solution.cost,
            check_mode=mode,
            check_seconds=check_s,
            constraint_seconds=constraint_s,
            qp_seconds=qp_s,
            rebuild_seconds=rebuild_s,
        )
        history.append(record)
        obs.incr("enforce.iterations")
        obs.emit(
            "enforce.iteration",
            cost=cost_label,
            iteration=iterations,
            worst_sigma=report.worst_sigma,
            n_bands=len(report.bands),
            n_constraints=constraints.n_constraints,
            working_set=int(np.count_nonzero(solution.dual)),
            mode=mode,
            check_seconds=check_s,
            constraint_seconds=constraint_s,
            qp_seconds=qp_s,
            rebuild_seconds=rebuild_s,
        )
        _LOG.info(
            "enforcement iter %d: worst sigma %.8f (%d bands, %d constraints, "
            "%s check)",
            iterations,
            report.worst_sigma,
            len(report.bands),
            constraints.n_constraints,
            mode,
        )
        if bad_streak >= options.divergence_patience:
            stop_reason = "divergence"
            _LOG.warning(
                "enforcement: no improvement over best sigma %.8f for %d "
                "iterations; stopping early",
                best_sigma,
                bad_streak,
            )
            break

    if not report_is_exact:
        # Loop left with a sampling report: the result still gets an
        # exact Hamiltonian certificate.
        report = checker.check_exact(current)

    converged = _is_passive(report, options)
    recovery: dict | None = None
    if (
        not converged
        and np.isfinite(best_sigma)
        and best_sigma < report.worst_sigma
    ):
        # Failed run, but a strictly better certified iterate was seen
        # along the way: return that one instead of the diverged tail.
        recovery = {
            "mode": "best_iterate",
            "reason": stop_reason or "iteration_cap",
            "best_iteration": best_iteration,
            "best_worst_sigma": float(best_sigma),
            "final_worst_sigma": float(report.worst_sigma),
            "iterations_run": iterations,
        }
        obs.incr("fallback.best_iterate")
        obs.emit("enforce.recovery", cost=cost_label, **recovery)
        _LOG.warning(
            "enforcement: did not converge; returning best iterate %d "
            "(worst sigma %.8f instead of %.8f)",
            best_iteration,
            best_sigma,
            report.worst_sigma,
        )
        current = best_model
        report = best_report
        total_delta = best_delta

    obs.emit(
        "enforce.finish",
        cost=cost_label,
        iterations=iterations,
        converged=converged,
        worst_sigma=report.worst_sigma,
    )
    return EnforcementResult(
        model=current,
        converged=converged,
        iterations=iterations,
        history=history,
        report_before=report_before,
        report_after=report,
        total_delta_c=total_delta,
        recovery=recovery,
    )


def _is_passive(report: PassivityReport, options: EnforcementOptions) -> bool:
    """Passivity verdict: no violation bands and worst singular value <= 1."""
    del options  # the verdict is absolute; margin only shapes the target
    return report.is_passive or report.worst_sigma <= 1.0
