"""Iterative passivity enforcement by residue perturbation (paper Sec. III).

The loop of paper eq. (9): check passivity, place linearized constraints at
the violation peaks, solve the minimum-perturbation QP under the chosen
norm (standard L2 or sensitivity-weighted), accumulate the perturbation
into the model's residues, repeat until the Hamiltonian test certifies
passivity.  Poles and the constant term D stay fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.passivity.check import PassivityReport, check_passivity
from repro.passivity.cost import BlockDiagonalCost
from repro.passivity.perturbation import build_constraints
from repro.passivity.qp import solve_block_qp
from repro.statespace.poleresidue import PoleResidueModel
from repro.util.logging import get_logger

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class EnforcementOptions:
    """Options for :func:`enforce_passivity`.

    Parameters
    ----------
    max_iterations:
        Iteration cap for the outer perturbation loop (the paper's example
        converges in 9 iterations).
    margin:
        Asymptotic margin: constraints push singular values to
        ``1 - margin`` so roundoff cannot re-violate; also used as the
        pass/fail tolerance of the final check.
    include_threshold:
        Singular values above this are constrained even when below 1,
        preventing the perturbation from lifting safe directions over the
        limit.
    band_samples:
        Dense samples per violation band in the checker.
    dual_ridge:
        Regularization of the dual QP Gram matrix.
    max_relative_step:
        Trust region: each iteration's residue perturbation is scaled down
        so ||delta_c|| <= max_relative_step * ||c||.  The linearization of
        eq. (8) is only locally valid; ill-conditioned weighted costs can
        otherwise request destabilizing steps along nearly-free directions.
    """

    max_iterations: int = 30
    margin: float = 1e-5
    include_threshold: float = 0.999
    band_samples: int = 50
    dual_ridge: float = 1e-12
    max_relative_step: float = 0.3

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if not (0.0 < self.margin < 0.1):
            raise ValueError("margin must be in (0, 0.1)")
        if not (0.0 < self.include_threshold <= 1.0):
            raise ValueError("include_threshold must be in (0, 1]")


@dataclass(frozen=True)
class IterationRecord:
    """Diagnostics of one enforcement iteration."""

    iteration: int
    worst_sigma: float
    worst_omega: float
    n_bands: int
    n_constraints: int
    perturbation_cost: float


@dataclass(frozen=True)
class EnforcementResult:
    """Outcome of a passivity-enforcement run.

    ``model`` is the final (hopefully passive) macromodel; ``converged``
    reports whether the Hamiltonian test certified passivity within the
    iteration cap; ``history`` records per-iteration diagnostics;
    ``report_before``/``report_after`` are the initial and final passivity
    reports; ``total_delta_c`` is the accumulated residue-coefficient
    perturbation (P, P, N).
    """

    model: PoleResidueModel
    converged: bool
    iterations: int
    history: list[IterationRecord] = field(repr=False)
    report_before: PassivityReport = field(repr=False)
    report_after: PassivityReport = field(repr=False)
    total_delta_c: np.ndarray = field(repr=False)


def enforce_passivity(
    model: PoleResidueModel,
    cost: BlockDiagonalCost,
    options: EnforcementOptions | None = None,
) -> EnforcementResult:
    """Perturb residues until the scattering model is passive.

    Parameters
    ----------
    model:
        Stable scattering macromodel, possibly with passivity violations.
        Its asymptotic gain sigma_max(D) must be < 1 (residue perturbation
        cannot repair violations at infinite frequency).
    cost:
        Quadratic norm minimized by each perturbation step: the standard
        L2-Gramian cost (:func:`repro.passivity.cost.l2_gramian_cost`) or
        the sensitivity-weighted cost of
        :func:`repro.sensitivity.weighted_norm.sensitivity_weighted_cost`.
    options:
        Loop controls; defaults to :class:`EnforcementOptions()`.
    """
    options = options or EnforcementOptions()
    if cost.n_ports != model.n_ports:
        raise ValueError("cost and model disagree on port count")
    if cost.n_states != model.element_state_dimension():
        raise ValueError("cost and model disagree on element state dimension")
    asymptotic = float(np.linalg.norm(model.const, 2))
    if asymptotic >= 1.0:
        raise ValueError(
            f"sigma_max(D) = {asymptotic:.6f} >= 1: residue perturbation "
            "cannot enforce passivity at infinite frequency"
        )

    report_before = check_passivity(model, band_samples=options.band_samples)
    report = report_before
    current = model
    total_delta = np.zeros(
        (model.n_ports, model.n_ports, model.element_state_dimension())
    )
    history: list[IterationRecord] = []
    iterations = 0
    while iterations < options.max_iterations and not _is_passive(report, options):
        frequencies = report.constraint_frequencies()
        constraints = build_constraints(
            current,
            frequencies,
            margin=options.margin,
            include_threshold=options.include_threshold,
        )
        solution = solve_block_qp(
            cost, constraints, dual_ridge=options.dual_ridge
        )
        base_c = current.element_output_vectors()
        delta_c = solution.delta_c
        step_norm = float(np.linalg.norm(delta_c))
        base_norm = max(float(np.linalg.norm(base_c)), 1e-300)
        if step_norm > options.max_relative_step * base_norm:
            delta_c = delta_c * (options.max_relative_step * base_norm / step_norm)
            _LOG.info(
                "enforcement: step clipped from %.3e to %.3e (trust region)",
                step_norm,
                float(np.linalg.norm(delta_c)),
            )
        total_delta += delta_c
        current = current.with_element_output_vectors(base_c + delta_c)
        iterations += 1
        report = check_passivity(current, band_samples=options.band_samples)
        record = IterationRecord(
            iteration=iterations,
            worst_sigma=report.worst_sigma,
            worst_omega=report.worst_omega,
            n_bands=len(report.bands),
            n_constraints=constraints.n_constraints,
            perturbation_cost=solution.cost,
        )
        history.append(record)
        _LOG.info(
            "enforcement iter %d: worst sigma %.8f (%d bands, %d constraints)",
            iterations,
            report.worst_sigma,
            len(report.bands),
            constraints.n_constraints,
        )

    return EnforcementResult(
        model=current,
        converged=_is_passive(report, options),
        iterations=iterations,
        history=history,
        report_before=report_before,
        report_after=report,
        total_delta_c=total_delta,
    )


def _is_passive(report: PassivityReport, options: EnforcementOptions) -> bool:
    """Passivity verdict: no violation bands and worst singular value <= 1."""
    del options  # the verdict is absolute; margin only shapes the target
    return report.is_passive or report.worst_sigma <= 1.0
