"""Passivity checking for scattering pole-residue macromodels.

A stable scattering model is passive iff sigma_max(S(j omega)) <= 1 for all
omega.  The check combines:

1. the Hamiltonian eigenvalue test (paper ref. [14]): purely imaginary
   eigenvalues of the Hamiltonian matrix mark the frequencies where some
   singular value crosses 1, delimiting candidate violation bands;
2. adaptive sampling inside each candidate band to locate the worst
   singular value and its frequency (used both for reporting, paper Fig. 4,
   and to place the linearized constraints of the enforcement loop).

The band-refinement stage is shared with the stateful fast engine
(:mod:`repro.passivity.engine`), which reuses :func:`report_from_crossings`
with crossings obtained from cached Hamiltonian invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import active_backend
from repro.statespace.hamiltonian import imaginary_eigenvalue_frequencies
from repro.statespace.poleresidue import PoleResidueModel


@dataclass(frozen=True)
class ViolationBand:
    """One frequency band where sigma_max(S) exceeds 1."""

    omega_low: float
    omega_high: float
    omega_peak: float
    sigma_peak: float

    def __str__(self) -> str:
        return (
            f"[{self.omega_low / (2 * np.pi):.4g}, "
            f"{self.omega_high / (2 * np.pi):.4g}] Hz, "
            f"peak sigma={self.sigma_peak:.6f} at "
            f"{self.omega_peak / (2 * np.pi):.4g} Hz"
        )


@dataclass(frozen=True)
class PassivityReport:
    """Result of a passivity check."""

    is_passive: bool
    worst_sigma: float
    worst_omega: float
    crossings: np.ndarray
    bands: list[ViolationBand] = field(default_factory=list)
    asymptotic_gain: float = 0.0  # sigma_max(D)

    def constraint_frequencies(self) -> np.ndarray:
        """Frequencies at which enforcement constraints should be placed.

        Peak of each violation band plus its edges (nudged inside), which
        stabilizes the linearized iteration on wide bands.
        """
        freqs: list[float] = []
        for band in self.bands:
            freqs.append(band.omega_peak)
            span = band.omega_high - band.omega_low
            if span > 0.0:
                freqs.append(band.omega_low + 0.25 * span)
                freqs.append(band.omega_low + 0.75 * span)
        return np.unique(np.asarray(freqs))


def _sigma_max(model: PoleResidueModel, omega: np.ndarray) -> np.ndarray:
    backend = active_backend()
    response = model.frequency_response(omega)
    return backend.from_device(
        backend.svd(backend.asarray(response), compute_uv=False)
    )[:, 0]


def asymptotic_violation_report(
    model: PoleResidueModel, asymptotic: float
) -> PassivityReport:
    """Report for sigma_max(D) >= 1: violated at infinite frequency.

    No finite band structure is meaningful and C-perturbation cannot
    repair D.
    """
    return PassivityReport(
        is_passive=False,
        worst_sigma=asymptotic,
        worst_omega=np.inf,
        crossings=np.zeros(0),
        bands=[],
        asymptotic_gain=asymptotic,
    )


def bands_from_sigma_samples(
    omega: np.ndarray, sigma: np.ndarray
) -> list[ViolationBand]:
    """Extract contiguous sigma > 1 runs of a sampled sweep as bands."""
    violating = sigma > 1.0
    bands: list[ViolationBand] = []
    start = None
    for k in range(omega.size):
        if violating[k] and start is None:
            start = k
        if start is not None and (not violating[k] or k == omega.size - 1):
            end = k if violating[k] else k - 1
            peak = start + int(np.argmax(sigma[start : end + 1]))
            bands.append(
                ViolationBand(
                    omega_low=float(omega[start]),
                    omega_high=float(omega[end]),
                    omega_peak=float(omega[peak]),
                    sigma_peak=float(sigma[peak]),
                )
            )
            start = None
    return bands


def check_passivity_sampling(
    model: PoleResidueModel,
    omega: np.ndarray,
) -> PassivityReport:
    """Sampling-only passivity check (no Hamiltonian).

    Sweeps sigma_max(S(j omega)) on the provided grid and reports
    violations.  Cheaper but *not* conclusive: violations between grid
    points are missed -- exactly why the Hamiltonian test exists.  Kept
    for cross-validation and for very large models where the 2N x 2N
    eigenproblem dominates; the enforcement loop's fast engine
    (:mod:`repro.passivity.engine`) wraps this mode with an adaptive,
    warm-started grid and an exact final certificate.
    """
    omega = np.asarray(omega, dtype=float)
    if omega.ndim != 1 or omega.size < 2:
        raise ValueError("need a one-dimensional grid of at least 2 points")
    sigma = _sigma_max(model, omega)
    worst = int(np.argmax(sigma))
    bands = bands_from_sigma_samples(omega, sigma)
    return PassivityReport(
        is_passive=not bands,
        worst_sigma=float(sigma[worst]),
        worst_omega=float(omega[worst]),
        crossings=np.zeros(0),
        bands=bands,
        asymptotic_gain=float(np.linalg.norm(model.const, 2)),
    )


def report_from_crossings(
    model: PoleResidueModel,
    crossings: np.ndarray,
    *,
    omega_cap: float,
    band_samples: int = 50,
    asymptotic: float | None = None,
) -> PassivityReport:
    """Build a certified passivity report from Hamiltonian crossings.

    Candidate intervals lie between consecutive crossings (plus the two
    half-open ends); a band is violating when sigma_max > 1 at its
    geometric midpoint, and each violating band is refined by dense
    sampling.  All midpoint and refinement evaluations are batched into
    two vectorized sweeps.
    """
    if asymptotic is None:
        asymptotic = float(np.linalg.norm(model.const, 2))
    edges = np.concatenate(([0.0], np.asarray(crossings, float), [omega_cap]))
    lows, highs = edges[:-1], edges[1:]
    valid = highs > lows
    lows, highs = lows[valid], highs[valid]
    mids = np.sqrt(np.maximum(lows, highs * 1e-9) * highs)
    sigma_mid = _sigma_max(model, mids) if mids.size else np.zeros(0)

    worst_sigma = 0.0
    worst_omega = 0.0
    if mids.size:
        k = int(np.argmax(sigma_mid))
        worst_sigma, worst_omega = float(sigma_mid[k]), float(mids[k])

    violating = sigma_mid > 1.0
    bands: list[ViolationBand] = []
    if np.any(violating):
        v_lows = lows[violating]
        v_highs = highs[violating]
        # Dense refinement grid of every violating band, one batched sweep.
        grid_lows = np.where(
            v_lows <= 0.0, np.minimum(1e-3, v_highs * 1e-6), v_lows
        )
        grids = np.geomspace(grid_lows, v_highs, band_samples, axis=1)
        sigma_grid = _sigma_max(model, grids.reshape(-1)).reshape(
            grids.shape
        )
        best = np.argmax(sigma_grid, axis=1)
        rows = np.arange(best.size)
        sigma_peaks = sigma_grid[rows, best]
        omega_peaks = grids[rows, best]
        k = int(np.argmax(sigma_peaks))
        if sigma_peaks[k] > worst_sigma:
            worst_sigma = float(sigma_peaks[k])
            worst_omega = float(omega_peaks[k])
        bands = [
            ViolationBand(
                omega_low=float(lo),
                omega_high=float(hi),
                omega_peak=float(peak),
                sigma_peak=float(sig),
            )
            for lo, hi, peak, sig in zip(
                v_lows, v_highs, omega_peaks, sigma_peaks
            )
        ]

    return PassivityReport(
        is_passive=not bands and worst_sigma <= 1.0,
        worst_sigma=worst_sigma,
        worst_omega=worst_omega,
        crossings=np.asarray(crossings, float),
        bands=bands,
        asymptotic_gain=asymptotic,
    )


def default_omega_cap(model: PoleResidueModel) -> float:
    """Upper angular frequency of the half-open band above the last
    crossing: 10x the largest pole magnitude."""
    pole_scale = float(np.max(np.abs(model.poles)))
    return 10.0 * max(pole_scale, 1.0)


def check_passivity(
    model: PoleResidueModel,
    *,
    band_samples: int = 50,
    omega_cap: float | None = None,
) -> PassivityReport:
    """Assess passivity of a scattering pole-residue macromodel.

    Parameters
    ----------
    model:
        Stable pole-residue macromodel.
    band_samples:
        Dense samples used to refine each violation band.
    omega_cap:
        Upper angular frequency for the half-open band above the last
        crossing; defaults to 10x the largest pole magnitude.
    """
    if not model.is_stable():
        raise ValueError("passivity check requires a stable model")
    asymptotic = float(np.linalg.norm(model.const, 2))
    if asymptotic >= 1.0:
        return asymptotic_violation_report(model, asymptotic)

    # Crossing candidates come from the state-space Hamiltonian; their
    # verification reuses the (mathematically identical, much cheaper)
    # pole-residue response instead of dense state-space solves.
    state_space = model.to_state_space()
    crossings = imaginary_eigenvalue_frequencies(
        state_space, gamma=1.0, response_fn=model.frequency_response
    )
    if omega_cap is None:
        omega_cap = default_omega_cap(model)
    return report_from_crossings(
        model,
        crossings,
        omega_cap=omega_cap,
        band_samples=band_samples,
        asymptotic=asymptotic,
    )
